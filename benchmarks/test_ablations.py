"""Ablations of the design choices DESIGN.md calls out.

Each ablation disables one modelled mechanism and shows the paper's
corresponding observation disappears — evidence the reproduction gets
the effects from the right causes:

1. Fragment-aware TLB off -> hipMalloc loses its TLB advantage
   (ties Fig. 9 to the mechanism).
2. Free-list channel skew off -> malloc's CPU latency penalty near the
   Infinity Cache capacity vanishes (ties Fig. 2 to Section 5.4).
3. Native FP64 CPU atomics (no CAS loop) -> the UINT64/FP64 gap closes
   (ties Fig. 4 to the code-generation finding).
4. Up-front contiguity reduced to one page -> hipMalloc's bandwidth
   advantage collapses (ties Fig. 3 to Fig. 9).
5. Fault batch (pre-faulting) sweep -> the 2.2x staged-fault win only
   exists at scale.
"""

import dataclasses

import numpy as np
import pytest

from conftest import print_table
from repro.core.tlb import streaming_tlb_misses
from repro.hw.config import MiB, default_config, small_config
from repro.perf.atomics import cpu_atomic_throughput
from repro.perf.bandwidth import BufferTraits, gpu_stream_bandwidth
from repro.perf.faultmodel import prefault_speedup, fault_burst_time_ns
from repro.perf.latency import cpu_chase_latency_ns
from repro.runtime.apu import APU


def test_ablation_fragment_aware_tlb(benchmark):
    """Without fragment awareness, hipMalloc's TLB miss advantage is gone."""

    def run():
        exps = np.full(65536, 4, dtype=np.int8)  # hipMalloc-like fragments
        aware = streaming_tlb_misses(exps, 10, 32, fragment_aware=True)
        unaware = streaming_tlb_misses(exps, 10, 32, fragment_aware=False)
        return aware, unaware

    aware, unaware = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation 1: fragment-aware TLB",
        ["mode", "TRIAD-pass misses"],
        [("fragment-aware", f"{aware:,}"), ("page-granular", f"{unaware:,}")],
    )
    assert unaware == 16 * aware  # the entire Fig. 9 gap


def test_ablation_channel_skew(benchmark):
    """With a balanced free list, malloc's early CPU latency plateau at
    256-512 MiB disappears."""

    def run():
        out = {}
        for skew in (1.1, 0.0):
            cfg = small_config(16 << 30)
            cfg = cfg.replace(
                policy=dataclasses.replace(cfg.policy, free_list_channel_skew=skew)
            )
            apu = APU(config=cfg, xnack=True)
            buf = apu.memory.malloc(512 * MiB)
            apu.touch(buf, "cpu")
            out[skew] = cpu_chase_latency_ns(
                cfg, 512 * MiB, ic=apu.infinity_cache,
                frames=buf.vma.resident_frames(),
            )
        return out

    latency = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation 2: free-list channel skew (malloc, 512 MiB CPU chase)",
        ["skew", "latency_ns"],
        [(k, f"{v:.1f}") for k, v in latency.items()],
    )
    assert latency[1.1] > latency[0.0] + 15


def test_ablation_native_fp64_atomics(benchmark):
    """Granting the CPU native FP64 atomics closes the 3x gap of Fig. 4."""

    def run():
        cfg = default_config()
        native = cfg.replace(
            atomics=dataclasses.replace(
                cfg.atomics, cpu_fp64_overhead=1.0, cpu_cas_retry_ns=0.0
            )
        )
        return (
            cpu_atomic_throughput(cfg, 1, 1, "uint64")
            / cpu_atomic_throughput(cfg, 1, 1, "fp64"),
            cpu_atomic_throughput(native, 1, 1, "uint64")
            / cpu_atomic_throughput(native, 1, 1, "fp64"),
        )

    cas_gap, native_gap = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation 3: CPU FP64 atomic implementation",
        ["implementation", "UINT64 / FP64 throughput"],
        [("CAS loop (x86)", f"{cas_gap:.2f}x"), ("native add", f"{native_gap:.2f}x")],
    )
    assert cas_gap == pytest.approx(3.0, rel=0.05)
    assert native_gap == pytest.approx(1.0, rel=0.05)


def test_ablation_up_front_contiguity(benchmark):
    """One-page driver contiguity erases hipMalloc's bandwidth tier."""

    def run():
        out = {}
        for contiguity in (64 << 10, 4 << 10):
            cfg = small_config(2 << 30)
            cfg = cfg.replace(
                policy=dataclasses.replace(
                    cfg.policy, up_front_contiguity_bytes=contiguity
                )
            )
            apu = APU(config=cfg)
            buf = apu.memory.hip_malloc(64 * MiB)
            out[contiguity] = gpu_stream_bandwidth(cfg, apu.buffer_traits(buf))
        return out

    bandwidth = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation 4: driver allocation contiguity (hipMalloc GPU STREAM)",
        ["contiguity", "bandwidth"],
        [(f"{k >> 10} KiB", f"{v / 1e12:.2f} TB/s") for k, v in bandwidth.items()],
    )
    assert bandwidth[64 << 10] == pytest.approx(3.6e12, rel=0.02)
    assert bandwidth[4 << 10] <= 2.2e12


def test_ablation_prefault_scale_sweep(benchmark):
    """The staged pre-faulting strategy only wins at scale: at small page
    counts the extra pipeline stage costs more than it saves."""

    def run():
        cfg = default_config()
        return {pages: prefault_speedup(cfg, pages) for pages in
                (1, 10, 10_000, 1_000_000, 10_000_000)}

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation 5: CPU pre-faulting speedup vs scale",
        ["pages", "speedup vs GPU-major"],
        [(f"{k:,}", f"{v:.2f}x") for k, v in speedups.items()],
    )
    assert speedups[1] < 1.0  # staging loses when handler latency dominates
    assert speedups[10_000_000] > 1.8  # the paper's 2.2x regime
    values = list(speedups.values())
    assert values == sorted(values)


def test_ablation_eager_gpu_maps(benchmark):
    """Eager maps (Bertolli et al. [11]) trade CPU-side mapping time for
    zero GPU minor faults — the fix for nn-style fault-dominated kernels."""

    def run():
        out = {}
        for eager in (False, True):
            cfg = small_config(2 << 30)
            cfg = cfg.replace(
                policy=dataclasses.replace(cfg.policy, eager_gpu_maps=eager)
            )
            apu = APU(config=cfg, xnack=True)
            buf = apu.memory.malloc(64 * MiB)
            cpu_report = apu.faults.touch_range(buf.vma, 0, buf.npages, "cpu")
            gpu_report = apu.faults.touch_range(buf.vma, 0, buf.npages, "gpu")
            out[eager] = (
                cpu_report.service_time_ns,
                gpu_report.gpu_minor_pages,
                gpu_report.service_time_ns,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation 6: eager GPU maps (64 MiB malloc, CPU init then GPU read)",
        ["eager", "cpu_init_ms", "gpu_minor_faults", "gpu_fault_ms"],
        [
            (eager, f"{cpu_ns / 1e6:.2f}", minor, f"{gpu_ns / 1e6:.3f}")
            for eager, (cpu_ns, minor, gpu_ns) in results.items()
        ],
    )
    lazy, eager = results[False], results[True]
    assert eager[1] == 0  # no GPU minor faults at all
    assert lazy[1] == 64 * MiB // 4096
    assert eager[0] > lazy[0]  # paid on the CPU side instead
    assert eager[2] < lazy[2]
