"""Fig. 6 — memory allocation time per allocator across sizes.

Regenerates the allocation-speed curves (2 B to 1 GiB, N=100 loop) via
the ``fig6`` registry experiment and the deallocation findings of
Section 5.1.  The live-allocator loop is cross-checked against the cost
models at a sample size, so the curve is the behaviour of the actual
simulated allocators, not just a formula.
"""

import pytest

from conftest import experiment_rows, print_table
from repro.bench import allocspeed
from repro.exp import get_spec
from repro.exp.experiments import FIG6_SIZES
from repro.hw.config import GiB, KiB, MiB

SIZES = list(FIG6_SIZES)


@pytest.fixture(scope="module")
def samples(experiment):
    return {
        (r["allocator"], r["size_bytes"]): r for r in experiment("fig6")
    }


def test_fig6_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_rows("fig6", fresh=True), rounds=1, iterations=1
    )
    print_table(
        "Fig. 6: allocation / deallocation time (us)",
        ["allocator", "size", "alloc_us", "free_us"],
        [
            (r["allocator"], f"{r['size_bytes']} B",
             f"{r['alloc_ns'] / 1e3:.3f}", f"{r['free_ns'] / 1e3:.3f}")
            for r in rows
        ],
    )
    assert len(rows) == len(SIZES) * get_spec("fig6").point_count()


class TestAllocationFindings:
    def test_malloc_fastest(self, samples):
        assert samples[("malloc", 32)]["alloc_ns"] == pytest.approx(14.0)
        assert samples[("malloc", 1 * GiB)]["alloc_ns"] == pytest.approx(
            6e3, rel=0.1
        )

    def test_up_front_flat_to_16kib(self, samples):
        for allocator in ("hipMalloc", "hipHostMalloc", "hipMallocManaged(xnack=0)"):
            assert samples[(allocator, 2)]["alloc_ns"] == \
                samples[(allocator, 16 * KiB)]["alloc_ns"], allocator

    def test_hipmalloc_10us_to_37ms(self, samples):
        assert samples[("hipMalloc", 2)]["alloc_ns"] == pytest.approx(10e3)
        assert samples[("hipMalloc", 1 * GiB)]["alloc_ns"] == pytest.approx(
            37e6, rel=0.02
        )

    def test_pinned_allocators_200_to_400ms_at_1gib(self, samples):
        for allocator in ("hipHostMalloc", "hipMallocManaged(xnack=0)"):
            assert 200e6 <= samples[(allocator, 1 * GiB)]["alloc_ns"] <= 400e6

    def test_managed_xnack_constant(self, samples):
        values = {
            samples[("hipMallocManaged(xnack=1)", s)]["alloc_ns"] for s in SIZES
        }
        assert len(values) == 1

    def test_recommended_ordering(self, samples):
        """malloc for on-demand, hipMalloc as the fastest up-front."""
        for size in SIZES:
            assert samples[("malloc", size)]["alloc_ns"] <= \
                samples[("hipMalloc", size)]["alloc_ns"]
        for size in (2 * MiB, 16 * MiB, 1 * GiB):
            assert samples[("hipMalloc", size)]["alloc_ns"] < \
                samples[("hipHostMalloc", size)]["alloc_ns"]


class TestDeallocationFindings:
    def test_free_faster_until_16mib_then_4_to_9x(self, samples):
        for size in (2, 1 * KiB, 2 * MiB):
            s = samples[("malloc", size)]
            assert s["free_ns"] < s["alloc_ns"]
        for size in (128 * MiB, 1 * GiB):
            s = samples[("malloc", size)]
            assert 4 <= s["free_ns"] / s["alloc_ns"] <= 9

    def test_hipfree_crossover_at_2mib(self, samples):
        below = samples[("hipMalloc", 256 * KiB)]
        assert below["free_ns"] < below["alloc_ns"]
        above = samples[("hipMalloc", 128 * MiB)]
        assert above["free_ns"] > above["alloc_ns"]

    def test_hipfree_up_to_22x_at_256mib(self):
        sample = allocspeed.cost_sweep("hipMalloc", sizes=[256 * MiB])[0]
        assert sample.free_ns / sample.alloc_ns == pytest.approx(22, rel=0.15)

    def test_managed_xnack_free_microseconds(self, samples):
        for size in SIZES:
            free_ns = samples[("hipMallocManaged(xnack=1)", size)]["free_ns"]
            assert 3e3 <= free_ns <= 21e3

    def test_pinned_free_band(self, samples):
        assert samples[("hipHostMalloc", 16 * KiB)]["free_ns"] >= 220e3
        assert samples[("hipHostMalloc", 1 * GiB)]["free_ns"] == pytest.approx(
            67e6, rel=0.05
        )


def test_live_allocator_matches_model(benchmark):
    """The timed alloc/free loops on a live APU charge the model costs."""

    def live():
        return allocspeed.timed_loop("hipMalloc", 1 * MiB, count=100, warmup=10)

    sample = benchmark.pedantic(live, rounds=1, iterations=1)
    model = allocspeed.cost_sweep("hipMalloc", sizes=[1 * MiB])[0]
    assert sample.alloc_ns == pytest.approx(model.alloc_ns, rel=0.01)
    assert sample.free_ns == pytest.approx(model.free_ns, rel=0.01)
