"""Fig. 9 — GPU TLB misses in the STREAM TRIAD kernel, per allocator.

Regenerates the rocprofv3 TCP_UTCL1_TRANSLATION_MISS counter readings
via the ``fig9`` registry experiment for the five allocators at the
paper's scale (256 MiB arrays, 10 iterations).  Paper: hipMalloc ~158 K
misses; every other allocator 1.0-1.2 M — the adaptive-fragment
mechanism of Section 5.3, and the explanation of hipMalloc's bandwidth
advantage.
"""

import pytest

from conftest import experiment_rows, print_table
from repro.exp import get_spec

ALLOCATORS = [
    "malloc",
    "malloc+register",
    "hipMalloc",
    "hipHostMalloc",
    "hipMallocManaged(xnack=0)",
]


@pytest.fixture(scope="module")
def rows(experiment):
    return {r["allocator"]: r for r in experiment("fig9")}


def test_fig9_table(benchmark):
    results = benchmark.pedantic(
        lambda: experiment_rows("fig9", fresh=True), rounds=1, iterations=1
    )
    print_table(
        "Fig. 9: GPU TLB misses in TRIAD (10 iterations, 3x256 MiB)",
        ["allocator", "tlb_misses"],
        [(r["allocator"], f"{r['gpu_tlb_misses']:,}") for r in results],
    )
    assert len(results) == get_spec("fig9").point_count() == len(ALLOCATORS)


def test_hipmalloc_in_paper_band(rows):
    # Paper: 158 K.  Shape tolerance: same order of magnitude, well
    # separated from the 1 M+ cluster.
    assert 100_000 <= rows["hipMalloc"]["gpu_tlb_misses"] <= 220_000


def test_other_allocators_1_0_to_1_2m(rows):
    for name in ALLOCATORS:
        if name == "hipMalloc":
            continue
        misses = rows[name]["gpu_tlb_misses"]
        assert 0.9e6 <= misses <= 1.3e6, name


def test_hipmalloc_separation_factor(rows):
    """The headline gap: hipMalloc has ~7x (ours ~8x) fewer misses."""
    hip = rows["hipMalloc"]["gpu_tlb_misses"]
    for name in ALLOCATORS:
        if name == "hipMalloc":
            continue
        assert rows[name]["gpu_tlb_misses"] / hip >= 5, name


def test_miss_count_ties_to_bandwidth(rows):
    """Fewer TLB misses <-> higher bandwidth (Sections 4.2 + 5.3)."""
    ordered = sorted(rows.values(), key=lambda r: r["gpu_tlb_misses"])
    assert ordered[0]["allocator"] == "hipMalloc"
    assert ordered[0]["bandwidth_bytes_per_s"] == max(
        r["bandwidth_bytes_per_s"] for r in rows.values()
    )
