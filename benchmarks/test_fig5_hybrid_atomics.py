"""Fig. 5 — relative CPU and GPU atomics performance when co-running.

Regenerates the co-run heatmaps (CPU threads x GPU threads, for the 1K
and 1M arrays, UINT64 and FP64) via the ``fig5`` registry experiment,
normalised to the isolated baselines of Fig. 4, and asserts the paper's
cross-device coherence findings.
"""

import math

import pytest

from conftest import experiment_rows, print_table
from repro.exp.experiments import FIG5_CPU_THREADS, FIG5_GPU_THREADS

CPU_THREADS = list(FIG5_CPU_THREADS)
GPU_THREADS = list(FIG5_GPU_THREADS)


@pytest.fixture(scope="module")
def grids(experiment):
    return experiment("fig5")


def _cell(grids, dtype, elements, cpu_threads, gpu_threads):
    for row in grids:
        if (row["dtype"], row["elements"], row["cpu_threads"],
                row["gpu_threads"]) == (dtype, elements, cpu_threads,
                                        gpu_threads):
            return row
    raise KeyError((dtype, elements, cpu_threads, gpu_threads))


def test_fig5_grids(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_rows("fig5", fresh=True), rounds=1, iterations=1
    )
    panels = sorted({(r["dtype"], r["elements"]) for r in rows})
    for dtype, elements in panels:
        label = "1K" if elements == 1 << 10 else "1M"
        print_table(
            f"Fig. 5: co-run relative performance, {label} {dtype}",
            ["cpu_threads", "gpu_threads", "cpu_rel", "gpu_rel"],
            [
                (r["cpu_threads"], r["gpu_threads"],
                 f"{r['cpu_relative']:.2f}", f"{r['gpu_relative']:.2f}")
                for r in rows
                if (r["dtype"], r["elements"]) == (dtype, elements)
            ],
        )
    assert len(panels) == 4
    assert len(rows) == 4 * len(CPU_THREADS) * len(GPU_THREADS)


class Test1KContention:
    def test_cpu_at_best_within_13_percent(self, grids):
        best = max(
            _cell(grids, "uint64", 1 << 10, c, g)["cpu_relative"]
            for c in CPU_THREADS
            for g in GPU_THREADS
        )
        assert 0.75 <= best <= 0.9

    def test_cpu_crushed_past_3328_gpu_threads(self, grids):
        for g in (3328, 6400, 10496, 14592):
            for c in (6, 12, 24):
                rel = _cell(grids, "uint64", 1 << 10, c, g)["cpu_relative"]
                assert 0.11 <= rel <= 0.28, (c, g)

    def test_gpu_stable_below_3328_threads(self, grids):
        for g in (64, 640, 1280):
            rel = _cell(grids, "uint64", 1 << 10, 6, g)["gpu_relative"]
            assert rel >= 0.95, g

    def test_gpu_drops_to_079_at_max_pressure(self, grids):
        rel = _cell(grids, "uint64", 1 << 10, 24, 14592)["gpu_relative"]
        assert rel == pytest.approx(0.79, abs=0.05)


class Test1MCoRun:
    def test_uint64_cpu_speedup_region(self, grids):
        best = max(
            _cell(grids, "uint64", 1 << 20, 6, g)["cpu_relative"]
            for g in (2304, 3328, 6400)
        )
        assert 1.05 <= best <= 1.2  # paper: up to 1.14x at 6 CPU threads

    def test_uint64_gpu_slight_speedup(self, grids):
        rels = [
            _cell(grids, "uint64", 1 << 20, c, g)["gpu_relative"]
            for c in (3, 6, 12)
            for g in (2304, 6400)
        ]
        for rel in rels:
            assert 1.0 <= rel <= 1.05

    def test_uint64_gpu_geomean_near_unity(self, grids):
        rels = [
            _cell(grids, "uint64", 1 << 20, c, g)["gpu_relative"]
            for c in CPU_THREADS
            for g in GPU_THREADS
        ]
        geomean = math.exp(sum(math.log(r) for r in rels) / len(rels))
        assert geomean == pytest.approx(1.01, abs=0.02)

    def test_fp64_speedup_region_same_location(self, grids):
        best_g = max(
            (g for g in GPU_THREADS),
            key=lambda g: _cell(grids, "fp64", 1 << 20, 6, g)["cpu_relative"],
        )
        assert 640 <= best_g <= 6400

    def test_fp64_cpu_lower_than_uint64(self, grids):
        # Absolute FP64 throughput trails UINT64 even when relative
        # numbers look similar.
        u = _cell(grids, "uint64", 1 << 20, 6, 2304)["cpu_updates_per_s"]
        f = _cell(grids, "fp64", 1 << 20, 6, 2304)["cpu_updates_per_s"]
        assert f < u


class TestContrast:
    def test_cpu_more_disadvantaged_than_gpu(self, grids):
        """The summary claim of Section 4.4: contention hurts the CPU far
        more than the GPU in hybrid algorithms."""
        cell = _cell(grids, "uint64", 1 << 10, 12, 6400)
        assert cell["gpu_relative"] - cell["cpu_relative"] > 0.5
