"""Fig. 8 — distribution of single page-fault latency, CPU vs GPU.

Regenerates the latency distributions (mean and tail) of resolving one
page fault via the ``fig8`` registry experiment: CPU minor, GPU minor,
GPU major.  Paper anchors: CPU 9 us mean / 11 us p95; GPU minor
16/20 us; GPU major 18/22 us — the GPU is 1.8-2.0x slower with higher
variability.
"""

import pytest

from conftest import experiment_rows, print_table


@pytest.fixture(scope="module")
def stats(experiment):
    return {r["fault_type"]: r for r in experiment("fig8")}


def test_fig8_distributions(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_rows("fig8", fresh=True), rounds=1, iterations=1
    )
    print_table(
        "Fig. 8: single-fault latency (us)",
        ["fault type", "mean", "p50", "p95"],
        [(r["fault_type"], f"{r['mean_us']:.1f}", f"{r['p50_us']:.1f}",
          f"{r['p95_us']:.1f}")
         for r in rows],
    )
    assert len(rows) == 3


def test_cpu_anchor(stats):
    assert stats["cpu"]["mean_us"] == pytest.approx(9.0, rel=0.03)
    assert stats["cpu"]["p95_us"] == pytest.approx(11.0, rel=0.05)


def test_gpu_minor_anchor(stats):
    assert stats["gpu_minor"]["mean_us"] == pytest.approx(16.0, rel=0.03)
    assert stats["gpu_minor"]["p95_us"] == pytest.approx(20.0, rel=0.05)


def test_gpu_major_anchor(stats):
    assert stats["gpu_major"]["mean_us"] == pytest.approx(18.0, rel=0.03)
    assert stats["gpu_major"]["p95_us"] == pytest.approx(22.0, rel=0.05)


def test_gpu_1_8_to_2x_cpu(stats):
    assert 1.7 <= stats["gpu_minor"]["mean_us"] / stats["cpu"]["mean_us"] <= 2.0
    assert 1.9 <= stats["gpu_major"]["mean_us"] / stats["cpu"]["mean_us"] <= 2.1


def test_gpu_has_higher_variability(stats):
    cpu_spread = stats["cpu"]["p95_us"] - stats["cpu"]["p50_us"]
    for scenario in ("gpu_minor", "gpu_major"):
        gpu_spread = stats[scenario]["p95_us"] - stats[scenario]["p50_us"]
        assert gpu_spread > cpu_spread


def test_major_slower_than_minor(stats):
    assert stats["gpu_major"]["mean_us"] > stats["gpu_minor"]["mean_us"]
    assert stats["gpu_major"]["p95_us"] > stats["gpu_minor"]["p95_us"]
