"""Fig. 11 — six HPC applications: unified vs explicit memory model.

Regenerates the application study via the ``apps`` registry experiment:
total execution time, compute-phase time, and peak memory usage of each
unified variant normalised to the explicit baseline.  Paper findings
asserted:

* backprop: compute -35 %, total -19 %;
* dwt2d: compute -86 %, total ~unchanged (I/O dominated), memory
  unchanged (peak in the CPU-only decode phase);
* srad_v1: compute ~unchanged;
* heartwall-v1 (managed statics): ~18 % slower; heartwall-v2
  (restructured): parity, memory unchanged (double buffering);
* nn: unified compute is the outlier (GPU faults on the std::vector);
  the std::allocator fix restores performance;
* memory savings of 10-50 % in backprop, hotspot, nn, srad_v1 —
  the paper's "up to 44 %" headline.
"""

import pytest

from conftest import experiment_rows, print_table


@pytest.fixture(scope="module")
def study(experiment):
    return {(r["app"], r["variant"]): r for r in experiment("apps")}


def test_fig11_study(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_rows("apps", fresh=True), rounds=1, iterations=1
    )
    print_table(
        "Fig. 11: unified / explicit ratios",
        ["app", "variant", "total_time", "compute_time", "peak_memory"],
        [
            (r["app"], r["variant"], f"{r['total_time_ratio']:.2f}",
             f"{r['compute_time_ratio']:.2f}", f"{r['memory_ratio']:.2f}")
            for r in sorted(rows, key=lambda r: (r["app"], r["variant"]))
        ],
    )
    assert len(rows) == 8  # 4 single-variant + 2x2 multi-variant


class TestTimeFindings:
    def test_backprop_improves(self, study):
        c = study[("backprop", "unified")]
        assert 0.55 <= c["compute_time_ratio"] <= 0.75  # paper: -35 %
        assert 0.70 <= c["total_time_ratio"] <= 0.92  # paper: -19 %

    def test_dwt2d_compute_collapses_total_flat(self, study):
        c = study[("dwt2d", "unified")]
        assert c["compute_time_ratio"] <= 0.25  # paper: -86 %
        assert 0.80 <= c["total_time_ratio"] <= 1.05  # I/O dominated

    def test_srad_compute_unchanged(self, study):
        c = study[("srad_v1", "unified")]
        assert 0.85 <= c["compute_time_ratio"] <= 1.1

    def test_hotspot_competitive(self, study):
        c = study[("hotspot", "unified")]
        assert c["total_time_ratio"] <= 1.05

    def test_heartwall_v1_managed_static_penalty(self, study):
        c = study[("heartwall", "unified-v1")]
        assert 1.05 <= c["total_time_ratio"] <= 1.30  # paper: +18 %

    def test_heartwall_v2_parity(self, study):
        c = study[("heartwall", "unified-v2")]
        assert 0.85 <= c["total_time_ratio"] <= 1.1

    def test_nn_compute_outlier(self, study):
        c = study[("nn", "unified")]
        assert c["compute_time_ratio"] >= 1.5  # significantly higher

    def test_nn_std_allocator_fix(self, study):
        broken = study[("nn", "unified")]
        fixed = study[("nn", "unified-hipalloc")]
        assert fixed["compute_time_ratio"] < 1.0
        assert fixed["compute_time_ratio"] < broken["compute_time_ratio"] / 3

    def test_unified_competitive_overall(self, study):
        """The headline: with the porting strategies applied (v2 for
        heartwall, not the nn pitfall), unified matches explicit."""
        good = [
            study[("backprop", "unified")],
            study[("dwt2d", "unified")],
            study[("hotspot", "unified")],
            study[("srad_v1", "unified")],
            study[("heartwall", "unified-v2")],
        ]
        for c in good:
            assert c["total_time_ratio"] <= 1.1, c["app"]


class TestMemoryFindings:
    def test_savings_in_four_apps(self, study):
        for key in (
            ("backprop", "unified"),
            ("hotspot", "unified"),
            ("nn", "unified"),
            ("srad_v1", "unified"),
        ):
            c = study[key]
            assert 0.5 <= c["memory_ratio"] <= 0.9, key  # 10-50 % saved

    def test_max_saving_at_least_44_percent(self, study):
        best = min(
            study[key]["memory_ratio"]
            for key in (
                ("backprop", "unified"),
                ("hotspot", "unified"),
                ("nn", "unified"),
                ("srad_v1", "unified"),
            )
        )
        assert best <= 0.56  # paper: up to 44 % saved

    def test_dwt2d_memory_unchanged(self, study):
        assert study[("dwt2d", "unified")]["memory_ratio"] == pytest.approx(
            1.0, abs=0.05
        )

    def test_heartwall_v2_memory_unchanged(self, study):
        assert study[("heartwall", "unified-v2")]["memory_ratio"] == \
            pytest.approx(1.0, abs=0.05)
