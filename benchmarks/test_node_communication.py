"""Extension — inter-APU communication on a 4-APU node.

The paper's testbed has four MI300As per node; its companion study
(Schieffer et al. [30]) characterises the xGMI links between them and
finds hipMalloc buffers give the best communication performance — the
same allocator properties that win inside one APU.  This bench
regenerates that node-level allocator ordering and the all-to-all
exchange costs.
"""

import pytest

from conftest import fmt_rate, print_table
from repro.hw.config import MiB
from repro.hw.node import MI300ANode


def run_sweep():
    node = MI300ANode(apu_memory_gib=1, xnack=True)
    apu = node.apu(0)
    buffers = {
        "hipMalloc": apu.memory.hip_malloc(64 * MiB),
        "hipHostMalloc": apu.memory.hip_host_malloc(64 * MiB),
        "malloc": apu.memory.malloc(64 * MiB),
    }
    peer = {
        name: node.peer_bandwidth(buf) for name, buf in buffers.items()
    }
    all_to_all = {
        name: node.all_to_all_time_ns(64 * MiB, name) / 1e6
        for name in buffers
    }
    return node, peer, all_to_all


@pytest.fixture(scope="module")
def results():
    return run_sweep()


def test_node_sweep(benchmark):
    node, peer, all_to_all = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "Inter-APU peer bandwidth by source allocator (64 MiB)",
        ["allocator", "peer bandwidth", "all-to-all (ms)"],
        [(name, fmt_rate(bw, "B/s"), f"{all_to_all[name]:.2f}")
         for name, bw in peer.items()],
    )
    assert len(peer) == 3


def test_hipmalloc_best_for_communication(results):
    _, peer, _ = results
    assert peer["hipMalloc"] > peer["hipHostMalloc"] > peer["malloc"]


def test_hipmalloc_saturates_xgmi(results):
    node, peer, _ = results
    assert peer["hipMalloc"] == pytest.approx(
        node.config.xgmi_link_bandwidth_bytes_per_s
    )


def test_pageable_pays_about_3x(results):
    _, peer, _ = results
    assert peer["hipMalloc"] / peer["malloc"] == pytest.approx(3.0, rel=0.05)


def test_node_binding_isolates_single_apu(benchmark):
    """The paper's methodology: numactl + HIP_VISIBLE_DEVICES to one APU."""

    def run():
        node = MI300ANode(apu_memory_gib=1, xnack=True)
        apu = node.bind(2)
        apu.memory.hip_malloc(16 * MiB)
        return node, apu

    node, apu = benchmark.pedantic(run, rounds=1, iterations=1)
    assert apu.physical.used_bytes == 16 * MiB
    with pytest.raises(PermissionError):
        node.apu(0)
