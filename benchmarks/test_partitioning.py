"""Partitioning modes: the Instinct partitioning guide's headline numbers.

Regenerates the partition sweep (`python -m repro partition`) and asserts
the guide's findings on the simulated MI300A:

* NPS4 with partition-local placement streams 5-10% faster than NPS1 —
  the data path stays inside one IOD's quadrant;
* remote-quadrant placement under NPS4 is strictly worse than NPS1;
* CPX exposes six logical devices, each with 1/6 of the CUs and an
  Infinity Cache reach of 1/6 (NPS1) or one local quadrant (NPS4);
* the default SPX/NPS1 mode is bit-identical to the unpartitioned model.
"""

import numpy as np
import pytest

from conftest import experiment_rows, fmt_rate, print_table
from repro.hw.config import GiB, MiB
from repro.partition import (
    ComputePartition,
    MemoryPartition,
    PartitionConfig,
    all_valid_modes,
    device_stream_bandwidth,
    ic_reach_fraction,
)
from repro.runtime.hip import make_runtime

CPX_NPS1 = PartitionConfig(ComputePartition.CPX, MemoryPartition.NPS1)
CPX_NPS4 = PartitionConfig(ComputePartition.CPX, MemoryPartition.NPS4)

ARRAY_BYTES = 32 * MiB
MEMORY_GIB = 2


def _aggregate_stream(partition, remote=False):
    """Per-device hipMalloc STREAM under *partition*; returns
    (aggregate bytes/s, min local fraction)."""
    hip = make_runtime(MEMORY_GIB, partition=partition)
    apu = hip.apu
    aggregate, locals_ = 0.0, []
    n = len(apu.logical_devices)
    for device in apu.logical_devices:
        if remote:
            # Worst-case placement: the buffer sits entirely in another
            # device's quadrant (device i allocates from device i+2's).
            frames = apu.placement.alloc_chunks(
                (device.index + 2) % n, ARRAY_BYTES // 4096, 16
            )
            local = apu.placement.local_fraction(frames, device.index)
            traits = apu.buffer_traits(
                hip.hipMalloc(1 * MiB)  # traits proxy: up-front contiguous
            )
        else:
            hip.hipSetDevice(device.index)
            buf = hip.hipMalloc(ARRAY_BYTES)
            frames = buf.vma.resident_frames()
            local = apu.placement.local_fraction(frames, device.index)
            traits = apu.buffer_traits(buf)
        locals_.append(local)
        aggregate += device_stream_bandwidth(apu.config, device, traits, local)
    return aggregate, min(locals_)


def test_nps4_local_stream_uplift(benchmark):
    """NPS4 partition-local STREAM lands 5-10% above NPS1 (guide's
    headline); remote-quadrant placement is strictly worse than NPS1."""

    def run():
        nps1, _ = _aggregate_stream(CPX_NPS1)
        nps4, worst_local = _aggregate_stream(CPX_NPS4)
        nps4_remote, _ = _aggregate_stream(CPX_NPS4, remote=True)
        return nps1, nps4, nps4_remote, worst_local

    nps1, nps4, nps4_remote, worst_local = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    ratio = nps4 / nps1
    print_table(
        "Partitioning guide: NPS4 vs NPS1 aggregate STREAM (CPX, hipMalloc)",
        ["placement", "aggregate_bw", "vs NPS1"],
        [
            ("NPS1 interleaved", fmt_rate(nps1, "B/s"), "1.00x"),
            ("NPS4 local", fmt_rate(nps4, "B/s"), f"{ratio:.2f}x"),
            ("NPS4 remote", fmt_rate(nps4_remote, "B/s"),
             f"{nps4_remote / nps1:.2f}x"),
        ],
    )
    # The uplift only exists because placement is genuinely local.
    assert worst_local == 1.0
    assert 1.05 <= ratio <= 1.10
    assert nps4_remote < nps1


def test_cpx_exposes_six_devices_with_sixth_of_resources(benchmark):
    """CPX: six logical devices, 38 CUs and a 1/6 IC share each."""

    def run():
        spx = make_runtime(MEMORY_GIB).apu
        nps1 = make_runtime(MEMORY_GIB, partition=CPX_NPS1).apu
        nps4 = make_runtime(MEMORY_GIB, partition=CPX_NPS4).apu
        return spx, nps1, nps4

    spx, nps1, nps4 = benchmark.pedantic(run, rounds=1, iterations=1)
    config = spx.config
    rows = []
    for apu in (spx, nps1, nps4):
        first = apu.logical_devices[0]
        rows.append(
            (apu.partition.describe(), len(apu.logical_devices),
             first.compute_units, first.ic_slice_count,
             f"{first.ic_reach_bytes / MiB:.1f} MiB")
        )
    print_table(
        "CPX logical devices",
        ["mode", "devices", "CUs/dev", "IC_slices/dev", "IC_reach/dev"],
        rows,
    )
    assert len(nps1.logical_devices) == 6
    (spx_dev,) = spx.logical_devices
    for dev in nps1.logical_devices:
        assert dev.compute_units == config.gpu_compute_units // 6 == 38
        assert dev.compute_units == spx_dev.compute_units // 6
        # 128 slices don't split six ways evenly: the device sees all
        # slices but effectively owns a 1/6 capacity share.
        assert ic_reach_fraction(dev, config) == pytest.approx(1 / 6)
        assert dev.ic_reach_bytes < spx_dev.ic_reach_bytes
    for dev in nps4.logical_devices:
        assert dev.ic_slice_count == 128 // 4  # the local quadrant's slices
        assert dev.ic_reach_bytes < spx_dev.ic_reach_bytes


def test_default_mode_is_bit_identical_to_unpartitioned(benchmark):
    """SPX/NPS1 (the paper's testbed) changes nothing: same device
    count, same frame->channel mapping, same meminfo, same bandwidth."""

    def run():
        plain = make_runtime(MEMORY_GIB)
        partitioned = make_runtime(MEMORY_GIB, partition=PartitionConfig())
        return plain, partitioned

    plain, partitioned = benchmark.pedantic(run, rounds=1, iterations=1)
    assert partitioned.hipGetDeviceCount() == 1
    frames = np.arange(0, (1 * GiB) // 4096, 17)
    assert (
        plain.apu.hbm_map.channels_of_frames(frames)
        == partitioned.apu.hbm_map.channels_of_frames(frames)
    ).all()
    for hip in (plain, partitioned):
        buf = hip.hipMalloc(ARRAY_BYTES)
        assert hip.hipMemGetInfo() == (2 * GiB - ARRAY_BYTES, 2 * GiB)
        device = hip.apu.logical_devices[0]
        traits = hip.apu.buffer_traits(buf)
        assert device_stream_bandwidth(
            hip.apu.config, device, traits
        ) == pytest.approx(3.6e12)
    rows = [("SPX/NPS1 vs unpartitioned", "identical mapping/meminfo/bw")]
    print_table("Default-mode regression", ["check", "result"], rows)


def test_partition_mode_sweep(benchmark):
    """The registry's ``partition`` experiment stays self-consistent
    with the direct sweep (CLI parity)."""
    rows = benchmark.pedantic(
        lambda: experiment_rows("partition", fresh=True),
        rounds=1, iterations=1,
    )
    print_table(
        "Partition mode sweep (aggregate hipMalloc STREAM)",
        ["mode", "aggregate_bw", "min_local_frac"],
        [(r["mode"], fmt_rate(r["aggregate_bw_bytes_per_s"], "B/s"),
          f"{r['min_local_fraction']:.2f}") for r in rows],
    )
    assert len(rows) == len(all_valid_modes())
    by_mode = {r["mode"]: r["aggregate_bw_bytes_per_s"] for r in rows}
    # Compute partitioning alone never changes aggregate bandwidth.
    assert by_mode["TPX/NPS1"] == pytest.approx(by_mode["SPX/NPS1"])
    assert by_mode["CPX/NPS1"] == pytest.approx(by_mode["SPX/NPS1"])
    assert by_mode["CPX/NPS4"] > by_mode["SPX/NPS1"]
