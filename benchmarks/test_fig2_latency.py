"""Fig. 2 — memory latency on GPU and CPU with different allocators.

Regenerates the latency-vs-buffer-size curves (1 KiB to 4 GiB) via the
``fig2`` registry experiment for the paper's allocator set on both
devices, and asserts the findings:

* GPU plateaus: ~57 ns (L1), 100-108 ns (L2), 205-218 ns (IC),
  333-350 ns (HBM);
* CPU latency below GPU latency everywhere;
* GPU latency insensitive to the allocator;
* malloc/malloc+register already near the HBM plateau at 512 MiB while
  HIP allocators increase gradually (Infinity Cache balance, Sec. 5.4).
"""

import pytest

from conftest import experiment_rows, print_table
from repro.exp import get_spec
from repro.exp.experiments import FIG2_SIZES
from repro.hw.config import GiB, KiB, MiB

SIZES = list(FIG2_SIZES)

ALLOCATORS = [
    "malloc",
    "malloc+register",
    "hipMalloc",
    "hipHostMalloc",
    "hipMallocManaged(xnack=1)",
]


@pytest.fixture(scope="module")
def samples(experiment):
    return experiment("fig2")


def test_fig2_full_sweep(benchmark):
    samples = benchmark.pedantic(
        lambda: experiment_rows("fig2", fresh=True), rounds=1, iterations=1
    )
    rows = [
        (s["allocator"], s["device"], f"{s['size_bytes'] >> 10} KiB",
         f"{s['latency_ns']:.1f}")
        for s in samples
    ]
    print_table(
        "Fig. 2: pointer-chase latency (ns)",
        ["allocator", "device", "size", "latency_ns"],
        rows,
    )
    assert len(samples) == get_spec("fig2").point_count() * len(SIZES)


def _lookup(samples, allocator, device, size):
    for s in samples:
        if (s["allocator"], s["device"], s["size_bytes"]) == (
            allocator, device, size,
        ):
            return s["latency_ns"]
    raise KeyError((allocator, device, size))


def test_gpu_plateaus(samples):
    assert _lookup(samples, "hipMalloc", "gpu", 1 * KiB) == pytest.approx(57, abs=2)
    assert 100 <= _lookup(samples, "hipMalloc", "gpu", 1 * MiB) <= 108
    assert 205 <= _lookup(samples, "hipMalloc", "gpu", 128 * MiB) <= 218
    assert 333 <= _lookup(samples, "hipMalloc", "gpu", 4 * GiB) <= 350


def test_cpu_always_below_gpu(samples):
    for allocator in ALLOCATORS:
        for size in SIZES:
            cpu = _lookup(samples, allocator, "cpu", size)
            gpu = _lookup(samples, allocator, "gpu", size)
            assert cpu < gpu, (allocator, size)


def test_gpu_latency_allocator_insensitive(samples):
    for size in SIZES:
        values = {
            round(_lookup(samples, a, "gpu", size), 1) for a in ALLOCATORS
        }
        assert max(values) - min(values) < 2.0, size


def test_cpu_l3_advantage_region(samples):
    """The CPU's 96 MiB L3 (missing on the GPU) gives it a large edge for
    mid-size working sets."""
    cpu = _lookup(samples, "hipMalloc", "cpu", 32 * MiB)
    gpu = _lookup(samples, "hipMalloc", "gpu", 32 * MiB)
    assert gpu / cpu > 5


def test_malloc_plateaus_early_on_cpu(samples):
    """At 512 MiB malloc'd memory is close to its terminal latency while
    hipMalloc'd memory is still clearly below it (Section 5.4)."""
    malloc_512 = _lookup(samples, "malloc", "cpu", 512 * MiB)
    malloc_4g = _lookup(samples, "malloc", "cpu", 4 * GiB)
    hip_512 = _lookup(samples, "hipMalloc", "cpu", 512 * MiB)
    hip_4g = _lookup(samples, "hipMalloc", "cpu", 4 * GiB)
    assert malloc_512 > hip_512 + 10
    assert malloc_512 > 0.8 * malloc_4g  # already near its plateau...
    # ...with less climb left than the gradually-increasing HIP curve.
    assert (malloc_4g - malloc_512) < (hip_4g - hip_512)


def test_registered_memory_behaves_like_malloc(samples):
    a = _lookup(samples, "malloc", "cpu", 512 * MiB)
    b = _lookup(samples, "malloc+register", "cpu", 512 * MiB)
    assert b == pytest.approx(a, rel=0.1)


def test_all_cpu_curves_converge_at_4gib(samples):
    values = [_lookup(samples, a, "cpu", 4 * GiB) for a in ALLOCATORS]
    assert max(values) - min(values) < 15
    assert all(225 <= v <= 245 for v in values)
