"""Section 4.3 — legacy CPU-GPU data transfers (hipMemcpy bandwidth).

Regenerates the hip_bandwidth measurements: host<->device copies achieve
only 58 GB/s through SDMA (850 GB/s with SDMA disabled) while
device-to-device copies reach ~1.9 TB/s — all far below or near the GPU
STREAM bandwidth, quantifying what *legacy* explicit-model codes pay on
UPM for copies that move data within one physical memory.
"""

import pytest

from conftest import fmt_rate, print_table
from repro.bench import hipbandwidth
from repro.hw.config import MiB


def run_sweep():
    return hipbandwidth.full_sweep(copy_bytes=256 * MiB, memory_gib=4)


@pytest.fixture(scope="module")
def results():
    return {(r.label, r.sdma_enabled): r for r in run_sweep()}


def test_sec43_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "Section 4.3: hipMemcpy bandwidth",
        ["transfer", "sdma", "bandwidth"],
        [(r.label, r.sdma_enabled, fmt_rate(r.bandwidth_bytes_per_s, "B/s"))
         for r in rows],
    )
    assert len(rows) == 6


def test_sdma_host_device_58gbs(results):
    for label in ("malloc -> hipMalloc", "hipHostMalloc -> hipMalloc"):
        bw = results[(label, True)].bandwidth_bytes_per_s
        assert bw == pytest.approx(58e9, rel=0.05), label


def test_no_sdma_850gbs(results):
    bw = results[("malloc -> hipMalloc", False)].bandwidth_bytes_per_s
    assert bw == pytest.approx(850e9, rel=0.05)


def test_d2d_1900gbs(results):
    for sdma in (True, False):
        bw = results[("hipMalloc -> hipMalloc", sdma)].bandwidth_bytes_per_s
        assert bw == pytest.approx(1.9e12, rel=0.05)


def test_legacy_copies_far_below_stream_bandwidth(results):
    """The headline: legacy transfers waste most of the memory system."""
    gpu_stream_bw = 3.6e12
    sdma = results[("malloc -> hipMalloc", True)].bandwidth_bytes_per_s
    assert gpu_stream_bw / sdma > 50

def test_ordering(results):
    sdma = results[("malloc -> hipMalloc", True)].bandwidth_bytes_per_s
    blit = results[("malloc -> hipMalloc", False)].bandwidth_bytes_per_s
    d2d = results[("hipMalloc -> hipMalloc", True)].bandwidth_bytes_per_s
    assert sdma < blit < d2d
