"""Extension — UPM vs UVM vs explicit: the paper's framing, quantified.

The paper motivates UPM by the cost of software unified memory: UVM
degrades applications by 2-3x (sometimes 14x) versus explicit
management [14], while UPM makes the unified model competitive
(Section 6).  The ``uvm`` registry experiment runs the same alternating
CPU/GPU pipeline under all three models and regenerates that framing as
numbers:

* uvm/discrete ~ 2-3x the explicit baseline,
* prefetch hints recover part of it (Chien et al. [14]),
* upm/MI300A beats every discrete configuration while moving zero
  bytes, and keeps winning when the working set thrashes UVM.
"""

import pytest

from conftest import experiment_rows, print_table
from repro.hw.config import MiB
from repro.uvm import UVMConfig, UVMSystem


@pytest.fixture(scope="module")
def results(experiment):
    return {r["model"]: r for r in experiment("uvm")}


def test_three_way_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_rows("uvm", fresh=True), rounds=1, iterations=1
    )
    print_table(
        "UPM vs UVM vs explicit (1 GiB working set, 10 CPU<->GPU handovers)",
        ["model", "time_ms", "vs explicit", "moved"],
        [
            (r["model"], f"{r['time_ms']:.1f}", f"{r['vs_explicit']:.2f}x",
             f"{r['moved_bytes'] >> 20} MiB")
            for r in rows
        ],
    )
    assert len(rows) == 4


def test_uvm_pays_2_to_3x(results):
    rel = results["uvm/discrete"]["vs_explicit"]
    assert 2.0 <= rel <= 3.5


def test_prefetch_hints_mitigate(results):
    raw = results["uvm/discrete"]["time_ms"]
    hinted = results["uvm+prefetch/discrete"]["time_ms"]
    assert hinted < raw
    assert hinted > results["explicit/discrete"]["time_ms"]  # still not free


def test_upm_makes_unified_model_fastest(results):
    """The paper's conclusion, in one assertion."""
    upm = results["upm/MI300A"]
    assert upm["moved_bytes"] == 0
    for name, r in results.items():
        if name != "upm/MI300A":
            assert upm["time_ms"] < r["time_ms"], name


def test_oversubscription_thrash(benchmark):
    """UVM survives working sets beyond device memory — by thrashing.

    The one capability UPM lacks (Section 2.1), and what it costs.
    """

    def run():
        config = UVMConfig(device_memory_bytes=256 * MiB)
        # Baseline: GPU-only loop whose working set fits — pages migrate
        # once and stay resident.
        fit_system = UVMSystem(config)
        fit_buf = fit_system.malloc_managed(128 * MiB, "fits")
        start = fit_system.clock.now_ns
        for _ in range(4):
            fit_system.run_gpu_kernel({fit_buf: 128 * MiB})
        fit_ms = (fit_system.clock.now_ns - start) / 1e6

        thrashing_system = UVMSystem(config)
        a = thrashing_system.malloc_managed(192 * MiB, "a")
        b = thrashing_system.malloc_managed(192 * MiB, "b")
        start = thrashing_system.clock.now_ns
        for _ in range(4):
            thrashing_system.run_gpu_kernel({a: 192 * MiB})
            thrashing_system.run_gpu_kernel({b: 192 * MiB})
        thrash_ms = (thrashing_system.clock.now_ns - start) / 1e6
        return fit_ms, thrash_ms, thrashing_system.counters

    fit_ms, thrash_ms, counters = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "UVM oversubscription (256 MiB device memory)",
        ["scenario", "time_ms", "evicted"],
        [
            ("fits on device (128 MiB)", f"{fit_ms:.1f}", "0 MiB"),
            ("oversubscribed (2x192 MiB)", f"{thrash_ms:.1f}",
             f"{counters.evicted_bytes >> 20} MiB"),
        ],
    )
    assert counters.evicted_bytes > 0
    # Per byte streamed, the thrashing run is far slower than the
    # resident one (every pass re-migrates what the other buffer evicted).
    assert (thrash_ms / (8 * 192)) > 2 * (fit_ms / (4 * 128))
