"""Fig. 4 — atomics throughput on CPU and GPU, isolated.

Regenerates the eight panels (CPU/GPU x UINT64/FP64 x four array sizes)
of the parallel-histogram benchmark's thread sweeps via the ``fig4``
registry experiment and asserts the paper's findings about contention,
cache fit, and the CAS-loop FP64 penalty.  A functional histogram run
checks the conservation invariant the real benchmark relies on.
"""

import pytest

from conftest import experiment_rows, fmt_rate, print_table
from repro.bench import histogram

SIZES = histogram.ARRAY_SIZES
SIZE_LABELS = {1: "1", 1 << 10: "1K", 1 << 20: "1M", 1 << 30: "1G"}


@pytest.fixture(scope="module")
def sweeps(experiment):
    return experiment("fig4")


def _tput(sweeps, device, dtype, elements, threads):
    for s in sweeps:
        if (s["device"], s["dtype"], s["elements"], s["threads"]) == (
            device, dtype, elements, threads,
        ):
            return s["updates_per_s"]
    raise KeyError((device, dtype, elements, threads))


def test_fig4_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_rows("fig4", fresh=True), rounds=1, iterations=1
    )
    print_table(
        "Fig. 4: atomics throughput",
        ["device", "dtype", "array", "threads", "throughput"],
        [
            (s["device"], s["dtype"], SIZE_LABELS[s["elements"]], s["threads"],
             fmt_rate(s["updates_per_s"], "upd/s"))
            for s in rows
        ],
    )
    expected = 2 * 4 * (len(histogram.CPU_THREADS) + len(histogram.GPU_THREADS))
    assert len(rows) == expected


class TestCPURow:
    def test_one_thread_beats_two_or_three_on_small_arrays(self, sweeps):
        for elements in (1, 1 << 10, 1 << 20):
            one = _tput(sweeps, "cpu", "uint64", elements, 1)
            assert _tput(sweeps, "cpu", "uint64", elements, 2) < one
            assert _tput(sweeps, "cpu", "uint64", elements, 3) < one

    def test_1m_overtaken_at_six_threads_then_scales(self, sweeps):
        one = _tput(sweeps, "cpu", "uint64", 1 << 20, 1)
        assert _tput(sweeps, "cpu", "uint64", 1 << 20, 6) > one
        t12 = _tput(sweeps, "cpu", "uint64", 1 << 20, 12)
        t24 = _tput(sweeps, "cpu", "uint64", 1 << 20, 24)
        assert t24 / t12 == pytest.approx(2.0, rel=0.15)

    def test_1g_scales_linearly_with_lower_slope(self, sweeps):
        t6 = _tput(sweeps, "cpu", "uint64", 1 << 30, 6)
        t24 = _tput(sweeps, "cpu", "uint64", 1 << 30, 24)
        assert t24 / t6 == pytest.approx(4.0, rel=0.15)
        assert t24 < _tput(sweeps, "cpu", "uint64", 1 << 20, 24)

    def test_uint64_about_3x_fp64(self, sweeps):
        ratio = _tput(sweeps, "cpu", "uint64", 1, 1) / _tput(
            sweeps, "cpu", "fp64", 1, 1
        )
        assert ratio == pytest.approx(3.0, rel=0.1)

    def test_fp64_1k_similar_or_slower_than_1g(self, sweeps):
        for threads in (12, 24):
            t1k = _tput(sweeps, "cpu", "fp64", 1 << 10, threads)
            t1g = _tput(sweeps, "cpu", "fp64", 1 << 30, threads)
            assert t1k <= 1.25 * t1g

    def test_uint64_1k_consistently_faster_than_1g(self, sweeps):
        for threads in (1, 2, 3, 6, 12, 24):
            assert _tput(sweeps, "cpu", "uint64", 1 << 10, threads) > \
                _tput(sweeps, "cpu", "uint64", 1 << 30, threads)

    def test_single_element_decreases_with_threads(self, sweeps):
        series = [
            _tput(sweeps, "cpu", "uint64", 1, t) for t in (1, 2, 3, 6, 12, 24)
        ]
        assert series[0] == max(series)


class TestGPURow:
    def test_fp64_equals_uint64(self, sweeps):
        for elements in SIZES:
            for threads in (64, 3328, 14592):
                assert _tput(sweeps, "gpu", "uint64", elements, threads) == \
                    _tput(sweeps, "gpu", "fp64", elements, threads)

    def test_gpu_far_above_cpu_except_few_threads_or_one_element(self, sweeps):
        # Plenty of threads on 1M: GPU >> CPU.
        assert _tput(sweeps, "gpu", "uint64", 1 << 20, 6400) > \
            10 * _tput(sweeps, "cpu", "uint64", 1 << 20, 24)
        # One element: CPU single-thread wins.
        assert _tput(sweeps, "gpu", "uint64", 1, 14592) < \
            _tput(sweeps, "cpu", "uint64", 1, 1)
        # 64 GPU threads: no decisive GPU advantage.
        assert _tput(sweeps, "gpu", "uint64", 1 << 20, 64) < \
            _tput(sweeps, "cpu", "uint64", 1 << 20, 24)

    def test_1m_highest_and_scales(self, sweeps):
        t_small = _tput(sweeps, "gpu", "uint64", 1 << 20, 640)
        t_big = _tput(sweeps, "gpu", "uint64", 1 << 20, 6400)
        assert t_big > 5 * t_small
        at_max = {s: _tput(sweeps, "gpu", "uint64", s, 14592) for s in SIZES}
        assert max(at_max, key=at_max.get) == 1 << 20

    def test_one_element_flat(self, sweeps):
        values = {
            _tput(sweeps, "gpu", "uint64", 1, t)
            for t in (640, 3328, 14592)
        }
        assert len(values) == 1


def test_histogram_conservation_invariant(benchmark):
    hist = benchmark.pedantic(
        histogram.run_histogram_kernel,
        kwargs=dict(elements=1 << 10, updates=200_000, workers=24),
        rounds=1,
        iterations=1,
    )
    assert hist.sum() == 200_000
