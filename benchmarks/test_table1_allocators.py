"""Table 1 — memory allocators on MI300A.

Regenerates the allocator capability matrix (GPU access, CPU access,
physical allocation timing) by *probing the live allocators*, not just
printing the static table: each cell is verified against simulator
behaviour in both XNACK modes.
"""

import pytest

from conftest import print_table
from repro.core.allocators import allocator_table
from repro.core.faults import GPUMemoryAccessError
from repro.hw.config import MiB
from repro.runtime.apu import make_apu


def probe_matrix():
    """Derive Table 1 empirically from the simulator."""
    rows = []
    for xnack in (False, True):
        apu = make_apu(2, xnack=xnack)

        def probe(allocation, label):
            gpu_ok = True
            try:
                apu.faults.touch_range(allocation.vma, 0, 1, "gpu")
            except GPUMemoryAccessError:
                gpu_ok = False
            physical = (
                "on-demand" if allocation.vma.resident_bytes() == 0 or
                allocation.on_demand else "up-front"
            )
            rows.append((label, xnack, gpu_ok, True, physical))

        probe(apu.memory.malloc(1 * MiB), "malloc")
        registered = apu.memory.host_register(apu.memory.malloc(1 * MiB))
        probe(registered, "malloc + hipHostRegister")
        probe(apu.memory.hip_malloc(1 * MiB), "hipMalloc")
        probe(apu.memory.hip_host_malloc(1 * MiB), "hipHostMalloc")
        probe(apu.memory.hip_malloc_managed(1 * MiB), "hipMallocManaged")
    return rows


def test_table1_capability_matrix(benchmark):
    rows = benchmark.pedantic(probe_matrix, rounds=1, iterations=1)
    print_table(
        "Table 1: memory allocators on MI300A (probed)",
        ["allocator", "xnack", "gpu_access", "cpu_access", "physical"],
        rows,
    )
    by_key = {(r[0], r[1]): r for r in rows}

    # malloc: GPU access only with XNACK; always on-demand.
    assert not by_key[("malloc", False)][2]
    assert by_key[("malloc", True)][2]
    assert by_key[("malloc", False)][4] == "on-demand"

    # The up-front allocators are GPU-accessible in both modes.
    for name in ("malloc + hipHostRegister", "hipMalloc", "hipHostMalloc"):
        for xnack in (False, True):
            assert by_key[(name, xnack)][2]
            assert by_key[(name, xnack)][4] == "up-front"

    # hipMallocManaged flips with XNACK.
    assert by_key[("hipMallocManaged", False)][4] == "up-front"
    assert by_key[("hipMallocManaged", True)][4] == "on-demand"


def test_table1_static_matches_probed():
    """The documented table agrees with the probed behaviour."""
    for xnack in (False, True):
        static = {r["allocator"]: r for r in allocator_table(xnack)}
        probed = {r[0]: r for r in probe_matrix() if r[1] == xnack}
        for name, row in static.items():
            assert probed[name][2] == row["gpu_access"], (name, xnack)
            assert probed[name][4] == row["physical_allocation"], (name, xnack)
