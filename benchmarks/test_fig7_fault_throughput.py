"""Fig. 7 — page-fault throughput in four scenarios.

Regenerates the throughput-vs-page-count curves (GPU Major, GPU Minor,
1CPU, 12CPU) via the ``fig7`` registry experiment, cross-checked
against the live simulator at a plateau point, and asserts the paper's
plateaus, saturation positions, and the 2.2x CPU pre-faulting speedup.
"""

import pytest

from conftest import experiment_rows, fmt_rate, print_table
from repro.bench import pagefault
from repro.exp.experiments import FIG7_PAGE_COUNTS
from repro.hw.config import default_config
from repro.perf.faultmodel import prefault_speedup

PAGE_COUNTS = list(FIG7_PAGE_COUNTS)


@pytest.fixture(scope="module")
def curves(experiment):
    out = {}
    for r in experiment("fig7"):
        out.setdefault(r["scenario"], {})[r["pages"]] = r["pages_per_s"]
    return out


def test_fig7_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_rows("fig7", fresh=True), rounds=1, iterations=1
    )
    print_table(
        "Fig. 7: page-fault throughput",
        ["scenario", "pages", "throughput"],
        [(r["scenario"], f"{r['pages']:,}", fmt_rate(r["pages_per_s"], "pages/s"))
         for r in rows],
    )
    assert len(rows) == 4 * len(PAGE_COUNTS)


class TestPlateaus:
    def test_gpu_major_1_1m_at_10k(self, curves):
        assert curves["gpu_major"][10_000] == pytest.approx(1.1e6, rel=0.1)
        assert curves["gpu_major"][10_000_000] == pytest.approx(1.1e6, rel=0.05)

    def test_gpu_minor_9m_at_10m(self, curves):
        assert curves["gpu_minor"][10_000_000] == pytest.approx(9.0e6, rel=0.05)

    def test_cpu_872k_at_1k(self, curves):
        assert curves["cpu"][1_000] == pytest.approx(872e3, rel=0.15)
        assert curves["cpu"][100_000] == pytest.approx(872e3, rel=0.02)

    def test_cpu12_3_7m_at_10k(self, curves):
        assert curves["cpu12"][10_000] == pytest.approx(3.7e6, rel=0.05)


class TestShapes:
    def test_all_curves_ramp_then_plateau(self, curves):
        for scenario, curve in curves.items():
            series = [curve[n] for n in PAGE_COUNTS]
            assert series == sorted(series), scenario
            assert series[0] < 0.2 * series[-1], scenario

    def test_gpu_minor_keeps_climbing_to_10m(self, curves):
        assert curves["gpu_minor"][10_000_000] > 1.05 * curves["gpu_minor"][1_000_000]

    def test_minor_dominates_major_at_scale(self, curves):
        for n in (100_000, 1_000_000, 10_000_000):
            assert curves["gpu_minor"][n] > 3 * curves["gpu_major"][n]

    def test_cpu12_vs_cpu1_scaling(self, curves):
        ratio = curves["cpu12"][100_000] / curves["cpu"][100_000]
        assert ratio == pytest.approx(4.24, rel=0.05)


def test_prefaulting_strategy_speedup(benchmark):
    """12CPU pre-fault + GPU minor vs GPU major: ~2.2x at 10 M pages."""
    speedup = benchmark.pedantic(
        prefault_speedup, args=(default_config(), 10_000_000),
        rounds=1, iterations=1,
    )
    assert 1.8 <= speedup <= 2.8


def test_live_simulator_agrees_at_plateau(benchmark):
    def measure():
        return {
            scenario: pagefault.measured_throughput(scenario, 50_000)
            for scenario in ("cpu", "cpu12", "gpu_major", "gpu_minor")
        }

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Fig. 7 cross-check: live simulator at 50 K pages",
        ["scenario", "throughput"],
        [(k, fmt_rate(v, "pages/s")) for k, v in measured.items()],
    )
    assert measured["cpu"] == pytest.approx(872e3, rel=0.2)
    assert measured["gpu_major"] == pytest.approx(1.1e6, rel=0.2)
    assert measured["gpu_minor"] > measured["gpu_major"]
    assert measured["cpu12"] > 2 * measured["cpu"]
