"""Fig. 3 — maximum STREAM TRIAD bandwidth per allocator, GPU and CPU.

Regenerates the two bar charts via the ``fig3`` registry experiment:
GPU bandwidth (256 MiB arrays) and CPU bandwidth (610 MiB arrays,
thread sweep with best-of selection), for each allocator and
first-touch device.  Findings asserted:

* GPU: hipMalloc 3.5-3.6 TB/s, pinned allocators 2.1-2.2 TB/s,
  on-demand 1.8-1.9 TB/s, __managed__ 103 GB/s; independent of who
  first-touches the data.
* CPU: case A 208 GB/s (HIP allocators, or malloc after GPU init) at 24
  threads vs case B ~181 GB/s at 9 threads (malloc, managed+XNACK).
* CPU uses ~3% of the theoretical peak, the GPU ~67%.
"""

import pytest

from conftest import experiment_rows, fmt_rate, print_table
from repro.exp import get_spec

GPU_ALLOCATORS = [
    "hipMalloc",
    "hipHostMalloc",
    "malloc+register",
    "hipMallocManaged(xnack=0)",
    "hipMallocManaged(xnack=1)",
    "malloc",
    "__managed__",
]

CPU_ALLOCATORS = [
    "hipMalloc",
    "hipHostMalloc",
    "malloc",
    "hipMallocManaged(xnack=1)",
]


@pytest.fixture(scope="module")
def results(experiment):
    return experiment("fig3")


def test_fig3_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_rows("fig3", fresh=True), rounds=1, iterations=1
    )
    print_table(
        "Fig. 3 (top): GPU TRIAD bandwidth",
        ["allocator", "init", "bandwidth"],
        [(r["allocator"], r["init_device"],
          fmt_rate(r["bandwidth_bytes_per_s"], "B/s"))
         for r in rows if r["device"] == "gpu"],
    )
    print_table(
        "Fig. 3 (bottom): CPU TRIAD bandwidth (best over threads)",
        ["allocator", "init", "bandwidth", "best_threads"],
        [(r["allocator"], r["init_device"],
          fmt_rate(r["bandwidth_bytes_per_s"], "B/s"), r["best_threads"])
         for r in rows if r["device"] == "cpu"],
    )
    assert len(rows) == get_spec("fig3").point_count()


def _pick(results, device, allocator, init="cpu"):
    for r in results:
        if (r["device"], r["allocator"], r["init_device"]) == (
            device, allocator, init,
        ):
            return r
    raise KeyError((device, allocator, init))


def _gpu(results, allocator, init="cpu"):
    return _pick(results, "gpu", allocator, init)


def _cpu(results, allocator, init="cpu"):
    return _pick(results, "cpu", allocator, init)


class TestGPUTiers:
    def test_hipmalloc_peak(self, results):
        bw = _gpu(results, "hipMalloc")["bandwidth_bytes_per_s"]
        assert 3.5e12 <= bw <= 3.6e12

    def test_pinned_tier(self, results):
        for a in ("hipHostMalloc", "malloc+register", "hipMallocManaged(xnack=0)"):
            bw = _gpu(results, a)["bandwidth_bytes_per_s"]
            assert 2.1e12 <= bw <= 2.2e12, a

    def test_on_demand_tier(self, results):
        for a in ("malloc", "hipMallocManaged(xnack=1)"):
            bw = _gpu(results, a)["bandwidth_bytes_per_s"]
            assert 1.8e12 <= bw <= 1.9e12, a

    def test_managed_static_tier(self, results):
        bw = _gpu(results, "__managed__")["bandwidth_bytes_per_s"]
        assert bw == pytest.approx(103e9, rel=0.05)

    def test_init_device_insensitive(self, results):
        for a in ("hipMalloc", "malloc", "hipHostMalloc"):
            cpu_init = _gpu(results, a, "cpu")["bandwidth_bytes_per_s"]
            gpu_init = _gpu(results, a, "gpu")["bandwidth_bytes_per_s"]
            assert gpu_init == pytest.approx(cpu_init, rel=0.05), a

    def test_hipmalloc_advantage_1_6_to_2x(self, results):
        hip = _gpu(results, "hipMalloc")["bandwidth_bytes_per_s"]
        for a in GPU_ALLOCATORS[1:-1]:
            ratio = hip / _gpu(results, a)["bandwidth_bytes_per_s"]
            assert 1.6 <= ratio <= 2.0, a


class TestCPUCases:
    def test_case_a_hip_allocators(self, results):
        for a in ("hipMalloc", "hipHostMalloc"):
            r = _cpu(results, a)
            assert r["bandwidth_bytes_per_s"] == pytest.approx(208e9, rel=0.02), a
            assert r["best_threads"] == 24

    def test_case_b_malloc(self, results):
        r = _cpu(results, "malloc")
        assert r["bandwidth_bytes_per_s"] == pytest.approx(181e9, rel=0.02)
        assert r["best_threads"] == 9

    def test_case_b_managed_xnack(self, results):
        r = _cpu(results, "hipMallocManaged(xnack=1)")
        assert r["bandwidth_bytes_per_s"] == pytest.approx(180e9, rel=0.03)

    def test_gpu_init_promotes_malloc_to_case_a(self, results):
        r = _cpu(results, "malloc", init="gpu")
        assert r["bandwidth_bytes_per_s"] == pytest.approx(208e9, rel=0.02)
        assert r["best_threads"] == 24


class TestUtilisation:
    def test_cpu_3_percent_gpu_67_percent(self, results):
        peak = 5.3e12
        cpu_frac = _cpu(results, "hipMalloc")["bandwidth_bytes_per_s"] / peak
        gpu_frac = _gpu(results, "hipMalloc")["bandwidth_bytes_per_s"] / peak
        assert 0.02 <= cpu_frac <= 0.06
        assert 0.6 <= gpu_frac <= 0.72
