"""Table 2 — overview of the experimental method.

Regenerates the methodology inventory: every benchmark, profiling tool,
and HPC workload of the paper, mapped to the module in this repository
that implements it.  The assertions verify the inventory is *live* —
each entry imports and exposes its expected entry points.
"""

import importlib

import pytest

from conftest import print_table

BENCHMARKS = [
    ("Memory latency", "multichase", "repro.bench.multichase", "full_sweep"),
    ("Memory bandwidth", "STREAM", "repro.bench.stream", "gpu_triad"),
    ("Legacy transfer", "hip-bandwidth", "repro.bench.hipbandwidth", "full_sweep"),
    ("Coherence overhead", "custom", "repro.bench.histogram", "hybrid_grid"),
    ("Allocation speed", "custom", "repro.bench.allocspeed", "full_cost_sweep"),
    ("Page fault overhead", "custom", "repro.bench.pagefault",
     "full_throughput_sweep"),
]

PROFILING = [
    ("Memory usage", "libnuma", "repro.profiling.memusage",
     "MemoryUsageProfiler"),
    ("GPU fragment size", "rocprofv3", "repro.profiling.rocprof", "RocProf"),
    ("CPU allocation size", "perf", "repro.profiling.perfstat", "PerfStat"),
]

WORKLOADS = [
    ("backprop", "repro.apps.backprop", "Backprop"),
    ("dwt2d", "repro.apps.dwt2d", "Dwt2d"),
    ("heartwall", "repro.apps.heartwall", "Heartwall"),
    ("hotspot", "repro.apps.hotspot", "Hotspot"),
    ("nn", "repro.apps.nn", "NearestNeighbor"),
    ("srad_v1", "repro.apps.srad", "SradV1"),
]


def build_inventory():
    rows = []
    for purpose, tool, module_name, attr in BENCHMARKS:
        module = importlib.import_module(module_name)
        assert hasattr(module, attr), (module_name, attr)
        rows.append(("benchmark", purpose, tool, module_name))
    for purpose, tool, module_name, attr in PROFILING:
        module = importlib.import_module(module_name)
        assert hasattr(module, attr), (module_name, attr)
        rows.append(("profiling", purpose, tool, module_name))
    for name, module_name, attr in WORKLOADS:
        module = importlib.import_module(module_name)
        assert hasattr(module, attr), (module_name, attr)
        rows.append(("workload", name, "Rodinia", module_name))
    return rows


def test_table2_inventory(benchmark):
    rows = benchmark.pedantic(build_inventory, rounds=1, iterations=1)
    print_table(
        "Table 2: experimental method inventory",
        ["kind", "purpose", "tool", "module"],
        rows,
    )
    assert len(rows) == len(BENCHMARKS) + len(PROFILING) + len(WORKLOADS)


def test_all_six_rodinia_workloads_present():
    from repro.apps import ALL_APPS

    assert len(ALL_APPS) == 6
    for name, _, attr in WORKLOADS:
        assert name in ALL_APPS


def test_workloads_runnable():
    from repro.apps import ALL_APPS

    for cls in ALL_APPS.values():
        app = cls()
        assert app.name
        assert "explicit" in app.variants
        assert app.default_params()
