"""Fig. 10 — total CPU page faults in the CPU STREAM benchmark.

Regenerates the perf-stat fault counts via the ``fig10`` registry
experiment: allocation + initialisation + 10 TRIAD iterations on
3 x 610 MiB arrays, for the paper's three configurations — baseline
(XNACK=0), XNACK=1, and GPU first-touch.

Paper anchors: malloc and hipMallocManaged(XNACK=1) take ~472 K faults
(one per page); hipMalloc/hipHostMalloc take 3.7-4.6 K when CPU
initialised and 8.0-8.9 K when GPU initialised — the allocation
granularity signature of Section 5.4.
"""

import pytest

from conftest import experiment_rows, print_table
from repro.exp.experiments import FIG10_CONFIGS
from repro.hw.config import MiB

ARRAY_BYTES = 610 * MiB
TOTAL_PAGES = 3 * (ARRAY_BYTES // 4096)


@pytest.fixture(scope="module")
def faults(experiment):
    return {r["config"]: r["page_faults"] for r in experiment("fig10")}


def test_fig10_table(benchmark):
    rows = benchmark.pedantic(
        lambda: experiment_rows("fig10", fresh=True), rounds=1, iterations=1
    )
    print_table(
        "Fig. 10: CPU page faults in CPU STREAM (3 x 610 MiB, 10 iters)",
        ["configuration", "page_faults"],
        [(r["config"], f"{r['page_faults']:,}") for r in rows],
    )
    assert len(rows) == len(FIG10_CONFIGS)


def test_on_demand_allocators_one_fault_per_page(faults):
    for label in ("malloc / baseline", "malloc / xnack", "managed / xnack"):
        assert faults[label] == TOTAL_PAGES, label  # ~468 K (paper: ~472 K)


def test_up_front_cpu_init_in_paper_band(faults):
    for label in ("hipMalloc / baseline", "hipHostMalloc / baseline"):
        assert 3_000 <= faults[label] <= 5_000, label  # paper: 3.7-4.6 K


def test_up_front_gpu_init_in_paper_band(faults):
    for label in ("hipMalloc / gpu-init", "hipHostMalloc / gpu-init"):
        assert 7_000 <= faults[label] <= 9_500, label  # paper: 8.0-8.9 K


def test_gpu_init_doubles_up_front_fault_count(faults):
    ratio = faults["hipMalloc / gpu-init"] / faults["hipMalloc / baseline"]
    assert 1.8 <= ratio <= 2.4


def test_two_orders_of_magnitude_gap(faults):
    """The paper's granularity conclusion: ~100x fewer faults with
    up-front allocation."""
    assert faults["malloc / baseline"] / faults["hipMalloc / baseline"] > 90


def test_malloc_gpu_init_reduces_cpu_faults(faults):
    """After GPU first touch, the CPU only takes mapping faults at the
    fault-around granularity instead of one allocation fault per page."""
    assert faults["malloc / gpu-init"] < faults["malloc / baseline"] / 20
