"""Shared fixtures for the per-table/figure benchmark harness.

Every module regenerates one table or figure of the paper through the
:mod:`repro.exp` registry — the same specs `repro run` and the report
collectors execute — then asserts the *shape* of the result: orderings,
ratios, plateau positions, against the paper's findings.  Absolute
agreement is recorded in EXPERIMENTS.md.

The engine run for each experiment happens once per session and is
shared between the timing test and the assertion fixtures:

    @pytest.fixture(scope="module")
    def samples(experiment):
        return experiment("fig2")        # list of dict rows

``experiment_rows(name, fresh=True)`` forces a fresh engine run (used
by the pytest-benchmark timing tests) and refreshes the memo, so each
sweep still executes exactly once per session.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import pytest

_RESULTS: Dict[Tuple[str, bool], object] = {}


def run_experiment(name: str, quick: bool = False):
    """One fresh, serial, uncached engine run of a registry experiment.

    Raises with the failed point's parameters and traceback if any grid
    point errors — benchmark modules never assert on partial tables.
    """
    from repro.exp import Engine

    result = Engine(workers=1, cache=None).run(name, quick=quick)
    if not result.ok:
        failure = result.failures[0]
        raise AssertionError(
            f"point {failure.point.describe()} failed:\n{failure.error}"
        )
    _RESULTS[(name, quick)] = result
    return result


def experiment_rows(
    name: str, quick: bool = False, fresh: bool = False
) -> List[dict]:
    """Dict rows for one registered experiment, memoized per session."""
    if fresh or (name, quick) not in _RESULTS:
        run_experiment(name, quick)
    return _RESULTS[(name, quick)].dicts()


@pytest.fixture(scope="session")
def experiment():
    """Shared engine fixture: ``experiment("fig7")`` -> list of dict rows."""
    return experiment_rows


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one regenerated paper table to stdout."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), 14) for h in header]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def fmt_bytes(n: int) -> str:
    """Human-readable byte count."""
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.0f} {unit}" if unit == "B" else f"{n / 1:.6g} {unit}"
        n /= 1024
    return f"{n} B"


def fmt_rate(value: float, unit: str) -> str:
    """Engineering-notation rate formatting."""
    for scale, prefix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if value >= scale:
            return f"{value / scale:.2f} {prefix}{unit}"
    return f"{value:.2f} {unit}"
