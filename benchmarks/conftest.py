"""Shared helpers for the per-table/figure benchmark harness.

Every module regenerates one table or figure of the paper: it runs the
corresponding workload on the simulator (timed by pytest-benchmark),
prints the same rows/series the paper reports, and asserts the *shape*
of the result — orderings, ratios, plateau positions — against the
paper's findings.  Absolute agreement is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one regenerated paper table to stdout."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), 14) for h in header]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def fmt_bytes(n: int) -> str:
    """Human-readable byte count."""
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.0f} {unit}" if unit == "B" else f"{n / 1:.6g} {unit}"
        n /= 1024
    return f"{n} B"


def fmt_rate(value: float, unit: str) -> str:
    """Engineering-notation rate formatting."""
    for scale, prefix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if value >= scale:
            return f"{value / scale:.2f} {prefix}{unit}"
    return f"{value:.2f} {unit}"
