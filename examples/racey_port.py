#!/usr/bin/env python3
"""racey_port: a deliberately broken unified-memory port, one bug per rule.

Each scenario below seeds exactly the kind of synchronisation or
lifetime bug that bites real MI300A ports — the GPU kernel is
asynchronous, unified memory makes wrong code *run*, and the result is
silently corrupt instead of crashing.  Running the hipsan sanitizer
(``repro.analyze``) over each traced run reports every one of them.

This file is intentionally buggy: it is excluded from the CI lint gate
and exists as the analyzer's regression fixture.

Run:  python examples/racey_port.py
"""

import numpy as np

from repro import BufferAccess, KernelSpec, make_runtime
from repro.analyze import analyze_runtime, render_text
from repro.core.faults import GPUMemoryAccessError
from repro.runtime.hip import HipError


def _spec(name, alloc, mode):
    return KernelSpec(name, [BufferAccess(alloc, mode)])


def unsync_d2h_read():
    """GPU writes a result; the host reads it without any synchronize."""
    hip = make_runtime(memory_gib=4, trace=True)
    out = hip.array(1 << 20, np.float32, "hipMalloc", name="out")
    hip.launchKernel(_spec("produce", out.allocation, "write"))
    # BUG: no hipDeviceSynchronize() — the kernel may still be running.
    hip.runCpuKernel(_spec("postprocess", out.allocation, "read"))
    return analyze_runtime(hip)


def cpu_gpu_race():
    """Host and GPU write the same unified buffer concurrently."""
    hip = make_runtime(memory_gib=4, xnack=True, trace=True)
    data = hip.array(1 << 20, np.float32, "hipMalloc", name="shared")
    hip.launchKernel(_spec("gpu_half", data.allocation, "write"))
    # BUG: the CPU half starts while the GPU half is still in flight.
    hip.runCpuKernel(_spec("cpu_half", data.allocation, "write"))
    hip.hipDeviceSynchronize()
    return analyze_runtime(hip)


def memcpy_race():
    """Host rewrites a pinned staging buffer mid-hipMemcpyAsync."""
    hip = make_runtime(memory_gib=4, trace=True)
    staging = hip.array(1 << 20, np.float32, "hipHostMalloc", name="staging")
    device = hip.array(1 << 20, np.float32, "hipMalloc", name="device")
    stream = hip.hipStreamCreate("copy")
    hip.hipMemcpyAsync(device, staging, stream=stream)
    # BUG: pinned source still being read by the SDMA engine.
    hip.runCpuKernel(_spec("refill", staging.allocation, "write"))
    hip.hipStreamSynchronize(stream)
    return analyze_runtime(hip)


def stream_race():
    """Two streams write one buffer with no event between them."""
    hip = make_runtime(memory_gib=4, trace=True)
    data = hip.array(1 << 20, np.float32, "hipMalloc", name="data")
    s1 = hip.hipStreamCreate("s1")
    s2 = hip.hipStreamCreate("s2")
    hip.launchKernel(_spec("phase1", data.allocation, "write"), s1)
    # BUG: no hipStreamWaitEvent ordering s2 after s1.
    hip.launchKernel(_spec("phase2", data.allocation, "write"), s2)
    hip.hipDeviceSynchronize()
    return analyze_runtime(hip)


def use_after_free():
    """hipFree under an in-flight kernel, then a launch on the dead buffer."""
    hip = make_runtime(memory_gib=4, xnack=True, trace=True)
    data = hip.array(1 << 20, np.float32, "hipMalloc", name="doomed")
    alloc = data.allocation
    hip.launchKernel(_spec("writer", alloc, "write"))
    # BUG: freed while the writer kernel may still be running.
    hip.hipFree(alloc)
    replacement = hip.array(1 << 20, np.float32, "hipMalloc", name="reuse")
    # BUG: stale handle — the kernel reads through the freed allocation.
    hip.launchKernel(_spec("stale_reader", alloc, "read"))
    hip.hipDeviceSynchronize()
    del replacement
    return analyze_runtime(hip)


def double_free():
    """The same allocation freed twice."""
    hip = make_runtime(memory_gib=4, trace=True)
    data = hip.hipMalloc(1 << 20, name="twice")
    hip.hipDeviceSynchronize()
    hip.hipFree(data)
    try:
        hip.hipFree(data)  # BUG: second free of the same handle.
    except HipError:
        pass  # the runtime refuses with hipErrorInvalidValue
    return analyze_runtime(hip)


def xnack_fatal():
    """GPU touches pageable memory with XNACK disabled."""
    hip = make_runtime(memory_gib=4, xnack=False, trace=True)
    data = hip.array(1 << 20, np.float32, "malloc", name="pageable")
    hip.apu.touch(data.allocation, "cpu")
    try:
        # BUG: pageable memory is GPU-visible only under HSA_XNACK=1.
        hip.launchKernel(_spec("toucher", data.allocation, "read"))
        hip.hipDeviceSynchronize()
    except GPUMemoryAccessError:
        pass  # on hardware: memory access fault, aborted queue
    return analyze_runtime(hip)


def fault_storm():
    """First GPU touch of a large managed range: a page-fault flood."""
    hip = make_runtime(memory_gib=4, xnack=True, trace=True)
    data = hip.array(16 << 20, np.uint8, "hipMallocManaged", name="managed")
    # Not a bug, but worth knowing: every page faults on first GPU touch
    # (Fig. 7's ~420k faults/s ceiling), so warm up or prefetch.
    hip.launchKernel(_spec("first_touch", data.allocation, "read"))
    hip.hipDeviceSynchronize()
    return analyze_runtime(hip)


SCENARIOS = (
    unsync_d2h_read,
    cpu_gpu_race,
    memcpy_race,
    stream_race,
    use_after_free,
    double_free,
    xnack_fatal,
    fault_storm,
)


def main() -> None:
    for scenario in SCENARIOS:
        print(f"--- {scenario.__name__} ---")
        print(render_text(scenario()))
        print()


if __name__ == "__main__":
    main()
