#!/usr/bin/env python3
"""Quickstart: a first tour of the simulated MI300A.

Builds an APU, allocates memory through the allocators of the paper's
Table 1, runs a GPU kernel on each, and prints what the paper's
instruments would show: achieved bandwidth, GPU TLB misses, CPU page
faults, and what the (mutually disagreeing) memory-usage interfaces
report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BufferAccess, KernelSpec, make_runtime
from repro.core.meminfo import snapshot
from repro.profiling import PerfStat, RocProf


def main() -> None:
    # One APU, 8 GiB pool for speed, XNACK on so malloc is GPU-accessible.
    hip = make_runtime(memory_gib=8, xnack=True)
    apu = hip.apu
    print(f"Simulated system: {apu.topology.describe()}")
    print(f"XNACK enabled: {apu.xnack}\n")

    size = 256 << 20  # one 256 MiB buffer per allocator
    allocators = ["hipMalloc", "hipHostMalloc", "malloc", "managed_static"]

    print(f"{'allocator':16s} {'bandwidth':>12s} {'TLB misses':>12s} "
          f"{'CPU faults':>12s} {'kernel ms':>10s}")
    for allocator in allocators:
        arr = hip.array(size // 4, np.float32, allocator)
        # CPU initialises the data (first touch happens here for malloc).
        hip.runCpuKernel(
            KernelSpec("init", [BufferAccess(arr.allocation, "write")]),
            threads=8,
        )

        rocprof, perf = RocProf(apu), PerfStat(apu)
        rocprof.start()
        perf.start()
        result = hip.launchKernel(
            KernelSpec("sweep", [BufferAccess(arr.allocation, "read", passes=10)])
        )
        hip.hipDeviceSynchronize()
        counters = rocprof.stop()
        faults = perf.stop()

        bandwidth = size * 10 / (result.memory_ns / 1e9)
        print(
            f"{allocator:16s} {bandwidth / 1e12:9.2f} TB/s "
            f"{counters.tlb_misses:>12,} {faults.page_faults:>12,} "
            f"{result.duration_ns / 1e6:>10.3f}"
        )

    print("\nWhat the memory-usage interfaces report now:")
    snap = snapshot(apu.memory, apu.physical)
    print(f"  /proc/meminfo used : {snap.meminfo_used >> 20:>6} MiB  (sees everything)")
    print(f"  rocm-smi used      : {snap.rocm_smi_used >> 20:>6} MiB  (hipMalloc only)")
    print(f"  VmRSS              : {snap.vm_rss >> 20:>6} MiB  (everything *except* hipMalloc)")
    print("\nSimulated wall time:", f"{apu.clock.now_s * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
