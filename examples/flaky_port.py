#!/usr/bin/env python3
"""flaky_port: a unified-memory port surviving injected hardware faults.

A small staged pipeline (host build, H2D copy, kernel, D2H copy) is run
three times on the simulated MI300A:

1. **clean** — no injection, establishing the reference checksum;
2. **recoverable campaign** — transient allocation failures, a stalled
   and a failed SDMA transfer, and correctable HBM ECC errors.  The
   hardened HIP runtime absorbs every fault (bounded retry-with-backoff,
   blit-path failover, ECC scrub latency) and the output checksum still
   matches the clean run;
3. **fatal campaign** — a non-retryable SDMA engine abort.  The run
   fails *cleanly*: a typed ``HipError`` whose code is also latched for
   ``hipGetLastError``, and teardown still returns every physical frame.

``tests/test_inject.py`` runs all three scenarios as a regression test;
run it by hand with:  python examples/flaky_port.py
"""

import numpy as np

from repro import BufferAccess, KernelSpec, make_runtime
from repro.inject import CallWindow, InjectionPlan, Injector, NthCall, Probability
from repro.runtime.hip import HipError, hipSuccess

#: Pipeline working-set size (elements of float32).
ELEMENTS = 1 << 20


def recoverable_plan(seed: int = 7) -> InjectionPlan:
    """Faults the hardened runtime must absorb without output changes."""
    return InjectionPlan(
        [
            Injector("physical.alloc", "transient", CallWindow(1, 3), times=2),
            Injector("sdma.transfer", "stall", NthCall(1),
                     params={"factor": 4.0}),
            Injector("sdma.transfer", "failure", NthCall(2)),
            Injector("hbm.ecc", "correctable", Probability(0.25), times=2),
        ],
        seed=seed,
        name="flaky-port-recoverable",
    )


def fatal_plan(seed: int = 7) -> InjectionPlan:
    """A non-retryable SDMA abort: the pipeline must fail typed."""
    return InjectionPlan(
        [Injector("sdma.transfer", "abort", NthCall(1))],
        seed=seed,
        name="flaky-port-fatal",
    )


def run_pipeline(inject=None, memory_gib: int = 4) -> dict:
    """One pipeline pass; returns a summary the caller can assert on."""
    hip = make_runtime(memory_gib=memory_gib, inject=inject)
    rng = np.random.default_rng(11)
    values = rng.random(ELEMENTS, dtype=np.float32)
    nbytes = ELEMENTS * 4

    error = None
    checksum = None
    try:
        host = hip.array(ELEMENTS, np.float32, "malloc", name="host_src")
        hip.apu.touch(host.allocation, "cpu")
        device = hip.hipMalloc(nbytes, name="device")
        result = hip.hipMalloc(nbytes, name="result")
        hip.hipMemcpy(device, host.allocation, nbytes)

        hip.launchKernel(KernelSpec(
            "scale",
            [
                BufferAccess(device, "read", size_bytes=nbytes),
                BufferAccess(result, "write", size_bytes=nbytes),
            ],
            compute_ns=ELEMENTS * 0.01,
        ))
        hip.hipDeviceSynchronize()

        host_out = hip.array(ELEMENTS, np.float32, "malloc", name="host_out")
        hip.apu.touch(host_out.allocation, "cpu")
        hip.hipMemcpy(host_out, result, nbytes)
        # The simulator models timing, not data — the "computation" runs
        # host-side, so a surviving pipeline reproduces this exactly.
        checksum = float(np.sum(values * 2.0))
        hip.hipFree(host)
        hip.hipFree(device)
        hip.hipFree(result)
        hip.hipFree(host_out)
    except HipError as failure:
        error = failure
    finally:
        # The fatal scenario bails mid-pipeline: release the stragglers.
        for allocation in list(hip.apu.memory.allocations):
            hip.hipFree(allocation)

    return {
        "checksum": checksum,
        "error": error,
        "last_error": hip.hipPeekAtLastError(),
        "free_frames": hip.apu.physical.free_frames,
        "total_frames": hip.apu.physical.total_frames,
        "elapsed_ns": hip.apu.clock.now_ns,
        "fired": inject.fired() if inject is not None else 0,
        "notes": list(inject.notes()) if inject is not None else [],
    }


def main() -> int:
    clean = run_pipeline()
    print(f"clean:       checksum={clean['checksum']:.3f} "
          f"elapsed={clean['elapsed_ns'] / 1e6:.2f} ms")

    flaky = run_pipeline(inject=recoverable_plan())
    recovered = [note["event"] for note in flaky["notes"]
                 if note["event"].startswith(("recover.", "degrade."))]
    print(f"recoverable: checksum={flaky['checksum']:.3f} "
          f"elapsed={flaky['elapsed_ns'] / 1e6:.2f} ms "
          f"faults={flaky['fired']} recoveries={len(recovered)}")
    for event in recovered:
        print(f"    {event}")
    assert flaky["checksum"] == clean["checksum"], "output diverged"
    assert flaky["last_error"] == hipSuccess

    fatal = run_pipeline(inject=fatal_plan())
    assert fatal["error"] is not None, "the abort should have surfaced"
    print(f"fatal:       {fatal['error'].code} "
          f"(last_error={fatal['last_error']})")
    assert fatal["free_frames"] == fatal["total_frames"], "leaked frames"

    print("all scenarios behaved; no frames leaked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
