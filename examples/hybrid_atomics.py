#!/usr/bin/env python3
"""Hybrid CPU-GPU atomics: partitioning a shared histogram workload.

Uses the Fig. 4/5 contention models to answer a design question the
paper's coherence study enables: given a histogram with a fixed total
update budget, how should work be split between CPU threads and GPU
threads — and when is co-running worth it at all?

Run:  python examples/hybrid_atomics.py
"""

from repro.bench.histogram import run_histogram_kernel
from repro.hw.config import default_config
from repro.perf.atomics import (
    cpu_atomic_throughput,
    gpu_atomic_throughput,
    hybrid_atomic_throughput,
)


def best_partition(elements: int, dtype: str = "uint64"):
    """Sweep CPU/GPU thread splits; return (cpu_t, gpu_t, combined)."""
    cfg = default_config()
    best = (0, 0, 0.0)
    for cpu_threads in (0, 1, 3, 6, 12, 24):
        for gpu_threads in (0, 64, 640, 2304, 6400, 14592):
            if cpu_threads == 0 and gpu_threads == 0:
                continue
            if cpu_threads == 0:
                combined = gpu_atomic_throughput(cfg, elements, gpu_threads, dtype)
            elif gpu_threads == 0:
                combined = cpu_atomic_throughput(cfg, elements, cpu_threads, dtype)
            else:
                h = hybrid_atomic_throughput(
                    cfg, elements, cpu_threads, gpu_threads, dtype
                )
                combined = h.cpu_updates_per_s + h.gpu_updates_per_s
            if combined > best[2]:
                best = (cpu_threads, gpu_threads, combined)
    return best


def main() -> None:
    print("Functional check: histogram conservation on 24 workers")
    hist = run_histogram_kernel(1 << 10, updates=1_000_000, workers=24)
    print(f"  sum(histogram) = {int(hist.sum()):,} == 1,000,000 updates\n")

    print(f"{'array':>6s} {'dtype':>7s} {'best split (cpu, gpu)':>24s} "
          f"{'combined':>14s} {'advice'}")
    for elements, label in ((1, "1"), (1 << 10, "1K"), (1 << 20, "1M"),
                            (1 << 30, "1G")):
        for dtype in ("uint64", "fp64"):
            cpu_t, gpu_t, combined = best_partition(elements, dtype)
            if gpu_t == 0:
                advice = "CPU only: serialisation kills the GPU here"
            elif cpu_t == 0:
                advice = "GPU only: CPU would be crushed by line bouncing"
            else:
                advice = "co-run: shared L2 residency benefits both"
            print(f"{label:>6s} {dtype:>7s} {f'({cpu_t}, {gpu_t})':>24s} "
                  f"{combined / 1e9:11.2f} G/s {advice}")

    print("\nKey takeaways (paper Section 4.4):")
    print(" * minimise collision probability: bigger arrays contend less")
    print(" * keep the dataset inside L2 (1M elements is the sweet spot)")
    print(" * FP64 on the CPU pays the CAS-loop penalty under contention")
    print(" * contention hurts the CPU far more than the GPU when co-running")


if __name__ == "__main__":
    main()
