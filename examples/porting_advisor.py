#!/usr/bin/env python3
"""Porting advisor: DrGPUM-style trace analysis for UPM ports.

Traces a small explicit-model pipeline on the simulator, then lets the
advisor find what the paper's porting strategies would fix: duplicated
host/device buffer pairs, copy-dominated GPU time, dead allocations and
fault-dominated kernels.

Run:  python examples/porting_advisor.py
"""

import numpy as np

from repro import BufferAccess, KernelSpec, make_runtime
from repro.profiling import MemoryTracer, PortingAdvisor


def main() -> None:
    hip = make_runtime(memory_gib=8, xnack=True)
    apu = hip.apu
    tracer = MemoryTracer()

    # --- an explicit-model mini-app, instrumented --------------------
    size = 128 << 20
    h_in = apu.memory.malloc(size, name="h_input")
    d_in = apu.memory.hip_malloc(size, name="d_input")
    d_out = apu.memory.hip_malloc(size, name="d_output")
    h_out = apu.memory.malloc(size, name="h_output")
    scratch = apu.memory.hip_malloc(16 << 20, name="d_scratch")  # oops
    for buf in (h_in, d_in, d_out, h_out, scratch):
        tracer.record_alloc(buf, apu.clock.now_ns)

    apu.touch(h_in, "cpu")
    for step in range(4):
        t0 = apu.clock.now_ns
        hip.hipMemcpy(d_in, h_in, size)
        tracer.record_copy("d_input", "h_input", size, t0,
                           apu.clock.now_ns - t0)

        result = hip.launchKernel(KernelSpec(
            f"transform_{step}",
            [BufferAccess(d_in, "read"), BufferAccess(d_out, "write")],
        ))
        hip.hipDeviceSynchronize()
        tracer.record_kernel(
            f"transform_{step}", ["d_input", "d_output"],
            result.start_ns, result.duration_ns, result.fault_ns,
        )

        t0 = apu.clock.now_ns
        hip.hipMemcpy(h_out, d_out, size)
        tracer.record_copy("h_output", "d_output", size, t0,
                           apu.clock.now_ns - t0)

    # --- the advisor's verdict ----------------------------------------
    advisor = PortingAdvisor(tracer)
    report = advisor.analyse()
    print(advisor.summarise(report))
    print()
    print(f"Unifying the {len(report.duplicated_pairs)} pairs would save "
          f"{report.potential_memory_saving_bytes >> 20} MiB of the "
          f"{tracer.live_bytes() >> 20} MiB footprint and eliminate "
          f"{report.copy_time_ns / 1e6:.1f} ms of transfers — "
          "exactly the Listing 1 -> Listing 2 transformation.")

    apu.memory.free(h_in)
    apu.memory.free(d_in)
    apu.memory.free(d_out)
    apu.memory.free(h_out)
    apu.memory.free(scratch)


if __name__ == "__main__":
    main()
