#!/usr/bin/env python3
"""Allocator tuning: choosing memory allocators for an HPC workload.

Sweeps the Table 1 allocators over three workload archetypes the paper's
characterization distinguishes:

* a bandwidth-bound GPU stencil (Fig. 3's regime),
* an allocation-heavy adaptive-mesh loop (Fig. 6's regime — frequent
  alloc/free of varying block sizes),
* a latency-sensitive CPU traversal near the Infinity Cache capacity
  (Fig. 2 / Section 5.4's regime),

and prints the recommendation the paper arrives at: hipMalloc for
up-front GPU data, malloc (with GPU first-touch if the GPU consumes it)
for dynamic host data.

Run:  python examples/allocator_tuning.py
"""

import numpy as np

from repro import BufferAccess, KernelSpec, make_runtime
from repro.core.allocators import free_cost_ns, hip_malloc_cost_ns, malloc_cost_ns
from repro.hw.config import MiB, default_config
from repro.perf.latency import cpu_chase_latency_ns

ALLOCATORS = ["hipMalloc", "hipHostMalloc", "hipMallocManaged", "malloc"]


def stencil_bandwidth(allocator: str) -> float:
    """GPU TRIAD-like stencil over 3 x 128 MiB buffers."""
    hip = make_runtime(memory_gib=8, xnack=True)
    buffers = [hip.array(32 << 20, np.float32, allocator) for _ in range(3)]
    for buf in buffers:
        hip.apu.touch(buf.allocation, "cpu")
    spec = KernelSpec(
        "stencil",
        [BufferAccess(b.allocation, "read" if i < 2 else "write", passes=10)
         for i, b in enumerate(buffers)],
    )
    result = hip.launchKernel(spec)
    hip.hipDeviceSynchronize()
    return 3 * (128 << 20) * 10 / (result.memory_ns / 1e9)


def amr_loop_cost(allocator: str) -> float:
    """Adaptive-mesh refinement pattern: alloc/free at every refinement."""
    cfg = default_config()
    total = 0.0
    for level in range(8):
        size = (1 << level) * MiB
        if allocator == "malloc":
            total += malloc_cost_ns(cfg, size)
            total += 10.0  # free below threshold
        else:
            total += hip_malloc_cost_ns(cfg, size)
            total += hip_malloc_cost_ns(cfg, size) * 0.6  # hipFree estimate
    return total / 1e3  # us


def traversal_latency(allocator: str) -> float:
    """CPU pointer chase over a 384 MiB graph (IC-capacity regime)."""
    hip = make_runtime(memory_gib=16, xnack=True)
    buf = hip.array(96 << 20, np.float32, allocator)
    hip.apu.touch(buf.allocation, "cpu")
    return cpu_chase_latency_ns(
        hip.apu.config,
        384 << 20,
        ic=hip.apu.infinity_cache,
        frames=buf.allocation.vma.resident_frames(),
    )


def main() -> None:
    print("Workload 1: bandwidth-bound GPU stencil (higher is better)")
    results = {a: stencil_bandwidth(a) for a in ALLOCATORS}
    for a, bw in sorted(results.items(), key=lambda kv: -kv[1]):
        print(f"  {a:18s} {bw / 1e12:6.2f} TB/s")
    best = max(results, key=results.get)
    print(f"  -> {best} wins: large fragments keep the GPU TLB ahead\n")

    print("Workload 2: AMR-style allocation churn (lower is better)")
    costs = {a: amr_loop_cost(a) for a in ("malloc", "hipMalloc")}
    for a, us in sorted(costs.items(), key=lambda kv: kv[1]):
        print(f"  {a:18s} {us:10.1f} us per refinement cycle")
    print("  -> malloc wins by orders of magnitude; pay page faults at\n"
          "     first touch instead (or pre-fault from 12 CPU cores)\n")

    print("Workload 3: CPU latency-bound traversal, 384 MiB working set")
    lats = {a: traversal_latency(a) for a in ("malloc", "hipMalloc")}
    for a, ns in sorted(lats.items(), key=lambda kv: kv[1]):
        print(f"  {a:18s} {ns:7.1f} ns/access")
    print("  -> hipMalloc's balanced channel mapping keeps the Infinity\n"
          "     Cache effective; malloc pages thrash the hot slices")


if __name__ == "__main__":
    main()
