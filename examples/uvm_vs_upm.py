#!/usr/bin/env python3
"""UPM vs UVM: what hardware unification buys.

Runs the same alternating CPU/GPU pipeline under three memory models —
the explicit model on a discrete GPU, software unified memory (UVM) on
the same discrete GPU, and the unified model on the simulated MI300A's
unified physical memory — then shows the one thing UVM still does that
UPM cannot: oversubscribe device memory.

Run:  python examples/uvm_vs_upm.py
"""

from repro.core.physical import OutOfMemoryError
from repro.hw.config import GiB, MiB
from repro.runtime import make_apu
from repro.uvm import UVMConfig, UVMSystem, three_way_comparison


def main() -> None:
    print("Alternating CPU update -> GPU kernel, 1 GiB working set, x10\n")
    results = three_way_comparison(working_set_bytes=1 * GiB, iterations=10)
    baseline = results["explicit/discrete"]
    print(f"{'model':26s} {'time':>10s} {'vs explicit':>12s} {'data moved':>12s}")
    for name, r in results.items():
        print(
            f"{name:26s} {r.time_ms:8.1f}ms {r.relative_to(baseline):10.2f}x "
            f"{r.moved_bytes >> 20:>9} MiB"
        )

    print("\nThe paper's story in three lines:")
    uvm_rel = results["uvm/discrete"].relative_to(baseline)
    upm_rel = results["upm/MI300A"].relative_to(baseline)
    print(f" * UVM pays {uvm_rel:.1f}x for the unified model's convenience")
    print(f" * UPM delivers the same model at {upm_rel:.2f}x — faster than")
    print("   explicit management, with zero bytes moved\n")

    print("What UPM gives up (Section 2.1): oversubscription")
    uvm = UVMSystem(UVMConfig(device_memory_bytes=1 * GiB))
    big = uvm.malloc_managed(2 * GiB, "oversubscribed")
    uvm.run_gpu_kernel({big: 2 * GiB})
    print(f" * UVM runs a 2 GiB kernel on a 1 GiB GPU "
          f"(evicted {uvm.counters.evicted_bytes >> 20} MiB along the way)")

    apu = make_apu(1, xnack=True)  # a 1 GiB APU
    try:
        buf = apu.memory.malloc(2 * GiB)
        apu.touch(buf, "gpu")
        print(" * UPM somehow ran it too?!")
    except OutOfMemoryError:
        print(" * UPM raises OutOfMemory: one physical pool, no host to"
              " spill to")
        apu.memory.free(buf)


if __name__ == "__main__":
    main()
