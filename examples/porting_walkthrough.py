#!/usr/bin/env python3
"""Porting walkthrough: explicit model -> unified memory model.

Takes one small pipeline — CPU producer, GPU consumer, partial transfers
— and ports it step by step using the paper's Section 3.3 strategies,
measuring every step on the simulator:

  step 0: the legacy explicit version (separate buffers + hipMemcpy)
  step 1: naive merge (single unified buffer, copies removed)
  step 2: pitfall — sizing the dataset from hipMemGetInfo
  step 3: double buffering for concurrent CPU/GPU access

Run:  python examples/porting_walkthrough.py
"""

import numpy as np

from repro import BufferAccess, KernelSpec, make_runtime
from repro.porting import (
    ChunkSchedule,
    DoubleBuffer,
    event_synchronised_swap,
    naive_free_memory,
    reliable_free_memory,
)

CHUNK = 16 << 20
TOTAL = 128 << 20
ITERATIONS = 8


def explicit_version(hip):
    """Listing 1: separate host/device buffers, per-chunk hipMemcpy."""
    apu = hip.apu
    h_data = hip.array(TOTAL // 4, np.float32, "malloc", name="h_data")
    d_data = hip.array(TOTAL // 4, np.float32, "hipMalloc", name="d_data")
    start = apu.clock.now_ns
    for _ in range(ITERATIONS):
        for offset, size in ChunkSchedule(TOTAL, CHUNK).chunks():
            # cpu_function(h_data + i, chunk)
            hip.runCpuKernel(
                KernelSpec("produce", [BufferAccess(
                    h_data.allocation, "write", offset_bytes=offset,
                    size_bytes=size)]),
                threads=8,
            )
            # copy_to_gpu(d_data + i, h_data + i, chunk)
            hip.hipMemcpy(d_data, h_data, size, dst_offset=offset,
                          src_offset=offset)
            # gpu_kernel<<<...>>>(d_data + i, chunk)
            hip.launchKernel(
                KernelSpec("consume", [BufferAccess(
                    d_data.allocation, "read", offset_bytes=offset,
                    size_bytes=size)])
            )
        hip.hipDeviceSynchronize()
    elapsed = (apu.clock.now_ns - start) / 1e6
    hip.hipFree(h_data)
    hip.hipFree(d_data)
    return elapsed


def unified_version(hip):
    """Listing 2: one buffer, transfers merged away."""
    apu = hip.apu
    data = hip.array(TOTAL // 4, np.float32, "hipMalloc", name="unified")
    start = apu.clock.now_ns
    for _ in range(ITERATIONS):
        for offset, size in ChunkSchedule(TOTAL, CHUNK).chunks():
            hip.runCpuKernel(
                KernelSpec("produce", [BufferAccess(
                    data.allocation, "write", offset_bytes=offset,
                    size_bytes=size)]),
                threads=8,
            )
            hip.launchKernel(
                KernelSpec("consume", [BufferAccess(
                    data.allocation, "read", offset_bytes=offset,
                    size_bytes=size)])
            )
        hip.hipDeviceSynchronize()
    elapsed = (apu.clock.now_ns - start) / 1e6
    hip.hipFree(data)
    return elapsed


def double_buffered_version(hip):
    """Concurrent CPU/GPU access: swap two unified buffers per iteration."""
    apu = hip.apu
    front = hip.array(TOTAL // 4, np.float32, "hipMalloc", name="front")
    back = hip.array(TOTAL // 4, np.float32, "hipMalloc", name="back")
    buffers = DoubleBuffer(front, back)
    stream = hip.hipStreamCreate("compute")
    # The event recorded after the kernel that last read each buffer;
    # the producer waits on it before overwriting that buffer again.
    guards = {}
    start = apu.clock.now_ns
    for _ in range(ITERATIONS):
        # CPU fills the back buffer while the GPU consumes the front one.
        guard = guards.get(id(buffers.back.allocation))
        if guard is not None:
            hip.hipEventSynchronize(guard)
        hip.runCpuKernel(
            KernelSpec("produce", [BufferAccess(buffers.back.allocation,
                                                "write")]),
            threads=8,
        )
        event = event_synchronised_swap(hip, buffers, stream)
        hip.hipStreamWaitEvent(stream, event)
        hip.launchKernel(
            KernelSpec("consume", [BufferAccess(buffers.front.allocation,
                                                "read")]),
            stream,
        )
        done = hip.hipEventCreate("consumed")
        hip.hipEventRecord(done, stream)
        guards[id(buffers.front.allocation)] = done
    hip.hipStreamSynchronize(stream)
    elapsed = (apu.clock.now_ns - start) / 1e6
    hip.hipFree(front)
    hip.hipFree(back)
    return elapsed


def main() -> None:
    print("Step 0: explicit model (Listing 1)")
    hip = make_runtime(memory_gib=8)
    t_explicit = explicit_version(hip)
    print(f"  {t_explicit:8.2f} ms  — per-chunk hipMemcpy through SDMA\n")

    print("Step 1: merged unified buffer (Listing 2)")
    hip = make_runtime(memory_gib=8, xnack=True)
    t_unified = unified_version(hip)
    print(f"  {t_unified:8.2f} ms  — {t_explicit / t_unified:.2f}x faster: "
          "the transfers were pure overhead\n")

    print("Step 2: the memory-usage pitfall")
    hip = make_runtime(memory_gib=8, xnack=True)
    hip.hipHostMalloc(1 << 30)  # 1 GiB of pinned memory...
    naive = naive_free_memory(hip)
    reliable = reliable_free_memory(hip.apu)
    print(f"  hipMemGetInfo free : {naive >> 20:>6} MiB  <- misses the pinned GiB!")
    print(f"  libnuma free       : {reliable >> 20:>6} MiB  <- the reliable counter\n")

    print("Step 3: double buffering for concurrent access")
    hip = make_runtime(memory_gib=8, xnack=True)
    t_db = double_buffered_version(hip)
    print(f"  {t_db:8.2f} ms  — CPU production overlaps GPU consumption")


if __name__ == "__main__":
    main()
