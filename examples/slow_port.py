#!/usr/bin/env python3
"""slow_port: a deliberately *slow* unified-memory port, one sin per rule.

The sibling of ``racey_port.py``: every scenario below is **correct**
— it computes the right answer and hipsan finds no race — but each one
carries exactly one of the UPM performance anti-patterns the paper
measures on MI300A.  The static advisor (``repro advise``) flags all
six without running anything:

====================== =========================================
scenario               advisor rule
====================== =========================================
redundant_copy         advise.redundant-copy   (§4.3 / Fig. 3)
first_touch_hazard     advise.first-touch      (Fig. 10)
fault_storm            advise.fault-storm      (Figs. 7-8)
tlb_thrash             advise.tlb-reach        (Fig. 9)
mixed_models           advise.mixed-alloc      (§3.4 / Table 1)
sync_in_loop           advise.sync-in-loop     (§3.3)
====================== =========================================

This file is the advisor's regression fixture, and runnable:

Run:  python examples/slow_port.py
"""

import numpy as np

from repro import BufferAccess, KernelSpec, make_runtime


def _spec(name, alloc, mode):
    return KernelSpec(name, [BufferAccess(alloc, mode)])


def redundant_copy():
    """Explicit staging copies between buffers that share one HBM3 pool."""
    hip = make_runtime(memory_gib=4)
    host = hip.array(1 << 18, np.float32, "malloc", name="h_data")
    host.np[:] = 1.0
    device = hip.array(1 << 18, np.float32, "hipMalloc", name="d_data")
    # SLOW: CPU and GPU address the same physical memory; both copies
    # below are pure SDMA overhead on MI300A.
    hip.hipMemcpy(device, host)
    hip.launchKernel(_spec("scale", device.allocation, "readwrite"))
    hip.hipDeviceSynchronize()
    hip.hipMemcpy(host, device)
    checksum = float(host.np.sum())
    hip.hipFree(host.allocation)
    hip.hipFree(device.allocation)
    return checksum


def first_touch_hazard():
    """CPU first-touches pages a GPU kernel then streams through."""
    hip = make_runtime(memory_gib=4, xnack=True)
    data = hip.array(1 << 18, np.float32, "malloc", name="grid")
    # SLOW: the CPU's first touch places every page via the CPU fault
    # path (Fig. 10); the kernel then faults them over one by one.
    data.np[:] = 0.5
    hip.launchKernel(_spec("stencil", data.allocation, "read"))
    hip.hipDeviceSynchronize()
    checksum = float(data.np[0])
    hip.hipFree(data.allocation)
    return checksum


def fault_storm():
    """First GPU touch of a large cold managed range under XNACK."""
    hip = make_runtime(memory_gib=4, xnack=True)
    data = hip.array(16 << 20, np.uint8, "hipMallocManaged", name="managed")
    # SLOW: no warm-up or prefetch on any path — the first GPU touch
    # replays a fault per page (Fig. 7's ~420k faults/s ceiling).
    hip.launchKernel(_spec("first_touch", data.allocation, "read"))
    hip.hipDeviceSynchronize()
    hip.hipFree(data.allocation)
    return 0.0


def tlb_thrash():
    """One allocation larger than the GPU L2 TLB's reach."""
    hip = make_runtime(memory_gib=4)
    # SLOW: 64 MiB > 512 entries x 64 KiB fragments = 32 MiB of reach
    # (Fig. 9); streaming it misses the L2 TLB continuously.
    big = hip.hipMalloc(64 << 20, name="huge")
    hip.launchKernel(_spec("stream_all", big, "read"))
    hip.hipDeviceSynchronize()
    hip.hipFree(big)
    return 0.0


def mixed_models(frames: int = 4):
    """Explicit and managed allocations reach one kernel argument."""
    hip = make_runtime(memory_gib=4, xnack=True)
    if frames % 2 == 0:
        allocator = "hipMalloc"
    else:
        allocator = "hipMallocManaged"
    # SLOW: the two models have different allocator and paging costs
    # (§3.4 / Table 1); pick one per buffer, on every path.
    data = hip.array(1 << 18, np.float32, allocator, name="ping")
    hip.launchKernel(_spec("consume", data.allocation, "read"))
    hip.hipDeviceSynchronize()
    hip.hipFree(data.allocation)
    return 0.0


def sync_in_loop(iterations: int = 4):
    """Device-wide barrier every iteration of a streamed pipeline."""
    hip = make_runtime(memory_gib=4)
    data = hip.array(1 << 20, np.float32, "hipMalloc", name="frames")
    stream = hip.hipStreamCreate("compute")
    for _ in range(iterations):
        hip.launchKernel(_spec("step", data.allocation, "readwrite"), stream)
        # SLOW: a device-wide barrier stalls every queue each iteration;
        # hipStreamSynchronize(stream) (or an event) is all that's needed.
        hip.hipDeviceSynchronize()
    hip.hipFree(data.allocation)
    return 0.0


SCENARIOS = (
    redundant_copy,
    first_touch_hazard,
    fault_storm,
    tlb_thrash,
    mixed_models,
    sync_in_loop,
)


def main() -> None:
    for scenario in SCENARIOS:
        print(f"--- {scenario.__name__} ---")
        print(f"result: {scenario()}")
        print()


if __name__ == "__main__":
    main()
