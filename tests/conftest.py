"""Shared fixtures: small simulated APUs sized for fast tests.

The down-scaled configs keep the MI300A's topology and policies but
shrink the HBM pool; the calibration note in
:class:`repro.hw.config.PolicyModel` means IC-balance-sensitive tests
should use the ``apu16`` (16 GiB) fixture.
"""

from __future__ import annotations

import pytest

from repro.hw import default_config, small_config
from repro.runtime import APU, HipRuntime, make_apu


@pytest.fixture
def config():
    """Full paper-calibrated MI300A config (no big state allocated)."""
    return default_config()


@pytest.fixture
def apu() -> APU:
    """A fresh 2 GiB APU with XNACK enabled (most permissive mode)."""
    return make_apu(2, xnack=True)


@pytest.fixture
def apu_noxnack() -> APU:
    """A fresh 2 GiB APU with XNACK disabled (the default mode)."""
    return make_apu(2, xnack=False)


@pytest.fixture
def apu16() -> APU:
    """A 16 GiB APU for experiments sensitive to free-list skew."""
    return make_apu(16, xnack=True)


@pytest.fixture
def hip(apu) -> HipRuntime:
    """HIP runtime over the 2 GiB XNACK-enabled APU."""
    return HipRuntime(apu)


@pytest.fixture
def hip_noxnack(apu_noxnack) -> HipRuntime:
    """HIP runtime over the XNACK-disabled APU."""
    return HipRuntime(apu_noxnack)
