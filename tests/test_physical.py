"""Unit tests for the physical frame allocator (repro.core.physical)."""

import numpy as np
import pytest

from repro.hw.config import PAGE_SIZE, small_config
from repro.hw.hbm import HBMSubsystem, channel_balance
from repro.core.physical import OutOfMemoryError, PhysicalMemory


@pytest.fixture
def phys():
    return PhysicalMemory(small_config(1 << 30))


class TestBookkeeping:
    def test_starts_all_free(self, phys):
        assert phys.free_frames == phys.total_frames
        assert phys.used_bytes == 0

    def test_alloc_reduces_free(self, phys):
        phys.alloc_chunks(100, 16)
        assert phys.free_frames == phys.total_frames - 100
        assert phys.used_bytes == 100 * PAGE_SIZE

    def test_free_restores(self, phys):
        frames = phys.alloc_chunks(64, 16)
        phys.free(frames)
        assert phys.free_frames == phys.total_frames

    def test_double_free_rejected(self, phys):
        frames = phys.alloc_chunks(16, 16)
        phys.free(frames)
        with pytest.raises(ValueError):
            phys.free(frames)

    def test_free_out_of_range_rejected(self, phys):
        with pytest.raises(ValueError):
            phys.free(np.array([phys.total_frames + 1]))

    def test_free_empty_is_noop(self, phys):
        phys.free(np.array([], dtype=np.int64))
        assert phys.free_frames == phys.total_frames


class TestContiguousAllocation:
    def test_chunks_are_contiguous_and_aligned(self, phys):
        frames = phys.alloc_chunks(64, 16)
        for i in range(0, 64, 16):
            chunk = frames[i : i + 16]
            assert (np.diff(chunk) == 1).all()
            assert chunk[0] % 16 == 0

    def test_partial_tail_chunk(self, phys):
        frames = phys.alloc_chunks(20, 16)
        assert len(frames) == 20
        assert len(np.unique(frames)) == 20

    def test_separate_chunks_do_not_merge(self, phys):
        frames = phys.alloc_chunks(64, 16)
        # Gap between consecutive chunks (steady-state fragmentation model).
        for i in range(16, 64, 16):
            assert frames[i] != frames[i - 1] + 1

    def test_chunk_pages_must_be_power_of_two(self, phys):
        with pytest.raises(ValueError):
            phys.alloc_chunks(10, 3)

    def test_oversized_request_rejected(self, phys):
        with pytest.raises(OutOfMemoryError):
            phys.alloc_chunks(phys.total_frames + 1, 16)

    def test_chunked_allocation_covers_all_channels(self, phys):
        hbm = HBMSubsystem(small_config(1 << 30).hbm)
        frames = phys.alloc_chunks(128 * 32, 16)
        hist = hbm.channel_histogram(frames)
        assert channel_balance(hist) > 0.9

    def test_zero_pages_rejected(self, phys):
        with pytest.raises(ValueError):
            phys.alloc_chunks(0, 16)


class TestScatteredAllocation:
    def test_unique_free_frames(self, phys):
        frames = phys.alloc_scattered(5000)
        assert len(np.unique(frames)) == 5000
        assert not phys._free[frames].any()

    def test_low_contiguity(self, phys):
        frames = np.sort(phys.alloc_scattered(4096))
        adjacent = (np.diff(frames) == 1).sum()
        # Mostly pairs at best: never long runs.
        runs = np.split(frames, np.flatnonzero(np.diff(frames) != 1) + 1)
        assert max(len(r) for r in runs) <= 4

    def test_channel_bias(self):
        cfg = small_config(8 << 30)
        phys = PhysicalMemory(cfg)
        hbm = HBMSubsystem(cfg.hbm)
        frames = phys.alloc_scattered(50_000)
        hist = hbm.channel_histogram(frames)
        # Scattered draws follow the skewed free list: clearly unbalanced.
        assert channel_balance(hist) < 0.5

    def test_pair_fraction_controls_adjacency(self):
        def paired_fraction(pf):
            phys = PhysicalMemory(small_config(1 << 30), seed=7)
            frames = np.sort(phys.alloc_scattered(2048, pair_fraction=pf))
            runs = np.split(frames, np.flatnonzero(np.diff(frames) != 1) + 1)
            return sum(len(r) for r in runs if len(r) > 1) / 2048

        # Hot channels make some accidental adjacency unavoidable, but
        # the buddy-pair fraction must clearly dominate it.
        assert paired_fraction(0.0) < paired_fraction(0.88) - 0.2

    def test_deterministic_given_seed(self):
        cfg = small_config(1 << 30)
        a = PhysicalMemory(cfg, seed=42).alloc_scattered(1000)
        b = PhysicalMemory(cfg, seed=42).alloc_scattered(1000)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        cfg = small_config(1 << 30)
        a = PhysicalMemory(cfg, seed=1).alloc_scattered(1000)
        b = PhysicalMemory(cfg, seed=2).alloc_scattered(1000)
        assert not np.array_equal(a, b)

    def test_nearly_full_pool_falls_back_to_sweep(self):
        phys = PhysicalMemory(small_config(1 << 30))
        bulk = phys.alloc_chunks((phys.total_frames // 16 - 2) * 16, 16)
        remaining = phys.free_frames
        frames = phys.alloc_scattered(remaining)
        assert len(frames) == remaining
        assert phys.free_frames == 0

    def test_exhaustion_raises(self, phys):
        with pytest.raises(OutOfMemoryError):
            phys.alloc_scattered(phys.total_frames + 1)


class TestChannelWeights:
    def test_weights_normalised(self, phys):
        weights = phys.channel_weights()
        assert weights.sum() == pytest.approx(1.0)
        assert (weights > 0).all()

    def test_zero_skew_is_uniform(self):
        cfg = small_config(1 << 30)
        cfg = cfg.replace(
            policy=cfg.policy.__class__(free_list_channel_skew=0.0)
        )
        phys = PhysicalMemory(cfg)
        weights = phys.channel_weights()
        assert np.allclose(weights, weights[0])
