"""Tests for the partitioning subsystem (repro.partition).

Covers the mode compatibility matrix, logical-device enumeration, the
NPS4 frame mapping and domain-confined placement, the partition-aware
Infinity Cache view, the HIP device-management surface, and the
amd-smi-style repartitioning at node level.
"""

import numpy as np
import pytest

from repro.core.meminfo import hip_mem_get_info_device
from repro.hw.config import GiB, MiB, PAGE_SIZE, small_config
from repro.hw.hbm import HBMSubsystem
from repro.hw.node import MI300ANode
from repro.hw.topology import APUTopology
from repro.partition import (
    ComputePartition,
    InvalidPartitionError,
    MemoryPartition,
    PartitionConfig,
    PartitionPlacement,
    all_valid_modes,
    device_stream_bandwidth,
    enumerate_logical_devices,
    ic_reach_fraction,
    kernel_launch_factor,
    remote_access_latency_extra_ns,
)
from repro.perf.bandwidth import BufferTraits, gpu_stream_bandwidth
from repro.runtime.apu import make_apu
from repro.runtime.hip import HipError, HipRuntime, make_runtime

CPX_NPS4 = PartitionConfig(ComputePartition.CPX, MemoryPartition.NPS4)
CPX_NPS1 = PartitionConfig(ComputePartition.CPX, MemoryPartition.NPS1)
TPX_NPS1 = PartitionConfig(ComputePartition.TPX, MemoryPartition.NPS1)

HIPMALLOC_TRAITS = BufferTraits(
    on_demand=False, uncached=False,
    average_fragment_bytes=float(2 * MiB), channel_balance=1.0,
)


@pytest.fixture
def cpx_nps4_apu():
    return make_apu(2, xnack=True, partition=CPX_NPS4)


@pytest.fixture
def cpx_hip(cpx_nps4_apu):
    return HipRuntime(cpx_nps4_apu)


class TestModes:
    def test_device_counts(self):
        assert ComputePartition.SPX.device_count() == 1
        assert ComputePartition.TPX.device_count() == 3
        assert ComputePartition.CPX.device_count() == 6

    def test_xcds_per_device(self):
        assert ComputePartition.SPX.xcds_per_device() == 6
        assert ComputePartition.TPX.xcds_per_device() == 2
        assert ComputePartition.CPX.xcds_per_device() == 1

    def test_tpx_requires_divisible_xcds(self):
        with pytest.raises(InvalidPartitionError):
            ComputePartition.TPX.xcds_per_device(4)

    def test_numa_domains(self):
        assert MemoryPartition.NPS1.numa_domains == 1
        assert MemoryPartition.NPS4.numa_domains == 4

    @pytest.mark.parametrize(
        "compute", [ComputePartition.SPX, ComputePartition.TPX]
    )
    def test_nps4_requires_cpx(self, compute):
        with pytest.raises(InvalidPartitionError):
            PartitionConfig(compute, MemoryPartition.NPS4)

    def test_default_is_paper_testbed(self):
        mode = PartitionConfig()
        assert mode.compute is ComputePartition.SPX
        assert mode.memory is MemoryPartition.NPS1
        assert mode.describe() == "SPX/NPS1"

    def test_all_valid_modes_is_compatibility_matrix(self):
        labels = {m.describe() for m in all_valid_modes()}
        assert labels == {"SPX/NPS1", "TPX/NPS1", "CPX/NPS1", "CPX/NPS4"}

    def test_xcds_of_device_partitions_the_package(self):
        for mode in all_valid_modes():
            seen = []
            for dev in range(mode.device_count):
                seen.extend(mode.xcds_of_device(dev))
            assert seen == list(range(6))
        with pytest.raises(IndexError):
            TPX_NPS1.xcds_of_device(3)


class TestTopologyHelpers:
    def test_iod_of_xcd(self, config):
        topo = APUTopology(config)
        assert [topo.iod_of_xcd(x) for x in range(6)] == [0, 0, 1, 1, 2, 2]
        with pytest.raises(IndexError):
            topo.iod_of_xcd(6)

    def test_xcds_and_stacks_of_iod(self, config):
        topo = APUTopology(config)
        assert topo.xcds_of_iod(0) == [0, 1]
        assert topo.xcds_of_iod(2) == [4, 5]
        # hbm s -> iod s % 4: IOD i hosts stacks {i, i+4}.
        assert topo.stacks_of_iod(0) == [0, 4]
        assert topo.stacks_of_iod(3) == [3, 7]


class TestLogicalDevices:
    def test_spx_is_the_whole_package(self, config):
        (dev,) = enumerate_logical_devices(config, PartitionConfig())
        assert dev.compute_units == config.gpu_compute_units == 228
        assert dev.xcds == tuple(range(6))
        assert dev.hbm_stacks == tuple(range(8))
        assert dev.memory_capacity_bytes == config.hbm.capacity_bytes
        assert dev.ic_slice_count == 128
        assert dev.ic_reach_bytes == pytest.approx(
            config.infinity_cache.capacity_bytes
        )

    def test_cpx_divides_cus_exactly(self, config):
        devices = enumerate_logical_devices(config, CPX_NPS1)
        assert len(devices) == 6
        for dev in devices:
            assert dev.compute_units == 228 // 6 == 38
            assert dev.l2_slices == 1

    def test_cpx_nps1_ic_reach_is_one_sixth(self, config):
        devices = enumerate_logical_devices(config, CPX_NPS1)
        for dev in devices:
            # All 128 slices reachable, shared six ways: a fractional
            # 1/6 share of the 256 MiB (128/6 slices is not integral).
            assert dev.ic_slice_count == 128
            assert ic_reach_fraction(dev, config) == pytest.approx(1 / 6)

    def test_tpx_devices_sit_on_one_iod(self, config):
        devices = enumerate_logical_devices(config, TPX_NPS1)
        assert [d.iods for d in devices] == [(0,), (1,), (2,)]
        for dev in devices:
            assert dev.compute_units == 76

    def test_nps4_restricts_stacks_to_local_iod(self, config):
        devices = enumerate_logical_devices(config, CPX_NPS4)
        for dev in devices:
            domain = dev.iods[0]
            assert dev.numa_domain == domain
            assert dev.hbm_stacks == (domain, domain + 4)
            assert dev.memory_capacity_bytes == config.hbm.capacity_bytes // 4
            assert dev.ic_slice_count == 32
            # 64 MiB of local slices shared by the IOD's two XCDs.
            assert dev.ic_reach_bytes == pytest.approx(32 * MiB)
        assert [d.numa_domain for d in devices] == [0, 0, 1, 1, 2, 2]

    def test_device_name_mentions_mode(self, config):
        dev = enumerate_logical_devices(config, CPX_NPS4)[2]
        assert dev.name == "MI300A[CPX/NPS4] gpu2"


class TestNPS4FrameMapping:
    def test_nps1_default_unchanged(self):
        cfg = small_config(1 * GiB)
        assert HBMSubsystem(cfg.hbm).numa_domains == 1

    def test_invalid_domain_counts_rejected(self):
        cfg = small_config(1 * GiB)
        with pytest.raises(ValueError):
            HBMSubsystem(cfg.hbm, numa_domains=3)
        with pytest.raises(ValueError):
            HBMSubsystem(cfg.hbm, numa_domains=0)

    def test_domain_ranges_tile_the_pool(self):
        cfg = small_config(1 * GiB)
        hbm = HBMSubsystem(cfg.hbm, numa_domains=4)
        total = cfg.hbm.capacity_bytes // PAGE_SIZE
        edges = [hbm.domain_frame_range(d) for d in range(4)]
        assert edges[0][0] == 0 and edges[-1][1] == total
        for (_, hi), (lo, _) in zip(edges, edges[1:]):
            assert hi == lo

    def test_nps4_frames_stay_on_domain_stacks(self):
        cfg = small_config(1 * GiB)
        hbm = HBMSubsystem(cfg.hbm, numa_domains=4)
        for domain in range(4):
            lo, hi = hbm.domain_frame_range(domain)
            frames = np.arange(lo, min(lo + 4096, hi))
            channels = hbm.channels_of_frames(frames)
            stacks = channels // cfg.hbm.channels_per_stack
            assert set(np.unique(stacks)) == set(hbm.stacks_of_domain(domain))
            assert set(np.unique(channels)) <= set(hbm.channels_of_domain(domain))

    def test_nps1_mapping_matches_legacy_formula(self):
        cfg = small_config(1 * GiB)
        hbm = HBMSubsystem(cfg.hbm)
        frames = np.arange(0, 4096)
        stacks = frames % cfg.hbm.stacks
        lanes = (frames // cfg.hbm.stacks) % cfg.hbm.channels_per_stack
        expected = stacks * cfg.hbm.channels_per_stack + lanes
        assert (hbm.channels_of_frames(frames) == expected).all()

    def test_local_fraction(self):
        cfg = small_config(1 * GiB)
        hbm = HBMSubsystem(cfg.hbm, numa_domains=4)
        lo0, hi0 = hbm.domain_frame_range(0)
        lo1, _ = hbm.domain_frame_range(1)
        frames = np.array([lo0, lo0 + 1, lo1, lo1 + 1])
        assert hbm.local_fraction(frames, 0) == 0.5
        assert hbm.local_fraction(frames, 1) == 0.5
        assert hbm.local_fraction(frames, 2) == 0.0
        assert hbm.local_fraction(np.array([], dtype=np.int64), 0) == 1.0


class TestFrameRangeAllocation:
    def test_chunks_confined_to_range(self):
        from repro.core.physical import PhysicalMemory

        phys = PhysicalMemory(small_config(1 * GiB), seed=7)
        lo, hi = 65536, 131072
        frames = phys.alloc_chunks(4096, 16, frame_range=(lo, hi))
        assert frames.min() >= lo and frames.max() < hi

    def test_scattered_confined_to_range(self):
        from repro.core.physical import PhysicalMemory

        phys = PhysicalMemory(small_config(1 * GiB), seed=7)
        lo, hi = 131072, 196608
        frames = phys.alloc_scattered(4096, frame_range=(lo, hi))
        assert frames.min() >= lo and frames.max() < hi
        assert len(np.unique(frames)) == len(frames)

    def test_range_exhaustion_raises(self):
        from repro.core.physical import OutOfMemoryError, PhysicalMemory

        phys = PhysicalMemory(small_config(1 * GiB), seed=7)
        with pytest.raises(OutOfMemoryError):
            phys.alloc_chunks(1024, 16, frame_range=(0, 512))

    def test_bad_range_rejected(self):
        from repro.core.physical import PhysicalMemory

        phys = PhysicalMemory(small_config(1 * GiB), seed=7)
        with pytest.raises(ValueError):
            phys.alloc_chunks(16, 16, frame_range=(100, 100))
        with pytest.raises(ValueError):
            phys.alloc_scattered(16, frame_range=(-1, 100))


class TestPlacement:
    def test_nps1_frame_range_is_none(self, apu):
        assert apu.placement.frame_range(0) is None

    def test_domain_mismatch_rejected(self, apu):
        with pytest.raises(ValueError):
            PartitionPlacement(apu.config, CPX_NPS4, apu.physical, apu.hbm_map)

    def test_device_index_bounds(self, cpx_nps4_apu):
        with pytest.raises(IndexError):
            cpx_nps4_apu.placement.device(6)

    def test_local_allocations_fully_local(self, cpx_nps4_apu):
        placement = cpx_nps4_apu.placement
        for index in range(6):
            frames = placement.alloc_chunks(index, 2048, 16)
            assert placement.local_fraction(frames, index) == 1.0
            domain = placement.domain_of_device(index)
            lo, hi = cpx_nps4_apu.hbm_map.domain_frame_range(domain)
            assert frames.min() >= lo and frames.max() < hi

    def test_devices_on_same_iod_share_domain(self, cpx_nps4_apu):
        placement = cpx_nps4_apu.placement
        assert placement.domain_of_device(0) == placement.domain_of_device(1)
        assert placement.domain_of_device(0) != placement.domain_of_device(2)


class TestPartitionCostModel:
    def test_spx_equals_unpartitioned_model(self, config):
        (dev,) = enumerate_logical_devices(config, PartitionConfig())
        assert device_stream_bandwidth(
            config, dev, HIPMALLOC_TRAITS
        ) == gpu_stream_bandwidth(config, HIPMALLOC_TRAITS)

    def test_cpx_nps1_share_is_one_sixth(self, config):
        dev = enumerate_logical_devices(config, CPX_NPS1)[0]
        assert device_stream_bandwidth(
            config, dev, HIPMALLOC_TRAITS
        ) == pytest.approx(gpu_stream_bandwidth(config, HIPMALLOC_TRAITS) / 6)

    def test_nps4_local_uplift(self, config):
        dev = enumerate_logical_devices(config, CPX_NPS4)[0]
        local = device_stream_bandwidth(config, dev, HIPMALLOC_TRAITS, 1.0)
        share = gpu_stream_bandwidth(config, HIPMALLOC_TRAITS) / 6
        uplift = config.partition_costs.nps4_local_bandwidth_uplift
        assert local == pytest.approx(share * (1 + uplift))
        assert 1.05 <= local / share <= 1.10

    def test_nps4_remote_penalty_and_harmonic_mix(self, config):
        dev = enumerate_logical_devices(config, CPX_NPS4)[0]
        local = device_stream_bandwidth(config, dev, HIPMALLOC_TRAITS, 1.0)
        remote = device_stream_bandwidth(config, dev, HIPMALLOC_TRAITS, 0.0)
        mixed = device_stream_bandwidth(config, dev, HIPMALLOC_TRAITS, 0.5)
        assert remote < mixed < local
        assert mixed == pytest.approx(1 / (0.5 / local + 0.5 / remote))

    def test_remote_latency_extra(self, config):
        nps1 = enumerate_logical_devices(config, CPX_NPS1)[0]
        nps4 = enumerate_logical_devices(config, CPX_NPS4)[0]
        assert remote_access_latency_extra_ns(config, nps1, 0.0) == 0.0
        assert remote_access_latency_extra_ns(config, nps4, 1.0) == 0.0
        assert remote_access_latency_extra_ns(
            config, nps4, 0.0
        ) == config.partition_costs.nps4_remote_latency_extra_ns

    def test_bad_local_fraction_rejected(self, config):
        dev = enumerate_logical_devices(config, CPX_NPS4)[0]
        with pytest.raises(ValueError):
            device_stream_bandwidth(config, dev, HIPMALLOC_TRAITS, 1.5)

    def test_cpx_launch_saving(self, config):
        assert kernel_launch_factor(config, PartitionConfig()) == 1.0
        assert kernel_launch_factor(config, TPX_NPS1) == 1.0
        assert kernel_launch_factor(config, CPX_NPS4) == pytest.approx(0.9)


class TestHipDeviceManagement:
    def test_default_single_device(self, hip):
        assert hip.hipGetDeviceCount() == 1
        assert hip.hipGetDevice() == 0

    def test_cpx_enumerates_six(self, cpx_hip):
        assert cpx_hip.hipGetDeviceCount() == 6
        for ordinal in range(6):
            assert cpx_hip.hipDeviceGet(ordinal).index == ordinal

    def test_set_device_validates(self, cpx_hip):
        cpx_hip.hipSetDevice(5)
        assert cpx_hip.hipGetDevice() == 5
        with pytest.raises(HipError):
            cpx_hip.hipSetDevice(6)
        with pytest.raises(HipError):
            cpx_hip.hipDeviceGet(-1)

    def test_device_properties(self, cpx_hip):
        props = cpx_hip.hipGetDeviceProperties(3)
        assert props["multiProcessorCount"] == 38
        assert props["totalGlobalMem"] == (2 * GiB) // 4
        assert "CPX/NPS4" in props["name"]

    def test_hipmalloc_placed_in_local_domain(self, cpx_hip):
        apu = cpx_hip.apu
        for index in (0, 3, 5):
            cpx_hip.hipSetDevice(index)
            buf = cpx_hip.hipMalloc(8 * MiB)
            frames = buf.vma.resident_frames()
            assert apu.placement.local_fraction(frames, index) == 1.0

    def test_per_device_mem_get_info(self, cpx_hip):
        quadrant = (2 * GiB) // 4
        cpx_hip.hipSetDevice(0)
        buf = cpx_hip.hipMalloc(16 * MiB)
        free0, total0 = cpx_hip.hipMemGetInfo()
        assert total0 == quadrant
        assert total0 - free0 == 16 * MiB
        # Devices 2-5 live in other quadrants: the buffer is invisible.
        free2, total2 = cpx_hip.hipMemGetInfo(device=2)
        assert total2 == quadrant and free2 == quadrant
        # Device 1 shares device 0's quadrant and sees the same usage.
        free1, _ = cpx_hip.hipMemGetInfo(device=1)
        assert free1 == free0
        cpx_hip.hipFree(buf)

    def test_nps1_mem_get_info_unchanged(self, hip):
        buf = hip.hipMalloc(16 * MiB)
        free, total = hip.hipMemGetInfo()
        assert total == 2 * GiB
        assert total - free == 16 * MiB
        hip.hipFree(buf)

    def test_meminfo_function_agrees_with_runtime(self, cpx_nps4_apu):
        runtime = HipRuntime(cpx_nps4_apu)
        runtime.hipSetDevice(4)
        runtime.hipMalloc(4 * MiB)
        expected = runtime.hipMemGetInfo()
        direct = hip_mem_get_info_device(
            cpx_nps4_apu.memory,
            cpx_nps4_apu.physical,
            cpx_nps4_apu.hbm_map,
            cpx_nps4_apu.logical_devices[4],
        )
        assert direct == expected

    def test_partitioned_ic_view_reduces_hit_fraction(self, cpx_nps4_apu):
        apu = cpx_nps4_apu
        # A buffer striped over all four quadrants, bigger than one
        # quadrant's 32 slices can cover.
        pieces = [
            apu.placement.alloc_chunks(d, (24 * MiB) // PAGE_SIZE, 16)
            for d in range(0, 6, 2)
        ]
        pieces.append(
            apu.placement.alloc_chunks(5, (24 * MiB) // PAGE_SIZE, 16)
        )
        frames = np.concatenate(pieces)
        full = apu.infinity_cache.hit_fraction(frames)
        local_only = apu.infinity_cache.hit_fraction(
            frames, visible_channels=apu.logical_devices[0].ic_slice_channels
        )
        assert local_only < full
        assert local_only <= 0.3  # ~1/4 of the bytes are even reachable

    def test_make_runtime_passes_partition(self):
        runtime = make_runtime(1, partition=CPX_NPS1)
        assert runtime.hipGetDeviceCount() == 6
        assert runtime.apu.hbm_map.numa_domains == 1


class TestNodeRepartitioning:
    def test_default_partition_applied_to_all_apus(self):
        node = MI300ANode(apu_memory_gib=1, partition=CPX_NPS4)
        assert node.apu(0).partition is CPX_NPS4
        assert len(node.apu(1).logical_devices) == 6

    def test_set_partition_rebuilds_apu(self):
        node = MI300ANode(apu_memory_gib=1)
        apu_before = node.apu(2)
        apu_before.memory.hip_malloc(4 * MiB)
        node.set_partition(2, CPX_NPS4)
        apu_after = node.apu(2)
        assert apu_after is not apu_before
        assert apu_after.partition is CPX_NPS4
        assert apu_after.physical.used_bytes == 0  # idle-reset semantics
        assert node.partition_of(2) is CPX_NPS4
        assert node.partition_of(0) is None

    def test_bind_logical(self):
        node = MI300ANode(apu_memory_gib=1, partition=CPX_NPS4)
        apu, device = node.bind_logical(1, 3)
        assert device.index == 3 and device.numa_domain == 1
        with pytest.raises(PermissionError):
            node.apu(0)
        node.unbind()

    def test_seed_default_partition_unchanged(self):
        node = MI300ANode(apu_memory_gib=1)
        apu = node.apu(0)
        assert apu.partition.describe() == "SPX/NPS1"
        assert len(apu.logical_devices) == 1
