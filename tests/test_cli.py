"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import COMMANDS, build_parser, list_experiments, main


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quick_flag(self):
        args = build_parser().parse_args(["fig9", "--quick"])
        assert args.quick
        assert args.experiment == "fig9"

    def test_app_selector(self):
        args = build_parser().parse_args(["apps", "--app", "hotspot"])
        assert args.app == "hotspot"


class TestMenu:
    def test_list_returns_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "uvm" in out

    def test_every_command_documented(self):
        rows = "\n".join(list_experiments())
        for name in COMMANDS:
            if name == "fig11":
                continue
            assert name in rows

    def test_unknown_experiment_errors(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_fig11_aliases_apps(self):
        assert COMMANDS["fig11"] is COMMANDS["apps"]


class TestCommandsRun:
    """Smoke-run the cheap commands end to end (output goes to stdout)."""

    @pytest.mark.parametrize("experiment", ["table1", "fig6", "fig7", "fig8"])
    def test_model_backed_commands(self, experiment, capsys):
        assert main([experiment]) == 0
        out = capsys.readouterr().out
        assert "===" in out

    def test_fig9_quick(self, capsys):
        assert main(["fig9", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "hipMalloc" in out

    def test_memcpy_quick(self, capsys):
        assert main(["memcpy", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "hipMemcpy" in out

    def test_uvm_quick(self, capsys):
        assert main(["uvm", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "upm/MI300A" in out

    def test_apps_single_quick(self, capsys):
        assert main(["apps", "--quick", "--app", "srad_v1"]) == 0
        out = capsys.readouterr().out
        assert "srad_v1" in out

    def test_apps_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["apps", "--app", "lud"])

    def test_partition_quick(self, capsys):
        assert main(["partition", "--quick"]) == 0
        out = capsys.readouterr().out
        for mode in ("SPX/NPS1", "TPX/NPS1", "CPX/NPS1", "CPX/NPS4"):
            assert mode in out
