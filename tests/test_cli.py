"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, list_experiments, main
from repro.exp import experiment_names


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_collects_names_and_engine_flags(self):
        args = build_parser().parse_args(
            ["run", "fig2", "fig9", "--quick", "--workers", "4", "--no-cache"]
        )
        assert args.experiments == ["fig2", "fig9"]
        assert args.quick and args.no_cache
        assert args.workers == 4

    def test_alias_quick_flag(self):
        args = build_parser().parse_args(["fig9", "--quick"])
        assert args.quick
        assert args.experiment == "fig9"

    def test_fig11_aliases_apps(self):
        args = build_parser().parse_args(["fig11", "--quick"])
        assert args.experiment == "apps"

    def test_app_selector(self):
        args = build_parser().parse_args(["apps", "--app", "hotspot"])
        assert args.app == "hotspot"

    def test_every_experiment_has_an_alias_subcommand(self):
        parser = build_parser()
        for name in experiment_names():
            args = parser.parse_args([name, "--no-cache"])
            assert args.experiment == name


class TestMenu:
    def test_list_returns_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "uvm" in out

    def test_list_shows_grid_and_point_counts(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "points" in out and "grid" in out
        assert "allocator[6]" in out  # fig2's grid axis

    def test_every_experiment_documented(self):
        rows = "\n".join(list_experiments())
        for name in experiment_names():
            assert name in rows

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig99", "--no-cache"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_without_names_errors(self, capsys):
        assert main(["run", "--no-cache"]) == 2
        assert "--all" in capsys.readouterr().err


class TestCommandsRun:
    """Smoke-run the cheap commands end to end (output goes to stdout)."""

    @pytest.mark.parametrize("experiment", ["table1", "fig6", "fig7", "fig8"])
    def test_model_backed_commands(self, experiment, capsys):
        assert main([experiment, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "===" in out

    def test_run_subcommand_multiple(self, capsys):
        assert main(["run", "fig8", "uvm", "--quick", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "2 experiment(s)" in out
        assert "upm/MI300A" in out

    def test_fig9_quick(self, capsys):
        assert main(["fig9", "--quick", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "hipMalloc" in out

    def test_memcpy_quick(self, capsys):
        assert main(["memcpy", "--quick", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "hipMemcpy" in out

    def test_uvm_quick(self, capsys):
        assert main(["uvm", "--quick", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "upm/MI300A" in out

    def test_apps_single_quick(self, capsys):
        assert main(["apps", "--quick", "--no-cache", "--app", "srad_v1"]) == 0
        out = capsys.readouterr().out
        assert "srad_v1" in out

    def test_apps_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["apps", "--no-cache", "--app", "lud"])

    def test_partition_quick(self, capsys):
        assert main(["partition", "--quick", "--no-cache"]) == 0
        out = capsys.readouterr().out
        for mode in ("SPX/NPS1", "TPX/NPS1", "CPX/NPS1", "CPX/NPS4"):
            assert mode in out


class TestArtifacts:
    def test_run_writes_bench_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = main([
            "run", "fig8", "uvm", "--quick", "--out", str(out_dir),
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        bench = json.loads((out_dir / "BENCH_results.json").read_text())
        assert bench["schema_version"] == "1"
        assert set(bench["experiments"]) == {"fig8", "uvm"}
        fig8 = json.loads((out_dir / "fig8.json").read_text())
        assert fig8["columns"] == ["fault_type", "mean_us", "p50_us", "p95_us"]
        assert fig8["git_sha"] and fig8["timestamp"]

    def test_cache_dir_round_trip(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["fig8", "--quick", "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert any(cache.rglob("*.json"))
        assert main(["fig8", "--quick", "--cache-dir", str(cache)]) == 0
        assert "cpu" in capsys.readouterr().out

    def test_verify_bench_ok_and_missing(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        main([
            "run", "--all", "--quick", "--out", str(out_dir),
            "--cache-dir", str(tmp_path / "cache"),
        ])
        capsys.readouterr()
        assert main(["verify-bench", str(out_dir / "BENCH_results.json")]) == 0
        payload = json.loads((out_dir / "BENCH_results.json").read_text())
        del payload["experiments"]["fig8"]
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(payload))
        assert main(["verify-bench", str(broken)]) == 1
        assert "fig8" in capsys.readouterr().err


class TestExport:
    def test_export_writes_csvs(self, tmp_path, capsys):
        assert main(["export", "--quick", "--out", str(tmp_path / "r")]) == 0
        out = capsys.readouterr().out
        assert "table1.csv" in out
        assert (tmp_path / "r" / "fig7.csv").exists()
