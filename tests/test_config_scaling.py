"""Hardware-point scaling tests: the models respond to config changes.

The simulator should be usable for *what-if* studies on future APUs;
these tests verify the models react correctly when the hardware point
moves, rather than being hard-wired to the MI300A numbers.
"""

import dataclasses

import pytest

from repro.hw.config import (
    GiB,
    HBMGeometry,
    InfinityCacheGeometry,
    MI300AConfig,
    MiB,
    default_config,
    small_config,
)
from repro.hw.hbm import HBMSubsystem
from repro.hw.infinity_cache import InfinityCache
from repro.hw.topology import APUTopology
from repro.perf.atomics import gpu_atomic_throughput
from repro.perf.bandwidth import BufferTraits, cpu_stream_bandwidth
from repro.perf.latency import cpu_chase_latency_ns


class TestBiggerInfinityCache:
    def test_larger_ic_lowers_mid_range_latency(self):
        base = default_config()
        bigger = base.replace(
            infinity_cache=InfinityCacheGeometry(capacity_bytes=1 * GiB)
        )
        ws = 768 * MiB
        assert cpu_chase_latency_ns(bigger, ws) < cpu_chase_latency_ns(base, ws)

    def test_slice_capacity_scales(self):
        geo = InfinityCacheGeometry(capacity_bytes=1 * GiB)
        assert geo.slice_capacity_bytes == 8 * MiB


class TestMoreComputeUnits:
    def test_more_cus_raise_resident_thread_bound(self):
        from repro.runtime.device import GPUDevice

        base = default_config()
        doubled = base.replace(gpu_compute_units=456)
        assert GPUDevice(doubled).max_resident_threads == \
            2 * GPUDevice(base).max_resident_threads

    def test_more_cus_soften_hybrid_contention(self):
        from repro.perf.atomics import hybrid_atomic_throughput

        base = default_config()
        doubled = base.replace(gpu_compute_units=456)
        # At a fixed GPU thread count, a bigger device is further from
        # saturation, so the co-running GPU loses less on a hot array.
        small = hybrid_atomic_throughput(base, 1 << 10, 24, 14592, "uint64")
        big = hybrid_atomic_throughput(doubled, 1 << 10, 24, 14592, "uint64")
        assert big.gpu_relative > small.gpu_relative


class TestMoreCores:
    def test_extra_cores_extend_case_a_ramp(self):
        base = default_config()
        fat = base.replace(cpu_cores=48)
        traits = BufferTraits(False, False, 64 * 1024.0, 1.0)
        # Same peak, reached over a longer ramp.
        assert cpu_stream_bandwidth(fat, traits, 48) == pytest.approx(
            base.bandwidth.cpu_peak_stream_bytes_per_s
        )
        assert cpu_stream_bandwidth(fat, traits, 24) < \
            cpu_stream_bandwidth(base, traits, 24)


class TestHBMGeometryVariants:
    def test_channel_count_follows_geometry(self):
        geo = HBMGeometry(stacks=4, channels_per_stack=8)
        assert geo.channels == 32
        assert geo.capacity_bytes == 64 * GiB

    def test_hbm_subsystem_respects_geometry(self):
        geo = HBMGeometry(stacks=4, channels_per_stack=8)
        hbm = HBMSubsystem(geo)
        # Channel period = stacks * lanes.
        assert hbm.channel_of_frame(0) == hbm.channel_of_frame(32)
        assert hbm.channel_of_frame(1) != hbm.channel_of_frame(0)

    def test_ic_requires_matching_slices(self):
        geo = HBMGeometry(stacks=4, channels_per_stack=8)
        ic_geo = InfinityCacheGeometry(slices=32)
        InfinityCache(ic_geo, HBMSubsystem(geo))  # matches: fine


class TestTopologyVariants:
    def test_smaller_apu_topology(self):
        cfg = MI300AConfig(xcd_count=4, ccd_count=2, iod_count=3)
        topo = APUTopology(cfg)
        assert len(topo.chiplets("xcd")) == 4
        assert len(topo.chiplets("ccd")) == 2
        assert topo.memory_reachable_from_all()

    def test_memory_unification_is_structural(self):
        # Any chiplet mix keeps the UPM property under this fabric.
        for xcds, ccds in ((2, 1), (6, 3), (8, 4)):
            cfg = MI300AConfig(xcd_count=xcds, ccd_count=ccds)
            assert APUTopology(cfg).memory_reachable_from_all()


class TestPolicyKnobs:
    def test_contiguity_knob_changes_fragments(self):
        from repro.runtime.apu import APU

        for contiguity, expected_avg in ((64 << 10, 64 << 10), (16 << 10, 16 << 10)):
            cfg = small_config(1 * GiB)
            cfg = cfg.replace(
                policy=dataclasses.replace(
                    cfg.policy, up_front_contiguity_bytes=contiguity
                )
            )
            apu = APU(config=cfg)
            buf = apu.memory.hip_malloc(8 * MiB)
            from repro.core.fragments import average_fragment_bytes

            assert average_fragment_bytes(buf.vma.fragment) == pytest.approx(
                expected_avg, rel=0.1
            )

    def test_fault_around_knob(self):
        from repro.runtime.apu import APU

        cfg = small_config(1 * GiB)
        cfg = cfg.replace(
            policy=dataclasses.replace(
                cfg.policy, up_front_cpu_fault_granularity_bytes=64 << 10
            )
        )
        apu = APU(config=cfg)
        buf = apu.memory.hip_malloc(1 * MiB)  # 256 pages
        report = apu.faults.touch_range(buf.vma, 0, 256, "cpu")
        assert report.cpu_fault_events == 16  # 64 KiB windows


class TestDownScaledPools:
    @pytest.mark.parametrize("gib", [1, 2, 4])
    def test_small_pools_work_end_to_end(self, gib):
        from repro.runtime import make_runtime
        from repro.runtime.kernels import BufferAccess, KernelSpec

        hip = make_runtime(memory_gib=gib, xnack=True)
        buf = hip.hipMalloc(64 * MiB)
        result = hip.launchKernel(
            KernelSpec("k", [BufferAccess(buf, "read")])
        )
        hip.hipDeviceSynchronize()
        assert result.duration_ns > 0
