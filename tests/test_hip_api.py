"""Tests for the HIP API facade and kernel engine."""

import numpy as np
import pytest

from repro.core.allocators import AllocatorKind
from repro.core.faults import GPUMemoryAccessError
from repro.hw.config import KiB, MiB
from repro.runtime.hip import HipError
from repro.runtime.kernels import (
    BufferAccess,
    KERNEL_LAUNCH_OVERHEAD_NS,
    KernelSpec,
)


class TestAllocationAPI:
    def test_hipmalloc_kind(self, hip):
        assert hip.hipMalloc(4096).kind is AllocatorKind.HIP_MALLOC

    def test_hiphostmalloc_kind(self, hip):
        assert hip.hipHostMalloc(4096).kind is AllocatorKind.HIP_HOST_MALLOC

    def test_managed_kind(self, hip):
        assert hip.hipMallocManaged(4096).kind is AllocatorKind.HIP_MALLOC_MANAGED

    def test_host_register(self, hip):
        buf = hip.malloc(4096)
        hip.hipHostRegister(buf)
        assert buf.kind is AllocatorKind.MALLOC_REGISTERED

    def test_hipfree(self, hip):
        buf = hip.hipMalloc(4096)
        hip.hipFree(buf)
        assert buf not in hip.apu.memory.allocations

    def test_hipmemgetinfo(self, hip):
        free0, total = hip.hipMemGetInfo()
        hip.hipMalloc(4 * MiB)
        free1, _ = hip.hipMemGetInfo()
        assert free0 - free1 == 4 * MiB
        assert total == hip.apu.config.memory_capacity_bytes

    def test_array_allocators(self, hip):
        for allocator, kind in [
            ("malloc", AllocatorKind.MALLOC),
            ("hipMalloc", AllocatorKind.HIP_MALLOC),
            ("hipHostMalloc", AllocatorKind.HIP_HOST_MALLOC),
            ("hipMallocManaged", AllocatorKind.HIP_MALLOC_MANAGED),
            ("malloc+register", AllocatorKind.MALLOC_REGISTERED),
            ("managed_static", AllocatorKind.MANAGED_STATIC),
        ]:
            arr = hip.array(16, np.float32, allocator)
            assert arr.allocation.kind is kind

    def test_array_unknown_allocator(self, hip):
        with pytest.raises(HipError):
            hip.array(16, np.float32, "cudaMalloc")


class TestMemcpy:
    def test_moves_payload(self, hip):
        a = hip.array(64, np.float32, "hipHostMalloc")
        b = hip.array(64, np.float32, "hipMalloc")
        a.np[:] = np.arange(64)
        hip.hipMemcpy(b, a)
        assert np.array_equal(b.np, a.np)

    def test_partial_with_offsets(self, hip):
        a = hip.array(64, np.float32, "hipMalloc")
        b = hip.array(64, np.float32, "hipMalloc")
        a.np[:] = np.arange(64)
        hip.hipMemcpy(b, a, nbytes=16 * 4, dst_offset=32 * 4, src_offset=0)
        assert np.array_equal(b.np[32:48], a.np[:16])
        assert (b.np[:32] == 0).all()

    def test_oversized_copy_rejected(self, hip):
        a = hip.array(16, np.float32, "hipMalloc")
        b = hip.array(8, np.float32, "hipMalloc")
        with pytest.raises(HipError):
            hip.hipMemcpy(b, a, nbytes=16 * 4)

    def test_sync_copy_advances_clock(self, hip):
        a = hip.hipMalloc(1 * MiB)
        b = hip.hipMalloc(1 * MiB)
        before = hip.apu.clock.now_ns
        hip.hipMemcpy(b, a, 1 * MiB)
        assert hip.apu.clock.now_ns > before

    def test_async_copy_defers(self, hip):
        a = hip.hipMalloc(64 * KiB)
        b = hip.hipMalloc(64 * KiB)
        hip.apu.touch(a, "cpu")
        hip.apu.touch(b, "cpu")
        stream = hip.hipStreamCreate()
        before = hip.apu.clock.now_ns
        hip.hipMemcpyAsync(b, a, 64 * KiB, stream=stream)
        assert hip.apu.clock.now_ns == before  # host did not block
        hip.hipStreamSynchronize(stream)
        assert hip.apu.clock.now_ns > before

    def test_sdma_flag_changes_speed(self, apu):
        from repro.runtime.hip import HipRuntime

        fast = HipRuntime(apu, sdma_enabled=False)
        a = fast.hipMalloc(16 * MiB)
        h = fast.malloc(16 * MiB)
        fast.apu.touch(a, "cpu")
        fast.apu.touch(h, "cpu")
        t0 = apu.clock.now_ns
        fast.hipMemcpy(a, h, 16 * MiB)
        no_sdma_time = apu.clock.now_ns - t0
        fast.sdma_enabled = True
        t0 = apu.clock.now_ns
        fast.hipMemcpy(a, h, 16 * MiB)
        sdma_time = apu.clock.now_ns - t0
        assert sdma_time > 5 * no_sdma_time


class TestKernels:
    def test_launch_is_async(self, hip):
        buf = hip.hipMalloc(1 * MiB)
        spec = KernelSpec("k", [BufferAccess(buf, "read")])
        before = hip.apu.clock.now_ns
        result = hip.launchKernel(spec)
        assert hip.apu.clock.now_ns - before == pytest.approx(
            KERNEL_LAUNCH_OVERHEAD_NS
        )
        assert result.end_ns > result.start_ns

    def test_device_synchronize_waits(self, hip):
        buf = hip.hipMalloc(16 * MiB)
        result = hip.launchKernel(KernelSpec("k", [BufferAccess(buf, "read")]))
        hip.hipDeviceSynchronize()
        assert hip.apu.clock.now_ns >= result.end_ns

    def test_compute_bound_kernel(self, hip):
        buf = hip.hipMalloc(4096)
        spec = KernelSpec("k", [BufferAccess(buf, "read")], compute_ns=1e6)
        result = hip.launchKernel(spec)
        assert result.duration_ns >= 1e6

    def test_memory_bound_kernel_time(self, hip):
        buf = hip.hipMalloc(36 * MiB)
        result = hip.launchKernel(KernelSpec("k", [BufferAccess(buf, "read")]))
        expected = 36 * MiB / 3.6e12 * 1e9
        assert result.memory_ns == pytest.approx(expected, rel=0.05)

    def test_readwrite_counts_double(self, hip):
        buf = hip.hipMalloc(16 * MiB)
        read = hip.launchKernel(KernelSpec("r", [BufferAccess(buf, "read")]))
        rw = hip.launchKernel(KernelSpec("rw", [BufferAccess(buf, "readwrite")]))
        assert rw.memory_ns == pytest.approx(2 * read.memory_ns, rel=0.01)

    def test_tlb_misses_counted(self, hip):
        buf = hip.hipMalloc(16 * MiB)
        result = hip.launchKernel(
            KernelSpec("k", [BufferAccess(buf, "read", passes=10)])
        )
        assert result.tlb_misses > 0
        assert hip.apu.gpu.counters.tlb_misses >= result.tlb_misses

    def test_gpu_fault_time_charged(self, hip):
        buf = hip.malloc(4 * MiB)  # on-demand, XNACK on
        result = hip.launchKernel(KernelSpec("k", [BufferAccess(buf, "read")]))
        assert result.fault_ns > 0

    def test_gpu_illegal_access_raises(self, hip_noxnack):
        buf = hip_noxnack.malloc(4096)
        with pytest.raises(GPUMemoryAccessError):
            hip_noxnack.launchKernel(KernelSpec("k", [BufferAccess(buf, "read")]))

    def test_cpu_kernel_synchronous(self, hip):
        buf = hip.hipMalloc(16 * MiB)
        before = hip.apu.clock.now_ns
        result = hip.runCpuKernel(
            KernelSpec("k", [BufferAccess(buf, "read")]), threads=4
        )
        assert hip.apu.clock.now_ns == pytest.approx(result.end_ns)
        assert result.duration_ns > 0

    def test_cpu_threads_scale_bandwidth(self, hip):
        buf = hip.hipMalloc(64 * MiB)
        hip.apu.touch(buf, "cpu")
        one = hip.runCpuKernel(KernelSpec("k", [BufferAccess(buf, "read")]), 1)
        many = hip.runCpuKernel(KernelSpec("k", [BufferAccess(buf, "read")]), 24)
        assert many.memory_ns < one.memory_ns

    def test_latency_pattern(self, hip):
        buf = hip.hipMalloc(1 * MiB)
        stream_res = hip.launchKernel(
            KernelSpec("s", [BufferAccess(buf, "read", "stream")])
        )
        latency_res = hip.launchKernel(
            KernelSpec("l", [BufferAccess(buf, "read", "latency")])
        )
        assert latency_res.memory_ns > stream_res.memory_ns

    def test_touch_pattern_charges_faults_only(self, hip):
        buf = hip.malloc(1 * MiB)
        result = hip.launchKernel(
            KernelSpec("t", [BufferAccess(buf, "read", "touch")])
        )
        assert result.memory_ns == 0.0
        assert result.fault_ns > 0

    def test_kernel_counter(self, hip):
        buf = hip.hipMalloc(4096)
        hip.launchKernel(KernelSpec("a", [BufferAccess(buf, "read")]))
        hip.launchKernel(KernelSpec("b", [BufferAccess(buf, "read")]))
        assert hip.apu.gpu.counters.kernels_launched == 2


class TestStreamsViaAPI:
    def test_event_ordering(self, hip):
        buf = hip.hipMalloc(36 * MiB)
        s1 = hip.hipStreamCreate("producer")
        s2 = hip.hipStreamCreate("consumer")
        r1 = hip.launchKernel(KernelSpec("p", [BufferAccess(buf, "write")]), s1)
        event = hip.hipEventCreate()
        hip.hipEventRecord(event, s1)
        hip.hipStreamWaitEvent(s2, event)
        r2 = hip.launchKernel(KernelSpec("c", [BufferAccess(buf, "read")]), s2)
        assert r2.start_ns >= r1.end_ns

    def test_independent_streams_overlap(self, hip):
        a = hip.hipMalloc(36 * MiB)
        b = hip.hipMalloc(36 * MiB)
        s1, s2 = hip.hipStreamCreate(), hip.hipStreamCreate()
        r1 = hip.launchKernel(KernelSpec("k1", [BufferAccess(a, "read")]), s1)
        r2 = hip.launchKernel(KernelSpec("k2", [BufferAccess(b, "read")]), s2)
        assert r2.start_ns < r1.end_ns  # concurrent, not serialised
