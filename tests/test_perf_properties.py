"""Property-based tests over the performance models (hypothesis).

These pin the physical sanity conditions any calibration must respect:
monotonicities, bounds, and symmetries.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.config import default_config
from repro.perf.atomics import (
    cpu_atomic_throughput,
    gpu_atomic_throughput,
    hybrid_atomic_throughput,
)
from repro.perf.bandwidth import BufferTraits, cpu_stream_bandwidth, gpu_stream_bandwidth
from repro.perf.faultmodel import fault_throughput_pages_per_s
from repro.perf.latency import cpu_chase_latency_ns, gpu_chase_latency_ns

CFG = default_config()

sizes = st.integers(1, 1 << 32)
elements = st.integers(1, 1 << 30)
cpu_threads = st.integers(1, 24)
gpu_threads = st.integers(1, 14592)
dtypes = st.sampled_from(["uint64", "fp64"])


class TestLatencyProperties:
    @given(a=sizes, b=sizes)
    @settings(max_examples=60, deadline=None)
    def test_latency_monotone_in_working_set(self, a, b):
        small, big = sorted((a, b))
        assert cpu_chase_latency_ns(CFG, small) <= \
            cpu_chase_latency_ns(CFG, big) + 1e-9
        assert gpu_chase_latency_ns(CFG, small) <= \
            gpu_chase_latency_ns(CFG, big) + 1e-9

    @given(ws=sizes)
    @settings(max_examples=60, deadline=None)
    def test_latency_bounded_by_extremes(self, ws):
        cpu = cpu_chase_latency_ns(CFG, ws)
        assert CFG.cpu_l1.latency_ns <= cpu <= CFG.cpu_hbm_latency_ns
        gpu = gpu_chase_latency_ns(CFG, ws)
        assert CFG.gpu_l1.latency_ns <= gpu <= CFG.gpu_hbm_latency_ns

    @given(ws=sizes)
    @settings(max_examples=40, deadline=None)
    def test_cpu_beats_gpu_latency(self, ws):
        assert cpu_chase_latency_ns(CFG, ws) < gpu_chase_latency_ns(CFG, ws)


class TestBandwidthProperties:
    @given(
        threads=cpu_threads,
        balance=st.floats(0.0, 1.0),
        on_demand=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_cpu_bandwidth_positive_and_bounded(self, threads, balance, on_demand):
        traits = BufferTraits(on_demand, False, 8192.0, balance)
        bw = cpu_stream_bandwidth(CFG, traits, threads)
        assert 0 < bw <= CFG.bandwidth.cpu_peak_stream_bytes_per_s

    @given(a=cpu_threads, b=cpu_threads)
    @settings(max_examples=40, deadline=None)
    def test_case_a_monotone_in_threads(self, a, b):
        traits = BufferTraits(False, False, 64 * 1024.0, 1.0)
        low, high = sorted((a, b))
        assert cpu_stream_bandwidth(CFG, traits, low) <= \
            cpu_stream_bandwidth(CFG, traits, high) + 1e-6

    @given(
        fragment=st.floats(4096.0, 1 << 22),
        on_demand=st.booleans(),
        uncached=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_gpu_bandwidth_tier_bounds(self, fragment, on_demand, uncached):
        traits = BufferTraits(on_demand, uncached, fragment, 1.0)
        bw = gpu_stream_bandwidth(CFG, traits)
        assert CFG.bandwidth.gpu_managed_static_bytes_per_s <= bw
        assert bw <= CFG.bandwidth.gpu_peak_stream_bytes_per_s


class TestAtomicsProperties:
    @given(n=elements, t=cpu_threads, dtype=dtypes)
    @settings(max_examples=60, deadline=None)
    def test_cpu_throughput_positive(self, n, t, dtype):
        assert cpu_atomic_throughput(CFG, n, t, dtype) > 0

    @given(n=elements, t=cpu_threads)
    @settings(max_examples=60, deadline=None)
    def test_uint64_never_slower_than_fp64(self, n, t):
        assert cpu_atomic_throughput(CFG, n, t, "uint64") >= \
            cpu_atomic_throughput(CFG, n, t, "fp64")

    @given(n=elements, t=gpu_threads)
    @settings(max_examples=60, deadline=None)
    def test_gpu_dtype_blind(self, n, t):
        assert gpu_atomic_throughput(CFG, n, t, "uint64") == \
            gpu_atomic_throughput(CFG, n, t, "fp64")

    @given(n=elements, a=gpu_threads, b=gpu_threads)
    @settings(max_examples=40, deadline=None)
    def test_gpu_monotone_in_threads(self, n, a, b):
        low, high = sorted((a, b))
        assert gpu_atomic_throughput(CFG, n, low, "uint64") <= \
            gpu_atomic_throughput(CFG, n, high, "uint64") + 1e-6

    @given(n=elements, ct=cpu_threads, gt=gpu_threads, dtype=dtypes)
    @settings(max_examples=40, deadline=None)
    def test_hybrid_relatives_bounded(self, n, ct, gt, dtype):
        h = hybrid_atomic_throughput(CFG, n, ct, gt, dtype)
        assert 0 < h.cpu_relative <= 1.25
        assert 0 < h.gpu_relative <= 1.05
        assert h.cpu_updates_per_s > 0
        assert h.gpu_updates_per_s > 0


class TestFaultModelProperties:
    @given(
        a=st.integers(1, 10**8),
        b=st.integers(1, 10**8),
        scenario=st.sampled_from(["gpu_major", "gpu_minor", "cpu", "cpu12"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_throughput_monotone_in_pages(self, a, b, scenario):
        low, high = sorted((a, b))
        assert fault_throughput_pages_per_s(CFG, scenario, low) <= \
            fault_throughput_pages_per_s(CFG, scenario, high) * (1 + 1e-9)

    @given(n=st.integers(1, 10**8))
    @settings(max_examples=60, deadline=None)
    def test_minor_always_at_least_major(self, n):
        assert fault_throughput_pages_per_s(CFG, "gpu_minor", n) >= \
            fault_throughput_pages_per_s(CFG, "gpu_major", n)

    @given(n=st.integers(1, 10**8))
    @settings(max_examples=60, deadline=None)
    def test_cpu12_always_at_least_cpu1(self, n):
        assert fault_throughput_pages_per_s(CFG, "cpu12", n) >= \
            fault_throughput_pages_per_s(CFG, "cpu", n)
