"""Unit tests for HBM channel mapping and balance metrics (repro.hw.hbm)."""

import numpy as np
import pytest

from repro.hw.config import HBMGeometry, PAGE_SIZE, default_config
from repro.hw.hbm import (
    HBMSubsystem,
    channel_balance,
    effective_slice_hit_fraction,
)


@pytest.fixture
def hbm():
    return HBMSubsystem(default_config().hbm)


class TestChannelMapping:
    def test_stack_interleaves_per_page(self, hbm):
        # One 4 KiB page per stack, round robin.
        for frame in range(16):
            assert hbm.stack_of_frame(frame) == frame % 8

    def test_channel_in_range(self, hbm):
        frames = np.arange(4096)
        channels = hbm.channels_of_frames(frames)
        assert channels.min() >= 0
        assert channels.max() < 128

    def test_contiguous_range_covers_all_channels_evenly(self, hbm):
        frames = np.arange(128 * 4)  # four full rotations
        hist = hbm.channel_histogram(frames)
        assert (hist == 4 * PAGE_SIZE).all()

    def test_channel_is_periodic_in_frame(self, hbm):
        # With one page per interleave unit, channel(frame) has period
        # stacks * lanes = 128.
        for frame in (0, 5, 77):
            assert hbm.channel_of_frame(frame) == hbm.channel_of_frame(frame + 128)

    def test_vectorised_matches_scalar(self, hbm):
        frames = np.array([0, 1, 7, 8, 129, 1000, 65535])
        vec = hbm.channels_of_frames(frames)
        scalar = [hbm.channel_of_frame(int(f)) for f in frames]
        assert list(vec) == scalar

    def test_capacity(self, hbm):
        assert hbm.capacity_bytes == 128 << 30

    def test_interleave_must_be_page_multiple(self):
        geo = HBMGeometry(interleave_bytes=1000)
        with pytest.raises(ValueError):
            HBMSubsystem(geo)


class TestTraffic:
    def test_record_and_reset(self, hbm):
        hbm.record_traffic([0, 1, 2], 100)
        assert hbm.traffic_bytes().sum() == 300
        hbm.reset_traffic()
        assert hbm.traffic_bytes().sum() == 0

    def test_traffic_lands_on_mapped_channel(self, hbm):
        hbm.record_traffic([0], 64)
        traffic = hbm.traffic_bytes()
        assert traffic[hbm.channel_of_frame(0)] == 64
        assert traffic.sum() == 64


class TestBalanceMetrics:
    def test_uniform_histogram_is_balanced(self):
        assert channel_balance(np.full(128, 1000)) == pytest.approx(1.0)

    def test_single_channel_is_maximally_unbalanced(self):
        hist = np.zeros(128)
        hist[0] = 1000
        assert channel_balance(hist) == pytest.approx(1 / 128)

    def test_empty_histogram_is_balanced(self):
        assert channel_balance(np.zeros(128)) == 1.0

    def test_slice_hit_fraction_uniform_fits(self):
        hist = np.full(128, 1 << 20)  # 1 MiB per channel, 2 MiB slices
        assert effective_slice_hit_fraction(hist, 2 << 20) == pytest.approx(1.0)

    def test_slice_hit_fraction_uniform_double(self):
        hist = np.full(128, 4 << 20)  # 4 MiB per channel, 2 MiB slices
        assert effective_slice_hit_fraction(hist, 2 << 20) == pytest.approx(0.5)

    def test_slice_hit_fraction_biased_lower_than_uniform(self):
        total = 128 * (4 << 20)
        uniform = np.full(128, total // 128)
        biased = np.zeros(128, dtype=np.int64)
        biased[:8] = total // 8
        cap = 2 << 20
        assert effective_slice_hit_fraction(biased, cap) < \
            effective_slice_hit_fraction(uniform, cap)

    def test_slice_hit_fraction_empty(self):
        assert effective_slice_hit_fraction(np.zeros(128), 2 << 20) == 1.0
