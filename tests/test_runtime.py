"""Tests for the runtime layer: streams, SDMA, arrays, APU helpers."""

import numpy as np
import pytest

from repro.core.allocators import AllocatorKind
from repro.hw.clock import SimClock
from repro.hw.config import KiB, MiB
from repro.runtime.arrays import DeviceArray
from repro.runtime.sdma import memcpy_bandwidth_bytes_per_s, memcpy_time_ns
from hypothesis import given, settings, strategies as st

from repro.runtime.stream import (
    Event,
    Stream,
    StreamRegistry,
    UnrecordedEventError,
)


class TestStreams:
    def test_enqueue_is_async(self):
        clock = SimClock()
        stream = Stream(clock)
        start, end = stream.enqueue(1000.0)
        assert clock.now_ns == 0.0
        assert (start, end) == (0.0, 1000.0)

    def test_back_to_back_work_queues(self):
        clock = SimClock()
        stream = Stream(clock)
        stream.enqueue(100.0)
        start, end = stream.enqueue(50.0)
        assert start == 100.0
        assert end == 150.0

    def test_enqueue_after_idle_starts_at_host_time(self):
        clock = SimClock()
        stream = Stream(clock)
        stream.enqueue(10.0)
        clock.advance(500.0)
        start, _ = stream.enqueue(10.0)
        assert start == 500.0

    def test_synchronize_advances_host(self):
        clock = SimClock()
        stream = Stream(clock)
        stream.enqueue(750.0)
        stream.synchronize()
        assert clock.now_ns == 750.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Stream(SimClock()).enqueue(-1.0)

    def test_idle_property(self):
        clock = SimClock()
        stream = Stream(clock)
        assert stream.idle
        stream.enqueue(10.0)
        assert not stream.idle
        stream.synchronize()
        assert stream.idle


class TestEvents:
    def test_record_captures_stream_horizon(self):
        clock = SimClock()
        stream = Stream(clock)
        stream.enqueue(300.0)
        event = Event("e")
        stream.record_event(event)
        assert event.recorded
        assert event.timestamp_ns == 300.0

    def test_wait_event_orders_streams(self):
        clock = SimClock()
        producer, consumer = Stream(clock), Stream(clock)
        producer.enqueue(400.0)
        event = Event()
        producer.record_event(event)
        consumer.wait_event(event)
        start, _ = consumer.enqueue(10.0)
        assert start == 400.0

    def test_wait_unrecorded_rejected(self):
        with pytest.raises(UnrecordedEventError, match="unrecorded"):
            Stream(SimClock()).wait_event(Event("orphan"))

    def test_wait_unrecorded_names_the_event(self):
        with pytest.raises(UnrecordedEventError, match="orphan"):
            Stream(SimClock()).wait_event(Event("orphan"))

    def test_elapsed_between_events(self):
        clock = SimClock()
        stream = Stream(clock)
        e1, e2 = Event(), Event()
        stream.enqueue(100.0)
        stream.record_event(e1)
        stream.enqueue(250.0)
        stream.record_event(e2)
        assert e2.elapsed_since(e1) == pytest.approx(250.0)

    def test_elapsed_requires_recorded(self):
        with pytest.raises(UnrecordedEventError):
            Event().elapsed_since(Event())

    def test_elapsed_names_the_unrecorded_event(self):
        clock = SimClock()
        stream = Stream(clock)
        recorded = Event("done")
        stream.record_event(recorded)
        with pytest.raises(UnrecordedEventError, match="ghost"):
            recorded.elapsed_since(Event("ghost"))
        with pytest.raises(UnrecordedEventError, match="ghost"):
            Event("ghost").elapsed_since(recorded)

    def test_host_event_synchronize_unrecorded_rejected(self):
        from repro.runtime.hip import make_runtime

        hip = make_runtime(memory_gib=1)
        with pytest.raises(UnrecordedEventError, match="limbo"):
            hip.hipEventSynchronize(hip.hipEventCreate("limbo"))

    def test_host_event_synchronize_advances_clock(self):
        from repro.runtime.hip import make_runtime

        hip = make_runtime(memory_gib=1)
        stream = hip.hipStreamCreate("s")
        stream.enqueue(2_000.0)
        event = hip.hipEventCreate("mid")
        hip.hipEventRecord(event, stream)
        hip.hipEventSynchronize(event)
        assert hip.apu.clock.now_ns >= 2_000.0


class TestCrossStreamOrdering:
    @given(
        before=st.lists(
            st.floats(min_value=1.0, max_value=1e5), min_size=0, max_size=6
        ),
        waiter_head=st.lists(
            st.floats(min_value=1.0, max_value=1e5), min_size=0, max_size=6
        ),
        after_ns=st.floats(min_value=1.0, max_value=1e5),
    )
    @settings(max_examples=60, deadline=None)
    def test_wait_event_is_a_happens_before_edge(
        self, before, waiter_head, after_ns
    ):
        """Work enqueued after a wait never starts before the event.

        Record an event on stream A after arbitrary work; make stream B
        (with its own arbitrary backlog) wait on it; every subsequent
        enqueue on B starts at or after both the event's timestamp and
        B's own prior horizon — the edge the hipsan vector clocks model.
        """
        clock = SimClock()
        producer, consumer = Stream(clock), Stream(clock, uid="s1")
        for duration in before:
            producer.enqueue(duration)
        event = Event("edge")
        producer.record_event(event)
        backlog_end = 0.0
        for duration in waiter_head:
            _, backlog_end = consumer.enqueue(duration)
        consumer.wait_event(event)
        start, end = consumer.enqueue(after_ns)
        assert start >= event.timestamp_ns
        assert start >= backlog_end
        assert end == start + after_ns


class TestStreamRegistry:
    def test_default_stream_exists(self):
        reg = StreamRegistry(SimClock())
        assert reg.resolve(None) is reg.default

    def test_device_synchronize_waits_all(self):
        clock = SimClock()
        reg = StreamRegistry(clock)
        s1 = reg.create()
        reg.default.enqueue(100.0)
        s1.enqueue(900.0)
        reg.device_synchronize()
        assert clock.now_ns == 900.0

    def test_created_streams_named(self):
        reg = StreamRegistry(SimClock())
        assert reg.create("copy").name == "copy"
        assert reg.create().name.startswith("stream")


class TestSDMA:
    def test_d2d_uses_fast_path(self, apu):
        src = apu.memory.hip_malloc(1 * MiB)
        dst = apu.memory.hip_malloc(1 * MiB)
        bw = memcpy_bandwidth_bytes_per_s(apu.config, dst, src)
        assert bw == pytest.approx(1.9e12)

    def test_host_device_sdma_slow(self, apu):
        src = apu.memory.malloc(1 * MiB)
        dst = apu.memory.hip_malloc(1 * MiB)
        assert memcpy_bandwidth_bytes_per_s(apu.config, dst, src) == \
            pytest.approx(58e9)

    def test_sdma_disabled_blit_path(self, apu):
        src = apu.memory.hip_host_malloc(1 * MiB)
        dst = apu.memory.hip_malloc(1 * MiB)
        assert memcpy_bandwidth_bytes_per_s(
            apu.config, dst, src, sdma_enabled=False
        ) == pytest.approx(850e9)

    def test_direction_symmetric(self, apu):
        a = apu.memory.malloc(1 * MiB)
        b = apu.memory.hip_malloc(1 * MiB)
        assert memcpy_bandwidth_bytes_per_s(apu.config, a, b) == \
            memcpy_bandwidth_bytes_per_s(apu.config, b, a)

    def test_memcpy_time_includes_overhead(self, apu):
        src = apu.memory.hip_malloc(64 * KiB)
        dst = apu.memory.hip_malloc(64 * KiB)
        t = memcpy_time_ns(apu.config, dst, src, 64 * KiB)
        assert t > 5_000.0
        assert memcpy_time_ns(apu.config, dst, src, 0) == pytest.approx(5_000.0)

    def test_negative_size_rejected(self, apu):
        src = apu.memory.hip_malloc(4096)
        with pytest.raises(ValueError):
            memcpy_time_ns(apu.config, src, src, -1)


class TestDeviceArray:
    def test_shape_dtype(self, apu):
        alloc = apu.memory.hip_malloc(1 * MiB)
        arr = DeviceArray(alloc, (256, 256), np.float32)
        assert arr.shape == (256, 256)
        assert arr.dtype == np.float32
        assert arr.nbytes == 256 * 256 * 4
        assert arr.size == 256 * 256

    def test_must_fit_allocation(self, apu):
        alloc = apu.memory.hip_malloc(1024)
        with pytest.raises(ValueError):
            DeviceArray(alloc, 1024, np.float64)

    def test_fill_and_copy(self, apu):
        a = DeviceArray(apu.memory.hip_malloc(4096), 16, np.float32)
        b = DeviceArray(apu.memory.hip_malloc(4096), 16, np.float32)
        a.fill(5.0)
        b.copy_from(a)
        assert (b.np == 5.0).all()

    def test_partial_copy(self, apu):
        a = DeviceArray(apu.memory.hip_malloc(4096), 16, np.float32)
        b = DeviceArray(apu.memory.hip_malloc(4096), 16, np.float32)
        a.fill(3.0)
        b.copy_from(a, nbytes=8 * 4)
        assert (b.np[:8] == 3.0).all()
        assert (b.np[8:] == 0.0).all()

    def test_mismatched_full_copy_rejected(self, apu):
        a = DeviceArray(apu.memory.hip_malloc(4096), 16, np.float32)
        b = DeviceArray(apu.memory.hip_malloc(4096), 8, np.float32)
        with pytest.raises(ValueError):
            b.copy_from(a)

    def test_unaligned_partial_copy_rejected(self, apu):
        a = DeviceArray(apu.memory.hip_malloc(4096), 16, np.float32)
        b = DeviceArray(apu.memory.hip_malloc(4096), 16, np.float32)
        with pytest.raises(ValueError):
            b.copy_from(a, nbytes=7)


class TestAPUHelpers:
    def test_buffer_traits_hipmalloc(self, apu):
        buf = apu.memory.hip_malloc(1 * MiB)
        t = apu.buffer_traits(buf)
        assert not t.on_demand
        assert not t.uncached
        assert t.average_fragment_bytes >= 32 * KiB
        assert t.balanced

    def test_buffer_traits_untouched_malloc(self, apu):
        buf = apu.memory.malloc(1 * MiB)
        t = apu.buffer_traits(buf)
        assert t.on_demand
        assert t.average_fragment_bytes == 0.0
        assert t.channel_balance == 1.0  # nothing resident yet

    def test_buffer_traits_touched_malloc_biased(self, apu16):
        buf = apu16.memory.malloc(64 * MiB)
        apu16.touch(buf, "cpu")
        t = apu16.buffer_traits(buf)
        assert not t.balanced

    def test_touch_advances_clock(self, apu):
        buf = apu.memory.malloc(1 * MiB)
        before = apu.clock.now_ns
        apu.touch(buf, "cpu")
        assert apu.clock.now_ns > before

    def test_touch_subrange(self, apu):
        buf = apu.memory.malloc(16 * 4096)
        apu.touch(buf, "cpu", offset_bytes=4096, size_bytes=8192)
        assert buf.vma.resident_pages() == 2

    def test_ic_hit_fraction_prefix(self, apu):
        buf = apu.memory.hip_malloc(8 * MiB)
        assert apu.ic_hit_fraction(buf) == pytest.approx(1.0)
        assert apu.ic_hit_fraction(buf, working_set_bytes=1 * MiB) == \
            pytest.approx(1.0)

    def test_prefault_cpu(self, apu):
        buf = apu.memory.malloc(1 * MiB)
        report = apu.prefault_cpu(buf)
        assert report.cpu_faulted_pages == 256
