"""Tests for the discrete-GPU UVM comparison substrate (repro.uvm)."""

import numpy as np
import pytest

from repro.hw.config import GiB, MiB
from repro.uvm.config import PAGE_SIZE, UVMConfig
from repro.uvm.system import (
    DeviceOutOfMemoryError,
    ManagedBuffer,
    UVMSystem,
)
from repro.uvm.comparison import (
    run_explicit_discrete,
    run_upm,
    run_uvm,
    three_way_comparison,
)


@pytest.fixture
def system():
    return UVMSystem(UVMConfig(device_memory_bytes=1 * GiB))


class TestManagedResidency:
    def test_fresh_buffer_nowhere(self, system):
        buf = system.malloc_managed(16 * MiB)
        assert buf.device_resident_bytes() == 0
        assert not buf.populated.any()

    def test_gpu_access_migrates_to_device(self, system):
        buf = system.malloc_managed(16 * MiB)
        system.gpu_access(buf)
        assert buf.on_device.all()
        assert system.counters.gpu_faulted_pages == buf.npages

    def test_first_touch_on_gpu_moves_nothing(self, system):
        buf = system.malloc_managed(16 * MiB)
        system.gpu_access(buf)
        # Never CPU-touched: mapped on device without link traffic.
        assert system.counters.migrated_to_device_bytes == 0

    def test_populated_pages_pay_migration(self, system):
        buf = system.malloc_managed(16 * MiB)
        system.cpu_access(buf)  # populate host-side
        system.gpu_access(buf)
        assert system.counters.migrated_to_device_bytes == 16 * MiB

    def test_cpu_access_migrates_back(self, system):
        buf = system.malloc_managed(8 * MiB)
        system.gpu_access(buf)
        system.cpu_access(buf)
        assert not buf.on_device.any()
        assert system.counters.migrated_to_host_bytes == 8 * MiB

    def test_resident_access_is_free(self, system):
        buf = system.malloc_managed(8 * MiB)
        system.gpu_access(buf)
        assert system.gpu_access(buf) == 0.0

    def test_partial_range_access(self, system):
        buf = system.malloc_managed(16 * MiB)
        system.gpu_access(buf, offset_bytes=0, size_bytes=4 * MiB)
        assert buf.on_device[: 4 * MiB // PAGE_SIZE].all()
        assert not buf.on_device[4 * MiB // PAGE_SIZE :].any()

    def test_fault_batching(self, system):
        buf = system.malloc_managed(4 * MiB)  # 1024 pages, 256/batch
        system.gpu_access(buf)
        assert system.counters.gpu_fault_batches == 4

    def test_range_validation(self, system):
        buf = system.malloc_managed(1 * MiB)
        with pytest.raises(ValueError):
            system.gpu_access(buf, offset_bytes=1 * MiB, size_bytes=4096)


class TestPrefetch:
    def test_prefetch_avoids_fault_batches(self, system):
        buf = system.malloc_managed(16 * MiB)
        system.cpu_access(buf)
        system.prefetch(buf, "device")
        assert buf.on_device.all()
        assert system.counters.gpu_fault_batches == 0

    def test_prefetch_faster_than_faulting(self):
        a = UVMSystem()
        buf_a = a.malloc_managed(64 * MiB)
        a.cpu_access(buf_a)
        t0 = a.clock.now_ns
        a.gpu_access(buf_a)
        faulting = a.clock.now_ns - t0

        b = UVMSystem()
        buf_b = b.malloc_managed(64 * MiB)
        b.cpu_access(buf_b)
        t0 = b.clock.now_ns
        b.prefetch(buf_b, "device")
        prefetching = b.clock.now_ns - t0
        assert prefetching < faulting

    def test_prefetch_to_host(self, system):
        buf = system.malloc_managed(8 * MiB)
        system.gpu_access(buf)
        system.prefetch(buf, "host")
        assert not buf.on_device.any()

    def test_bad_target_rejected(self, system):
        buf = system.malloc_managed(1 * MiB)
        with pytest.raises(ValueError):
            system.prefetch(buf, "disk")


class TestOversubscription:
    def test_managed_exceeding_device_memory_works(self):
        """The UVM capability UPM gives up (paper Section 2.1)."""
        system = UVMSystem(UVMConfig(device_memory_bytes=64 * MiB))
        a = system.malloc_managed(48 * MiB, "a")
        b = system.malloc_managed(48 * MiB, "b")
        system.gpu_access(a)
        system.gpu_access(b)  # must evict part of a
        assert system.counters.evicted_bytes > 0
        assert system.device_bytes_in_use() <= 64 * MiB

    def test_explicit_device_alloc_cannot_oversubscribe(self):
        system = UVMSystem(UVMConfig(device_memory_bytes=64 * MiB))
        system.device_malloc(48 * MiB)
        with pytest.raises(DeviceOutOfMemoryError):
            system.device_malloc(48 * MiB)

    def test_device_free_returns_capacity(self):
        system = UVMSystem(UVMConfig(device_memory_bytes=64 * MiB))
        buf = system.device_malloc(48 * MiB)
        system.device_free(buf)
        system.device_malloc(48 * MiB)  # fits again


class TestThreeWayComparison:
    @pytest.fixture(scope="class")
    def results(self):
        return three_way_comparison(working_set_bytes=256 * MiB, iterations=5)

    def test_uvm_2_to_3x_slower_than_explicit(self, results):
        rel = results["uvm/discrete"].relative_to(results["explicit/discrete"])
        assert 2.0 <= rel <= 3.5

    def test_prefetch_mitigates(self, results):
        assert results["uvm+prefetch/discrete"].time_ms < \
            results["uvm/discrete"].time_ms

    def test_upm_beats_all_discrete_models(self, results):
        upm = results["upm/MI300A"].time_ms
        for name, r in results.items():
            if name != "upm/MI300A":
                assert upm < r.time_ms, name

    def test_upm_moves_no_data(self, results):
        assert results["upm/MI300A"].moved_bytes == 0
        assert results["uvm/discrete"].moved_bytes > 0

    def test_explicit_moves_twice_per_iteration(self):
        r = run_explicit_discrete(64 * MiB, iterations=3)
        assert r.moved_bytes == 2 * 3 * 64 * MiB
