"""Golden advisories: the Rodinia ports and examples/slow_port.py.

Three kinds of ground truth pin the advisor's output:

* the six explicit-model ports each carry at least one redundant-copy
  advisory, and the six managed-model ports advise clean — the paper's
  central porting claim (§4.3) read off the shipped sources statically;
* ``examples/slow_port.py`` triggers every check, one scenario per
  rule;
* the static fault-storm prediction cross-validates against hipsan's
  *dynamic* verdict: the one managed port the advisor flags (nn) is
  exactly the one whose trace storms at full problem size.
"""

from pathlib import Path

import pytest

from repro.analyze import (
    Severity,
    advise_apps,
    advise_file,
    analyze_app,
    fingerprint,
    load_baseline,
    port_is_clean,
)
from repro.apps import ALL_APPS

REPO = Path(__file__).resolve().parent.parent
SLOW_PORT = REPO / "examples" / "slow_port.py"
BASELINE = REPO / "advise_baseline.json"


@pytest.fixture(scope="module")
def buckets():
    return advise_apps()


class TestPortGolden:
    def test_every_app_bucketed(self, buckets):
        assert set(buckets) == set(ALL_APPS)
        for name in buckets:
            assert set(buckets[name]) == {"explicit", "managed"}

    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    def test_explicit_ports_flag_redundant_copies(self, buckets, name):
        rules = {f.rule for f in buckets[name]["explicit"]}
        assert "advise.redundant-copy" in rules

    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    def test_managed_ports_advise_clean(self, buckets, name):
        assert port_is_clean(buckets[name]["managed"]), [
            f"{f.rule}: {f.message}"
            for f in buckets[name]["managed"]
            if f.severity > Severity.INFO
        ]

    def test_copy_advisories_are_warnings_and_some_are_priced(self, buckets):
        copies = [
            f
            for name in buckets
            for f in buckets[name]["explicit"]
            if f.rule == "advise.redundant-copy"
        ]
        assert all(f.severity == Severity.WARNING for f in copies)
        # Constant-size copies are priced at the paper's SDMA rate;
        # symbolically-sized ones legitimately stay unpriced.
        assert any(f.cost_ns and f.cost_ns > 0 for f in copies)


class TestSlowPortGolden:
    """One scenario per rule in the shipped slow-port example."""

    EXPECTED = {
        "redundant_copy": "advise.redundant-copy",
        "first_touch_hazard": "advise.first-touch",
        "fault_storm": "advise.fault-storm",
        "tlb_thrash": "advise.tlb-reach",
        "mixed_models": "advise.mixed-alloc",
        "sync_in_loop": "advise.sync-in-loop",
    }

    @pytest.fixture(scope="class")
    def by_function(self):
        findings = advise_file(SLOW_PORT)
        grouped = {}
        for f in findings:
            grouped.setdefault(f.function, set()).add(f.rule)
        return grouped

    @pytest.mark.parametrize("scenario,rule", sorted(EXPECTED.items()))
    def test_scenario_triggers_its_rule(self, by_function, scenario, rule):
        assert rule in by_function.get(scenario, set())

    def test_all_six_rules_covered(self, by_function):
        seen = set().union(*by_function.values())
        assert set(self.EXPECTED.values()) <= seen

    def test_slow_port_runs_clean_dynamically(self):
        # The example's sins are performance-only: it computes correct
        # results, so it stays runnable (the doc gate imports it too).
        import runpy

        module = runpy.run_path(str(SLOW_PORT))
        for scenario in module["SCENARIOS"]:
            scenario()


class TestBaselineGolden:
    def test_checked_in_baseline_covers_the_ports(self, buckets):
        """`repro advise --apps --baseline advise_baseline.json` gates
        green: every current >=WARNING advisory is fingerprinted."""
        baseline = load_baseline(BASELINE)
        seen, missing = set(), []
        for name in sorted(buckets):
            for port in sorted(buckets[name]):
                for f in buckets[name][port]:
                    key = (f.rule, f.file, f.line, f.message)
                    if key in seen or f.severity < Severity.WARNING:
                        continue
                    seen.add(key)
                    if fingerprint(f) not in baseline:
                        missing.append(f"{f.rule} @ {f.file}:{f.line}")
        assert not missing, missing


class TestHipsanCrossValidation:
    """Static fault-storm predictions match the dynamic sanitizer."""

    def test_static_prediction_names_only_nn(self, buckets):
        stormy = {
            name
            for name in buckets
            if any(
                f.rule == "advise.fault-storm"
                for f in buckets[name]["managed"]
            )
        }
        assert stormy == {"nn"}

    def test_nn_storms_dynamically_at_full_size(self):
        findings = analyze_app(
            "nn", "unified", params={"records": 1 << 20, "k": 4}
        )
        assert any(f.rule == "hipsan.fault-storm" for f in findings)

    @pytest.mark.parametrize("name", ["hotspot", "srad_v1"])
    def test_storm_free_ports_stay_quiet_dynamically(self, name):
        findings = analyze_app(name, "unified")
        assert not any(f.rule == "hipsan.fault-storm" for f in findings)
