"""Unit tests for the amdgpu fragment scan (repro.core.fragments)."""

import numpy as np
import pytest

from repro.core.fragments import (
    average_fragment_bytes,
    compute_fragments,
    contiguous_runs,
    distinct_fragments,
    fragment_histogram,
)


class TestContiguousRuns:
    def test_empty(self):
        assert contiguous_runs(np.array([], dtype=np.int64)) == []

    def test_single_run(self):
        assert contiguous_runs(np.arange(5)) == [(0, 5)]

    def test_all_isolated(self):
        assert contiguous_runs(np.array([0, 2, 4])) == [(0, 1), (1, 1), (2, 1)]

    def test_mixed(self):
        frames = np.array([10, 11, 12, 20, 30, 31])
        assert contiguous_runs(frames) == [(0, 3), (3, 1), (4, 2)]


class TestComputeFragments:
    def test_scattered_pages_are_exponent_zero(self):
        frames = np.array([5, 99, 17, 1000])
        assert (compute_fragments(frames, base_vpn=0) == 0).all()

    def test_aligned_contiguous_block(self):
        # 16 pages, VA and PA both 16-aligned: one exponent-4 fragment.
        frames = np.arange(64, 80)
        exps = compute_fragments(frames, base_vpn=16)
        assert (exps == 4).all()

    def test_unaligned_physical_run_decomposes(self):
        # Physically contiguous but starting at an odd frame: the first
        # page cannot join a larger block; the aligned middle can.
        frames = np.arange(7, 7 + 8)
        exps = compute_fragments(frames, base_vpn=7)
        assert exps[0] == 0  # pfn 7 has no trailing zeros
        assert exps.max() >= 2  # pfn 8..11 forms an aligned 4-page block

    def test_odd_va_pa_delta_prevents_fragments(self):
        # VA and PA alignments can never coincide when their delta is
        # odd, so a physically contiguous run still yields single pages.
        frames = np.arange(7, 7 + 8)
        exps = compute_fragments(frames, base_vpn=0)
        assert (exps == 0).all()

    def test_virtual_alignment_limits(self):
        # PA aligned, but VA base odd: blocks limited by VPN alignment.
        frames = np.arange(64, 72)
        exps = compute_fragments(frames, base_vpn=1)
        assert exps[0] == 0

    def test_aligned_pair(self):
        frames = np.array([10, 11])  # pfn 10 is 2-aligned
        exps = compute_fragments(frames, base_vpn=2)
        assert (exps == 1).all()

    def test_unaligned_pair_stays_single_pages(self):
        frames = np.array([11, 12])
        exps = compute_fragments(frames, base_vpn=2)
        assert (exps == 0).all()

    def test_max_exponent_cap(self):
        frames = np.arange(0, 64)
        exps = compute_fragments(frames, base_vpn=0, max_exponent=3)
        assert exps.max() == 3

    def test_block_coverage_is_consistent(self):
        # Every aligned block of 2**e pages shares one exponent.
        frames = np.arange(0, 128)
        exps = compute_fragments(frames, base_vpn=0)
        for start in range(0, 128, 1 << int(exps[0])):
            block = exps[start : start + (1 << int(exps[start]))]
            assert (block == block[0]).all()

    def test_empty(self):
        assert len(compute_fragments(np.array([], dtype=np.int64), 0)) == 0


class TestAggregates:
    def test_fragment_histogram(self):
        exps = np.array([0, 0, 1, 1, 4])
        assert fragment_histogram(exps) == {0: 2, 1: 2, 4: 1}

    def test_distinct_fragments_single_pages(self):
        assert distinct_fragments(np.zeros(10, dtype=np.int8)) == 10

    def test_distinct_fragments_blocks(self):
        # 16 pages as one exponent-4 block -> 1 fragment.
        assert distinct_fragments(np.full(16, 4, dtype=np.int8)) == 1

    def test_distinct_fragments_mixed(self):
        exps = np.concatenate([np.full(16, 4), np.zeros(4)]).astype(np.int8)
        assert distinct_fragments(exps) == 5

    def test_average_fragment_bytes(self):
        exps = np.full(16, 4, dtype=np.int8)
        assert average_fragment_bytes(exps) == pytest.approx(64 * 1024)
        assert average_fragment_bytes(np.zeros(4, dtype=np.int8)) == 4096.0

    def test_average_fragment_empty(self):
        assert average_fragment_bytes(np.array([], dtype=np.int8)) == 0.0
