"""Tests for the calibrated performance models (repro.perf).

These pin the paper's reported numbers as regression anchors: Fig. 2
(latency), Fig. 3 (bandwidth), Figs. 4-5 (atomics), Figs. 7-8 (faults).
"""

import numpy as np
import pytest

from repro.hw.config import GiB, KiB, MiB, default_config
from repro.perf.atomics import (
    cpu_atomic_throughput,
    cpu_atomic_update_cost_ns,
    gpu_atomic_throughput,
    hybrid_atomic_throughput,
)
from repro.perf.bandwidth import (
    BufferTraits,
    best_cpu_stream_bandwidth,
    cpu_stream_bandwidth,
    gpu_stream_bandwidth,
    stream_time_ns,
)
from repro.perf.faultmodel import (
    fault_burst_time_ns,
    fault_throughput_pages_per_s,
    prefault_speedup,
    sample_latency_distribution,
)
from repro.perf.latency import cpu_chase_latency_ns, gpu_chase_latency_ns


@pytest.fixture(scope="module")
def cfg():
    return default_config()


def traits(on_demand=False, uncached=False, fragment=64 * KiB, balance=1.0):
    return BufferTraits(on_demand, uncached, fragment, balance)


class TestLatencyModel:
    def test_gpu_plateaus(self, cfg):
        assert gpu_chase_latency_ns(cfg, 1 * KiB) == pytest.approx(57, abs=1)
        assert 100 <= gpu_chase_latency_ns(cfg, 1 * MiB) <= 108
        assert 205 <= gpu_chase_latency_ns(cfg, 128 * MiB) <= 218
        assert 333 <= gpu_chase_latency_ns(cfg, 4 * GiB) <= 350

    def test_cpu_plateaus(self, cfg):
        assert cpu_chase_latency_ns(cfg, 1 * KiB) == pytest.approx(1.0, abs=0.2)
        assert 228 <= cpu_chase_latency_ns(cfg, 4 * GiB) <= 241

    def test_uncached_is_flat_hbm(self, cfg):
        assert cpu_chase_latency_ns(cfg, 1 * KiB, uncached=True) == pytest.approx(
            cfg.cpu_hbm_latency_ns
        )
        assert gpu_chase_latency_ns(cfg, 1 * KiB, uncached=True) == pytest.approx(
            cfg.gpu_hbm_latency_ns
        )

    def test_monotonic_in_working_set(self, cfg):
        sizes = [1 * KiB, 64 * KiB, 1 * MiB, 32 * MiB, 512 * MiB, 4 * GiB]
        for fn in (cpu_chase_latency_ns, gpu_chase_latency_ns):
            values = [fn(cfg, s) for s in sizes]
            assert values == sorted(values)


class TestBandwidthModel:
    def test_gpu_tiers_match_fig3(self, cfg):
        hip = gpu_stream_bandwidth(cfg, traits(fragment=64 * KiB))
        pinned = gpu_stream_bandwidth(cfg, traits(fragment=8 * KiB))
        on_demand = gpu_stream_bandwidth(cfg, traits(on_demand=True, fragment=8 * KiB))
        managed = gpu_stream_bandwidth(cfg, traits(uncached=True))
        assert hip == pytest.approx(3.6e12, rel=0.02)
        assert 2.1e12 <= pinned <= 2.2e12
        assert 1.8e12 <= on_demand <= 1.9e12
        assert managed == pytest.approx(103e9)
        assert hip > pinned > on_demand > managed

    def test_hipmalloc_advantage_factor(self, cfg):
        # Paper: hipMalloc is 1.6-2.0x faster than other GPU options.
        hip = gpu_stream_bandwidth(cfg, traits(fragment=64 * KiB))
        others = [
            gpu_stream_bandwidth(cfg, traits(fragment=8 * KiB)),
            gpu_stream_bandwidth(cfg, traits(on_demand=True, fragment=4 * KiB)),
        ]
        for other in others:
            assert 1.6 <= hip / other <= 2.0

    def test_cpu_case_a_peak(self, cfg):
        bw, threads = best_cpu_stream_bandwidth(cfg, traits(balance=1.0))
        assert bw == pytest.approx(208e9, rel=0.01)
        assert threads == 24

    def test_cpu_case_b_peak(self, cfg):
        bw, threads = best_cpu_stream_bandwidth(cfg, traits(balance=0.2))
        assert bw == pytest.approx(181e9, rel=0.01)
        assert threads == 9

    def test_cpu_case_b_declines_past_knee(self, cfg):
        t = traits(balance=0.2)
        allcore = cpu_stream_bandwidth(cfg, t, 24)
        assert 173e9 <= allcore <= 176e9

    def test_cpu_single_thread_equal_both_cases(self, cfg):
        a = cpu_stream_bandwidth(cfg, traits(balance=1.0), 1)
        b = cpu_stream_bandwidth(cfg, traits(balance=0.2), 1)
        assert a == b

    def test_cpu_uncached_capped(self, cfg):
        bw = cpu_stream_bandwidth(cfg, traits(uncached=True), 24)
        assert bw <= cfg.bandwidth.cpu_uncached_bytes_per_s

    def test_gpu_vs_cpu_utilisation(self, cfg):
        # Paper: CPU reaches ~3% of theoretical peak, GPU ~67%.
        peak = cfg.hbm.peak_bandwidth_bytes_per_s
        cpu_frac = 208e9 / peak
        gpu_frac = gpu_stream_bandwidth(cfg, traits()) / peak
        assert cpu_frac < 0.05
        assert 0.6 <= gpu_frac <= 0.75

    def test_stream_time(self):
        assert stream_time_ns(1000, 1e9) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            stream_time_ns(-1, 1e9)
        with pytest.raises(ValueError):
            stream_time_ns(1, 0)


class TestAtomicsModel:
    def test_uint64_3x_fp64_on_cpu(self, cfg):
        for elements in (1, 1 << 10):
            u = cpu_atomic_throughput(cfg, elements, 1, "uint64")
            f = cpu_atomic_throughput(cfg, elements, 1, "fp64")
            assert u / f == pytest.approx(3.0, rel=0.05)

    def test_gpu_dtype_insensitive(self, cfg):
        for elements in (1, 1 << 10, 1 << 20, 1 << 30):
            u = gpu_atomic_throughput(cfg, elements, 3328, "uint64")
            f = gpu_atomic_throughput(cfg, elements, 3328, "fp64")
            assert u == f

    def test_small_arrays_dip_at_two_threads(self, cfg):
        for elements in (1, 1 << 10, 1 << 20):
            one = cpu_atomic_throughput(cfg, elements, 1, "uint64")
            two = cpu_atomic_throughput(cfg, elements, 2, "uint64")
            assert two < one

    def test_1m_overtakes_single_thread_at_six(self, cfg):
        one = cpu_atomic_throughput(cfg, 1 << 20, 1, "uint64")
        assert cpu_atomic_throughput(cfg, 1 << 20, 3, "uint64") < one
        assert cpu_atomic_throughput(cfg, 1 << 20, 6, "uint64") > one

    def test_1m_is_cpu_sweet_spot(self, cfg):
        at24 = {
            s: cpu_atomic_throughput(cfg, s, 24, "uint64")
            for s in (1, 1 << 10, 1 << 20, 1 << 30)
        }
        assert max(at24, key=at24.get) == 1 << 20

    def test_1g_scales_linearly_with_lower_slope(self, cfg):
        t12 = cpu_atomic_throughput(cfg, 1 << 30, 12, "uint64")
        t24 = cpu_atomic_throughput(cfg, 1 << 30, 24, "uint64")
        assert t24 / t12 == pytest.approx(2.0, rel=0.05)
        assert t24 < cpu_atomic_throughput(cfg, 1 << 20, 24, "uint64")

    def test_uint64_1k_faster_than_1g(self, cfg):
        for threads in (1, 6, 12, 24):
            assert cpu_atomic_throughput(cfg, 1 << 10, threads, "uint64") > \
                cpu_atomic_throughput(cfg, 1 << 30, threads, "uint64")

    def test_fp64_1k_similar_or_slower_than_1g(self, cfg):
        t1k = cpu_atomic_throughput(cfg, 1 << 10, 24, "fp64")
        t1g = cpu_atomic_throughput(cfg, 1 << 30, 24, "fp64")
        assert t1k <= t1g * 1.25

    def test_single_element_decreases_with_threads(self, cfg):
        values = [
            cpu_atomic_throughput(cfg, 1, t, "uint64") for t in (1, 2, 6, 24)
        ]
        assert values[0] == max(values)

    def test_gpu_higher_than_cpu_except_few_threads(self, cfg):
        # Many threads: GPU wins decisively on 1M.
        assert gpu_atomic_throughput(cfg, 1 << 20, 3328, "uint64") > \
            10 * cpu_atomic_throughput(cfg, 1 << 20, 24, "uint64")
        # 64 GPU threads vs 24 CPU threads on 1M: GPU does not dominate.
        assert gpu_atomic_throughput(cfg, 1 << 20, 64, "uint64") < \
            cpu_atomic_throughput(cfg, 1 << 20, 24, "uint64")

    def test_gpu_single_element_flat(self, cfg):
        values = {
            gpu_atomic_throughput(cfg, 1, t, "uint64")
            for t in (640, 3328, 14592)
        }
        assert len(values) == 1

    def test_gpu_1m_highest(self, cfg):
        at_max = {
            s: gpu_atomic_throughput(cfg, s, 14592, "uint64")
            for s in (1, 1 << 10, 1 << 20, 1 << 30)
        }
        assert max(at_max, key=at_max.get) == 1 << 20

    def test_invalid_inputs_rejected(self, cfg):
        with pytest.raises(ValueError):
            cpu_atomic_throughput(cfg, 0, 1, "uint64")
        with pytest.raises(ValueError):
            gpu_atomic_throughput(cfg, 1, 0, "uint64")


class TestHybridAtomics:
    def test_1k_cpu_crushed_at_high_gpu_threads(self, cfg):
        for gpu_threads in (3328, 6400, 14592):
            h = hybrid_atomic_throughput(cfg, 1 << 10, 6, gpu_threads, "uint64")
            assert 0.11 <= h.cpu_relative <= 0.28

    def test_1k_cpu_best_case_within_paper_band(self, cfg):
        h = hybrid_atomic_throughput(cfg, 1 << 10, 6, 64, "uint64")
        assert 0.7 <= h.cpu_relative <= 0.9  # "at best within 13%"

    def test_1k_gpu_stable_below_3328(self, cfg):
        h = hybrid_atomic_throughput(cfg, 1 << 10, 6, 1280, "uint64")
        assert h.gpu_relative >= 0.95

    def test_1k_gpu_drops_to_about_079_at_max(self, cfg):
        h = hybrid_atomic_throughput(cfg, 1 << 10, 24, 14592, "uint64")
        assert 0.75 <= h.gpu_relative <= 0.85

    def test_1m_uint64_corun_speedup(self, cfg):
        best = max(
            hybrid_atomic_throughput(cfg, 1 << 20, 6, g, "uint64").cpu_relative
            for g in (2304, 3328, 6400)
        )
        assert 1.05 <= best <= 1.2  # paper: up to 1.14x

    def test_1m_gpu_slight_speedup(self, cfg):
        h = hybrid_atomic_throughput(cfg, 1 << 20, 6, 6400, "uint64")
        assert 1.0 <= h.gpu_relative <= 1.05


class TestFaultModel:
    def test_plateaus_match_fig7(self, cfg):
        assert fault_throughput_pages_per_s(cfg, "gpu_major", 10**6) == \
            pytest.approx(1.1e6, rel=0.05)
        assert fault_throughput_pages_per_s(cfg, "gpu_minor", 10**7) == \
            pytest.approx(9.0e6, rel=0.05)
        assert fault_throughput_pages_per_s(cfg, "cpu", 10**5) == \
            pytest.approx(872e3, rel=0.05)
        assert fault_throughput_pages_per_s(cfg, "cpu12", 10**5) == \
            pytest.approx(3.7e6, rel=0.05)

    def test_throughput_monotonic(self, cfg):
        for scenario in ("gpu_major", "gpu_minor", "cpu", "cpu12"):
            values = [
                fault_throughput_pages_per_s(cfg, scenario, n)
                for n in (1, 10, 100, 10**4, 10**6)
            ]
            assert values == sorted(values)

    def test_gpu_minor_ramps_to_saturation(self, cfg):
        # The GPU-minor curve keeps climbing until ~10 M pages.
        at_1m = fault_throughput_pages_per_s(cfg, "gpu_minor", 10**6)
        at_10m = fault_throughput_pages_per_s(cfg, "gpu_minor", 10**7)
        assert at_10m > at_1m * 1.05

    def test_prefault_speedup_near_paper(self, cfg):
        assert 1.8 <= prefault_speedup(cfg, 10**7) <= 2.8

    def test_latency_distributions_match_fig8(self, cfg):
        cpu = sample_latency_distribution(cfg, "cpu", 50_000)
        minor = sample_latency_distribution(cfg, "gpu_minor", 50_000)
        major = sample_latency_distribution(cfg, "gpu_major", 50_000)
        assert cpu.mean() == pytest.approx(9e3, rel=0.03)
        assert np.percentile(cpu, 95) == pytest.approx(11e3, rel=0.05)
        assert minor.mean() == pytest.approx(16e3, rel=0.03)
        assert np.percentile(minor, 95) == pytest.approx(20e3, rel=0.05)
        assert major.mean() == pytest.approx(18e3, rel=0.03)
        assert np.percentile(major, 95) == pytest.approx(22e3, rel=0.05)

    def test_gpu_latency_ratio(self, cfg):
        # Paper: GPU fault latency is 1.8-2.0x the CPU latency.
        cpu = sample_latency_distribution(cfg, "cpu", 20_000).mean()
        minor = sample_latency_distribution(cfg, "gpu_minor", 20_000).mean()
        major = sample_latency_distribution(cfg, "gpu_major", 20_000).mean()
        assert 1.7 <= minor / cpu <= 2.1
        assert 1.8 <= major / cpu <= 2.2

    def test_burst_time_scales(self, cfg):
        short = fault_burst_time_ns(cfg, "cpu", 10)
        long = fault_burst_time_ns(cfg, "cpu", 10_000)
        assert long > short
        assert fault_burst_time_ns(cfg, "cpu", 0) == 0.0

    def test_unknown_scenario_rejected(self, cfg):
        with pytest.raises(ValueError):
            fault_throughput_pages_per_s(cfg, "dma", 100)
