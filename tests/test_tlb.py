"""Unit tests for the TLB models (repro.core.tlb)."""

import numpy as np
import pytest

from repro.core.tlb import TLB, streaming_tlb_misses
from repro.hw.config import TLBGeometry


def make_tlb(entries=4, fragment_aware=False):
    return TLB(TLBGeometry("test", entries, 100.0, fragment_aware=fragment_aware))


class TestLRUTLB:
    def test_first_access_misses(self):
        tlb = make_tlb()
        assert not tlb.access(0)
        assert tlb.stats.misses == 1

    def test_repeat_access_hits(self):
        tlb = make_tlb()
        tlb.access(0)
        assert tlb.access(0)
        assert tlb.stats.hits == 1

    def test_capacity_eviction_lru(self):
        tlb = make_tlb(entries=2)
        tlb.access(0)
        tlb.access(1)
        tlb.access(2)  # evicts 0
        assert not tlb.access(0)
        assert tlb.access(2)

    def test_access_refreshes_lru_order(self):
        tlb = make_tlb(entries=2)
        tlb.access(0)
        tlb.access(1)
        tlb.access(0)  # 1 is now LRU
        tlb.access(2)  # evicts 1
        assert tlb.access(0)
        assert not tlb.access(1)

    def test_flush(self):
        tlb = make_tlb()
        tlb.access(0)
        tlb.flush()
        assert not tlb.access(0)
        assert tlb.occupancy == 1

    def test_reset_stats_keeps_entries(self):
        tlb = make_tlb()
        tlb.access(0)
        tlb.reset_stats()
        assert tlb.stats.accesses == 0
        assert tlb.access(0)  # still resident

    def test_miss_rate(self):
        tlb = make_tlb()
        tlb.access(0)
        tlb.access(0)
        assert tlb.stats.miss_rate == pytest.approx(0.5)
        assert TLB(TLBGeometry("idle", 4, 1.0)).stats.miss_rate == 0.0

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            make_tlb(entries=0)


class TestFragmentAwareTLB:
    def test_fragment_shares_entry(self):
        tlb = make_tlb(entries=1, fragment_aware=True)
        tlb.access(16, fragment_exponent=4)
        # Any page in the same aligned 16-page block hits.
        assert tlb.access(17, fragment_exponent=4)
        assert tlb.access(31, fragment_exponent=4)

    def test_different_blocks_miss(self):
        tlb = make_tlb(entries=8, fragment_aware=True)
        tlb.access(0, fragment_exponent=4)
        assert not tlb.access(16, fragment_exponent=4)

    def test_exponent_disambiguates_tags(self):
        tlb = make_tlb(entries=8, fragment_aware=True)
        tlb.access(0, fragment_exponent=4)
        # Same block id (0) but different exponent must not alias.
        assert not tlb.access(0, fragment_exponent=2)

    def test_not_fragment_aware_ignores_exponent(self):
        tlb = make_tlb(entries=8, fragment_aware=False)
        tlb.access(16, fragment_exponent=4)
        assert not tlb.access(17, fragment_exponent=4)

    def test_reach(self):
        aware = make_tlb(entries=32, fragment_aware=True)
        assert aware.reach_bytes(4) == 32 * 16 * 4096
        plain = make_tlb(entries=32)
        assert plain.reach_bytes(4) == 32 * 4096


class TestStreamingFastPath:
    def test_fits_in_tlb_compulsory_only(self):
        exps = np.full(16, 4, dtype=np.int8)  # one fragment
        assert streaming_tlb_misses(exps, passes=10, tlb_entries=32) == 1

    def test_thrashing_misses_every_pass(self):
        exps = np.zeros(100, dtype=np.int8)
        assert streaming_tlb_misses(exps, passes=10, tlb_entries=32) == 1000

    def test_fragment_aware_reduces_units(self):
        exps = np.full(64, 4, dtype=np.int8)  # 4 fragments of 16 pages
        aware = streaming_tlb_misses(exps, 10, 2, fragment_aware=True)
        plain = streaming_tlb_misses(exps, 10, 2, fragment_aware=False)
        assert aware == 40
        assert plain == 640

    def test_matches_exact_lru_simulation(self):
        # Cross-check the closed form against the exact TLB on a small
        # cyclic stream that thrashes.
        npages, entries, passes = 64, 8, 3
        exps = np.zeros(npages, dtype=np.int8)
        fast = streaming_tlb_misses(exps, passes, entries)
        tlb = make_tlb(entries=entries, fragment_aware=True)
        for _ in range(passes):
            for vpn in range(npages):
                tlb.access(vpn, 0)
        assert fast == tlb.stats.misses

    def test_matches_exact_lru_when_fitting(self):
        npages, entries = 8, 32
        exps = np.zeros(npages, dtype=np.int8)
        fast = streaming_tlb_misses(exps, 5, entries)
        tlb = make_tlb(entries=entries, fragment_aware=True)
        for _ in range(5):
            for vpn in range(npages):
                tlb.access(vpn, 0)
        assert fast == tlb.stats.misses == npages

    def test_empty_range(self):
        assert streaming_tlb_misses(np.array([], dtype=np.int8), 5, 8) == 0

    def test_positive_passes_required(self):
        with pytest.raises(ValueError):
            streaming_tlb_misses(np.zeros(4, dtype=np.int8), 0, 8)
