"""Tests for the static HIP API-misuse linter (repro.analyze.linter).

Each rule gets positive and negative coverage through ``lint_source``;
the final class is the CI gate itself: the shipped examples and ported
applications must lint clean of error-severity findings.
"""

import pathlib
import textwrap

import pytest

from repro.analyze import Severity, has_errors, lint_paths, lint_source

ROOT = pathlib.Path(__file__).resolve().parent.parent


def lint(code):
    return lint_source(textwrap.dedent(code), "snippet.py")


def rules(findings):
    return {f.rule for f in findings}


class TestMissingSync:
    def test_host_read_after_async_launch(self):
        findings = lint("""
            def f(hip, spec):
                hip.launchKernel(spec)
                hip.runCpuKernel(spec)
        """)
        assert "lint.missing-sync" in rules(findings)

    def test_sync_in_between_is_clean(self):
        findings = lint("""
            def f(hip, spec):
                hip.launchKernel(spec)
                hip.hipDeviceSynchronize()
                hip.runCpuKernel(spec)
        """)
        assert "lint.missing-sync" not in rules(findings)

    def test_np_view_of_alloc_after_launch(self):
        findings = lint("""
            def f(hip, spec):
                buf = hip.hipMalloc(1024)
                hip.launchKernel(spec)
                return buf.np.sum()
        """)
        assert "lint.missing-sync" in rules(findings)

    def test_hipmemcpy_counts_as_sync(self):
        findings = lint("""
            def f(hip, spec, dst, src):
                hip.launchKernel(spec)
                hip.hipMemcpy(dst, src)
                hip.runCpuKernel(spec)
        """)
        assert "lint.missing-sync" not in rules(findings)

    def test_severity_is_warning(self):
        findings = lint("""
            def f(hip, spec):
                hip.launchKernel(spec)
                hip.runCpuKernel(spec)
        """)
        finding = next(f for f in findings if f.rule == "lint.missing-sync")
        assert finding.severity == Severity.WARNING
        assert finding.line is not None


class TestLifetimeRules:
    def test_leaked_alloc_warns_in_runtime_owning_scope(self):
        findings = lint("""
            def f():
                hip = make_runtime(memory_gib=1)
                buf = hip.hipMalloc(1024)
                hip.hipDeviceSynchronize()
        """)
        assert "lint.leaked-alloc" in rules(findings)

    def test_borrowed_runtime_scope_is_exempt(self):
        # A scope that receives the runtime as a parameter borrows its
        # memory arena; the creator owns teardown (the app harness frees
        # everything after the timed window), so no leak warning here.
        findings = lint("""
            def f(hip):
                buf = hip.hipMalloc(1024)
                hip.hipDeviceSynchronize()
        """)
        assert "lint.leaked-alloc" not in rules(findings)

    def test_freed_alloc_does_not_warn(self):
        findings = lint("""
            def f():
                hip = make_runtime(memory_gib=1)
                buf = hip.hipMalloc(1024)
                hip.hipFree(buf)
        """)
        assert "lint.leaked-alloc" not in rules(findings)

    def test_returned_alloc_does_not_warn(self):
        findings = lint("""
            def f():
                hip = make_runtime(memory_gib=1)
                buf = hip.hipMalloc(1024)
                return buf
        """)
        assert "lint.leaked-alloc" not in rules(findings)

    def test_double_free_is_error(self):
        findings = lint("""
            def f(hip):
                buf = hip.hipMalloc(1024)
                hip.hipFree(buf)
                hip.hipFree(buf)
        """)
        finding = next(f for f in findings if f.rule == "lint.double-free")
        assert finding.severity == Severity.ERROR

    def test_use_after_free_is_error(self):
        findings = lint("""
            def f(hip, spec):
                buf = hip.hipMalloc(1024)
                hip.hipFree(buf)
                hip.hipMemcpy(buf, buf)
        """)
        assert "lint.use-after-free" in rules(findings)

    def test_free_before_sync_under_pending_async(self):
        findings = lint("""
            def f(hip, spec):
                buf = hip.hipMalloc(1024)
                hip.launchKernel(spec)
                hip.hipFree(buf)
        """)
        assert "lint.free-before-sync" in rules(findings)

    def test_free_after_sync_is_clean(self):
        findings = lint("""
            def f(hip, spec):
                buf = hip.hipMalloc(1024)
                hip.launchKernel(spec)
                hip.hipDeviceSynchronize()
                hip.hipFree(buf)
        """)
        assert "lint.free-before-sync" not in rules(findings)


class TestModelAndApiRules:
    def test_mixed_model_flagged(self):
        # The same logical buffer name hops between memory models.
        findings = lint("""
            def f(hip):
                buf = hip.hipMalloc(1024)
                hip.hipFree(buf)
                buf = hip.hipMallocManaged(1024)
                hip.hipFree(buf)
        """)
        assert "lint.mixed-model" in rules(findings)

    def test_single_model_is_clean(self):
        findings = lint("""
            def f(hip):
                a = hip.hipMalloc(1024)
                b = hip.hipHostMalloc(1024)
                hip.hipFree(a)
                hip.hipFree(b)
        """)
        assert "lint.mixed-model" not in rules(findings)

    def test_deprecated_api_names_replacement(self):
        findings = lint("""
            def f(hip):
                buf = hip.hipMallocHost(1024)
                hip.hipFree(buf)
        """)
        finding = next(f for f in findings if f.rule == "lint.deprecated-api")
        assert finding.severity == Severity.ERROR
        assert "hipHostMalloc" in (finding.hint or "")

    def test_unknown_api_is_error(self):
        findings = lint("""
            def f(hip):
                hip.hipMallocAsync(1024)
        """)
        assert "lint.unknown-api" in rules(findings)

    def test_known_api_not_flagged(self):
        findings = lint("""
            def f(hip, event, stream):
                hip.hipEventRecord(event, stream)
                hip.hipStreamWaitEvent(stream, event)
                hip.hipEventSynchronize(event)
        """)
        assert "lint.unknown-api" not in rules(findings)

    def test_locally_defined_hip_name_not_flagged(self):
        findings = lint("""
            def hipCustomHelper(x):
                return x

            def f():
                return hipCustomHelper(1)
        """)
        assert "lint.unknown-api" not in rules(findings)

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "broken.py")
        assert rules(findings) == {"lint.syntax-error"}
        assert has_errors(findings)


class TestLintPaths:
    def test_exclude_by_name(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("hipBogusCall()\n")
        assert lint_paths([tmp_path], exclude=("bad.py",)) == []
        assert has_errors(lint_paths([tmp_path]))

    def test_findings_carry_file_and_line(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1\nhipBogusCall()\n")
        (finding,) = lint_paths([bad])
        assert finding.file.endswith("bad.py")
        assert finding.line == 2


class TestShippedSourcesGate:
    """The CI gate: our own examples and ports lint clean of errors."""

    def test_examples_have_no_error_findings(self):
        findings = lint_paths(
            [ROOT / "examples"], exclude=("examples/racey_port.py",)
        )
        errors = [f for f in findings if f.severity >= Severity.ERROR]
        assert errors == [], errors

    def test_apps_have_no_error_findings(self):
        findings = lint_paths([ROOT / "src" / "repro" / "apps"])
        errors = [f for f in findings if f.severity >= Severity.ERROR]
        assert errors == [], errors

    def test_racey_port_itself_parses(self):
        findings = lint_paths([ROOT / "examples" / "racey_port.py"])
        assert "lint.syntax-error" not in rules(findings)


class TestLintCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        good = tmp_path / "good.py"
        good.write_text("def f(hip):\n    hip.hipDeviceSynchronize()\n")
        code = main(["lint", str(tmp_path)])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_errors(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("hipBogusCall()\n")
        assert main(["lint", str(tmp_path)]) == 1

    def test_json_output(self, tmp_path, capsys):
        import json

        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("hipBogusCall()\n")
        main(["lint", "--json", str(tmp_path)])
        data = json.loads(capsys.readouterr().out)
        assert data[0]["rule"] == "lint.unknown-api"

    def test_sarif_output_is_valid(self, tmp_path, capsys):
        import json

        from repro.analyze import validate_sarif
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("hipBogusCall()\n")
        main(["lint", "--format", "sarif", str(tmp_path)])
        doc = json.loads(capsys.readouterr().out)
        assert validate_sarif(doc) == []
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert any(
            r["ruleId"] == "lint.unknown-api" for r in run["results"]
        )
