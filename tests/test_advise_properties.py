"""Property tests for the advisor's CFG builder and dataflow fixpoint.

Random jump-free program shapes (nested if/for/while/try over a small
statement alphabet) must always produce a CFG where

* every statement/header node is reachable from entry,
* entry dominates and exit postdominates every reachable node,
* the worklist fixpoint is actually a fixpoint: re-applying any node's
  transfer to its converged in-state changes no successor's in-state,
* analysis is deterministic: advising the same source twice gives the
  same findings.
"""

import ast

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.analyze import advise_source  # noqa: E402
from repro.analyze.advise.cfg import build_cfg  # noqa: E402
from repro.analyze.advise.dataflow import (  # noqa: E402
    AbsState,
    FunctionResult,
    _Interp,
    compute_in_states,
)

# -- program generator -------------------------------------------------
#
# A program is a tree of blocks.  Leaves are simple statements drawn
# from a small alphabet that exercises the dataflow transfer (runtime
# construction, allocation, launch, sync, arithmetic); interior nodes
# are compound statements.  No return/break/continue, so every node is
# reachable and all flow falls through to exit.

SIMPLE = (
    "hip = make_runtime(memory_gib=1, xnack=True)",
    'buf = hip.array(1 << 12, np.float32, "hipMalloc", name="b")',
    'buf = hip.array(1 << 12, np.float32, "malloc", name="m")',
    'hip.launchKernel(KernelSpec("k", [BufferAccess(buf.allocation, "read")]))',
    "hip.hipDeviceSynchronize()",
    "x = x + 1",
    "y = x",
    "pass",
)

simple_stmt = st.sampled_from(SIMPLE)


def _compound(block):
    return st.one_of(
        st.tuples(st.just("if"), block, block),
        st.tuples(st.just("while"), block),
        st.tuples(st.just("for"), block),
        st.tuples(st.just("try"), block, block),
    )


block = st.recursive(
    st.lists(simple_stmt, min_size=1, max_size=4),
    lambda inner: st.lists(
        st.one_of(simple_stmt, _compound(inner)), min_size=1, max_size=4
    ),
    max_leaves=12,
)


def render(stmts, indent=0):
    pad = "    " * indent
    lines = []
    for stmt in stmts:
        if isinstance(stmt, str):
            lines.append(pad + stmt)
        elif stmt[0] == "if":
            lines.append(pad + "if cond:")
            lines.extend(render(stmt[1], indent + 1))
            lines.append(pad + "else:")
            lines.extend(render(stmt[2], indent + 1))
        elif stmt[0] == "while":
            lines.append(pad + "while cond:")
            lines.extend(render(stmt[1], indent + 1))
        elif stmt[0] == "for":
            lines.append(pad + "for i in items:")
            lines.extend(render(stmt[1], indent + 1))
        elif stmt[0] == "try":
            lines.append(pad + "try:")
            lines.extend(render(stmt[1], indent + 1))
            lines.append(pad + "except ValueError:")
            lines.extend(render(stmt[2], indent + 1))
    return lines


def source_of(tree):
    return "\n".join(["x = 0"] + render(tree)) + "\n"


@settings(max_examples=60, deadline=None)
@given(block)
def test_statement_nodes_reachable_and_bracketed(tree):
    cfg = build_cfg(ast.parse(source_of(tree)).body)
    reachable = cfg.reachable()
    for node in cfg.statement_nodes():
        assert node.id in reachable
    dom = cfg.dominators()
    postdom = cfg.postdominators()
    for node in reachable:
        assert cfg.entry in dom[node]
        assert cfg.exit in postdom[node]


@settings(max_examples=60, deadline=None)
@given(block)
def test_loop_regions_contain_their_bodies(tree):
    cfg = build_cfg(ast.parse(source_of(tree)).body)
    for index, loop in enumerate(cfg.loops):
        assert loop.head in cfg.nodes
        for member in loop.body:
            assert index in cfg.loops_of[member]


@settings(max_examples=40, deadline=None)
@given(block)
def test_fixpoint_is_stable(tree):
    body = ast.parse(source_of(tree)).body
    cfg = build_cfg(body)
    result = FunctionResult(
        qualname="prog", file="prog.py", param_names=[], param_defaults={}
    )
    interp = _Interp(result, cfg, {})
    in_states = compute_in_states(interp, cfg, AbsState(env={}))
    # Every reached node's transfer, re-applied, must not change any
    # successor's converged in-state.
    for node_id, state in in_states.items():
        out = interp.transfer(cfg.nodes[node_id], state.copy(), emit=False)
        for succ in cfg.succ[node_id]:
            assert succ in in_states
            assert not in_states[succ].copy().merge(out)


@settings(max_examples=25, deadline=None)
@given(block)
def test_analysis_is_deterministic(tree):
    src = source_of(tree)
    first = advise_source(src, "prog.py")
    second = advise_source(src, "prog.py")
    assert [
        (f.rule, f.line, f.function, f.message) for f in first
    ] == [
        (f.rule, f.line, f.function, f.message) for f in second
    ]
