"""Unit tests for the fault handler and XNACK semantics (repro.core.faults)."""

import numpy as np
import pytest

from repro.core.faults import GPUMemoryAccessError
from repro.core.address_space import GPU_ACCESS_NEVER
from repro.hw.config import PAGE_SIZE


class TestCPUOnDemandFaults:
    def test_first_touch_allocates_and_maps(self, apu):
        buf = apu.memory.malloc(16 * PAGE_SIZE)
        report = apu.faults.touch_range(buf.vma, 0, 16, "cpu")
        assert report.cpu_fault_events == 16  # one per page
        assert report.cpu_faulted_pages == 16
        assert buf.vma.sys_valid.all()
        assert buf.vma.resident_pages() == 16

    def test_second_touch_no_faults(self, apu):
        buf = apu.memory.malloc(4 * PAGE_SIZE)
        apu.faults.touch_range(buf.vma, 0, 4, "cpu")
        report = apu.faults.touch_range(buf.vma, 0, 4, "cpu")
        assert not report.any_faults
        assert report.service_time_ns == 0.0

    def test_partial_touch(self, apu):
        buf = apu.memory.malloc(8 * PAGE_SIZE)
        apu.faults.touch_range(buf.vma, 2, 3, "cpu")
        assert buf.vma.resident_pages() == 3
        assert buf.vma.sys_valid[2:5].all()

    def test_counters_accumulate(self, apu):
        buf = apu.memory.malloc(4 * PAGE_SIZE)
        apu.faults.touch_range(buf.vma, 0, 2, "cpu")
        apu.faults.touch_range(buf.vma, 2, 2, "cpu")
        assert apu.faults.counters.cpu_fault_events == 4

    def test_service_time_positive(self, apu):
        buf = apu.memory.malloc(4 * PAGE_SIZE)
        report = apu.faults.touch_range(buf.vma, 0, 4, "cpu")
        assert report.service_time_ns > 0

    def test_concurrency_reduces_service_time(self, apu):
        a = apu.memory.malloc(256 * PAGE_SIZE)
        b = apu.memory.malloc(256 * PAGE_SIZE)
        t1 = apu.faults.touch_range(a.vma, 0, 256, "cpu", concurrency=1)
        t12 = apu.faults.touch_range(b.vma, 0, 256, "cpu", concurrency=12)
        assert t12.service_time_ns < t1.service_time_ns


class TestCPUFaultAround:
    def test_up_front_memory_faults_in_batches(self, apu):
        buf = apu.memory.hip_malloc(1 << 20)  # 256 pages, all backed
        report = apu.faults.touch_range(buf.vma, 0, 256, "cpu")
        # 512 KiB fault-around -> 128 pages per event -> 2 events.
        assert report.cpu_fault_events == 2
        assert report.cpu_faulted_pages == 256

    def test_gpu_touched_halves_granularity(self, apu):
        buf = apu.memory.hip_malloc(1 << 20)
        apu.faults.touch_range(buf.vma, 0, 256, "gpu")
        report = apu.faults.touch_range(buf.vma, 0, 256, "cpu")
        assert report.cpu_fault_events == 4  # 256 KiB windows

    def test_sparse_touch_counts_windows(self, apu):
        buf = apu.memory.hip_malloc(4 << 20)  # 1024 pages
        # Touch one page in each of three distinct 128-page windows.
        for page in (0, 200, 900):
            apu.faults.touch_range(buf.vma, page, 1, "cpu")
        assert apu.faults.counters.cpu_fault_events == 3


class TestGPUFaults:
    def test_major_fault_allocates_chunks(self, apu):
        buf = apu.memory.malloc(64 * PAGE_SIZE)
        report = apu.faults.touch_range(buf.vma, 0, 64, "gpu")
        assert report.gpu_major_pages == 64
        assert buf.vma.gpu_valid.all()
        assert buf.vma.sys_valid.all()  # system table also populated
        # Chunked allocation: physically contiguous runs -> big fragments.
        assert buf.vma.fragment.max() >= 4

    def test_minor_fault_propagates_only(self, apu):
        buf = apu.memory.malloc(16 * PAGE_SIZE)
        apu.faults.touch_range(buf.vma, 0, 16, "cpu")
        report = apu.faults.touch_range(buf.vma, 0, 16, "gpu")
        assert report.gpu_minor_pages == 16
        assert report.gpu_major_pages == 0

    def test_minor_faster_than_major(self, apu):
        a = apu.memory.malloc(1024 * PAGE_SIZE)
        b = apu.memory.malloc(1024 * PAGE_SIZE)
        major = apu.faults.touch_range(a.vma, 0, 1024, "gpu")
        apu.faults.touch_range(b.vma, 0, 1024, "cpu")
        minor = apu.faults.touch_range(b.vma, 0, 1024, "gpu")
        assert minor.service_time_ns < major.service_time_ns

    def test_gpu_touch_of_mapped_memory_is_free(self, apu):
        buf = apu.memory.hip_malloc(16 * PAGE_SIZE)
        report = apu.faults.touch_range(buf.vma, 0, 16, "gpu")
        assert not report.any_faults
        assert buf.vma.gpu_touched

    def test_gpu_touched_flag_set(self, apu):
        buf = apu.memory.malloc(4 * PAGE_SIZE)
        assert not buf.vma.gpu_touched
        apu.faults.touch_range(buf.vma, 0, 4, "gpu")
        assert buf.vma.gpu_touched


class TestXNACKSemantics:
    def test_malloc_gpu_access_requires_xnack(self, apu_noxnack):
        buf = apu_noxnack.memory.malloc(4 * PAGE_SIZE)
        with pytest.raises(GPUMemoryAccessError):
            apu_noxnack.faults.touch_range(buf.vma, 0, 4, "gpu")

    def test_hipmalloc_gpu_access_without_xnack(self, apu_noxnack):
        buf = apu_noxnack.memory.hip_malloc(4 * PAGE_SIZE)
        report = apu_noxnack.faults.touch_range(buf.vma, 0, 4, "gpu")
        assert not report.any_faults

    def test_static_host_never_gpu_accessible(self, apu):
        buf = apu.memory.static_host(4 * PAGE_SIZE)
        with pytest.raises(GPUMemoryAccessError):
            apu.faults.touch_range(buf.vma, 0, 4, "gpu")

    def test_unmapped_page_fatal_without_xnack(self, apu_noxnack):
        # hipMallocManaged without XNACK is up-front: GPU-safe.
        managed = apu_noxnack.memory.hip_malloc_managed(4 * PAGE_SIZE)
        report = apu_noxnack.faults.touch_range(managed.vma, 0, 4, "gpu")
        assert not report.any_faults

    def test_error_message_mentions_xnack(self, apu_noxnack):
        buf = apu_noxnack.memory.malloc(PAGE_SIZE)
        with pytest.raises(GPUMemoryAccessError, match="XNACK"):
            apu_noxnack.faults.touch_range(buf.vma, 0, 1, "gpu")


class TestLatencySampling:
    def test_means_match_calibration(self, apu):
        for kind, mean in (("cpu", 9e3), ("gpu_minor", 16e3), ("gpu_major", 18e3)):
            draws = apu.faults.sample_single_fault_latency_ns(kind, size=20_000)
            assert draws.mean() == pytest.approx(mean, rel=0.05)

    def test_unknown_kind_rejected(self, apu):
        with pytest.raises(ValueError):
            apu.faults.sample_single_fault_latency_ns("dma")

    def test_unknown_device_rejected(self, apu):
        buf = apu.memory.malloc(PAGE_SIZE)
        with pytest.raises(ValueError):
            apu.faults.touch_range(buf.vma, 0, 1, "npu")


class TestEagerGPUMaps:
    """The Bertolli et al. eager-maps configuration (paper Section 7)."""

    def _eager_apu(self):
        import dataclasses

        from repro.hw.config import small_config
        from repro.runtime.apu import APU

        cfg = small_config(2 << 30)
        cfg = cfg.replace(
            policy=dataclasses.replace(cfg.policy, eager_gpu_maps=True)
        )
        return APU(config=cfg, xnack=True)

    def test_cpu_touch_propagates_to_gpu_table(self):
        apu = self._eager_apu()
        buf = apu.memory.malloc(64 * PAGE_SIZE)
        report = apu.faults.touch_range(buf.vma, 0, 64, "cpu")
        assert report.eager_mapped_pages == 64
        assert buf.vma.gpu_valid.all()

    def test_gpu_then_takes_no_minor_faults(self):
        apu = self._eager_apu()
        buf = apu.memory.malloc(64 * PAGE_SIZE)
        apu.faults.touch_range(buf.vma, 0, 64, "cpu")
        report = apu.faults.touch_range(buf.vma, 0, 64, "gpu")
        assert not report.any_faults

    def test_eager_mapping_costs_cpu_time(self, apu):
        eager = self._eager_apu()
        lazy_buf = apu.memory.malloc(256 * PAGE_SIZE)
        eager_buf = eager.memory.malloc(256 * PAGE_SIZE)
        lazy = apu.faults.touch_range(lazy_buf.vma, 0, 256, "cpu")
        eager_report = eager.faults.touch_range(eager_buf.vma, 0, 256, "cpu")
        assert eager_report.service_time_ns > lazy.service_time_ns

    def test_static_host_memory_not_propagated(self):
        apu = self._eager_apu()
        buf = apu.memory.static_host(16 * PAGE_SIZE)
        report = apu.faults.touch_range(buf.vma, 0, 16, "cpu")
        assert report.eager_mapped_pages == 0
        assert not buf.vma.gpu_valid.any()

    def test_default_policy_is_lazy(self, apu):
        buf = apu.memory.malloc(16 * PAGE_SIZE)
        report = apu.faults.touch_range(buf.vma, 0, 16, "cpu")
        assert report.eager_mapped_pages == 0
        assert not buf.vma.gpu_valid.any()
