"""Property-based tests for the UVM system (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.config import MiB
from repro.uvm.config import PAGE_SIZE, UVMConfig
from repro.uvm.system import UVMSystem


class TestResidencyInvariants:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["gpu", "cpu", "prefetch_d", "prefetch_h"]),
                st.integers(0, 3),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_device_capacity_never_exceeded(self, ops):
        config = UVMConfig(device_memory_bytes=8 * MiB)
        system = UVMSystem(config)
        buffers = [system.malloc_managed(4 * MiB, f"b{i}") for i in range(4)]
        for op, idx in ops:
            buffer = buffers[idx]
            if op == "gpu":
                system.gpu_access(buffer)
            elif op == "cpu":
                system.cpu_access(buffer)
            elif op == "prefetch_d":
                system.prefetch(buffer, "device")
            else:
                system.prefetch(buffer, "host")
            assert system.device_bytes_in_use() <= config.device_memory_bytes

    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["gpu", "cpu"]), st.integers(0, 2)),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_populated_is_monotone_and_clock_advances(self, ops):
        system = UVMSystem(UVMConfig(device_memory_bytes=64 * MiB))
        buffers = [system.malloc_managed(2 * MiB) for _ in range(3)]
        populated_before = [b.populated.copy() for b in buffers]
        last_time = system.clock.now_ns
        for op, idx in ops:
            if op == "gpu":
                system.gpu_access(buffers[idx])
            else:
                system.cpu_access(buffers[idx])
            assert system.clock.now_ns >= last_time
            last_time = system.clock.now_ns
        for before, buffer in zip(populated_before, buffers):
            # populated never clears once set
            assert (buffer.populated | ~before).all()

    @given(size_pages=st.integers(1, 64), offset_pages=st.integers(0, 63))
    @settings(max_examples=40, deadline=None)
    def test_partial_access_touches_exact_pages(self, size_pages, offset_pages):
        system = UVMSystem(UVMConfig(device_memory_bytes=64 * MiB))
        buffer = system.malloc_managed(64 * PAGE_SIZE)
        if offset_pages + size_pages > 64:
            return
        system.gpu_access(
            buffer,
            offset_bytes=offset_pages * PAGE_SIZE,
            size_bytes=size_pages * PAGE_SIZE,
        )
        expected = np.zeros(64, dtype=bool)
        expected[offset_pages : offset_pages + size_pages] = True
        assert np.array_equal(buffer.on_device, expected)

    @given(n=st.integers(1, 30))
    @settings(max_examples=20, deadline=None)
    def test_migration_traffic_conserved(self, n):
        """Round-tripping a buffer n times migrates exactly n x size each
        way (after the initial population)."""
        system = UVMSystem(UVMConfig(device_memory_bytes=64 * MiB))
        buffer = system.malloc_managed(1 * MiB)
        system.cpu_access(buffer)  # populate host-side (no traffic)
        for _ in range(n):
            system.gpu_access(buffer)
            system.cpu_access(buffer)
        assert system.counters.migrated_to_device_bytes == n * 1 * MiB
        assert system.counters.migrated_to_host_bytes == n * 1 * MiB
