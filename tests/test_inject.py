"""Tests for repro.inject: triggers, determinism, hardened recovery,
invariants, and the chaos harness (plus the flaky_port example)."""

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import BufferAccess, KernelSpec, make_runtime
from repro.cli import main
from repro.core.faults import FaultHandler, GPUMemoryAccessError
from repro.core.physical import TransientAllocationError
from repro.core.tlb import TLB
from repro.hw.config import TLBGeometry
from repro.inject import (
    CAMPAIGNS,
    AddressRange,
    Always,
    CallWindow,
    InjectionPlan,
    Injector,
    NthCall,
    Phase,
    Probability,
    check_invariants,
    derive_seed,
    get_campaign,
    report_bytes,
    run_campaign,
    run_one,
)
from repro.runtime.hip import (
    ALLOC_BACKOFF_NS,
    ALLOC_RETRY_LIMIT,
    HipError,
    hipErrorECCNotCorrectable,
    hipErrorInvalidValue,
    hipErrorOutOfMemory,
    hipErrorUnknown,
    hipSuccess,
)

ROOT = Path(__file__).resolve().parent.parent


def _plan(*injectors, seed=0, name="test"):
    return InjectionPlan(list(injectors), seed=seed, name=name)


# ----------------------------------------------------------------------
# Trigger predicates
# ----------------------------------------------------------------------


class TestTriggers:
    def _pattern(self, plan, calls=6, site="s", **context):
        return [plan.fire(site, **context) is not None
                for _ in range(calls)]

    def test_nth_call_is_one_based(self):
        plan = _plan(Injector("s", "k", NthCall(3)))
        assert self._pattern(plan) == [False, False, True, False, False,
                                       False]

    def test_call_window_is_half_open(self):
        plan = _plan(Injector("s", "k", CallWindow(2, 4), times=10))
        assert self._pattern(plan) == [False, True, True, False, False,
                                       False]

    def test_fire_budget_bounds_always(self):
        plan = _plan(Injector("s", "k", Always(), times=2))
        assert self._pattern(plan) == [True, True, False, False, False,
                                       False]

    def test_probability_extremes(self):
        assert not any(self._pattern(_plan(
            Injector("s", "k", Probability(0.0), times=10))))
        assert all(self._pattern(_plan(
            Injector("s", "k", Probability(1.0), times=10))))

    def test_probability_is_seed_deterministic(self):
        patterns = [
            self._pattern(
                _plan(Injector("s", "k", Probability(0.4), times=10),
                      seed=11),
                calls=20,
            )
            for _ in range(2)
        ]
        assert patterns[0] == patterns[1]
        other = self._pattern(
            _plan(Injector("s", "k", Probability(0.4), times=10), seed=12),
            calls=20,
        )
        assert other != patterns[0]  # a different stream, not a constant

    def test_probability_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Probability(1.5)

    def test_address_range_needs_an_address(self):
        plan = _plan(Injector("s", "k", AddressRange(0x1000, 0x2000),
                              times=10))
        assert plan.fire("s") is None
        assert plan.fire("s", address=0x500) is None
        assert plan.fire("s", address=0x1800) is not None
        assert plan.fire("s", address=0x2000) is None  # half-open

    def test_phase_scoping(self):
        plan = _plan(Injector("s", "k", Phase("compute"), times=10))
        assert plan.fire("s") is None
        plan.set_phase("compute")
        assert plan.fire("s") is not None
        plan.set_phase(None)
        assert plan.fire("s") is None

    def test_plan_order_breaks_ties(self):
        plan = _plan(
            Injector("s", "first", NthCall(1)),
            Injector("s", "second", Always(), times=10),
        )
        assert plan.fire("s").kind == "first"
        assert plan.fire("s").kind == "second"

    def test_sites_count_independently(self):
        plan = _plan(Injector("a", "k", NthCall(2)),
                     Injector("b", "k", NthCall(1)))
        assert plan.fire("a") is None
        assert plan.fire("b") is not None
        assert plan.fire("a") is not None
        assert plan.calls("a") == 2
        assert plan.calls("b") == 1

    def test_injector_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Injector("s", "k", times=0)


class TestPlanLifecycle:
    def test_plan_is_single_use(self, apu):
        plan = _plan()
        plan.attach(apu)
        from repro.runtime import make_apu

        with pytest.raises(RuntimeError, match="single-use"):
            plan.attach(make_apu(1))

    def test_journal_records_fires_and_notes(self):
        plan = _plan(Injector("s", "k", NthCall(1), params={"x": 1}))
        plan.fire("s", nbytes=64)
        plan.note("recover.test", attempt=1)
        events = [entry["event"] for entry in plan.journal_payload()]
        assert events == ["s:k", "recover.test"]
        fire = plan.journal_payload()[0]
        assert fire["call"] == 1
        assert fire["trigger"] == "nth-call(1)"
        assert fire["context"] == {"nbytes": 64}
        assert json.dumps(plan.journal_payload())  # JSON-clean

    def test_teardown_releases_pressure(self):
        plan = _plan(Injector("physical.alloc", "pressure", NthCall(1),
                              params={"fraction": 0.4}))
        hip = make_runtime(memory_gib=1, inject=plan)
        free0 = hip.apu.physical.free_frames
        hip.hipMalloc(1 << 20, name="victim")
        assert hip.apu.physical.pressure_frames > 0
        plan.teardown()
        assert hip.apu.physical.pressure_frames == 0
        hip.hipFree(hip.apu.memory.allocations[0])
        assert hip.apu.physical.free_frames == free0


# ----------------------------------------------------------------------
# Hardened allocation: retry, backoff, defrag, degrade
# ----------------------------------------------------------------------


class TestAllocationRecovery:
    def test_transient_failures_are_retried_with_backoff(self):
        plan = _plan(Injector("physical.alloc", "transient",
                              CallWindow(1, 3), times=2))
        hip = make_runtime(memory_gib=1, inject=plan)
        t0 = hip.apu.clock.now_ns
        hip.hipMalloc(1 << 20, name="survivor")
        retries = plan.notes("recover.alloc.retry")
        assert len(retries) == 2
        # Exponential backoff: 1x + 2x the base delay, plus the alloc cost.
        assert hip.apu.clock.now_ns - t0 >= 3 * ALLOC_BACKOFF_NS
        assert hip.hipPeekAtLastError() == hipSuccess

    def test_retry_exhaustion_surfaces_typed_oom(self):
        plan = _plan(Injector("physical.alloc", "transient", Always(),
                              times=100))
        hip = make_runtime(memory_gib=1, inject=plan)
        with pytest.raises(HipError) as failure:
            hip.hipMalloc(1 << 20, name="doomed")
        assert failure.value.code == hipErrorOutOfMemory
        assert len(plan.notes("recover.alloc.retry")) == ALLOC_RETRY_LIMIT

    def test_defragment_then_retry_recovers_from_pressure(self):
        plan = _plan(Injector("physical.alloc", "pressure", NthCall(1),
                              params={"fraction": 0.95}))
        hip = make_runtime(memory_gib=1, inject=plan)
        nbytes = (hip.apu.physical.total_frames // 2) * 4096
        hip.hipMalloc(nbytes, name="big")  # cannot fit under pressure
        assert plan.notes("recover.alloc.defrag")
        assert hip.apu.physical.pressure_frames == 0

    def _fragment_to_singles(self, hip):
        """Leave only isolated free frames: no aligned pair anywhere."""
        physical = hip.apu.physical
        frames = physical.alloc_chunks(physical.free_frames, 1)
        physical.free(frames[1::2])
        return frames[0::2]

    def test_managed_degrades_to_scattered_when_pairs_run_out(self):
        hip = make_runtime(memory_gib=1, xnack=False)
        held = self._fragment_to_singles(hip)
        allocation = hip.hipMallocManaged(4 << 20, name="managed")
        assert hip.degradations
        event = hip.degradations[0]
        assert event["event"] == "alloc.scattered-fallback"
        assert event["name"] == "managed"
        assert allocation.vma.resident_frames().size == (4 << 20) // 4096
        hip.hipFree(allocation)
        hip.apu.physical.free(held)
        assert hip.apu.physical.free_frames == hip.apu.physical.total_frames

    def test_host_malloc_has_the_same_fallback(self):
        hip = make_runtime(memory_gib=1)
        held = self._fragment_to_singles(hip)
        hip.hipHostMalloc(1 << 20, name="pinned")
        assert [d["event"] for d in hip.degradations] == [
            "alloc.scattered-fallback"
        ]
        hip.apu.physical.free(held)

    def test_hip_malloc_never_degrades(self):
        hip = make_runtime(memory_gib=1)
        held = self._fragment_to_singles(hip)
        with pytest.raises(HipError) as failure:
            hip.hipMalloc(64 << 20, name="contiguous")
        assert failure.value.code == hipErrorOutOfMemory
        assert not hip.degradations
        hip.apu.physical.free(held)


# ----------------------------------------------------------------------
# Typed error surface (satellite: error-code mapping)
# ----------------------------------------------------------------------


class TestErrorSurface:
    def test_double_free_maps_to_invalid_value(self):
        hip = make_runtime(memory_gib=1)
        allocation = hip.hipMalloc(1 << 20, name="once")
        hip.hipFree(allocation)
        with pytest.raises(HipError) as failure:
            hip.hipFree(allocation)
        assert failure.value.code == hipErrorInvalidValue

    def test_get_last_error_returns_and_clears(self):
        hip = make_runtime(memory_gib=1)
        assert hip.hipGetLastError() == hipSuccess
        allocation = hip.hipMalloc(1 << 20, name="once")
        hip.hipFree(allocation)
        with pytest.raises(HipError):
            hip.hipFree(allocation)
        assert hip.hipPeekAtLastError() == hipErrorInvalidValue
        assert hip.hipPeekAtLastError() == hipErrorInvalidValue  # sticky
        assert hip.hipGetLastError() == hipErrorInvalidValue
        assert hip.hipGetLastError() == hipSuccess  # cleared

    def test_unknown_allocator_is_invalid_value(self):
        hip = make_runtime(memory_gib=1)
        with pytest.raises(HipError) as failure:
            hip.array(16, np.float32, "cudaMalloc")
        assert failure.value.code == hipErrorInvalidValue

    def test_error_code_parsed_from_message(self):
        assert HipError("hipErrorOutOfMemory: pool exhausted").code == (
            hipErrorOutOfMemory
        )
        assert HipError("something went wrong").code == hipErrorUnknown


# ----------------------------------------------------------------------
# SDMA transfer faults
# ----------------------------------------------------------------------


def _memcpy_workload(inject=None):
    hip = make_runtime(memory_gib=1, inject=inject)
    host = hip.array(1 << 18, np.float32, "malloc", name="host")
    hip.apu.touch(host.allocation, "cpu")
    device = hip.hipMalloc(1 << 20, name="device")
    t0 = hip.apu.clock.now_ns
    hip.hipMemcpy(device, host.allocation, 1 << 20)
    return hip, hip.apu.clock.now_ns - t0


class TestSdmaFaults:
    def test_stall_multiplies_the_transfer_time(self):
        _, clean_ns = _memcpy_workload()
        plan = _plan(Injector("sdma.transfer", "stall", NthCall(1),
                              params={"factor": 6.0}))
        _, stalled_ns = _memcpy_workload(inject=plan)
        assert plan.fired("sdma.transfer") == 1
        assert stalled_ns > 4 * clean_ns

    def test_retryable_failure_falls_back_to_blit(self):
        plan = _plan(Injector("sdma.transfer", "failure", NthCall(1)))
        hip, _ = _memcpy_workload(inject=plan)
        assert [d["event"] for d in hip.degradations] == [
            "memcpy.blit-fallback"
        ]
        assert hip.hipPeekAtLastError() == hipSuccess  # absorbed

    def test_abort_surfaces_hip_error_unknown(self):
        plan = _plan(Injector("sdma.transfer", "abort", NthCall(1)))
        with pytest.raises(HipError) as failure:
            _memcpy_workload(inject=plan)
        assert failure.value.code == hipErrorUnknown


# ----------------------------------------------------------------------
# HBM ECC faults
# ----------------------------------------------------------------------


def _kernel_workload(inject=None, xnack=False):
    hip = make_runtime(memory_gib=1, xnack=xnack, inject=inject)
    data = hip.array(1 << 20, np.float32, "malloc", name="data")
    hip.apu.touch(data.allocation, "cpu")
    hip.launchKernel(KernelSpec(
        "reader", [BufferAccess(data.allocation, "read")],
    ))
    hip.hipDeviceSynchronize()
    return hip


def _device_kernel_workload(inject=None):
    hip = make_runtime(memory_gib=1, inject=inject)
    data = hip.hipMalloc(1 << 22, name="data")
    hip.launchKernel(KernelSpec("reader", [BufferAccess(data, "read")]))
    hip.hipDeviceSynchronize()
    return hip


class TestEccFaults:
    def test_correctable_errors_cost_latency_and_count(self):
        # ecc_check runs once per kernel buffer access: use three buffers
        # so the Always trigger exhausts its three-fire budget.
        plan = _plan(Injector("hbm.ecc", "correctable", Always(), times=3,
                              params={"count": 2}))
        hip = make_runtime(memory_gib=1, inject=plan)
        buffers = [hip.hipMalloc(1 << 20, name=f"buf{i}") for i in range(3)]
        hip.launchKernel(KernelSpec(
            "reader", [BufferAccess(b, "read") for b in buffers],
        ))
        hip.hipDeviceSynchronize()
        assert hip.apu.hbm_map.correctable_errors == 6
        assert plan.fired("hbm.ecc") == 3

    def test_uncorrectable_error_aborts_the_launch_typed(self):
        plan = _plan(Injector("hbm.ecc", "uncorrectable", NthCall(1)))
        with pytest.raises(HipError) as failure:
            _device_kernel_workload(inject=plan)
        assert failure.value.code == hipErrorECCNotCorrectable

    def test_ras_counter_ticks_before_the_abort(self):
        plan = _plan(Injector("hbm.ecc", "uncorrectable", NthCall(1)))
        hip = make_runtime(memory_gib=1, inject=plan)
        data = hip.hipMalloc(1 << 22, name="data")
        with pytest.raises(HipError):
            hip.launchKernel(KernelSpec(
                "reader", [BufferAccess(data, "read")],
            ))
        assert hip.apu.hbm_map.uncorrectable_errors == 1


# ----------------------------------------------------------------------
# XNACK retry faults
# ----------------------------------------------------------------------


class TestXnackFaults:
    def test_dropped_replays_are_re_retried(self):
        plan = _plan(Injector("xnack.retry", "drop", CallWindow(1, 3),
                              times=2))
        hip = _kernel_workload(inject=plan, xnack=True)
        assert plan.fired("xnack.retry") == 2
        assert hip.hipPeekAtLastError() == hipSuccess

    def test_exhausted_replays_escalate_to_the_fatal_path(self):
        plan = _plan(Injector("xnack.retry", "drop", Always(), times=10_000))
        with pytest.raises(GPUMemoryAccessError):
            _kernel_workload(inject=plan, xnack=True)
        assert plan.fired("xnack.retry") >= FaultHandler.XNACK_RETRY_LIMIT

    def test_retry_storm_completes(self):
        plan = _plan(Injector("xnack.storm", "storm", NthCall(1),
                              params={"factor": 4.0}))
        _kernel_workload(inject=plan, xnack=True)
        assert plan.fired("xnack.storm") == 1


# ----------------------------------------------------------------------
# TLB shootdown faults
# ----------------------------------------------------------------------


class TestTlbFaults:
    def _tlb(self, plan):
        tlb = TLB(TLBGeometry("test", 8, 100.0))
        tlb.inject = plan
        return tlb

    def test_delayed_shootdown_serves_stale_hits(self):
        plan = _plan(Injector("tlb.shootdown", "delay", NthCall(1),
                              params={"delay_accesses": 3}))
        tlb = self._tlb(plan)
        tlb.access(1)
        tlb.access(2)
        tlb.flush()  # delayed: entries stay resident for 3 accesses
        assert tlb.access(1)
        assert tlb.access(2)
        assert tlb.stats.stale_hits == 2
        tlb.access(3)  # third deferred access: the invalidation lands
        assert not tlb.access(1)
        assert tlb.stats.stale_hits == 2

    def test_back_to_back_shootdowns_drain_immediately(self):
        plan = _plan(Injector("tlb.shootdown", "delay", NthCall(1),
                              params={"delay_accesses": 50}))
        tlb = self._tlb(plan)
        tlb.access(1)
        tlb.flush()  # deferred
        tlb.flush()  # queue drain: lands now
        assert not tlb.access(1)

    def test_uninjected_flush_is_immediate(self):
        tlb = self._tlb(_plan())
        tlb.access(1)
        tlb.flush()
        assert not tlb.access(1)
        assert tlb.stats.stale_hits == 0


# ----------------------------------------------------------------------
# Invariants and the leak property (satellite: hypothesis)
# ----------------------------------------------------------------------


class TestInvariants:
    def test_clean_apu_passes(self, apu):
        assert check_invariants(apu) == []

    def test_live_allocations_flagged_when_quiescent(self, apu):
        apu.memory.hip_malloc(1 << 20, name="live")
        problems = check_invariants(apu)
        assert any("live" in p for p in problems)
        assert check_invariants(apu, expect_quiescent=False) == []


_FAULT_MENU = [
    ("physical.alloc", "transient", {}),
    ("physical.alloc", "pressure", {"fraction": 0.3}),
    ("hbm.ecc", "correctable", {"count": 1}),
    ("hbm.ecc", "uncorrectable", {}),
    ("sdma.transfer", "stall", {"factor": 3.0}),
    ("sdma.transfer", "failure", {}),
    ("sdma.transfer", "abort", {}),
    ("xnack.retry", "drop", {}),
    ("xnack.storm", "storm", {"factor": 2.0}),
]

_triggers = st.one_of(
    st.builds(NthCall, st.integers(1, 6)),
    st.builds(lambda lo, width: CallWindow(lo, lo + width),
              st.integers(1, 5), st.integers(1, 4)),
    st.builds(Probability, st.floats(0.0, 1.0)),
    st.just(Always()),
)

_injectors = st.lists(
    st.builds(
        lambda choice, trigger, times: Injector(
            choice[0], choice[1], trigger, times=times, params=choice[2],
        ),
        st.sampled_from(_FAULT_MENU),
        _triggers,
        st.integers(1, 4),
    ),
    min_size=1,
    max_size=5,
)


class TestLeakFreedomProperty:
    """Satellite: under ANY seeded plan, physical frames all come back."""

    @given(injectors=_injectors, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_free_frames_return_after_recovery_or_clean_failure(
        self, injectors, seed
    ):
        plan = InjectionPlan(injectors, seed=seed, name="property")
        hip = make_runtime(memory_gib=1, xnack=True, inject=plan)
        physical = hip.apu.physical
        before = physical.free_frames
        try:
            host = hip.array(1 << 14, np.float32, "malloc", name="src")
            hip.apu.touch(host.allocation, "cpu")
            device = hip.hipMalloc(1 << 16, name="device")
            hip.hipMemcpy(device, host.allocation, 1 << 16)
            hip.launchKernel(KernelSpec(
                "k", [BufferAccess(device, "read")],
            ))
            hip.hipDeviceSynchronize()
        except (HipError, GPUMemoryAccessError, MemoryError, RuntimeError):
            pass
        finally:
            for allocation in list(hip.apu.memory.allocations):
                hip.apu.memory.free(allocation)
            plan.teardown()
        assert physical.free_frames == before
        assert physical.audit() == []
        assert check_invariants(hip.apu) == []


# ----------------------------------------------------------------------
# Campaigns and the chaos harness
# ----------------------------------------------------------------------


class TestCampaigns:
    def test_registry_contents(self):
        assert set(CAMPAIGNS) == {
            "standard", "oom-pressure", "ecc-fatal", "xnack-exhaustion",
            "sdma-abort",
        }
        assert get_campaign("standard").recoverable
        assert not get_campaign("ecc-fatal").recoverable

    def test_unknown_campaign_lists_the_known_ones(self):
        with pytest.raises(KeyError, match="standard"):
            get_campaign("nope")

    def test_plans_do_not_share_injector_state(self):
        campaign = get_campaign("standard")
        one, two = campaign.plan(1), campaign.plan(1)
        assert one.injectors is not two.injectors
        assert one.injectors[0] is not two.injectors[0]

    def test_derive_seed_distinguishes_runs(self):
        seeds = {
            derive_seed(7, campaign, app, variant)
            for campaign in CAMPAIGNS
            for app in ("nn", "hotspot")
            for variant in ("explicit", "unified")
        }
        assert len(seeds) == len(CAMPAIGNS) * 4


class TestChaosHarness:
    def test_recoverable_run_matches_baseline_and_leaks_nothing(self):
        record = run_one(get_campaign("standard"), "nn", "unified", seed=7)
        assert record["ok"]
        assert record["error"] is None
        assert record["checksum_matches"]
        assert record["invariant_problems"] == []
        assert record["injected_faults"] > 0
        assert record["free_frames_after"] == record["total_frames"]

    def test_fatal_campaign_fails_typed_without_leaking(self):
        record = run_one(get_campaign("ecc-fatal"), "hotspot", "unified",
                         seed=7)
        assert record["ok"]
        assert record["error"] is not None
        assert record["error"]["typed"]
        assert record["error"]["code"] == hipErrorECCNotCorrectable
        assert record["invariant_problems"] == []
        assert record["free_frames_after"] == record["total_frames"]

    def test_quick_report_is_byte_identical_per_seed(self):
        reports = [
            report_bytes(run_campaign("standard", seed=7, quick=True))
            for _ in range(2)
        ]
        assert reports[0] == reports[1]
        other = report_bytes(run_campaign("standard", seed=8, quick=True))
        assert other != reports[0]

    def test_every_campaign_honours_its_contract_quick(self):
        for name in CAMPAIGNS:
            report = run_campaign(name, seed=7, quick=True)
            assert report["ok"], (name, report["runs"])

    def test_standard_campaign_across_all_six_ports(self):
        """Satellite: every Rodinia port, both memory models, recovers."""
        report = run_campaign("standard", seed=7)
        apps = {run["app"] for run in report["runs"]}
        assert apps == {"backprop", "dwt2d", "heartwall", "hotspot", "nn",
                        "srad_v1"}
        assert len(report["runs"]) == 12  # explicit + one unified each
        for run in report["runs"]:
            assert run["ok"], (run["app"], run["variant"], run["error"])
            assert run["checksum_matches"]
            assert run["free_frames_after"] == run["total_frames"]

    def test_unknown_app_is_rejected(self):
        with pytest.raises(ValueError, match="unknown app"):
            run_campaign("standard", apps=["quake3"])


class TestChaosCli:
    def test_cli_writes_report_and_replays_identically(self, tmp_path):
        argv = ["chaos", "--campaign", "standard", "--quick", "--seed",
                "7", "--apps", "nn"]
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert main(argv + ["--out", str(first)]) == 0
        assert main(argv + ["--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        report = json.loads(first.read_text())
        assert report["ok"] and report["campaign"] == "standard"

    def test_cli_rejects_unknown_campaign(self, capsys):
        assert main(["chaos", "--campaign", "nope"]) == 2
        assert "unknown campaign" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The flaky_port example (satellite)
# ----------------------------------------------------------------------


def _load_flaky_port():
    path = ROOT / "examples" / "flaky_port.py"
    spec = importlib.util.spec_from_file_location("flaky_port", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFlakyPortExample:
    @pytest.fixture(scope="class")
    def flaky(self):
        return _load_flaky_port()

    def test_recoverable_run_reproduces_the_clean_checksum(self, flaky):
        clean = flaky.run_pipeline()
        injected = flaky.run_pipeline(inject=flaky.recoverable_plan())
        assert injected["checksum"] == clean["checksum"]
        assert injected["fired"] > 0
        assert injected["free_frames"] == injected["total_frames"]

    def test_fatal_run_fails_typed_and_clean(self, flaky):
        result = flaky.run_pipeline(inject=flaky.fatal_plan())
        assert result["error"] is not None
        assert result["error"].code == hipErrorUnknown
        assert result["free_frames"] == result["total_frames"]

    def test_main_exercises_all_scenarios(self, flaky, capsys):
        assert flaky.main() == 0
        out = capsys.readouterr().out
        assert "no frames leaked" in out
