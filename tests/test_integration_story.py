"""End-to-end integration: the paper's full pipeline on one APU.

One test class walks the whole story — characterise, port, verify — the
way a user of this library would, crossing every subsystem boundary:
allocators -> faults -> page tables -> TLBs -> kernel engine ->
profilers -> porting strategies -> advisor.
"""

import numpy as np
import pytest

from repro.hw.config import MiB
from repro.profiling import MemoryTracer, PerfStat, PortingAdvisor, RocProf
from repro.profiling.memusage import MemoryUsageProfiler
from repro.runtime import make_runtime
from repro.runtime.kernels import BufferAccess, KernelSpec


@pytest.fixture(scope="module")
def story():
    """Run the full explicit-then-unified story once."""
    out = {}

    # ---- Act 1: characterise the allocators ---------------------------
    hip = make_runtime(memory_gib=4, xnack=True)
    apu = hip.apu
    rocprof = RocProf(apu)
    bandwidths, misses = {}, {}
    for allocator in ("hipMalloc", "hipHostMalloc", "malloc"):
        arr = hip.array(16 << 20, np.float32, allocator)
        apu.touch(arr.allocation, "cpu")
        rocprof.start()
        result = hip.launchKernel(
            KernelSpec("probe", [BufferAccess(arr.allocation, "read",
                                              passes=10)])
        )
        hip.hipDeviceSynchronize()
        region = rocprof.stop()
        bandwidths[allocator] = 64 * MiB * 10 / (result.memory_ns / 1e9)
        misses[allocator] = region.tlb_misses
    out["bandwidths"] = bandwidths
    out["misses"] = misses

    # ---- Act 2: an explicit-model app, traced -------------------------
    hip2 = make_runtime(memory_gib=4, xnack=True)
    apu2 = hip2.apu
    tracer = MemoryTracer()
    usage = MemoryUsageProfiler(apu2)
    h = hip2.array(16 << 20, np.float32, "malloc", name="h_data")
    d = hip2.array(16 << 20, np.float32, "hipMalloc", name="d_data")
    tracer.record_alloc(h.allocation, 0.0)
    tracer.record_alloc(d.allocation, 0.0)
    h.np[:] = 1.5
    apu2.touch(h.allocation, "cpu")
    usage.sample()
    t0 = apu2.clock.now_ns
    hip2.hipMemcpy(d, h)
    tracer.record_copy("d_data", "h_data", d.nbytes, t0,
                       apu2.clock.now_ns - t0)
    k = hip2.launchKernel(KernelSpec("square",
                                     [BufferAccess(d.allocation, "readwrite")]))
    hip2.hipDeviceSynchronize()
    tracer.record_kernel("square", ["d_data"], k.start_ns, k.duration_ns,
                         k.fault_ns)
    d.np[:] = d.np ** 2
    t0 = apu2.clock.now_ns
    hip2.hipMemcpy(h, d)
    tracer.record_copy("h_data", "d_data", d.nbytes, t0,
                       apu2.clock.now_ns - t0)
    usage.sample()
    out["explicit_result"] = float(h.np.sum())
    out["explicit_peak"] = usage.peak_bytes
    out["advice"] = PortingAdvisor(tracer).analyse()
    out["explicit_time"] = apu2.clock.now_ns

    # ---- Act 3: the unified port -------------------------------------
    hip3 = make_runtime(memory_gib=4, xnack=True)
    apu3 = hip3.apu
    usage3 = MemoryUsageProfiler(apu3)
    perf = PerfStat(apu3)
    u = hip3.array(16 << 20, np.float32, "hipMalloc", name="unified")
    u.np[:] = 1.5
    apu3.touch(u.allocation, "cpu")
    usage3.sample()
    perf.start()
    hip3.launchKernel(KernelSpec("square",
                                 [BufferAccess(u.allocation, "readwrite")]))
    hip3.hipDeviceSynchronize()
    u.np[:] = u.np ** 2
    out["unified_faults"] = perf.stop()
    usage3.sample()
    out["unified_result"] = float(u.np.sum())
    out["unified_peak"] = usage3.peak_bytes
    out["unified_time"] = apu3.clock.now_ns
    return out


class TestCharacterisationActs:
    def test_allocator_bandwidth_ordering(self, story):
        bw = story["bandwidths"]
        assert bw["hipMalloc"] > bw["hipHostMalloc"] > bw["malloc"]

    def test_tlb_misses_anticorrelate_with_bandwidth(self, story):
        misses = story["misses"]
        assert misses["hipMalloc"] < misses["hipHostMalloc"]
        assert misses["hipMalloc"] < misses["malloc"]


class TestPortingActs:
    def test_advisor_found_the_pair(self, story):
        advice = story["advice"]
        assert len(advice.duplicated_pairs) == 1
        assert advice.duplicated_pairs[0].nbytes == 64 * MiB

    def test_results_identical(self, story):
        assert story["unified_result"] == pytest.approx(
            story["explicit_result"]
        )

    def test_unified_saves_memory(self, story):
        assert story["unified_peak"] <= story["explicit_peak"] / 1.8

    def test_unified_saves_time(self, story):
        assert story["unified_time"] < story["explicit_time"]

    def test_unified_takes_no_gpu_faults(self, story):
        # hipMalloc memory is GPU-mapped up-front.
        assert story["unified_faults"].gpu_major_pages == 0
        assert story["unified_faults"].gpu_minor_pages == 0
