"""Unit tests for VMAs and the address space (repro.core.address_space)."""

import numpy as np
import pytest

from repro.core.address_space import (
    AddressSpace,
    GPU_ACCESS_ALWAYS,
    SegmentationFault,
    VMA,
)
from repro.core.page import NO_FRAME
from repro.hw.config import PAGE_SIZE


class TestVMA:
    def test_requires_page_aligned_start(self):
        with pytest.raises(ValueError):
            VMA(start=100, npages=1)

    def test_requires_positive_pages(self):
        with pytest.raises(ValueError):
            VMA(start=0, npages=0)

    def test_geometry(self):
        vma = VMA(start=0x10000, npages=4)
        assert vma.end == 0x10000 + 4 * PAGE_SIZE
        assert vma.size_bytes == 4 * PAGE_SIZE
        assert vma.base_vpn == 0x10000 // PAGE_SIZE

    def test_contains(self):
        vma = VMA(start=0x10000, npages=2)
        assert vma.contains(0x10000)
        assert vma.contains(vma.end - 1)
        assert not vma.contains(vma.end)
        assert not vma.contains(0x10000 - 1)

    def test_page_index(self):
        vma = VMA(start=0x10000, npages=4)
        assert vma.page_index(0x10000) == 0
        assert vma.page_index(0x10000 + PAGE_SIZE + 1) == 1

    def test_page_index_outside_rejected(self):
        vma = VMA(start=0x10000, npages=1)
        with pytest.raises(ValueError):
            vma.page_index(0)

    def test_page_range(self):
        vma = VMA(start=0, npages=10)
        assert vma.page_range(0, 1) == (0, 1)
        assert vma.page_range(PAGE_SIZE - 1, 2) == (0, 2)
        assert vma.page_range(3 * PAGE_SIZE, 2 * PAGE_SIZE) == (3, 2)

    def test_page_range_escaping_rejected(self):
        vma = VMA(start=0, npages=2)
        with pytest.raises(ValueError):
            vma.page_range(PAGE_SIZE, 2 * PAGE_SIZE)

    def test_initial_backing_state(self):
        vma = VMA(start=0, npages=3)
        assert (vma.frames == NO_FRAME).all()
        assert not vma.sys_valid.any()
        assert not vma.gpu_valid.any()
        assert vma.resident_bytes() == 0
        assert vma.gpu_access == GPU_ACCESS_ALWAYS
        assert not vma.gpu_touched

    def test_resident_accounting(self):
        vma = VMA(start=0, npages=4)
        vma.frames[1] = 100
        vma.frames[3] = 200
        assert vma.resident_pages() == 2
        assert list(vma.resident_frames()) == [100, 200]

    def test_pte_view(self):
        vma = VMA(start=0, npages=2, pinned=True)
        vma.frames[0] = 55
        vma.sys_valid[0] = True
        pte = vma.pte(0, "system")
        assert pte.valid
        assert pte.frame == 55
        assert pte.pinned
        assert not vma.pte(1, "system").valid
        assert not vma.pte(0, "gpu").valid  # not GPU mapped yet

    def test_pte_unknown_table_rejected(self):
        vma = VMA(start=0, npages=1)
        with pytest.raises(ValueError):
            vma.pte(0, "tlb")


class TestAddressSpace:
    def test_mmap_rounds_to_pages(self):
        aspace = AddressSpace()
        vma = aspace.mmap(100)
        assert vma.npages == 1
        assert vma.start % PAGE_SIZE == 0

    def test_mmap_distinct_ranges(self):
        aspace = AddressSpace()
        a = aspace.mmap(PAGE_SIZE)
        b = aspace.mmap(PAGE_SIZE)
        assert a.end <= b.start or b.end <= a.start

    def test_mmap_alignment(self):
        aspace = AddressSpace()
        vma = aspace.mmap(PAGE_SIZE, alignment=1 << 20)
        assert vma.start % (1 << 20) == 0

    def test_mmap_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().mmap(PAGE_SIZE, alignment=3000)

    def test_mmap_zero_size_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().mmap(0)

    def test_find(self):
        aspace = AddressSpace()
        a = aspace.mmap(PAGE_SIZE)
        b = aspace.mmap(4 * PAGE_SIZE)
        assert aspace.find(a.start) is a
        assert aspace.find(b.start + 3 * PAGE_SIZE) is b
        assert aspace.find(b.end) is None
        assert aspace.find(0) is None

    def test_require_raises_segfault(self):
        aspace = AddressSpace()
        with pytest.raises(SegmentationFault):
            aspace.require(0xDEAD000)

    def test_munmap_removes(self):
        aspace = AddressSpace()
        vma = aspace.mmap(PAGE_SIZE)
        aspace.munmap(vma)
        assert aspace.find(vma.start) is None
        assert len(aspace) == 0

    def test_munmap_foreign_rejected(self):
        aspace = AddressSpace()
        foreign = VMA(start=0x5000_0000_0000, npages=1)
        with pytest.raises(ValueError):
            aspace.munmap(foreign)

    def test_totals(self):
        aspace = AddressSpace()
        a = aspace.mmap(2 * PAGE_SIZE)
        b = aspace.mmap(3 * PAGE_SIZE)
        a.frames[0] = 1
        assert aspace.total_virtual_bytes() == 5 * PAGE_SIZE
        assert aspace.total_resident_bytes() == PAGE_SIZE

    def test_iteration_order_sorted(self):
        aspace = AddressSpace()
        vmas = [aspace.mmap(PAGE_SIZE) for _ in range(5)]
        starts = [v.start for v in aspace]
        assert starts == sorted(starts)
