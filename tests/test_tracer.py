"""Tests for the memory tracer and porting advisor (repro.profiling.tracer)."""

import pytest

from repro.hw.config import MiB
from repro.profiling.tracer import (
    AdvisorReport,
    EventKind,
    MemoryTracer,
    PortingAdvisor,
)


@pytest.fixture
def traced_explicit_run(apu):
    """Trace a miniature explicit-model run: h/d pair + copies + kernel."""
    tracer = MemoryTracer()
    h = apu.memory.malloc(16 * MiB, name="h_data")
    d = apu.memory.hip_malloc(16 * MiB, name="d_data")
    other = apu.memory.hip_malloc(4 * MiB, name="d_scratch")
    tracer.record_alloc(h, 0.0)
    tracer.record_alloc(d, 100.0)
    tracer.record_alloc(other, 150.0)
    tracer.record_copy("d_data", "h_data", 16 * MiB, 200.0, 280_000.0)
    tracer.record_kernel("stencil", ["d_data"], 500_000.0, 90_000.0)
    tracer.record_copy("h_data", "d_data", 16 * MiB, 600_000.0, 280_000.0)
    return tracer


class TestTracer:
    def test_records_events_in_order(self, traced_explicit_run):
        kinds = [e.kind for e in traced_explicit_run.events]
        assert kinds == [
            EventKind.ALLOC, EventKind.ALLOC, EventKind.ALLOC,
            EventKind.COPY, EventKind.KERNEL, EventKind.COPY,
        ]

    def test_live_bytes(self, traced_explicit_run):
        assert traced_explicit_run.live_bytes() == 36 * MiB
        traced_explicit_run.record_free("d_scratch", 1e6)
        assert traced_explicit_run.live_bytes() == 32 * MiB

    def test_accessed_tracking(self, traced_explicit_run):
        assert traced_explicit_run.accessed("h_data")
        assert traced_explicit_run.accessed("d_data")
        assert not traced_explicit_run.accessed("d_scratch")

    def test_query_helpers(self, traced_explicit_run):
        assert len(traced_explicit_run.copies()) == 2
        assert len(traced_explicit_run.kernels()) == 1
        assert len(traced_explicit_run.allocations()) == 3


class TestAdvisor:
    def test_finds_duplicated_pair(self, traced_explicit_run):
        report = PortingAdvisor(traced_explicit_run).analyse()
        assert len(report.duplicated_pairs) == 1
        finding = report.duplicated_pairs[0]
        assert finding.host_buffer == "h_data"
        assert finding.device_buffer == "d_data"
        assert finding.copies == 2
        assert finding.memory_saving_bytes == 16 * MiB

    def test_potential_saving(self, traced_explicit_run):
        report = PortingAdvisor(traced_explicit_run).analyse()
        assert report.potential_memory_saving_bytes == 16 * MiB

    def test_copy_fraction(self, traced_explicit_run):
        report = PortingAdvisor(traced_explicit_run).analyse()
        assert report.copy_time_ns == pytest.approx(560_000.0)
        assert report.kernel_time_ns == pytest.approx(90_000.0)
        assert report.copy_fraction == pytest.approx(560 / 650, rel=0.01)

    def test_dead_allocation_detected(self, traced_explicit_run):
        report = PortingAdvisor(traced_explicit_run).analyse()
        assert report.dead_allocations == ["d_scratch"]

    def test_fault_dominated_kernel(self, apu):
        tracer = MemoryTracer()
        vec = apu.memory.malloc(4 * MiB, name="std::vector")
        tracer.record_alloc(vec, 0.0)
        tracer.record_kernel(
            "euclid", ["std::vector"], 100.0, duration_ns=1e6, fault_ns=9e5
        )
        report = PortingAdvisor(tracer).analyse()
        assert report.fault_dominated_kernels == ["euclid"]

    def test_unified_run_is_clean(self, apu):
        tracer = MemoryTracer()
        buf = apu.memory.hip_malloc(16 * MiB, name="unified")
        tracer.record_alloc(buf, 0.0)
        tracer.record_kernel("stencil", ["unified"], 100.0, 90_000.0)
        report = PortingAdvisor(tracer).analyse()
        assert not report.duplicated_pairs
        assert not report.dead_allocations
        assert report.copy_fraction == 0.0

    def test_size_mismatch_not_paired(self, apu):
        tracer = MemoryTracer()
        h = apu.memory.malloc(16 * MiB, name="h")
        d = apu.memory.hip_malloc(8 * MiB, name="d")
        tracer.record_alloc(h, 0.0)
        tracer.record_alloc(d, 0.0)
        tracer.record_copy("d", "h", 8 * MiB, 100.0, 1000.0)
        report = PortingAdvisor(tracer).analyse()
        assert not report.duplicated_pairs

    def test_summary_text(self, traced_explicit_run):
        text = PortingAdvisor(traced_explicit_run).summarise()
        assert "duplicated" in text
        assert "h_data" in text
        assert "d_scratch" in text
        assert "copies are" in text

    def test_summary_clean_text(self, apu):
        tracer = MemoryTracer()
        buf = apu.memory.hip_malloc(1 * MiB, name="u")
        tracer.record_alloc(buf, 0.0)
        tracer.record_kernel("k", ["u"], 0.0, 1000.0)
        text = PortingAdvisor(tracer).summarise()
        assert "already unified" in text
