"""Tests for the machine-readable report layer (repro.report)."""

import csv
import json

import pytest

from repro.report import (
    COLLECTORS,
    SCHEMA_VERSION,
    ExperimentReport,
    collect,
    collect_all,
    collect_fig7,
    collect_fig8,
    collect_table1,
    export_all,
)


class TestExperimentReport:
    def test_add_and_len(self):
        report = ExperimentReport("x", "t", ["a", "b"])
        report.add(1, 2)
        report.add(3, 4)
        assert len(report) == 2

    def test_row_arity_enforced(self):
        report = ExperimentReport("x", "t", ["a", "b"])
        with pytest.raises(ValueError):
            report.add(1)

    def test_column_extraction(self):
        report = ExperimentReport("x", "t", ["a", "b"])
        report.add(1, "p")
        report.add(2, "q")
        assert report.column("a") == [1, 2]
        assert report.column("b") == ["p", "q"]

    def test_csv_round_trip(self, tmp_path):
        report = ExperimentReport("x", "t", ["a", "b"])
        report.add(1, "hello")
        path = report.to_csv(tmp_path / "x.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "hello"]]

    def test_json_round_trip(self, tmp_path):
        report = ExperimentReport("x", "t", ["a"])
        report.add(42)
        payload = json.loads(report.to_json(tmp_path / "x.json"))
        assert payload["experiment"] == "x"
        assert payload["rows"] == [[42]]
        assert json.loads((tmp_path / "x.json").read_text()) == payload

    def test_json_carries_provenance(self):
        report = ExperimentReport("x", "t", ["a"])
        payload = json.loads(report.to_json())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["git_sha"]
        assert payload["timestamp"]  # ISO 8601
        assert "T" in payload["timestamp"]


class TestCollectors:
    def test_table1_rows(self):
        report = collect_table1()
        assert len(report) == 10  # 5 allocators x 2 xnack modes
        assert "physical" in report.columns

    def test_fig7_matches_model(self):
        report = collect_fig7()
        scenarios = set(report.column("scenario"))
        assert scenarios == {"gpu_major", "gpu_minor", "cpu", "cpu12"}
        # The plateau value survives the export.
        plateau = [
            r for r in report.rows
            if r[0] == "gpu_minor" and r[1] == 10_000_000
        ]
        assert plateau[0][2] == pytest.approx(9.0e6, rel=0.05)

    def test_fig8_columns(self):
        report = collect_fig8()
        assert len(report) == 3
        means = dict(zip(report.column("fault_type"), report.column("mean_us")))
        assert means["cpu"] == pytest.approx(9.0, rel=0.05)

    def test_collect_all_covers_registry(self):
        reports = collect_all(quick=True)
        assert set(reports) == set(COLLECTORS)
        assert all(len(r) > 0 for r in reports.values())

    def test_export_all_writes_files(self, tmp_path):
        paths = export_all(tmp_path, quick=True)
        assert len(paths) == len(COLLECTORS)
        for path in paths:
            assert path.exists()
            assert path.stat().st_size > 0

    def test_collect_resolves_any_registered_experiment(self):
        report = collect("partition", quick=True)
        assert "SPX/NPS1" in report.column("mode")
        assert report.source == "Partitioning guide"

    def test_collect_unknown_experiment_raises(self):
        from repro.exp import UnknownExperimentError

        with pytest.raises(UnknownExperimentError):
            collect("fig99")

    def test_collect_surfaces_point_failure_with_params(self):
        from repro.exp import ExperimentSpec, temporarily_registered

        spec = ExperimentSpec.define(
            name="flaky-report", title="f", columns=["k", "v"],
            runner=_boom_runner, grid={"value": [2]},
        )
        with temporarily_registered(spec):
            with pytest.raises(RuntimeError) as excinfo:
                collect("flaky-report")
        assert "value=2" in str(excinfo.value)
        assert "boom on 2" in str(excinfo.value)


def _boom_runner(value):
    raise ValueError("boom on 2")
