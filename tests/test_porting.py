"""Tests for the porting strategies and containers (repro.porting)."""

import numpy as np
import pytest

from repro.core.allocators import AllocatorKind
from repro.hw.config import MiB, PAGE_SIZE
from repro.porting.containers import UnifiedVector
from repro.porting.strategies import (
    ChunkSchedule,
    DoubleBuffer,
    StackFlag,
    event_synchronised_swap,
    merged_pipeline,
    naive_free_memory,
    reliable_free_memory,
)
from repro.runtime.kernels import BufferAccess, KernelSpec


class TestDoubleBuffer:
    def _pair(self, hip):
        return (
            hip.array(64, np.float32, "hipMalloc"),
            hip.array(64, np.float32, "hipMalloc"),
        )

    def test_swap_exchanges_roles(self, hip):
        front, back = self._pair(hip)
        db = DoubleBuffer(front, back)
        assert db.front is front
        db.swap()
        assert db.front is back
        assert db.back is front
        assert db.swaps == 1

    def test_no_data_movement_on_swap(self, hip):
        front, back = self._pair(hip)
        db = DoubleBuffer(front, back)
        before = hip.apu.clock.now_ns
        db.swap()
        assert hip.apu.clock.now_ns == before

    def test_mismatched_halves_rejected(self, hip):
        a = hip.array(64, np.float32, "hipMalloc")
        b = hip.array(32, np.float32, "hipMalloc")
        with pytest.raises(ValueError):
            DoubleBuffer(a, b)

    def test_memory_equals_explicit_pair(self, hip):
        """The paper's heartwall observation: double buffering costs the
        same footprint as host+device buffer pairs."""
        front, back = self._pair(hip)
        db = DoubleBuffer(front, back)
        assert db.memory_bytes == 2 * front.allocation.size_bytes

    def test_event_synchronised_swap(self, hip):
        front, back = self._pair(hip)
        db = DoubleBuffer(front, back)
        stream = hip.hipStreamCreate()
        hip.launchKernel(
            KernelSpec("k", [BufferAccess(db.front.allocation, "read")]), stream
        )
        event = event_synchronised_swap(hip, db, stream)
        assert event.recorded
        assert db.swaps == 1


class TestMemoryCounters:
    def test_reliable_counter_sees_all_allocators(self, apu):
        before = reliable_free_memory(apu)
        apu.memory.hip_host_malloc(4 * MiB)
        assert before - reliable_free_memory(apu) == 4 * MiB

    def test_naive_counter_misses_pinned_memory(self, hip):
        before = naive_free_memory(hip)
        hip.hipHostMalloc(4 * MiB)
        assert naive_free_memory(hip) == before  # the porting pitfall

    def test_naive_counter_sees_hipmalloc(self, hip):
        before = naive_free_memory(hip)
        hip.hipMalloc(4 * MiB)
        assert before - naive_free_memory(hip) == 4 * MiB


class TestChunkSchedule:
    def test_covers_buffer_exactly(self):
        sched = ChunkSchedule(10 * MiB, 4 * MiB)
        chunks = list(sched.chunks())
        assert chunks == [(0, 4 * MiB), (4 * MiB, 4 * MiB), (8 * MiB, 2 * MiB)]
        assert sched.chunk_count == 3

    def test_merged_pipeline_same_coverage(self):
        sched = ChunkSchedule(10 * MiB, 4 * MiB)
        assert merged_pipeline(sched) == list(sched.chunks())

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ChunkSchedule(0, 1)
        with pytest.raises(ValueError):
            ChunkSchedule(4, 8)


class TestStackFlag:
    def test_read_synchronises_pending_writes(self, hip):
        stream = hip.hipStreamCreate()
        stream.enqueue(1_000.0)
        flag = StackFlag(hip, initial=1.0)
        flag.gpu_write(0.0, stream)
        assert flag.read() == 0.0
        assert hip.apu.clock.now_ns >= 1_000.0

    def test_scope_exit_with_pending_write_rejected(self, hip):
        flag = StackFlag(hip)
        flag.gpu_write(1.0)
        with pytest.raises(RuntimeError, match="out of scope"):
            flag.close()

    def test_context_manager_synchronises(self, hip):
        with StackFlag(hip, initial=1.0) as flag:
            flag.gpu_write(2.0)
        # Exiting cleanly implies the writes were synchronised.
        assert flag.value == 2.0


class TestUnifiedVector:
    def test_push_back_growth(self, apu):
        vec = UnifiedVector(apu, np.float32, initial_capacity=2)
        for i in range(10):
            vec.push_back(float(i))
        assert vec.size == 10
        assert vec.capacity >= 10
        assert vec.reallocations >= 2
        assert np.array_equal(vec.data, np.arange(10, dtype=np.float32))

    def test_extend(self, apu):
        vec = UnifiedVector(apu, np.float32, initial_capacity=4)
        vec.extend(range(100))
        assert vec.size == 100
        assert vec.data[99] == 99.0

    def test_default_allocator_is_pageable(self, apu):
        vec = UnifiedVector(apu)
        vec.extend(range(10))
        assert vec.allocation.kind is AllocatorKind.MALLOC

    def test_hip_allocator_variant(self, apu):
        vec = UnifiedVector(apu, allocator="hipMalloc")
        vec.extend(range(10))
        assert vec.allocation.kind is AllocatorKind.HIP_MALLOC

    def test_growth_frees_old_buffer(self, apu):
        vec = UnifiedVector(apu, np.float32, initial_capacity=2)
        old_allocation = vec.allocation
        vec.extend(range(100))
        assert old_allocation not in apu.memory.allocations

    def test_cpu_pages_touched(self, apu):
        vec = UnifiedVector(apu, np.float64, initial_capacity=1024)
        vec.extend(range(1024))
        assert vec.allocation.vma.resident_pages() >= 2

    def test_reserve_avoids_reallocation(self, apu):
        vec = UnifiedVector(apu, np.float32, initial_capacity=4)
        vec.reserve(1000)
        grows_before = vec.reallocations
        vec.extend(range(1000))
        assert vec.reallocations == grows_before

    def test_unsupported_allocator_rejected(self, apu):
        with pytest.raises(ValueError):
            UnifiedVector(apu, allocator="stack")

    def test_free(self, apu):
        vec = UnifiedVector(apu)
        vec.extend(range(10))
        vec.free()
        assert len(vec) == 0
