"""Unit tests for repro.advise: CFG, dataflow checks, SARIF, baseline, CLI."""

import ast
import json
import textwrap

import pytest

from repro.analyze import (
    Severity,
    advise_source,
    fingerprint,
    load_baseline,
    new_findings,
    render_sarif,
    save_baseline,
    to_sarif,
    validate_sarif,
)
from repro.analyze.advise.cfg import build_cfg
from repro.cli import main


def cfg_of(source):
    return build_cfg(ast.parse(textwrap.dedent(source)).body)


def advise(source):
    return advise_source(textwrap.dedent(source), "snippet.py")


def rules(source):
    return {f.rule for f in advise(source)}


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------


class TestCfg:
    def test_straight_line(self):
        cfg = cfg_of(
            """
            x = 1
            y = x + 1
            """
        )
        reachable = cfg.reachable()
        assert all(n.id in reachable for n in cfg.statement_nodes())
        assert cfg.exit in reachable

    def test_if_joins_both_arms(self):
        cfg = cfg_of(
            """
            if cond:
                a = 1
            else:
                a = 2
            after = a
            """
        )
        reachable = cfg.reachable()
        assert all(n.id in reachable for n in cfg.statement_nodes())
        # The statement after the if postdominates the test header.
        (after,) = [
            n for n in cfg.statement_nodes()
            if isinstance(n.stmt, ast.Assign) and n.line == 6
        ]
        (test,) = [n for n in cfg.statement_nodes() if n.kind == "header"]
        assert after.id in cfg.postdominators()[test.id]

    def test_while_has_back_edge_and_region(self):
        cfg = cfg_of(
            """
            while cond:
                body = 1
            after = 2
            """
        )
        assert len(cfg.loops) == 1
        loop = cfg.loops[0]
        (body,) = [
            n for n in cfg.statement_nodes()
            if isinstance(n.stmt, ast.Assign) and n.line == 3
        ]
        assert body.id in loop.body
        assert loop.head in cfg.succ[body.id]  # back edge
        assert cfg.innermost_loop(body.id) == 0

    def test_for_header_binds_iter_element(self):
        cfg = cfg_of(
            """
            for item in items:
                use(item)
            """
        )
        (head,) = [n for n in cfg.statement_nodes() if n.kind == "header"]
        assert head.bind_mode == "iter"
        assert isinstance(head.bind, ast.Name)

    def test_nested_loops_innermost_last(self):
        cfg = cfg_of(
            """
            for i in outer:
                for j in inner:
                    body = 1
            """
        )
        (body,) = [
            n for n in cfg.statement_nodes()
            if isinstance(n.stmt, ast.Assign)
        ]
        assert cfg.loops_of[body.id] == (0, 1)
        assert cfg.innermost_loop(body.id) == 1

    def test_break_terminates_flow(self):
        cfg = cfg_of(
            """
            while cond:
                break
                dead = 1
            after = 2
            """
        )
        reachable = cfg.reachable()
        dead = [
            n for n in cfg.statement_nodes()
            if isinstance(n.stmt, ast.Assign) and n.line == 4
        ]
        assert dead and dead[0].id not in reachable
        after = [
            n for n in cfg.statement_nodes()
            if isinstance(n.stmt, ast.Assign) and n.line == 5
        ]
        assert after and after[0].id in reachable

    def test_return_edges_to_exit(self):
        cfg = cfg_of(
            """
            x = 1
            return x
            """
        )
        (ret,) = [
            n for n in cfg.statement_nodes()
            if isinstance(n.stmt, ast.Return)
        ]
        assert cfg.exit in cfg.succ[ret.id]

    def test_try_handler_reachable_from_body(self):
        cfg = cfg_of(
            """
            try:
                risky = 1
            except ValueError:
                handled = 2
            after = 3
            """
        )
        reachable = cfg.reachable()
        assert all(n.id in reachable for n in cfg.statement_nodes())
        (risky,) = [
            n for n in cfg.statement_nodes()
            if isinstance(n.stmt, ast.Assign) and n.line == 3
        ]
        # Conservative exceptional edge out of the try body.
        assert any(
            cfg.nodes[s].kind == "join" for s in cfg.succ[risky.id]
        )

    def test_degenerate_body_keeps_exit_linked(self):
        cfg = cfg_of(
            """
            while True:
                pass
            """
        )
        assert cfg.pred[cfg.exit]
        # Postdominators stay well-defined.
        assert cfg.exit in cfg.postdominators()[cfg.entry]

    def test_exit_postdominates_everything_reachable(self):
        cfg = cfg_of(
            """
            for i in items:
                if i:
                    a = 1
                else:
                    continue
                b = 2
            c = 3
            """
        )
        postdom = cfg.postdominators()
        for node in cfg.reachable():
            assert cfg.exit in postdom[node]


# ----------------------------------------------------------------------
# Per-check positives and negatives (dataflow semantics)
# ----------------------------------------------------------------------

PRELUDE = """
import numpy as np

from repro import BufferAccess, KernelSpec, make_runtime
"""


def program(body):
    return PRELUDE + textwrap.dedent(body)


class TestChecks:
    def test_redundant_copy_fires(self):
        found = rules(program(
            """
            def run():
                hip = make_runtime(memory_gib=1)
                h = hip.array(1 << 10, np.float32, "malloc", name="h")
                d = hip.array(1 << 10, np.float32, "hipMalloc", name="d")
                hip.hipMemcpy(d, h)
                hip.hipDeviceSynchronize()
                hip.hipFree(h.allocation)
                hip.hipFree(d.allocation)
            """
        ))
        assert "advise.redundant-copy" in found

    def test_no_copy_no_finding(self):
        found = rules(program(
            """
            def run():
                hip = make_runtime(memory_gib=1)
                d = hip.array(1 << 10, np.float32, "hipMalloc", name="d")
                hip.launchKernel(
                    KernelSpec("k", [BufferAccess(d.allocation, "readwrite")])
                )
                hip.hipDeviceSynchronize()
                hip.hipFree(d.allocation)
            """
        ))
        assert found == set()

    def test_redundant_copy_through_helper_summary(self):
        # The allocation happens in a helper, parameterized on the
        # allocator; the interprocedural summary resolves both handles.
        findings = advise(program(
            """
            def make(hip, allocator):
                return hip.array(1 << 10, np.float32, allocator, name="b")

            def run():
                hip = make_runtime(memory_gib=1)
                src = make(hip, "malloc")
                dst = make(hip, "hipMalloc")
                hip.hipMemcpy(dst, src)
                hip.hipDeviceSynchronize()
                hip.hipFree(src.allocation)
                hip.hipFree(dst.allocation)
            """
        ))
        copies = [f for f in findings if f.rule == "advise.redundant-copy"]
        assert copies and all(f.severity == Severity.WARNING for f in copies)

    def test_first_touch_fires_on_on_demand_alloc(self):
        found = rules(program(
            """
            def run():
                hip = make_runtime(memory_gib=1, xnack=True)
                d = hip.array(1 << 10, np.float32, "malloc", name="d")
                d.np[:] = 1.0
                hip.launchKernel(
                    KernelSpec("k", [BufferAccess(d.allocation, "read")])
                )
                hip.hipDeviceSynchronize()
                hip.hipFree(d.allocation)
            """
        ))
        assert "advise.first-touch" in found

    def test_first_touch_quiet_for_up_front_alloc(self):
        found = rules(program(
            """
            def run():
                hip = make_runtime(memory_gib=1, xnack=True)
                d = hip.array(1 << 10, np.float32, "hipMalloc", name="d")
                d.np[:] = 1.0
                hip.launchKernel(
                    KernelSpec("k", [BufferAccess(d.allocation, "read")])
                )
                hip.hipDeviceSynchronize()
                hip.hipFree(d.allocation)
            """
        ))
        assert "advise.first-touch" not in found

    def test_fault_storm_on_large_cold_managed_range(self):
        findings = advise(program(
            """
            def run():
                hip = make_runtime(memory_gib=1, xnack=True)
                d = hip.array(8 << 20, np.uint8, "hipMallocManaged", name="d")
                hip.launchKernel(
                    KernelSpec("k", [BufferAccess(d.allocation, "read")])
                )
                hip.hipDeviceSynchronize()
                hip.hipFree(d.allocation)
            """
        ))
        storms = [f for f in findings if f.rule == "advise.fault-storm"]
        assert storms and all(f.severity == Severity.INFO for f in storms)

    def test_fault_storm_suppressed_when_xnack_off(self):
        found = rules(program(
            """
            def run():
                hip = make_runtime(memory_gib=1, xnack=False)
                d = hip.array(8 << 20, np.uint8, "hipMallocManaged", name="d")
                hip.launchKernel(
                    KernelSpec("k", [BufferAccess(d.allocation, "read")])
                )
                hip.hipDeviceSynchronize()
                hip.hipFree(d.allocation)
            """
        ))
        assert "advise.fault-storm" not in found

    def test_fault_storm_quiet_below_page_threshold(self):
        found = rules(program(
            """
            def run():
                hip = make_runtime(memory_gib=1, xnack=True)
                d = hip.array(1 << 20, np.uint8, "hipMallocManaged", name="d")
                hip.launchKernel(
                    KernelSpec("k", [BufferAccess(d.allocation, "read")])
                )
                hip.hipDeviceSynchronize()
                hip.hipFree(d.allocation)
            """
        ))
        assert "advise.fault-storm" not in found

    def test_tlb_reach_on_oversized_up_front_alloc(self):
        found = rules(program(
            """
            def run():
                hip = make_runtime(memory_gib=1)
                big = hip.hipMalloc(64 << 20, name="big")
                hip.launchKernel(
                    KernelSpec("k", [BufferAccess(big, "read")])
                )
                hip.hipDeviceSynchronize()
                hip.hipFree(big)
            """
        ))
        assert "advise.tlb-reach" in found

    def test_tlb_reach_quiet_within_reach(self):
        found = rules(program(
            """
            def run():
                hip = make_runtime(memory_gib=1)
                ok = hip.hipMalloc(16 << 20, name="ok")
                hip.launchKernel(
                    KernelSpec("k", [BufferAccess(ok, "read")])
                )
                hip.hipDeviceSynchronize()
                hip.hipFree(ok)
            """
        ))
        assert "advise.tlb-reach" not in found

    def test_mixed_alloc_on_branch_dependent_allocator(self):
        found = rules(program(
            """
            def run(flag):
                hip = make_runtime(memory_gib=1, xnack=True)
                if flag:
                    allocator = "hipMalloc"
                else:
                    allocator = "hipMallocManaged"
                d = hip.array(1 << 10, np.float32, allocator, name="d")
                hip.launchKernel(
                    KernelSpec("k", [BufferAccess(d.allocation, "read")])
                )
                hip.hipDeviceSynchronize()
                hip.hipFree(d.allocation)
            """
        ))
        assert "advise.mixed-alloc" in found

    def test_single_model_is_quiet(self):
        found = rules(program(
            """
            def run(flag):
                hip = make_runtime(memory_gib=1)
                if flag:
                    allocator = "hipMalloc"
                else:
                    allocator = "hipHostMalloc"
                d = hip.array(1 << 10, np.float32, allocator, name="d")
                hip.launchKernel(
                    KernelSpec("k", [BufferAccess(d.allocation, "read")])
                )
                hip.hipDeviceSynchronize()
                hip.hipFree(d.allocation)
            """
        ))
        assert "advise.mixed-alloc" not in found

    def test_sync_in_loop_with_stream(self):
        found = rules(program(
            """
            def run():
                hip = make_runtime(memory_gib=1)
                d = hip.array(1 << 10, np.float32, "hipMalloc", name="d")
                stream = hip.hipStreamCreate("s")
                for _ in range(4):
                    hip.launchKernel(
                        KernelSpec(
                            "k", [BufferAccess(d.allocation, "readwrite")]
                        ),
                        stream,
                    )
                    hip.hipDeviceSynchronize()
                hip.hipFree(d.allocation)
            """
        ))
        assert "advise.sync-in-loop" in found

    def test_sync_after_loop_is_fine(self):
        found = rules(program(
            """
            def run():
                hip = make_runtime(memory_gib=1)
                d = hip.array(1 << 10, np.float32, "hipMalloc", name="d")
                stream = hip.hipStreamCreate("s")
                for _ in range(4):
                    hip.launchKernel(
                        KernelSpec(
                            "k", [BufferAccess(d.allocation, "readwrite")]
                        ),
                        stream,
                    )
                hip.hipDeviceSynchronize()
                hip.hipFree(d.allocation)
            """
        ))
        assert "advise.sync-in-loop" not in found

    def test_syntax_error_reported_not_raised(self):
        findings = advise_source("def broken(:\n", "broken.py")
        assert [f.rule for f in findings] == ["advise.syntax-error"]

    def test_findings_carry_cost_and_paper_anchor(self):
        findings = advise(program(
            """
            def run():
                hip = make_runtime(memory_gib=1)
                h = hip.array(1 << 20, np.float32, "malloc", name="h")
                d = hip.array(1 << 20, np.float32, "hipMalloc", name="d")
                hip.hipMemcpy(d, h)
                hip.hipDeviceSynchronize()
                hip.hipFree(h.allocation)
                hip.hipFree(d.allocation)
            """
        ))
        (copy,) = [f for f in findings if f.rule == "advise.redundant-copy"]
        assert copy.cost_ns and copy.cost_ns > 0
        assert copy.function.endswith("run")


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------

BAD_SNIPPET = PRELUDE + textwrap.dedent(
    """
    def run():
        hip = make_runtime(memory_gib=1)
        h = hip.array(1 << 10, np.float32, "malloc", name="h")
        d = hip.array(1 << 10, np.float32, "hipMalloc", name="d")
        hip.hipMemcpy(d, h)
        hip.hipDeviceSynchronize()
        hip.hipFree(h.allocation)
        hip.hipFree(d.allocation)
    """
)

CLEAN_SNIPPET = PRELUDE + textwrap.dedent(
    """
    def run():
        hip = make_runtime(memory_gib=1)
        d = hip.array(1 << 10, np.float32, "hipMalloc", name="d")
        hip.launchKernel(
            KernelSpec("k", [BufferAccess(d.allocation, "readwrite")])
        )
        hip.hipDeviceSynchronize()
        hip.hipFree(d.allocation)
    """
)


class TestSarif:
    def findings(self):
        return advise_source(BAD_SNIPPET, "snippet.py")

    def test_render_is_valid(self):
        doc = to_sarif(self.findings())
        assert validate_sarif(doc) == []
        assert doc["version"] == "2.1.0"

    def test_results_reference_registered_rules(self):
        doc = to_sarif(self.findings())
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["partialFingerprints"]["reproAdvise/v1"]

    def test_empty_findings_still_valid(self):
        doc = to_sarif([])
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"] == []

    def test_validate_rejects_bad_version(self):
        doc = to_sarif(self.findings())
        doc["version"] = "1.0.0"
        assert validate_sarif(doc)

    def test_validate_rejects_unknown_rule_id(self):
        doc = to_sarif(self.findings())
        doc["runs"][0]["results"][0]["ruleId"] = "no.such-rule"
        assert validate_sarif(doc)

    def test_validate_rejects_bad_level(self):
        doc = to_sarif(self.findings())
        doc["runs"][0]["results"][0]["level"] = "catastrophic"
        assert validate_sarif(doc)

    def test_validate_rejects_missing_message(self):
        doc = to_sarif(self.findings())
        del doc["runs"][0]["results"][0]["message"]
        assert validate_sarif(doc)

    def test_render_sarif_parses(self):
        doc = json.loads(render_sarif(self.findings()))
        assert validate_sarif(doc) == []


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------


class TestBaseline:
    def test_fingerprint_survives_line_shifts(self):
        before = {f.rule: fingerprint(f)
                  for f in advise_source(BAD_SNIPPET, "snippet.py")}
        shifted = "# a comment\n\n" + BAD_SNIPPET
        after = {f.rule: fingerprint(f)
                 for f in advise_source(shifted, "snippet.py")}
        assert before == after

    def test_round_trip_and_new_findings(self, tmp_path):
        findings = advise_source(BAD_SNIPPET, "snippet.py")
        path = tmp_path / "baseline.json"
        prints = save_baseline(findings, path)
        assert set(prints) == {fingerprint(f) for f in findings}
        baseline = load_baseline(path)
        assert new_findings(findings, baseline) == []
        fresh = advise_source(
            BAD_SNIPPET.replace('"h"', '"other"'), "snippet.py"
        )
        assert new_findings(fresh, baseline)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "fingerprints": {}}))
        with pytest.raises(ValueError):
            load_baseline(path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestAdviseCli:
    def test_findings_gate_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(BAD_SNIPPET)
        assert main(["advise", str(path)]) == 1
        out = capsys.readouterr().out
        assert "advise.redundant-copy" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text(CLEAN_SNIPPET)
        assert main(["advise", str(path)]) == 0

    def test_no_paths_usage_error(self, capsys):
        assert main(["advise"]) == 2

    def test_baseline_round_trip(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(BAD_SNIPPET)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["advise", str(path), "--write-baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        assert main(["advise", str(path), "--baseline", str(baseline)]) == 0
        # A finding missing from the baseline re-arms the gate.
        baseline.write_text(json.dumps({"version": 1, "fingerprints": {}}))
        assert main(["advise", str(path), "--baseline", str(baseline)]) == 1

    def test_sarif_out_then_verify(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(BAD_SNIPPET)
        sarif = tmp_path / "report.sarif"
        main([
            "advise", str(path), "--format", "sarif", "--out", str(sarif)
        ])
        capsys.readouterr()
        doc = json.loads(sarif.read_text())
        assert validate_sarif(doc) == []
        assert main(["verify-sarif", str(sarif)]) == 0

    def test_verify_sarif_rejects_corrupt(self, tmp_path, capsys):
        sarif = tmp_path / "broken.sarif"
        sarif.write_text(json.dumps({"version": "2.1.0"}))
        assert main(["verify-sarif", str(sarif)]) == 1

    def test_json_format_parses(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(BAD_SNIPPET)
        main(["advise", str(path), "--format", "json"])
        parsed = json.loads(capsys.readouterr().out)
        assert any(f["rule"] == "advise.redundant-copy" for f in parsed)
