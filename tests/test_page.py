"""Unit tests for page/PTE primitives (repro.core.page)."""

import pytest

from repro.core.page import (
    NO_FRAME,
    PTE,
    PTE_GPU_MAPPED,
    PTE_PINNED,
    PTE_UNCACHED,
    PTE_VALID,
    align_down,
    align_up,
    page_number,
    page_offset,
    pages_spanned,
)


class TestAddressHelpers:
    def test_page_number(self):
        assert page_number(0) == 0
        assert page_number(4095) == 0
        assert page_number(4096) == 1
        assert page_number(10 * 4096 + 17) == 10

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            page_number(-1)

    def test_page_offset(self):
        assert page_offset(4096) == 0
        assert page_offset(4097) == 1
        assert page_offset(8191) == 4095

    def test_pages_spanned_single(self):
        assert pages_spanned(0, 1) == 1
        assert pages_spanned(0, 4096) == 1

    def test_pages_spanned_crossing(self):
        assert pages_spanned(4095, 2) == 2
        assert pages_spanned(0, 4097) == 2
        assert pages_spanned(100, 3 * 4096) == 4

    def test_pages_spanned_requires_positive(self):
        with pytest.raises(ValueError):
            pages_spanned(0, 0)

    def test_align_up(self):
        assert align_up(0, 4096) == 0
        assert align_up(1, 4096) == 4096
        assert align_up(4096, 4096) == 4096

    def test_align_down(self):
        assert align_down(4097, 4096) == 4096
        assert align_down(4095, 4096) == 0

    def test_alignment_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            align_up(10, 3)
        with pytest.raises(ValueError):
            align_down(10, 0)


class TestPTE:
    def test_default_is_invalid(self):
        pte = PTE()
        assert not pte.valid
        assert pte.frame == NO_FRAME

    def test_valid_requires_flag_and_frame(self):
        assert PTE(frame=5, flags=PTE_VALID).valid
        assert not PTE(frame=5, flags=0).valid
        assert not PTE(frame=NO_FRAME, flags=PTE_VALID).valid

    def test_flag_properties(self):
        pte = PTE(frame=1, flags=PTE_VALID | PTE_PINNED | PTE_GPU_MAPPED)
        assert pte.pinned
        assert pte.gpu_mapped
        assert not pte.uncached
        assert PTE(frame=1, flags=PTE_UNCACHED).uncached

    def test_fragment_coverage(self):
        pte = PTE(frame=0, flags=PTE_VALID, fragment=4)
        assert pte.fragment_pages == 16
        assert pte.fragment_bytes == 16 * 4096

    def test_fragment_exponent_range_enforced(self):
        PTE(fragment=31)  # max ok
        with pytest.raises(ValueError):
            PTE(fragment=32)
        with pytest.raises(ValueError):
            PTE(fragment=-1)
