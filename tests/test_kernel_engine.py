"""Deeper tests of the kernel execution engine (repro.runtime.kernels)."""

import numpy as np
import pytest

from repro.hw.config import KiB, MiB, PAGE_SIZE
from repro.runtime.kernels import (
    BufferAccess,
    KERNEL_LAUNCH_OVERHEAD_NS,
    KernelEngine,
    KernelSpec,
)


@pytest.fixture
def engine(apu):
    return KernelEngine(apu)


class TestBufferAccess:
    def test_resolved_size_defaults_to_buffer(self, apu):
        buf = apu.memory.hip_malloc(1 * MiB)
        access = BufferAccess(buf, "read")
        assert access.resolved_size == 1 * MiB

    def test_resolved_size_with_offset(self, apu):
        buf = apu.memory.hip_malloc(1 * MiB)
        access = BufferAccess(buf, "read", offset_bytes=256 * KiB)
        assert access.resolved_size == 768 * KiB

    def test_bytes_moved_modes(self, apu):
        buf = apu.memory.hip_malloc(1 * MiB)
        assert BufferAccess(buf, "read").bytes_moved == 1 * MiB
        assert BufferAccess(buf, "write").bytes_moved == 1 * MiB
        assert BufferAccess(buf, "readwrite").bytes_moved == 2 * MiB
        assert BufferAccess(buf, "read", passes=3).bytes_moved == 3 * MiB


class TestSubRangeExecution:
    def test_gpu_kernel_touches_only_accessed_pages(self, apu, engine):
        buf = apu.memory.malloc(64 * PAGE_SIZE)
        spec = KernelSpec(
            "partial",
            [BufferAccess(buf, "read", offset_bytes=16 * PAGE_SIZE,
                          size_bytes=8 * PAGE_SIZE)],
        )
        engine.run_gpu(spec)
        assert buf.vma.gpu_valid[16:24].all()
        assert not buf.vma.gpu_valid[:16].any()

    def test_tlb_misses_scale_with_range(self, apu, engine):
        # Both ranges exceed the 32-entry L1 TLB reach (64 KiB fragments
        # -> 2 MiB), so each pass thrashes and misses scale linearly.
        buf = apu.memory.hip_malloc(16 * MiB)
        small = engine.run_gpu(
            KernelSpec("s", [BufferAccess(buf, "read", size_bytes=4 * MiB,
                                          passes=10)])
        )
        large = engine.run_gpu(
            KernelSpec("l", [BufferAccess(buf, "read", passes=10)])
        )
        assert large.tlb_misses == pytest.approx(4 * small.tlb_misses, rel=0.1)

    def test_tlb_reach_cliff(self, apu, engine):
        # Below the TLB reach only compulsory misses occur; above it
        # every pass re-misses — the classic cyclic-LRU cliff.
        buf = apu.memory.hip_malloc(4 * MiB)
        fits = engine.run_gpu(
            KernelSpec("f", [BufferAccess(buf, "read", size_bytes=1 * MiB,
                                          passes=10)])
        )
        thrash = engine.run_gpu(
            KernelSpec("t", [BufferAccess(buf, "read", passes=10)])
        )
        assert fits.tlb_misses == 16  # compulsory only (16 fragments)
        assert thrash.tlb_misses == 640  # 64 fragments x 10 passes

    def test_multiple_accesses_sum_memory_time(self, apu, engine):
        a = apu.memory.hip_malloc(16 * MiB)
        b = apu.memory.hip_malloc(16 * MiB)
        single = engine.run_gpu(KernelSpec("1", [BufferAccess(a, "read")]))
        double = engine.run_gpu(
            KernelSpec("2", [BufferAccess(a, "read"), BufferAccess(b, "read")])
        )
        assert double.memory_ns == pytest.approx(2 * single.memory_ns, rel=0.01)


class TestTimingComposition:
    def test_duration_is_fault_plus_max(self, apu, engine):
        buf = apu.memory.malloc(4 * MiB)
        spec = KernelSpec("k", [BufferAccess(buf, "read")], compute_ns=5e6)
        result = engine.run_gpu(spec)
        assert result.duration_ns == pytest.approx(
            result.fault_ns + max(result.memory_ns, result.compute_ns)
        )

    def test_compute_hides_memory(self, apu, engine):
        buf = apu.memory.hip_malloc(1 * MiB)
        spec = KernelSpec("k", [BufferAccess(buf, "read")], compute_ns=1e9)
        result = engine.run_gpu(spec)
        assert result.duration_ns == pytest.approx(1e9)

    def test_cpu_kernel_reports_no_tlb_misses(self, apu, engine):
        # The GPU TLB-miss counter is a GPU-profiler observable.
        buf = apu.memory.hip_malloc(1 * MiB)
        result = engine.run_cpu(KernelSpec("k", [BufferAccess(buf, "read")]))
        assert result.tlb_misses == 0

    def test_gpu_results_report_stream_window(self, apu, engine):
        buf = apu.memory.hip_malloc(1 * MiB)
        result = engine.run_gpu(KernelSpec("k", [BufferAccess(buf, "read")]))
        assert result.end_ns - result.start_ns == pytest.approx(
            result.duration_ns
        )

    def test_empty_kernel_still_pays_launch(self, apu, engine):
        before = apu.clock.now_ns
        result = engine.run_gpu(KernelSpec("noop"))
        assert apu.clock.now_ns - before == pytest.approx(
            KERNEL_LAUNCH_OVERHEAD_NS
        )
        assert result.memory_ns == 0.0


class TestLatencyPattern:
    def test_explicit_access_count(self, apu, engine):
        buf = apu.memory.hip_malloc(1 * MiB)
        few = engine.run_gpu(
            KernelSpec("few", [BufferAccess(buf, "read", "latency",
                                            accesses=100)])
        )
        many = engine.run_gpu(
            KernelSpec("many", [BufferAccess(buf, "read", "latency",
                                             accesses=10_000)])
        )
        assert many.memory_ns == pytest.approx(100 * few.memory_ns, rel=0.01)

    def test_cpu_latency_scales_with_threads(self, apu, engine):
        buf = apu.memory.hip_malloc(4 * MiB)
        apu.touch(buf, "cpu")
        spec = KernelSpec("t", [BufferAccess(buf, "read", "latency")])
        one = engine.run_cpu(spec, threads=1)
        eight = engine.run_cpu(spec, threads=8)
        assert eight.memory_ns == pytest.approx(one.memory_ns / 8, rel=0.01)

    def test_uncached_latency_pattern(self, apu, engine):
        managed = apu.memory.managed_static(1 * MiB)
        normal = apu.memory.hip_malloc(1 * MiB)
        slow = engine.run_gpu(
            KernelSpec("m", [BufferAccess(managed, "read", "latency")])
        )
        fast = engine.run_gpu(
            KernelSpec("n", [BufferAccess(normal, "read", "latency")])
        )
        assert slow.memory_ns > fast.memory_ns


class TestCounterSideEffects:
    def test_traffic_counters(self, apu, engine):
        buf = apu.memory.hip_malloc(2 * MiB)
        engine.run_gpu(
            KernelSpec("k", [BufferAccess(buf, "readwrite", passes=2)])
        )
        assert apu.gpu.counters.bytes_read == 4 * MiB
        assert apu.gpu.counters.bytes_written == 4 * MiB

    def test_fault_counters_attributed_to_gpu(self, apu, engine):
        buf = apu.memory.malloc(1 * MiB)
        engine.run_gpu(KernelSpec("k", [BufferAccess(buf, "read")]))
        assert apu.faults.counters.gpu_major_pages == 256
