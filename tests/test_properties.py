"""Property-based tests (hypothesis) on the core data structures.

Invariants checked:

* physical allocator conservation and non-aliasing,
* fragment scan: correct alignment/contiguity of every encoded block,
* streaming-TLB closed form vs the exact LRU simulation,
* address space: page_range arithmetic and find/mmap consistency,
* cache hierarchy: hit fractions form a distribution, latency monotone,
* fault handler: touching is idempotent and conserves physical frames,
* HBM mapping: frame -> (stack, channel) is bijective per interleave
  unit and respects the granularity, under both NPS1 and NPS4.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.address_space import AddressSpace
from repro.core.fragments import compute_fragments, distinct_fragments
from repro.core.physical import PhysicalMemory
from repro.core.tlb import TLB, streaming_tlb_misses
from repro.hw.caches import CacheHierarchy, HierarchyLevel
from repro.hw.config import PAGE_SIZE, TLBGeometry, small_config
from repro.hw.hbm import HBMSubsystem
from repro.runtime.apu import make_apu

SMALL_CFG = small_config(1 << 30)


class TestPhysicalAllocatorProperties:
    @given(
        requests=st.lists(
            st.tuples(st.booleans(), st.integers(1, 200)), min_size=1, max_size=12
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_no_frame_allocated_twice(self, requests):
        phys = PhysicalMemory(SMALL_CFG, seed=3)
        live = []
        for contiguous, npages in requests:
            if contiguous:
                frames = phys.alloc_chunks(npages, 16)
            else:
                frames = phys.alloc_scattered(npages)
            live.append(frames)
        combined = np.concatenate(live)
        assert len(np.unique(combined)) == len(combined)
        assert phys.free_frames == phys.total_frames - len(combined)

    @given(
        requests=st.lists(st.integers(1, 300), min_size=1, max_size=10),
        frees=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_alloc_free_conserves_pool(self, requests, frees):
        phys = PhysicalMemory(SMALL_CFG, seed=5)
        live = [phys.alloc_scattered(n) for n in requests]
        order = frees.draw(st.permutations(range(len(live))))
        for idx in order:
            phys.free(live[idx])
        assert phys.free_frames == phys.total_frames
        assert phys.used_bytes == 0

    @given(npages=st.integers(1, 256), chunk_exp=st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_chunks_aligned_and_contiguous(self, npages, chunk_exp):
        chunk = 1 << chunk_exp
        phys = PhysicalMemory(SMALL_CFG, seed=9)
        frames = phys.alloc_chunks(npages, chunk)
        assert len(frames) == npages
        for start in range(0, npages - chunk + 1, chunk):
            block = frames[start : start + chunk]
            if len(block) == chunk:
                assert block[0] % chunk == 0
                assert (np.diff(block) == 1).all()


class TestFragmentProperties:
    @given(
        runs=st.lists(
            st.tuples(st.integers(0, 4000), st.integers(1, 40)),
            min_size=1,
            max_size=8,
        ),
        base_vpn=st.integers(0, 1 << 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_block_is_aligned_contiguous(self, runs, base_vpn):
        # Build a frame array from arbitrary (start, length) runs.
        pieces = [np.arange(start, start + length) for start, length in runs]
        frames = np.concatenate(pieces)
        exps = compute_fragments(frames, base_vpn)
        i = 0
        while i < len(frames):
            exp = int(exps[i])
            block = 1 << exp
            # Block must lie within bounds and be uniform.
            assert i + block <= len(frames)
            assert (exps[i : i + block] == exp).all()
            # Aligned in both VA and PA.
            assert (base_vpn + i) % block == 0
            assert frames[i] % block == 0
            # Physically contiguous.
            assert (np.diff(frames[i : i + block]) == 1).all()
            i += block

    @given(n=st.integers(1, 512))
    @settings(max_examples=30, deadline=None)
    def test_distinct_fragments_bounded(self, n):
        frames = np.arange(n)
        exps = compute_fragments(frames, base_vpn=0)
        count = distinct_fragments(exps)
        assert 1 <= count <= n


class TestTLBProperties:
    @given(
        accesses=st.lists(st.integers(0, 63), min_size=1, max_size=300),
        entries=st.integers(1, 32),
    )
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, accesses, entries):
        tlb = TLB(TLBGeometry("t", entries, 1.0))
        for vpn in accesses:
            tlb.access(vpn)
        assert tlb.stats.accesses == len(accesses)
        assert tlb.occupancy <= entries

    @given(
        npages=st.integers(1, 200),
        entries=st.integers(1, 64),
        passes=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_streaming_closed_form_matches_lru(self, npages, entries, passes):
        exps = np.zeros(npages, dtype=np.int8)
        fast = streaming_tlb_misses(exps, passes, entries)
        tlb = TLB(TLBGeometry("t", entries, 1.0, fragment_aware=True))
        for _ in range(passes):
            for vpn in range(npages):
                tlb.access(vpn)
        assert fast == tlb.stats.misses


class TestAddressSpaceProperties:
    @given(sizes=st.lists(st.integers(1, 1 << 20), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_mmap_ranges_never_overlap(self, sizes):
        aspace = AddressSpace()
        vmas = [aspace.mmap(size) for size in sizes]
        spans = sorted((v.start, v.end) for v in vmas)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    @given(
        npages=st.integers(1, 64),
        offset=st.integers(0, 1 << 18),
        size=st.integers(1, 1 << 18),
    )
    @settings(max_examples=50, deadline=None)
    def test_page_range_covers_byte_range(self, npages, offset, size):
        aspace = AddressSpace()
        vma = aspace.mmap(npages * PAGE_SIZE)
        if offset + size > vma.size_bytes:
            return  # out of range is tested separately
        first, count = vma.page_range(vma.start + offset, size)
        assert first * PAGE_SIZE <= offset
        assert (first + count) * PAGE_SIZE >= offset + size
        assert count <= npages


class TestCacheHierarchyProperties:
    @given(
        caps=st.lists(st.integers(10, 1 << 24), min_size=1, max_size=4, unique=True),
        ws=st.integers(1, 1 << 26),
    )
    @settings(max_examples=50, deadline=None)
    def test_hit_fractions_form_distribution(self, caps, ws):
        caps = sorted(caps)
        levels = [
            HierarchyLevel(f"l{i}", c, float(i + 1)) for i, c in enumerate(caps)
        ]
        levels.append(HierarchyLevel("mem", None, 100.0))
        h = CacheHierarchy(levels)
        fractions = [f for _, f in h.hit_fractions(ws)]
        assert all(0.0 <= f <= 1.0 for f in fractions)
        assert sum(fractions) == pytest.approx(1.0)

    @given(ws_pairs=st.tuples(st.integers(1, 1 << 26), st.integers(1, 1 << 26)))
    @settings(max_examples=50, deadline=None)
    def test_latency_monotone(self, ws_pairs):
        h = CacheHierarchy(
            [
                HierarchyLevel("l1", 1 << 14, 1.0),
                HierarchyLevel("l2", 1 << 20, 10.0),
                HierarchyLevel("mem", None, 100.0),
            ]
        )
        small, big = sorted(ws_pairs)
        assert h.average_latency_ns(small) <= h.average_latency_ns(big) + 1e-9


class TestHBMProperties:
    @given(frames=st.lists(st.integers(0, 1 << 22), min_size=1, max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_histogram_conserves_bytes(self, frames):
        hbm = HBMSubsystem(SMALL_CFG.hbm)
        hist = hbm.channel_histogram(np.array(frames))
        assert hist.sum() == len(frames) * PAGE_SIZE

    @given(
        numa_domains=st.sampled_from([1, 4]),
        interleave_pages=st.sampled_from([1, 2, 4]),
        raw_frames=st.lists(st.integers(0, 1 << 60), min_size=1, max_size=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_frame_mapping_bijective_and_granular(
        self, numa_domains, interleave_pages, raw_frames
    ):
        # Frame -> (domain, stack, lane, rotation) must be invertible,
        # stay on the domain's stacks, and keep every frame of one
        # interleave unit on one channel — in NPS1 and NPS4 alike.
        geo = dataclasses.replace(
            SMALL_CFG.hbm, interleave_bytes=interleave_pages * PAGE_SIZE
        )
        hbm = HBMSubsystem(geo, numa_domains=numa_domains)
        total = geo.capacity_bytes // PAGE_SIZE
        lanes = geo.channels_per_stack
        spd = geo.stacks // numa_domains
        fpd = hbm.frames_per_domain
        ppu = interleave_pages
        for raw in raw_frames:
            frame = raw % total
            channel = hbm.channel_of_frame(frame)
            stack, lane = channel // lanes, channel % lanes
            domain = hbm.domain_of_frame(frame)
            assert stack == hbm.stack_of_frame(frame)
            assert stack % numa_domains == domain
            # Invert the mapping: reconstruct the frame from its
            # (domain, stack, lane, rotation, unit offset) coordinates.
            unit = (frame % fpd) // ppu
            rotation = unit // (spd * lanes)
            unit_back = (
                rotation * spd * lanes
                + lane * spd
                + (stack - domain) // numa_domains
            )
            assert unit_back == unit
            frame_back = domain * fpd + unit_back * ppu + (frame % fpd) % ppu
            assert frame_back == frame
            # Interleave granularity: the whole unit shares the channel.
            unit_start = frame - (frame % fpd) % ppu
            for offset in range(ppu):
                assert hbm.channel_of_frame(unit_start + offset) == channel

    @given(numa_domains=st.sampled_from([1, 4]))
    @settings(max_examples=8, deadline=None)
    def test_full_domain_channel_histogram_uniform(self, numa_domains):
        hbm = HBMSubsystem(SMALL_CFG.hbm, numa_domains=numa_domains)
        for domain in range(numa_domains):
            lo, hi = hbm.domain_frame_range(domain)
            hist = hbm.channel_histogram(np.arange(lo, hi))
            visible = np.zeros(SMALL_CFG.hbm.channels, dtype=bool)
            visible[hbm.channels_of_domain(domain)] = True
            assert (hist[~visible] == 0).all()
            assert len(np.unique(hist[visible])) == 1  # perfectly even


class TestFaultProperties:
    @given(
        touches=st.lists(
            st.tuples(
                st.sampled_from(["cpu", "gpu"]),
                st.integers(0, 60),
                st.integers(1, 4),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_touching_is_idempotent_and_conserves(self, touches):
        apu = make_apu(1, xnack=True)
        buf = apu.memory.malloc(64 * PAGE_SIZE)
        for device, first, count in touches:
            count = min(count, 64 - first)
            if count <= 0:
                continue
            apu.faults.touch_range(buf.vma, first, count, device)
            # Repeat touch never faults again.
            again = apu.faults.touch_range(buf.vma, first, count, device)
            assert not again.any_faults
        resident = buf.vma.resident_pages()
        assert apu.physical.used_bytes == resident * PAGE_SIZE
        # Every sys-mapped or gpu-mapped page has a frame.
        mapped = buf.vma.sys_valid | buf.vma.gpu_valid
        assert (buf.vma.frames[mapped] >= 0).all()
