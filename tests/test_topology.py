"""Unit tests for the chiplet topology (repro.hw.topology)."""

import pytest

from repro.hw.config import default_config
from repro.hw.topology import APUTopology, link_pairs


@pytest.fixture
def topo():
    return APUTopology(default_config())


class TestStructure:
    def test_chiplet_counts(self, topo):
        assert len(topo.chiplets("xcd")) == 6
        assert len(topo.chiplets("ccd")) == 3
        assert len(topo.chiplets("iod")) == 4
        assert len(topo.chiplets("hbm")) == 8

    def test_every_two_xcds_share_an_iod(self, topo):
        for i in range(6):
            assert topo.hops(f"xcd{i}", f"iod{i // 2}") == 1

    def test_ccds_share_one_iod(self, topo):
        for i in range(3):
            assert topo.hops(f"ccd{i}", "iod3") == 1

    def test_iods_fully_connected(self, topo):
        for a in range(4):
            for b in range(a + 1, 4):
                assert topo.hops(f"iod{a}", f"iod{b}") == 1

    def test_node_ids(self, topo):
        chiplet = topo.chiplets("xcd")[3]
        assert chiplet.node_id == "xcd3"
        assert chiplet.index == 3


class TestUnifiedMemoryProperty:
    def test_memory_reachable_from_all_compute(self, topo):
        assert topo.memory_reachable_from_all()

    def test_max_hops_to_memory_bounded(self, topo):
        # Worst case: compute -> its IOD -> remote IOD -> HBM stack.
        assert topo.max_hops_to_memory() <= 3

    def test_xcd_and_ccd_can_reach_same_stack(self, topo):
        # The structural definition of UPM: no stack is private.
        path_gpu = topo.path("xcd0", "hbm5")
        path_cpu = topo.path("ccd0", "hbm5")
        assert path_gpu[-1] == path_cpu[-1] == "hbm5"


class TestHelpers:
    def test_link_pairs_are_fabric_edges(self, topo):
        pairs = link_pairs(topo)
        assert ("iod0", "iod1") in pairs
        assert all(a < b for a, b in pairs)
        # HBM PHY links are not Infinity Fabric.
        assert not any("hbm" in a or "hbm" in b for a, b in pairs)

    def test_describe_mentions_parts(self, topo):
        text = topo.describe()
        assert "6 XCD" in text
        assert "3 CCD" in text
        assert "228" in text
