"""Unit tests for the simulated clock (repro.hw.clock)."""

import pytest

from repro.hw.clock import SimClock, Stopwatch


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(100.0)
        clock.advance(50.5)
        assert clock.now_ns == pytest.approx(150.5)

    def test_now_s_converts(self):
        clock = SimClock()
        clock.advance(2.5e9)
        assert clock.now_s == pytest.approx(2.5)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(500.0)
        assert clock.now_ns == 500.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock()
        clock.advance(1000.0)
        clock.advance_to(500.0)
        assert clock.now_ns == 1000.0

    def test_region_attributes_time(self):
        clock = SimClock()
        with clock.region("compute"):
            clock.advance(300.0)
        clock.advance(700.0)
        assert clock.region_ns("compute") == pytest.approx(300.0)

    def test_regions_accumulate_across_entries(self):
        clock = SimClock()
        for _ in range(3):
            with clock.region("io"):
                clock.advance(10.0)
        assert clock.region_ns("io") == pytest.approx(30.0)

    def test_nested_regions_count_both(self):
        clock = SimClock()
        with clock.region("outer"):
            clock.advance(5.0)
            with clock.region("inner"):
                clock.advance(20.0)
        assert clock.region_ns("inner") == pytest.approx(20.0)
        assert clock.region_ns("outer") == pytest.approx(25.0)

    def test_unknown_region_is_zero(self):
        assert SimClock().region_ns("nope") == 0.0

    def test_regions_snapshot(self):
        clock = SimClock()
        with clock.region("a"):
            clock.advance(1.0)
        snap = clock.regions()
        snap["a"] = 999.0
        assert clock.region_ns("a") == pytest.approx(1.0)

    def test_reset(self):
        clock = SimClock()
        with clock.region("a"):
            clock.advance(10.0)
        clock.reset()
        assert clock.now_ns == 0.0
        assert clock.region_ns("a") == 0.0

    def test_reset_inside_region_rejected(self):
        clock = SimClock()
        with pytest.raises(RuntimeError):
            with clock.region("a"):
                clock.reset()


class TestStopwatch:
    def test_measures_elapsed(self):
        clock = SimClock()
        sw = Stopwatch(clock)
        sw.start()
        clock.advance(123.0)
        assert sw.stop_ns() == pytest.approx(123.0)

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch(SimClock()).stop_ns()

    def test_peek_keeps_running(self):
        clock = SimClock()
        sw = Stopwatch(clock)
        sw.start()
        clock.advance(10.0)
        assert sw.peek_ns() == pytest.approx(10.0)
        clock.advance(10.0)
        assert sw.stop_ns() == pytest.approx(20.0)

    def test_stop_clears_start(self):
        clock = SimClock()
        sw = Stopwatch(clock)
        sw.start()
        sw.stop_ns()
        with pytest.raises(RuntimeError):
            sw.stop_ns()
