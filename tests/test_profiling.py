"""Tests for the profiling interfaces (repro.profiling)."""

import pytest

from repro.hw.config import MiB
from repro.profiling.memusage import MemoryUsageProfiler
from repro.profiling.perfstat import PerfStat
from repro.profiling.rocprof import COUNTER_MAP, RocProf
from repro.runtime.kernels import BufferAccess, KernelSpec


class TestRocProf:
    def test_counts_region_delta_only(self, hip):
        buf = hip.hipMalloc(16 * MiB)
        # Pre-region activity must not leak into the measurement.
        hip.launchKernel(KernelSpec("warm", [BufferAccess(buf, "read")]))
        prof = RocProf(hip.apu)
        prof.start()
        result = hip.launchKernel(
            KernelSpec("hot", [BufferAccess(buf, "read", passes=5)])
        )
        region = prof.stop()
        assert region.tlb_misses == result.tlb_misses
        assert region["GRBM_GUI_ACTIVE_kernels"] == 1

    def test_stop_without_start_rejected(self, hip):
        with pytest.raises(RuntimeError):
            RocProf(hip.apu).stop()

    def test_context_manager(self, hip):
        buf = hip.hipMalloc(4 * MiB)
        prof = RocProf(hip.apu)
        with prof.region() as out:
            hip.launchKernel(KernelSpec("k", [BufferAccess(buf, "read")]))
        assert out[0]["GRBM_GUI_ACTIVE_kernels"] == 1

    def test_traffic_counters(self, hip):
        buf = hip.hipMalloc(4 * MiB)
        prof = RocProf(hip.apu)
        prof.start()
        hip.launchKernel(KernelSpec("k", [BufferAccess(buf, "readwrite")]))
        region = prof.stop()
        assert region["TCC_EA_RDREQ_bytes"] == 4 * MiB
        assert region["TCC_EA_WRREQ_bytes"] == 4 * MiB

    def test_counter_map_names(self):
        assert "TCP_UTCL1_TRANSLATION_MISS_sum" in COUNTER_MAP


class TestPerfStat:
    def test_counts_cpu_faults(self, apu):
        buf = apu.memory.malloc(1 * MiB)
        perf = PerfStat(apu)
        perf.start()
        apu.touch(buf, "cpu")
        report = perf.stop()
        assert report.page_faults == 256
        assert report.faulted_pages == 256

    def test_region_scoped(self, apu):
        a = apu.memory.malloc(1 * MiB)
        b = apu.memory.malloc(1 * MiB)
        apu.touch(a, "cpu")  # outside region
        perf = PerfStat(apu)
        with perf.region() as out:
            apu.touch(b, "cpu")
        assert out[0].page_faults == 256

    def test_gpu_fault_pages_reported(self, apu):
        buf = apu.memory.malloc(1 * MiB)
        perf = PerfStat(apu)
        perf.start()
        apu.touch(buf, "gpu")
        report = perf.stop()
        assert report.gpu_major_pages == 256

    def test_str_format(self, apu):
        perf = PerfStat(apu)
        perf.start()
        report = perf.stop()
        assert "page-faults" in str(report)


class TestMemoryUsageProfiler:
    def test_peak_via_libnuma_sampling(self, apu):
        profiler = MemoryUsageProfiler(apu)
        big = apu.memory.hip_malloc(32 * MiB)
        profiler.sample()
        apu.memory.free(big)
        apu.memory.hip_malloc(1 * MiB)
        profiler.sample()
        assert profiler.peak_bytes == 32 * MiB
        assert profiler.timeline.peak_bytes == 32 * MiB

    def test_timeline_records_time(self, apu):
        profiler = MemoryUsageProfiler(apu)
        apu.memory.hip_malloc(1 * MiB)
        profiler.sample()
        assert len(profiler.timeline.times_ns) == 1

    def test_interfaces_snapshot(self, apu):
        profiler = MemoryUsageProfiler(apu)
        apu.memory.hip_malloc(2 * MiB)
        snap = profiler.interfaces()
        assert snap.meminfo_used == 2 * MiB
        assert snap.vm_rss == 0
