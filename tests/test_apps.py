"""Integration tests for the six Rodinia workloads (repro.apps).

Small problem sizes for speed; the paper-scale comparisons run in
benchmarks/test_fig11_applications.py.  The key invariants:

* both memory models compute *identical* results (checksum equality);
* the memory/time orderings of Fig. 11 hold in sign.
"""

import pytest

from repro.apps import ALL_APPS, compare
from repro.apps.backprop import Backprop
from repro.apps.dwt2d import Dwt2d
from repro.apps.heartwall import Heartwall
from repro.apps.hotspot import Hotspot
from repro.apps.nn import NearestNeighbor
from repro.apps.srad import SradV1

SMALL = {
    "backprop": {"input_units": 1 << 16},
    "dwt2d": {"dim": 1024, "levels": 2},
    "heartwall": {"frame_dim": 256, "frames": 6, "points": 16},
    "hotspot": {"grid": 256, "iterations": 10},
    "nn": {"records": 1 << 18, "k": 4},
    "srad_v1": {"dim": 256, "iterations": 6},
}


@pytest.fixture(scope="module")
def results():
    """Run every app in every variant once (module-scoped: it's work)."""
    out = {}
    for name, cls in ALL_APPS.items():
        app = cls()
        out[name] = {
            variant: app.run(variant, memory_gib=4, params=SMALL[name])
            for variant in app.variants
        }
    return out


class TestRegistry:
    def test_six_apps(self):
        assert set(ALL_APPS) == {
            "backprop", "dwt2d", "heartwall", "hotspot", "nn", "srad_v1",
        }

    def test_every_app_has_explicit_baseline(self):
        for cls in ALL_APPS.values():
            assert "explicit" in cls().variants

    def test_heartwall_has_two_unified_variants(self):
        assert Heartwall().variants == ("explicit", "unified-v1", "unified-v2")

    def test_nn_has_allocator_fix_variant(self):
        assert "unified-hipalloc" in NearestNeighbor().variants


class TestCorrectness:
    def test_variants_compute_identical_results(self, results):
        for name, by_variant in results.items():
            baseline = by_variant["explicit"].checksum
            for variant, result in by_variant.items():
                assert result.checksum == pytest.approx(baseline, rel=1e-6), (
                    f"{name}/{variant} diverged from the explicit model"
                )

    def test_checksums_nontrivial(self, results):
        for name, by_variant in results.items():
            assert by_variant["explicit"].checksum != 0.0, name

    def test_times_positive_and_ordered(self, results):
        for by_variant in results.values():
            for result in by_variant.values():
                assert result.total_time_s > 0
                assert 0 < result.compute_time_s <= result.total_time_s

    def test_peak_memory_positive(self, results):
        for by_variant in results.values():
            for result in by_variant.values():
                assert result.peak_memory_bytes > 0


class TestFig11Orderings:
    """Sign-level orderings at small scale (full ratios in benchmarks/)."""

    def test_unified_saves_memory_where_buffers_merge(self, results):
        for name in ("backprop", "hotspot", "srad_v1", "nn"):
            explicit = results[name]["explicit"].peak_memory_bytes
            unified_variant = (
                "unified" if "unified" in results[name] else "unified-v2"
            )
            unified = results[name][unified_variant].peak_memory_bytes
            assert unified < explicit, name

    def test_dwt2d_memory_unchanged(self, results):
        c = compare(results["dwt2d"]["explicit"], results["dwt2d"]["unified"])
        assert c.memory_ratio == pytest.approx(1.0, abs=0.05)

    def test_heartwall_v2_memory_unchanged(self, results):
        c = compare(
            results["heartwall"]["explicit"], results["heartwall"]["unified-v2"]
        )
        assert c.memory_ratio == pytest.approx(1.0, abs=0.1)

    def test_backprop_unified_faster_compute(self, results):
        c = compare(results["backprop"]["explicit"], results["backprop"]["unified"])
        assert c.compute_time_ratio < 0.9

    def test_dwt2d_compute_collapses(self, results):
        c = compare(results["dwt2d"]["explicit"], results["dwt2d"]["unified"])
        assert c.compute_time_ratio < 0.5

    def test_nn_unified_compute_is_outlier(self, results):
        c = compare(results["nn"]["explicit"], results["nn"]["unified"])
        assert c.compute_time_ratio > 1.3

    def test_nn_allocator_fix_restores_performance(self, results):
        broken = compare(results["nn"]["explicit"], results["nn"]["unified"])
        fixed = compare(results["nn"]["explicit"], results["nn"]["unified-hipalloc"])
        assert fixed.compute_time_ratio < broken.compute_time_ratio

    def test_heartwall_v1_slower_than_v2(self, results):
        v1 = results["heartwall"]["unified-v1"].compute_time_s
        v2 = results["heartwall"]["unified-v2"].compute_time_s
        assert v1 > v2


class TestParameterHandling:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            Hotspot().run("managed", params=SMALL["hotspot"])

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError):
            Hotspot().run("explicit", params={"gridsize": 64})

    def test_explicit_runs_without_xnack(self):
        # The baseline uses only XNACK-free allocators.
        app = Hotspot()
        assert not app.needs_xnack("explicit")
        assert app.needs_xnack("unified")

    def test_compare_different_apps_rejected(self, results):
        with pytest.raises(ValueError):
            compare(results["hotspot"]["explicit"], results["nn"]["unified"])

    def test_compare_variants_helper(self):
        app = SradV1()
        out = app.compare_variants(memory_gib=4, params=SMALL["srad_v1"])
        assert "unified" in out
        assert out["unified"].app == "srad_v1"
