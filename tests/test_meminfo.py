"""Unit tests for the memory-usage interfaces (repro.core.meminfo).

The paper's Section 3.2 point: the interfaces disagree, each with a
specific blind spot.  These tests pin the visibility matrix.
"""

import pytest

from repro.core.meminfo import (
    PeakUsageSampler,
    hip_mem_get_info,
    libnuma_free,
    proc_meminfo,
    rocm_smi_used_bytes,
    snapshot,
    vm_rss,
)
from repro.hw.config import MiB


class TestPhysicalInterfaces:
    def test_meminfo_sees_up_front_immediately(self, apu):
        before = proc_meminfo(apu.physical)["MemUsed"]
        apu.memory.hip_malloc(4 * MiB)
        after = proc_meminfo(apu.physical)["MemUsed"]
        assert after - before == 4 * MiB

    def test_meminfo_sees_on_demand_after_touch(self, apu):
        buf = apu.memory.malloc(4 * MiB)
        assert proc_meminfo(apu.physical)["MemUsed"] == 0
        apu.touch(buf, "cpu")
        assert proc_meminfo(apu.physical)["MemUsed"] == 4 * MiB

    def test_libnuma_matches_meminfo(self, apu):
        apu.memory.hip_host_malloc(2 * MiB)
        free, total = libnuma_free(apu.physical)
        info = proc_meminfo(apu.physical)
        assert total - free == info["MemUsed"]
        assert total == info["MemTotal"]


class TestHipInterfaces:
    def test_hip_mem_get_info_sees_only_hipmalloc(self, apu):
        free0, total = hip_mem_get_info(apu.memory, apu.physical)
        assert free0 == total
        apu.memory.hip_malloc(4 * MiB)
        free1, _ = hip_mem_get_info(apu.memory, apu.physical)
        assert free0 - free1 == 4 * MiB
        # Other allocators are invisible to it.
        buf = apu.memory.hip_host_malloc(8 * MiB)
        apu.touch(apu.memory.malloc(8 * MiB), "cpu")
        free2, _ = hip_mem_get_info(apu.memory, apu.physical)
        assert free2 == free1

    def test_rocm_smi_matches_hip(self, apu):
        apu.memory.hip_malloc(4 * MiB)
        apu.memory.hip_host_malloc(4 * MiB)
        assert rocm_smi_used_bytes(apu.memory) == 4 * MiB


class TestProcessInterfaces:
    def test_vm_rss_excludes_hipmalloc(self, apu):
        apu.memory.hip_malloc(4 * MiB)
        assert vm_rss(apu.memory) == 0

    def test_vm_rss_sees_touched_malloc(self, apu):
        buf = apu.memory.malloc(4 * MiB)
        assert vm_rss(apu.memory) == 0
        apu.touch(buf, "cpu")
        assert vm_rss(apu.memory) == 4 * MiB

    def test_vm_rss_sees_pinned_host(self, apu):
        apu.memory.hip_host_malloc(2 * MiB)
        assert vm_rss(apu.memory) == 2 * MiB


class TestDisagreement:
    def test_no_single_interface_sees_everything(self, apu):
        """The paper's core observation, as an executable statement."""
        apu.memory.hip_malloc(4 * MiB)  # invisible to VmRSS
        apu.memory.hip_host_malloc(4 * MiB)  # invisible to hipMemGetInfo
        snap = snapshot(apu.memory, apu.physical)
        truth = 8 * MiB
        assert snap.meminfo_used == truth  # only the physical counters
        assert snap.rocm_smi_used < truth
        assert snap.vm_rss < truth


class TestPeakSampler:
    def test_tracks_high_water_mark(self, apu):
        sampler = PeakUsageSampler(apu.physical)
        a = apu.memory.hip_malloc(8 * MiB)
        sampler.sample()
        apu.memory.free(a)
        apu.memory.hip_malloc(2 * MiB)
        sampler.sample()
        assert sampler.peak_bytes == 8 * MiB

    def test_relative_to_baseline(self, apu):
        apu.memory.hip_malloc(4 * MiB)  # pre-existing usage
        sampler = PeakUsageSampler(apu.physical)
        apu.memory.hip_malloc(2 * MiB)
        assert sampler.sample() == 2 * MiB
