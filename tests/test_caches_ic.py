"""Unit tests for the cache hierarchy and Infinity Cache models."""

import numpy as np
import pytest

from repro.hw.caches import (
    CacheHierarchy,
    HierarchyLevel,
    cpu_hierarchy,
    gpu_hierarchy,
)
from repro.hw.config import (
    InfinityCacheGeometry,
    KiB,
    MiB,
    GiB,
    default_config,
)
from repro.hw.hbm import HBMSubsystem
from repro.hw.infinity_cache import InfinityCache


@pytest.fixture
def cfg():
    return default_config()


class TestCacheHierarchy:
    def _simple(self):
        return CacheHierarchy(
            [
                HierarchyLevel("l1", 1024, 1.0),
                HierarchyLevel("l2", 8192, 10.0),
                HierarchyLevel("mem", None, 100.0),
            ]
        )

    def test_serving_level_by_capacity(self):
        h = self._simple()
        assert h.serving_level(512).name == "l1"
        assert h.serving_level(4096).name == "l2"
        assert h.serving_level(1 << 20).name == "mem"

    def test_hit_fractions_sum_to_one(self):
        h = self._simple()
        for ws in (100, 1024, 5000, 1 << 20):
            fractions = dict(h.hit_fractions(ws))
            assert sum(fractions.values()) == pytest.approx(1.0)

    def test_tiny_working_set_all_l1(self):
        fractions = dict(self._simple().hit_fractions(512))
        assert fractions["l1"] == pytest.approx(1.0)

    def test_average_latency_monotonic_in_working_set(self):
        h = self._simple()
        sizes = [256, 1024, 4096, 16384, 1 << 20]
        latencies = [h.average_latency_ns(s) for s in sizes]
        assert latencies == sorted(latencies)

    def test_average_latency_bounds(self):
        h = self._simple()
        assert h.average_latency_ns(100) == pytest.approx(1.0)
        assert h.average_latency_ns(1 << 30) == pytest.approx(100.0, rel=0.01)

    def test_zero_working_set_rejected(self):
        with pytest.raises(ValueError):
            self._simple().hit_fractions(0)

    def test_last_level_must_be_terminal(self):
        with pytest.raises(ValueError):
            CacheHierarchy([HierarchyLevel("l1", 1024, 1.0)])

    def test_capacities_must_increase(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                [
                    HierarchyLevel("l1", 8192, 1.0),
                    HierarchyLevel("l2", 1024, 10.0),
                    HierarchyLevel("mem", None, 100.0),
                ]
            )


class TestPaperLatencyAnchors:
    """Fig. 2's plateau values, straight from the hierarchy builders."""

    def test_gpu_l1_at_1kib(self, cfg):
        assert gpu_hierarchy(cfg).average_latency_ns(1 * KiB) == pytest.approx(57.0)

    def test_gpu_l2_at_1mib(self, cfg):
        lat = gpu_hierarchy(cfg).average_latency_ns(1 * MiB)
        assert 100 <= lat <= 108

    def test_gpu_ic_at_128mib(self, cfg):
        lat = gpu_hierarchy(cfg).average_latency_ns(128 * MiB)
        assert 205 <= lat <= 218

    def test_gpu_hbm_at_4gib(self, cfg):
        lat = gpu_hierarchy(cfg).average_latency_ns(4 * GiB)
        assert 333 <= lat <= 350

    def test_cpu_l1_at_1kib(self, cfg):
        assert cpu_hierarchy(cfg).average_latency_ns(1 * KiB) == pytest.approx(1.0)

    def test_cpu_hbm_at_4gib(self, cfg):
        lat = cpu_hierarchy(cfg).average_latency_ns(4 * GiB)
        assert 228 <= lat <= 241

    def test_cpu_faster_than_gpu_everywhere(self, cfg):
        cpu, gpu = cpu_hierarchy(cfg), gpu_hierarchy(cfg)
        for size in (1 * KiB, 1 * MiB, 64 * MiB, 1 * GiB, 4 * GiB):
            assert cpu.average_latency_ns(size) < gpu.average_latency_ns(size)

    def test_reduced_ic_fraction_raises_cpu_latency(self, cfg):
        full = cpu_hierarchy(cfg, ic_hit_fraction=1.0)
        biased = cpu_hierarchy(cfg, ic_hit_fraction=0.1)
        ws = 512 * MiB
        assert biased.average_latency_ns(ws) > full.average_latency_ns(ws)


class TestInfinityCache:
    def _ic(self, cfg):
        hbm = HBMSubsystem(cfg.hbm)
        return InfinityCache(cfg.infinity_cache, hbm), hbm

    def test_balanced_buffer_fits_fully(self, cfg):
        ic, _ = self._ic(cfg)
        frames = np.arange(256 * MiB // 4096)  # exactly IC-sized, contiguous
        res = ic.residency(frames)
        assert res.balance == pytest.approx(1.0)
        assert res.hit_fraction == pytest.approx(1.0)

    def test_double_ic_buffer_hits_half(self, cfg):
        ic, _ = self._ic(cfg)
        frames = np.arange(512 * MiB // 4096)
        assert ic.residency(frames).hit_fraction == pytest.approx(0.5)

    def test_biased_buffer_hits_less(self, cfg):
        ic, _ = self._ic(cfg)
        npages = 512 * MiB // 4096
        contiguous = np.arange(npages)
        # All pages on eight channels: frames congruent mod 128.
        biased = np.concatenate(
            [np.arange(c, c + 128 * (npages // 8), 128) for c in range(8)]
        )
        assert ic.residency(biased).hit_fraction < \
            ic.residency(contiguous).hit_fraction

    def test_empty_frame_set(self, cfg):
        ic, _ = self._ic(cfg)
        res = ic.residency(np.array([], dtype=np.int64))
        assert res.hit_fraction == 1.0
        assert res.working_set_bytes == 0

    def test_slice_count_must_match_channels(self, cfg):
        hbm = HBMSubsystem(cfg.hbm)
        with pytest.raises(ValueError):
            InfinityCache(InfinityCacheGeometry(slices=64), hbm)
