"""Tests for the experiment engine: caching, parallelism, failures,
artifacts (repro.exp.engine)."""

import json
import os
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.exp import (
    Engine,
    ExperimentSpec,
    ResultCache,
    bench_payload,
    execute_point,
    temporarily_registered,
    verify_bench,
    write_artifacts,
)


# Runners are module-level so worker processes can resolve them.

def square_runner(value, scale):
    return [[value, value * value * scale]]


def logging_runner(value, log_dir):
    """Counts real executions on disk — survives process boundaries."""
    with open(Path(log_dir) / f"{value}.log", "a") as fh:
        fh.write("x")
    return [[value, value + 1]]


def sleeping_runner(value, delay):
    time.sleep(delay)
    return [[value]]


def flaky_runner(value):
    if value == 2:
        raise ValueError("boom on 2")
    return [[value, value * 10]]


def sim_time_runner(value):
    return {"rows": [[value, "ok"]], "sim_time_ns": 1.5e9}


def make_spec(name, runner, grid, fixed=None, columns=("k", "v")):
    return ExperimentSpec.define(
        name=name,
        title=name,
        columns=list(columns),
        runner=runner,
        grid=grid,
        fixed=fixed or {},
    )


SQUARES = make_spec(
    "squares", square_runner, {"value": [1, 2, 3]}, {"scale": 2}
)
FLAKY = make_spec("flaky", flaky_runner, {"value": [1, 2, 3]})


class TestExecutePoint:
    def test_returns_rows_and_wall_time(self):
        with temporarily_registered(SQUARES):
            payload, wall_s = execute_point("squares", {"value": 3, "scale": 2})
        assert payload == {"rows": [[3, 18]], "sim_time_ns": 0.0}
        assert wall_s >= 0.0

    def test_failure_becomes_error_payload(self):
        with temporarily_registered(FLAKY):
            payload, _ = execute_point("flaky", {"value": 2})
        assert "ValueError: boom on 2" in payload["error"]
        assert "Traceback" in payload["error"]

    def test_unknown_experiment_is_an_error_payload(self):
        payload, _ = execute_point("no-such-exp", {})
        assert "error" in payload


class TestEngineBasics:
    def test_serial_run_collects_rows_in_point_order(self):
        with temporarily_registered(SQUARES):
            result = Engine(workers=1, cache=None).run("squares")
        assert result.ok
        assert result.rows == [[1, 2], [2, 8], [3, 18]]
        assert result.dicts()[0] == {"k": 1, "v": 2}

    def test_only_filter(self):
        with temporarily_registered(SQUARES):
            result = Engine(workers=1, cache=None).run(
                "squares", only={"value": 2}
            )
        assert result.rows == [[2, 8]]

    def test_sim_time_aggregates(self):
        spec = make_spec("simt", sim_time_runner, {"value": [1, 2]})
        with temporarily_registered(spec):
            result = Engine(workers=1, cache=None).run("simt")
        assert result.sim_time_ns == pytest.approx(3.0e9)


class TestCache:
    def test_warm_rerun_recomputes_nothing_and_matches_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        with temporarily_registered(SQUARES):
            cold_engine = Engine(cache=cache, version="v1")
            cold = cold_engine.run("squares")
            assert cold_engine.executed_points == 3
            assert cold_engine.cached_points == 0

            warm_engine = Engine(cache=ResultCache(tmp_path), version="v1")
            warm = warm_engine.run("squares")
            assert warm_engine.executed_points == 0
            assert warm_engine.cached_points == 3
        assert warm.rows == cold.rows
        # Bit-identical, not merely approximately equal.
        assert json.dumps(warm.rows) == json.dumps(cold.rows)
        assert all(p.cached for p in warm.points)

    def test_spec_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        with temporarily_registered(SQUARES):
            Engine(cache=cache, version="v1").run("squares")
        changed = make_spec(
            "squares", square_runner, {"value": [1, 2, 3]}, {"scale": 5}
        )
        assert changed.spec_hash() != SQUARES.spec_hash()
        with temporarily_registered(changed):
            engine = Engine(cache=cache, version="v1")
            result = engine.run("squares")
        assert engine.executed_points == 3
        assert result.rows == [[1, 5], [2, 20], [3, 45]]

    def test_code_version_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        with temporarily_registered(SQUARES):
            Engine(cache=cache, version="v1").run("squares")
            engine = Engine(cache=cache, version="v2")
            engine.run("squares")
        assert engine.executed_points == 3

    def test_refresh_recomputes_and_overwrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        with temporarily_registered(SQUARES):
            Engine(cache=cache, version="v1").run("squares")
            engine = Engine(cache=cache, version="v1", refresh=True)
            engine.run("squares")
        assert engine.executed_points == 3
        assert engine.cached_points == 0

    def test_failed_points_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        with temporarily_registered(FLAKY):
            Engine(cache=cache, version="v1").run("flaky")
            retry = Engine(cache=cache, version="v1")
            result = retry.run("flaky")
        # Only the failing point recomputes; the good ones come warm.
        assert retry.cached_points == 2
        assert retry.executed_points == 1
        assert len(result.failures) == 1


class TestParallel:
    def test_four_workers_at_least_2x_on_sleep_bound_points(self, tmp_path):
        """Engine parallelism proof: sleep-bound points overlap in the
        worker pool, halving (at least) the serial wall-clock even on a
        single-CPU host.  CPU-bound speedups need real cores (CI)."""
        spec = make_spec(
            "naps", sleeping_runner, {"value": [0, 1, 2, 3]}, {"delay": 0.4}
        )
        with temporarily_registered(spec):
            start = time.perf_counter()
            serial = Engine(workers=1, cache=None).run("naps")
            serial_s = time.perf_counter() - start

            start = time.perf_counter()
            parallel = Engine(workers=4, cache=None).run("naps")
            parallel_s = time.perf_counter() - start
        assert serial.rows == parallel.rows == [[0], [1], [2], [3]]
        assert serial_s / parallel_s >= 2.0, (serial_s, parallel_s)

    def test_workers_execute_every_point_exactly_once(self, tmp_path):
        spec = make_spec(
            "logged", logging_runner, {"value": [0, 1, 2, 3, 4]},
            {"log_dir": str(tmp_path)},
        )
        with temporarily_registered(spec):
            result = Engine(workers=3, cache=None).run("logged")
        assert result.ok
        logs = sorted(p.name for p in tmp_path.glob("*.log"))
        assert logs == ["0.log", "1.log", "2.log", "3.log", "4.log"]
        assert all(p.read_text() == "x" for p in tmp_path.glob("*.log"))

    def test_parallel_failure_reaches_parent(self):
        with temporarily_registered(FLAKY):
            result = Engine(workers=2, cache=None).run("flaky")
        (failure,) = result.failures
        assert failure.point.params["value"] == 2
        assert "boom on 2" in failure.error


class TestFailureReporting:
    def test_cli_exits_nonzero_with_params_and_traceback(self, capsys):
        with temporarily_registered(FLAKY):
            code = main(["run", "flaky", "--no-cache"])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED point flaky[value=2]" in captured.err
        assert "ValueError: boom on 2" in captured.err
        assert "Traceback" in captured.err
        # Surviving points still printed their rows.
        assert "===" in captured.out

    def test_ok_points_survive_a_failing_sibling(self):
        with temporarily_registered(FLAKY):
            result = Engine(workers=1, cache=None).run("flaky")
        assert result.rows == [[1, 10], [3, 30]]
        assert not result.ok


class TestArtifacts:
    def _results(self):
        with temporarily_registered(SQUARES):
            engine = Engine(workers=1, cache=None)
            return engine.run_many(["squares"])

    def test_write_artifacts_layout_and_provenance(self, tmp_path):
        results = self._results()
        bench_path = write_artifacts(
            results, tmp_path, workers=2, wall_s=1.25, quick=True
        )
        assert bench_path == tmp_path / "BENCH_results.json"
        per_exp = json.loads((tmp_path / "squares.json").read_text())
        assert per_exp["schema_version"] == "1"
        assert per_exp["git_sha"] and per_exp["timestamp"]
        assert per_exp["rows"] == [[1, 2], [2, 8], [3, 18]]
        bench = json.loads(bench_path.read_text())
        assert bench["kind"] == "repro-bench"
        assert bench["workers"] == 2 and bench["quick"] is True
        assert bench["experiments"]["squares"]["ok"] is True
        assert bench["experiments"]["squares"]["points"] == 3

    def test_verify_bench_accepts_sound_artifact(self, tmp_path):
        bench_path = write_artifacts(
            self._results(), tmp_path, workers=1, wall_s=0.1, quick=True
        )
        assert verify_bench(bench_path, expected=["squares"]) == []

    def test_verify_bench_flags_missing_experiment(self, tmp_path):
        bench_path = write_artifacts(
            self._results(), tmp_path, workers=1, wall_s=0.1, quick=True
        )
        problems = verify_bench(bench_path, expected=["squares", "fig2"])
        assert any("fig2" in p for p in problems)

    def test_verify_bench_flags_failures_and_bad_schema(self):
        with temporarily_registered(FLAKY):
            results = Engine(workers=1, cache=None).run_many(["flaky"])
        payload = bench_payload(results, workers=1, wall_s=0.1, quick=False)
        problems = verify_bench(payload, expected=["flaky"])
        assert any("failure" in p for p in problems)
        payload["schema_version"] = "0"
        problems = verify_bench(payload, expected=["flaky"])
        assert any("schema_version" in p for p in problems)

    def test_verify_bench_unreadable_file(self, tmp_path):
        problems = verify_bench(tmp_path / "missing.json", expected=[])
        assert any("unreadable" in p for p in problems)


# ----------------------------------------------------------------------
# Hardening: timeouts, interrupts, worker crashes, cache integrity
# ----------------------------------------------------------------------


def interrupting_runner(value):
    raise KeyboardInterrupt


def crash_once_runner(value, flag_dir):
    """Kills its worker process the first time each value runs."""
    flag = Path(flag_dir) / f"crashed_{value}"
    if value == 2 and not flag.exists():
        flag.write_text("x")
        os._exit(17)
    return [[value, value * 10]]


def always_crashing_runner(value):
    if value % 2 == 0:
        os._exit(17)
    return [[value, value * 10]]


class TestPointTimeout:
    def test_overrunning_point_is_recorded_not_hung(self):
        spec = make_spec(
            "sleepy", sleeping_runner, {"value": [1]}, {"delay": 5.0}
        )
        with temporarily_registered(spec):
            engine = Engine(workers=1, cache=None, point_timeout_s=0.2)
            started = time.perf_counter()
            result = engine.run("sleepy")
        assert time.perf_counter() - started < 4.0
        assert not result.ok
        assert "PointTimeoutError" in result.failures[0].error

    def test_fast_point_is_untouched_by_the_budget(self):
        with temporarily_registered(SQUARES):
            engine = Engine(workers=1, cache=None, point_timeout_s=30.0)
            result = engine.run("squares")
        assert result.ok

    def test_cli_timeout_flag_reaches_the_engine(self, capsys):
        spec = make_spec(
            "sleepy_cli", sleeping_runner, {"value": [1]}, {"delay": 5.0}
        )
        with temporarily_registered(spec):
            code = main(["run", "sleepy_cli", "--no-cache",
                         "--timeout", "0.2"])
        assert code == 1
        assert "PointTimeoutError" in capsys.readouterr().err


class TestInterruptsAndParams:
    def test_keyboard_interrupt_propagates(self):
        spec = make_spec("interrupting", interrupting_runner, {"value": [1]})
        with temporarily_registered(spec):
            with pytest.raises(KeyboardInterrupt):
                execute_point("interrupting", {"value": 1})

    def test_error_payload_carries_the_failing_params(self):
        with temporarily_registered(FLAKY):
            payload, _ = execute_point("flaky", {"value": 2})
        assert "boom on 2" in payload["error"]
        assert payload["params"] == {"value": 2}

    def test_failure_artifact_records_params(self):
        with temporarily_registered(FLAKY):
            result = Engine(workers=1, cache=None).run("flaky")
        failures = result.to_payload()["failures"]
        assert failures[0]["params"] == {"value": 2}


class TestWorkerCrashes:
    def test_crashed_points_are_requeued_and_recover(self, tmp_path):
        spec = make_spec(
            "crash_once", crash_once_runner, {"value": [1, 2, 3]},
            {"flag_dir": str(tmp_path)},
        )
        with temporarily_registered(spec):
            engine = Engine(workers=2, cache=None, max_point_retries=3)
            result = engine.run("crash_once")
        assert result.ok
        assert sorted(row[0] for row in result.rows) == [1, 2, 3]

    def test_persistent_crasher_is_contained(self):
        spec = make_spec(
            "crash_always", always_crashing_runner, {"value": [2, 4]}
        )
        with temporarily_registered(spec):
            engine = Engine(workers=2, cache=None, max_point_retries=1)
            result = engine.run("crash_always")
        assert len(result.failures) == 2
        for point in result.failures:
            assert "worker process crashed" in point.error


class TestCacheIntegrity:
    KEY = "ab" + "0" * 62

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(self.KEY, {"rows": [[1, 2]], "sim_time_ns": 0.0})
        path.write_text(path.read_text().replace('"rows"', '"cows"'))
        assert cache.get(self.KEY) is None
        assert cache.quarantined == 1
        assert not path.exists()
        assert (tmp_path / "quarantine" / path.name).exists()
        assert cache.get(self.KEY) is None  # stays a miss afterwards

    def test_unparseable_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(self.KEY, {"rows": []})
        path.write_text("{ not json")
        assert cache.get(self.KEY) is None
        assert cache.quarantined == 1
        assert (tmp_path / "quarantine" / path.name).exists()

    def test_intact_entry_round_trips_through_the_checksum(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"rows": [[1, 2]], "sim_time_ns": 1.5}
        path = cache.put(self.KEY, payload)
        doc = json.loads(path.read_text())
        assert set(doc) == {"sha256", "payload"}
        assert cache.get(self.KEY) == payload
        assert cache.quarantined == 0

    def test_pre_checksum_entries_are_still_served(self, tmp_path):
        cache = ResultCache(tmp_path)
        legacy = {"rows": [[3, 4]], "sim_time_ns": 0.0}
        path = cache._path(self.KEY)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(legacy, sort_keys=True))
        assert cache.get(self.KEY) == legacy
        assert cache.quarantined == 0
