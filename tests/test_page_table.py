"""Unit tests for the page tables and HMM mirror (repro.core.page_table)."""

import numpy as np
import pytest

from repro.core.address_space import VMA
from repro.core.page import NO_FRAME
from repro.core.page_table import GPUPageTable, HMMMirror, SystemPageTable


@pytest.fixture
def tables():
    system, gpu = SystemPageTable(), GPUPageTable()
    return system, gpu, HMMMirror(system, gpu)


def make_vma(npages=8, start=0x7000_0000_0000):
    return VMA(start=start, npages=npages)


class TestSystemPageTable:
    def test_map_installs_frames(self, tables):
        system, _, _ = tables
        vma = make_vma()
        system.map_range(vma, 0, np.arange(100, 104))
        assert vma.sys_valid[:4].all()
        assert list(vma.frames[:4]) == [100, 101, 102, 103]
        assert system.stats.mapped_pages == 4

    def test_remap_rejected(self, tables):
        system, _, _ = tables
        vma = make_vma()
        system.map_range(vma, 0, np.arange(4))
        with pytest.raises(ValueError):
            system.map_range(vma, 2, np.arange(10, 12))

    def test_map_escaping_range_rejected(self, tables):
        system, _, _ = tables
        vma = make_vma(npages=2)
        with pytest.raises(ValueError):
            system.map_range(vma, 1, np.arange(2))

    def test_map_over_existing_frames_must_agree(self, tables):
        system, gpu, _ = tables
        vma = make_vma()
        vma.frames[0] = 77  # backed (e.g. GPU faulted first), not sys-mapped
        system.map_range(vma, 0, np.array([77]))
        assert vma.sys_valid[0]
        vma2 = make_vma(start=0x7100_0000_0000)
        vma2.frames[0] = 77
        with pytest.raises(ValueError):
            system.map_range(vma2, 0, np.array([88]))

    def test_unmap_returns_frames(self, tables):
        system, _, _ = tables
        vma = make_vma()
        system.map_range(vma, 0, np.arange(50, 54))
        freed = system.unmap_range(vma, 0, 4)
        assert list(freed) == [50, 51, 52, 53]
        assert not vma.sys_valid[:4].any()
        assert system.stats.unmapped_pages == 4

    def test_unmap_skips_absent(self, tables):
        system, _, _ = tables
        vma = make_vma()
        system.map_range(vma, 0, np.array([9]))
        freed = system.unmap_range(vma, 0, 4)
        assert list(freed) == [9]

    def test_is_present(self, tables):
        system, _, _ = tables
        vma = make_vma()
        system.map_range(vma, 2, np.array([5]))
        assert system.is_present(vma, 2)
        assert not system.is_present(vma, 1)


class TestGPUPageTable:
    def test_map_requires_backing(self, tables):
        _, gpu, _ = tables
        vma = make_vma()
        with pytest.raises(ValueError):
            gpu.map_range(vma, 0, 1)

    def test_map_sets_fragments(self, tables):
        _, gpu, _ = tables
        vma = make_vma(npages=16)
        vma.frames[:] = np.arange(160, 176)  # contiguous, 16-aligned
        gpu.map_range(vma, 0, 16)
        assert vma.gpu_valid.all()
        assert vma.fragment.max() >= 4  # one 16-page fragment

    def test_adjacent_mappings_coalesce(self, tables):
        _, gpu, _ = tables
        vma = make_vma(npages=4)
        vma.frames[:] = np.arange(64, 68)
        gpu.map_range(vma, 0, 2)
        gpu.map_range(vma, 2, 2)
        # After the second scan the whole aligned run is one fragment.
        assert (vma.fragment == 2).all()

    def test_unmap_clears_fragments(self, tables):
        _, gpu, _ = tables
        vma = make_vma(npages=4)
        vma.frames[:] = np.arange(64, 68)
        gpu.map_range(vma, 0, 4)
        gpu.unmap_range(vma, 0, 4)
        assert not vma.gpu_valid.any()
        assert (vma.fragment == 0).all()


class TestHMM:
    def test_propagate_copies_present_ptes(self, tables):
        system, gpu, hmm = tables
        vma = make_vma()
        system.map_range(vma, 0, np.arange(32, 36))
        count = hmm.propagate_range(vma, 0, 8)
        assert count == 4
        assert vma.gpu_valid[:4].all()
        assert not vma.gpu_valid[4:].any()

    def test_propagate_idempotent(self, tables):
        system, _, hmm = tables
        vma = make_vma()
        system.map_range(vma, 0, np.arange(4))
        assert hmm.propagate_range(vma, 0, 4) == 4
        assert hmm.propagate_range(vma, 0, 4) == 0

    def test_propagate_disjoint_runs(self, tables):
        system, _, hmm = tables
        vma = make_vma()
        system.map_range(vma, 0, np.array([10]))
        system.map_range(vma, 3, np.array([20, 21]))
        assert hmm.propagate_range(vma, 0, 8) == 3
        assert vma.gpu_valid[0] and vma.gpu_valid[3] and vma.gpu_valid[4]
        assert not vma.gpu_valid[1]

    def test_invalidate(self, tables):
        system, gpu, hmm = tables
        vma = make_vma()
        system.map_range(vma, 0, np.arange(4))
        hmm.propagate_range(vma, 0, 4)
        removed = hmm.invalidate_range(vma, 0, 8)
        assert removed == 4
        assert not vma.gpu_valid.any()
        assert gpu.stats.invalidated_ptes == 4

    def test_propagated_counter(self, tables):
        system, gpu, hmm = tables
        vma = make_vma()
        system.map_range(vma, 0, np.arange(6))
        hmm.propagate_range(vma, 0, 6)
        assert gpu.stats.propagated_ptes == 6
