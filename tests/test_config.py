"""Unit tests for the hardware configuration (repro.hw.config)."""

import dataclasses

import pytest

from repro.hw.config import (
    GiB,
    KiB,
    MAX_FRAGMENT_EXPONENT,
    MI300AConfig,
    MiB,
    PAGE_SIZE,
    default_config,
    small_config,
)


class TestUnits:
    def test_byte_units_scale(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    def test_page_size_is_4k(self):
        assert PAGE_SIZE == 4 * KiB

    def test_fragment_field_is_five_bits(self):
        assert MAX_FRAGMENT_EXPONENT == 31


class TestDefaultConfig:
    def test_matches_paper_testbed(self):
        cfg = default_config()
        assert cfg.gpu_compute_units == 228
        assert cfg.cpu_cores == 24
        assert cfg.memory_capacity_bytes == 128 * GiB
        assert cfg.hbm.peak_bandwidth_bytes_per_s == pytest.approx(5.3e12)

    def test_chiplet_counts(self):
        cfg = default_config()
        assert cfg.xcd_count == 6
        assert cfg.ccd_count == 3
        assert cfg.iod_count == 4

    def test_hbm_organisation(self):
        hbm = default_config().hbm
        assert hbm.stacks == 8
        assert hbm.channels_per_stack == 16
        assert hbm.channels == 128
        assert hbm.capacity_bytes == 128 * GiB

    def test_infinity_cache_geometry(self):
        ic = default_config().infinity_cache
        assert ic.capacity_bytes == 256 * MiB
        assert ic.slices == 128
        assert ic.slice_capacity_bytes == 2 * MiB
        assert ic.peak_bandwidth_bytes_per_s == pytest.approx(17.2e12)

    def test_total_pages(self):
        cfg = default_config()
        assert cfg.total_pages == 128 * GiB // PAGE_SIZE

    def test_cache_latencies_ordered(self):
        cfg = default_config()
        assert cfg.cpu_l1.latency_ns < cfg.cpu_l2.latency_ns
        assert cfg.cpu_l2.latency_ns < cfg.cpu_l3.latency_ns
        assert cfg.cpu_l3.latency_ns < cfg.cpu_ic_latency_ns
        assert cfg.cpu_ic_latency_ns < cfg.cpu_hbm_latency_ns
        assert cfg.gpu_l1.latency_ns < cfg.gpu_l2.latency_ns
        assert cfg.gpu_l2.latency_ns < cfg.gpu_ic_latency_ns
        assert cfg.gpu_ic_latency_ns < cfg.gpu_hbm_latency_ns

    def test_cpu_l3_capacity_is_96_mib(self):
        assert default_config().cpu_l3.capacity_bytes == 96 * MiB

    def test_gpu_l1_tlb_is_fragment_aware(self):
        cfg = default_config()
        assert cfg.gpu_l1_tlb.fragment_aware
        assert not cfg.cpu_tlb.fragment_aware

    def test_config_is_frozen(self):
        cfg = default_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.cpu_cores = 48  # type: ignore[misc]

    def test_replace_produces_modified_copy(self):
        cfg = default_config()
        other = cfg.replace(cpu_cores=48)
        assert other.cpu_cores == 48
        assert cfg.cpu_cores == 24


class TestSmallConfig:
    def test_scales_memory_only(self):
        cfg = small_config(2 * GiB)
        assert cfg.memory_capacity_bytes == 2 * GiB
        assert cfg.gpu_compute_units == 228
        assert cfg.hbm.channels == 128

    def test_policies_preserved(self):
        assert small_config().policy == default_config().policy

    def test_cache_geometry_fits(self):
        geo = default_config().cpu_l1
        assert geo.fits(16 * KiB)
        assert geo.fits(32 * KiB)
        assert not geo.fits(33 * KiB)


class TestCostModelSanity:
    def test_fault_latencies_match_paper(self):
        fc = default_config().fault_costs
        assert fc.cpu_single_latency_ns == pytest.approx(9_000)
        assert fc.gpu_minor_single_latency_ns == pytest.approx(16_000)
        assert fc.gpu_major_single_latency_ns == pytest.approx(18_000)

    def test_fault_plateau_rates(self):
        fc = default_config().fault_costs
        assert 1e9 / fc.cpu_batched_page_ns == pytest.approx(872e3, rel=0.01)
        assert 1e9 / fc.gpu_major_batched_page_ns == pytest.approx(1.1e6, rel=0.01)
        assert 1e9 / fc.gpu_minor_batched_page_ns == pytest.approx(9.0e6, rel=0.01)

    def test_bandwidth_tiers_ordered(self):
        bw = default_config().bandwidth
        assert bw.gpu_peak_stream_bytes_per_s > bw.gpu_peak_stream_bytes_per_s * \
            bw.gpu_small_fragment_factor
        assert bw.gpu_small_fragment_factor > bw.gpu_on_demand_factor
        assert bw.gpu_managed_static_bytes_per_s < 0.1 * bw.gpu_peak_stream_bytes_per_s

    def test_memcpy_tiers_match_section_4_3(self):
        bw = default_config().bandwidth
        assert bw.memcpy_sdma_bytes_per_s == pytest.approx(58e9)
        assert bw.memcpy_no_sdma_bytes_per_s == pytest.approx(850e9)
        assert bw.memcpy_d2d_bytes_per_s == pytest.approx(1900e9)
