"""Unit tests for the Table 1 allocators (repro.core.allocators)."""

import numpy as np
import pytest

from repro.core.allocators import (
    AllocatorKind,
    allocator_table,
    free_cost_ns,
    hip_free_cost_ns,
    hip_malloc_cost_ns,
    malloc_cost_ns,
    malloc_free_cost_ns,
    pinned_alloc_cost_ns,
    pinned_free_cost_ns,
)
from repro.core.address_space import (
    GPU_ACCESS_ALWAYS,
    GPU_ACCESS_NEVER,
    GPU_ACCESS_XNACK,
)
from repro.core.fragments import average_fragment_bytes
from repro.hw.config import GiB, KiB, MiB, PAGE_SIZE, default_config


class TestMallocSemantics:
    def test_on_demand_no_physical(self, apu):
        buf = apu.memory.malloc(1 * MiB)
        assert buf.on_demand
        assert buf.vma.resident_bytes() == 0
        assert apu.physical.used_bytes == 0

    def test_gpu_access_policy(self, apu):
        assert apu.memory.malloc(PAGE_SIZE).vma.gpu_access == GPU_ACCESS_XNACK

    def test_not_pinned(self, apu):
        assert not apu.memory.malloc(PAGE_SIZE).pinned


class TestHipMallocSemantics:
    def test_up_front_physical(self, apu):
        buf = apu.memory.hip_malloc(1 * MiB)
        assert not buf.on_demand
        assert buf.vma.resident_bytes() == 1 * MiB
        assert apu.physical.used_bytes == 1 * MiB

    def test_gpu_mapped_immediately(self, apu):
        buf = apu.memory.hip_malloc(1 * MiB)
        assert buf.vma.gpu_valid.all()
        assert not buf.vma.sys_valid.any()  # CPU PTEs are lazy

    def test_large_fragments(self, apu):
        buf = apu.memory.hip_malloc(4 * MiB)
        assert average_fragment_bytes(buf.vma.fragment) >= 60 * KiB

    def test_always_gpu_accessible(self, apu_noxnack):
        buf = apu_noxnack.memory.hip_malloc(PAGE_SIZE)
        assert buf.vma.gpu_access == GPU_ACCESS_ALWAYS


class TestHipHostMallocSemantics:
    def test_pinned_up_front(self, apu):
        buf = apu.memory.hip_host_malloc(1 * MiB)
        assert buf.pinned
        assert buf.vma.resident_bytes() == 1 * MiB
        assert buf.vma.gpu_valid.all()

    def test_small_fragments(self, apu):
        buf = apu.memory.hip_host_malloc(1 * MiB)
        assert average_fragment_bytes(buf.vma.fragment) <= 2 * PAGE_SIZE


class TestManagedSemantics:
    def test_xnack_on_is_on_demand(self, apu):
        buf = apu.memory.hip_malloc_managed(1 * MiB)
        assert buf.on_demand
        assert buf.vma.resident_bytes() == 0
        assert buf.vma.gpu_access == GPU_ACCESS_ALWAYS

    def test_xnack_off_is_up_front(self, apu_noxnack):
        buf = apu_noxnack.memory.hip_malloc_managed(1 * MiB)
        assert not buf.on_demand
        assert buf.vma.resident_bytes() == 1 * MiB
        assert buf.pinned


class TestHostRegister:
    def test_register_pins_and_maps(self, apu):
        buf = apu.memory.malloc(1 * MiB)
        apu.memory.host_register(buf)
        assert buf.kind is AllocatorKind.MALLOC_REGISTERED
        assert buf.pinned
        assert not buf.on_demand
        assert buf.vma.gpu_valid.all()
        assert buf.vma.gpu_access == GPU_ACCESS_ALWAYS

    def test_register_keeps_scattered_layout(self, apu):
        buf = apu.memory.malloc(1 * MiB)
        apu.memory.host_register(buf)
        # malloc-like physical layout: small fragments, unlike hipMalloc.
        assert average_fragment_bytes(buf.vma.fragment) < 16 * KiB

    def test_register_requires_malloc(self, apu):
        buf = apu.memory.hip_malloc(PAGE_SIZE)
        with pytest.raises(ValueError):
            apu.memory.host_register(buf)


class TestStatics:
    def test_managed_static_uncached(self, apu):
        buf = apu.memory.managed_static(64 * KiB)
        assert buf.vma.uncached
        assert buf.vma.gpu_valid.all()

    def test_static_host_gpu_invisible(self, apu):
        buf = apu.memory.static_host(64 * KiB)
        assert buf.vma.gpu_access == GPU_ACCESS_NEVER

    def test_static_device(self, apu):
        buf = apu.memory.static_device(64 * KiB)
        assert buf.vma.gpu_valid.all()


class TestFree:
    def test_free_returns_physical(self, apu):
        buf = apu.memory.hip_malloc(1 * MiB)
        apu.memory.free(buf)
        assert apu.physical.used_bytes == 0
        assert buf not in apu.memory.allocations

    def test_free_after_faulting(self, apu):
        buf = apu.memory.malloc(1 * MiB)
        apu.faults.touch_range(buf.vma, 0, buf.npages, "cpu")
        apu.memory.free(buf)
        assert apu.physical.used_bytes == 0

    def test_double_free_rejected(self, apu):
        buf = apu.memory.malloc(PAGE_SIZE)
        apu.memory.free(buf)
        with pytest.raises(ValueError):
            apu.memory.free(buf)

    def test_live_bytes(self, apu):
        apu.memory.hip_malloc(1 * MiB)
        apu.memory.malloc(2 * MiB)
        assert apu.memory.live_bytes() == 3 * MiB
        assert apu.memory.live_bytes(AllocatorKind.HIP_MALLOC) == 1 * MiB


class TestCostModels:
    """Fig. 6 anchor points."""

    def setup_method(self):
        self.cfg = default_config()

    def test_malloc_32b(self):
        assert malloc_cost_ns(self.cfg, 32) == pytest.approx(14.0)

    def test_malloc_1gib_about_6us(self):
        assert malloc_cost_ns(self.cfg, 1 * GiB) == pytest.approx(6e3, rel=0.1)

    def test_hip_malloc_flat_to_16kib(self):
        assert hip_malloc_cost_ns(self.cfg, 2) == hip_malloc_cost_ns(self.cfg, 16 * KiB)
        assert hip_malloc_cost_ns(self.cfg, 2) == pytest.approx(10e3)

    def test_hip_malloc_1gib_about_37ms(self):
        assert hip_malloc_cost_ns(self.cfg, 1 * GiB) == pytest.approx(37e6, rel=0.02)

    def test_pinned_1gib_in_paper_band(self):
        host = pinned_alloc_cost_ns(self.cfg, 1 * GiB, managed=False)
        managed = pinned_alloc_cost_ns(self.cfg, 1 * GiB, managed=True)
        assert 200e6 <= host <= 400e6
        assert 200e6 <= managed <= 400e6

    def test_free_faster_than_malloc_below_16mib(self):
        for size in (1 * KiB, 1 * MiB, 8 * MiB):
            assert malloc_free_cost_ns(self.cfg, size) < malloc_cost_ns(self.cfg, size)

    def test_free_slower_than_malloc_above_32mib(self):
        for size in (32 * MiB, 256 * MiB, 1 * GiB):
            ratio = malloc_free_cost_ns(self.cfg, size) / malloc_cost_ns(self.cfg, size)
            assert 4 <= ratio <= 9

    def test_hip_free_crossover(self):
        assert hip_free_cost_ns(self.cfg, 1 * MiB) < hip_malloc_cost_ns(self.cfg, 1 * MiB)
        ratio = hip_free_cost_ns(self.cfg, 256 * MiB) / hip_malloc_cost_ns(
            self.cfg, 256 * MiB
        )
        assert 15 <= ratio <= 25  # paper: up to 22x at 256 MiB

    def test_pinned_free_band(self):
        assert pinned_free_cost_ns(self.cfg, 16 * KiB) >= 220e3
        assert pinned_free_cost_ns(self.cfg, 1 * GiB) == pytest.approx(67e6, rel=0.05)

    def test_alloc_advances_clock(self, apu):
        before = apu.clock.now_ns
        apu.memory.hip_malloc(1 * MiB)
        assert apu.clock.now_ns - before == pytest.approx(
            hip_malloc_cost_ns(apu.config, 1 * MiB)
        )

    def test_free_cost_dispatch(self, apu):
        buf = apu.memory.hip_malloc(1 * MiB)
        assert free_cost_ns(apu.config, buf) == hip_free_cost_ns(apu.config, 1 * MiB)


class TestTable1:
    def test_xnack_off(self):
        rows = {r["allocator"]: r for r in allocator_table(xnack=False)}
        assert not rows["malloc"]["gpu_access"]
        assert rows["hipMallocManaged"]["physical_allocation"] == "up-front"
        assert rows["hipMalloc"]["physical_allocation"] == "up-front"

    def test_xnack_on(self):
        rows = {r["allocator"]: r for r in allocator_table(xnack=True)}
        assert rows["malloc"]["gpu_access"]
        assert rows["malloc"]["physical_allocation"] == "on-demand"
        assert rows["hipMallocManaged"]["physical_allocation"] == "on-demand"

    def test_all_cpu_accessible(self):
        for xnack in (False, True):
            assert all(r["cpu_access"] for r in allocator_table(xnack))
