"""Tests for the multi-APU node model (repro.hw.node)."""

import pytest

from repro.hw.config import MiB
from repro.hw.node import MI300ANode, NodeConfig


@pytest.fixture
def node():
    return MI300ANode(apu_memory_gib=1, xnack=True)


class TestTopology:
    def test_four_apus_fully_connected(self, node):
        assert node.config.apus_per_node == 4
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert node.hops(a, b) == 1

    def test_apus_created_lazily_and_cached(self, node):
        apu0 = node.apu(0)
        assert node.apu(0) is apu0

    def test_apus_are_independent(self, node):
        apu0, apu1 = node.apu(0), node.apu(1)
        apu0.memory.hip_malloc(4 * MiB)
        assert apu1.physical.used_bytes == 0
        assert apu0.clock is not apu1.clock

    def test_index_bounds(self, node):
        with pytest.raises(IndexError):
            node.apu(4)
        with pytest.raises(IndexError):
            node.apu(-1)


class TestBinding:
    def test_bind_hides_other_apus(self, node):
        node.bind(2)
        node.apu(2)  # visible
        with pytest.raises(PermissionError):
            node.apu(0)

    def test_unbind_restores(self, node):
        node.bind(1)
        node.unbind()
        node.apu(0)  # no error


class TestPeerTransfers:
    def test_hipmalloc_fastest(self, node):
        apu = node.apu(0)
        device = apu.memory.hip_malloc(4 * MiB)
        pinned = apu.memory.hip_host_malloc(4 * MiB)
        pageable = apu.memory.malloc(4 * MiB)
        bw_device = node.peer_bandwidth(device)
        bw_pinned = node.peer_bandwidth(pinned)
        bw_pageable = node.peer_bandwidth(pageable)
        assert bw_device > bw_pinned > bw_pageable

    def test_hipmalloc_reaches_link_rate(self, node):
        apu = node.apu(0)
        buf = apu.memory.hip_malloc(4 * MiB)
        assert node.peer_bandwidth(buf) == pytest.approx(
            node.config.xgmi_link_bandwidth_bytes_per_s
        )

    def test_transfer_advances_both_clocks(self, node):
        apu0, apu1 = node.apu(0), node.apu(1)
        buf = apu0.memory.hip_malloc(16 * MiB)
        t0, t1 = apu0.clock.now_ns, apu1.clock.now_ns
        duration = node.peer_memcpy(1, 0, buf)
        assert duration > 0
        assert apu0.clock.now_ns - t0 == pytest.approx(duration)
        assert apu1.clock.now_ns - t1 == pytest.approx(duration)

    def test_link_traffic_accounted(self, node):
        apu0 = node.apu(0)
        buf = apu0.memory.hip_malloc(4 * MiB)
        node.peer_memcpy(3, 0, buf)
        node.peer_memcpy(3, 0, buf, nbytes=1 * MiB)
        assert node.link_traffic_bytes()[(0, 3)] == 5 * MiB

    def test_same_apu_rejected(self, node):
        buf = node.apu(0).memory.hip_malloc(4 * MiB)
        with pytest.raises(ValueError):
            node.peer_memcpy(0, 0, buf)

    def test_oversized_transfer_rejected(self, node):
        buf = node.apu(0).memory.hip_malloc(4 * MiB)
        with pytest.raises(ValueError):
            node.peer_memcpy(1, 0, buf, nbytes=8 * MiB)


class TestEfficiencyClasses:
    """Every allocator kind lands in the right peer-transfer tier."""

    def test_managed_xnack_is_pageable_class(self, node):
        # With XNACK the managed buffer is on-demand and unpinned, so
        # the peer DMA path bounces through the fault path like malloc.
        apu = node.apu(0)
        managed = apu.memory.hip_malloc_managed(4 * MiB)
        pageable = apu.memory.malloc(4 * MiB)
        assert node.peer_bandwidth(managed) == node.peer_bandwidth(pageable)

    def test_managed_noxnack_is_pinned_class(self):
        node = MI300ANode(apu_memory_gib=1, xnack=False)
        apu = node.apu(0)
        managed = apu.memory.hip_malloc_managed(4 * MiB)
        pinned = apu.memory.hip_host_malloc(4 * MiB)
        assert node.peer_bandwidth(managed) == node.peer_bandwidth(pinned)
        assert node.peer_bandwidth(managed) == pytest.approx(
            node.config.xgmi_link_bandwidth_bytes_per_s
            * node.config.pinned_efficiency
        )

    def test_host_register_promotes_to_pinned_class(self, node):
        apu = node.apu(0)
        buf = apu.memory.malloc(4 * MiB)
        before = node.peer_bandwidth(buf)
        apu.memory.host_register(buf)
        after = node.peer_bandwidth(buf)
        assert before == pytest.approx(
            node.config.xgmi_link_bandwidth_bytes_per_s
            * node.config.pageable_efficiency
        )
        assert after == pytest.approx(
            node.config.xgmi_link_bandwidth_bytes_per_s
            * node.config.pinned_efficiency
        )

    def test_static_device_is_device_class(self, node):
        apu = node.apu(0)
        static = apu.memory.static_device(4 * MiB)
        assert node.peer_bandwidth(static) == pytest.approx(
            node.config.xgmi_link_bandwidth_bytes_per_s
        )

    def test_transfer_duration_formula(self, node):
        apu = node.apu(0)
        buf = apu.memory.hip_malloc(8 * MiB)
        duration = node.peer_memcpy(1, 0, buf)
        cfg = node.config
        expected = cfg.transfer_setup_ns + (8 * MiB) / (
            cfg.xgmi_link_bandwidth_bytes_per_s * cfg.hipmalloc_efficiency
        ) * 1e9
        assert duration == pytest.approx(expected)


class TestAllToAll:
    def test_allocator_ordering(self, node):
        times = {
            kind: node.all_to_all_time_ns(64 * MiB, kind)
            for kind in ("hipMalloc", "hipHostMalloc", "malloc")
        }
        assert times["hipMalloc"] < times["hipHostMalloc"] < times["malloc"]

    def test_pageable_roughly_3x_hipmalloc(self, node):
        hip = node.all_to_all_time_ns(64 * MiB, "hipMalloc")
        pageable = node.all_to_all_time_ns(64 * MiB, "malloc")
        assert pageable / hip == pytest.approx(3.0, rel=0.05)

    def test_unknown_kind_rejected(self, node):
        with pytest.raises(ValueError):
            node.all_to_all_time_ns(1 * MiB, "cudaMalloc")

    def test_rounds_scale_with_node_size(self):
        # (n-1) sequential rounds of parallel pair transfers.
        small = MI300ANode(NodeConfig(apus_per_node=2), apu_memory_gib=1)
        large = MI300ANode(NodeConfig(apus_per_node=8), apu_memory_gib=1)
        t_small = small.all_to_all_time_ns(16 * MiB)
        t_large = large.all_to_all_time_ns(16 * MiB)
        assert t_large == pytest.approx(7 * t_small)

    def test_matches_setup_plus_wire_time(self, node):
        nbytes = 32 * MiB
        cfg = node.config
        per_round = cfg.transfer_setup_ns + nbytes / (
            cfg.xgmi_link_bandwidth_bytes_per_s * cfg.hipmalloc_efficiency
        ) * 1e9
        assert node.all_to_all_time_ns(nbytes) == pytest.approx(3 * per_round)
