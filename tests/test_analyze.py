"""Tests for the hipsan happens-before sanitizer (repro.analyze).

Three layers:

* vector-clock / ordering unit tests (the HB core),
* scenario tests driving small traced runtimes through each rule,
* the regression gates: every seeded bug in examples/racey_port.py is
  detected, and all six Rodinia ports analyze clean in both memory
  models.
"""

import importlib.util
import pathlib

import numpy as np
import pytest

from repro.analyze import (
    SMALL_PARAMS,
    Severity,
    VectorClock,
    analyze_app,
    analyze_runtime,
    has_errors,
    ordered_before,
    render_json,
    render_text,
)
from repro.analyze.findings import Finding
from repro.apps import ALL_APPS
from repro.runtime.hip import make_runtime
from repro.runtime.kernels import BufferAccess, KernelSpec

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _spec(name, alloc, mode):
    return KernelSpec(name, [BufferAccess(alloc, mode)])


def _rules(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# Vector clocks
# ----------------------------------------------------------------------


class TestVectorClock:
    def test_fresh_clocks_compare_equal(self):
        assert VectorClock() <= VectorClock()

    def test_tick_breaks_symmetry(self):
        a, b = VectorClock(), VectorClock()
        a.tick("host")
        assert b <= a
        assert not a <= b

    def test_join_takes_componentwise_max(self):
        a, b = VectorClock(), VectorClock()
        a.tick("host")
        b.tick("s0")
        b.tick("s0")
        a.join(b)
        assert a.get("host") == 1
        assert a.get("s0") == 2

    def test_copy_is_independent(self):
        a = VectorClock()
        a.tick("host")
        b = a.copy()
        b.tick("host")
        assert a.get("host") == 1
        assert b.get("host") == 2

    def test_concurrent_clocks_incomparable(self):
        a, b = VectorClock(), VectorClock()
        a.tick("host")
        b.tick("s0")
        assert not a <= b
        assert not b <= a

    def test_ordered_before_own_component(self):
        first = VectorClock()
        first.tick("s0")
        later = VectorClock()
        later.tick("s0")
        later.tick("s0")
        assert ordered_before(first.copy(), "s0", later)
        assert not ordered_before(later, "s0", first)

    def test_ordered_before_via_join(self):
        producer = VectorClock()
        producer.tick("s0")
        consumer = VectorClock()
        consumer.join(producer)
        consumer.tick("s1")
        assert ordered_before(producer, "s0", consumer)


# ----------------------------------------------------------------------
# Findings model
# ----------------------------------------------------------------------


class TestFindings:
    def test_severity_ordering_and_str(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert str(Severity.ERROR) == "error"

    def test_render_text_sorted_and_counted(self):
        findings = [
            Finding("a.info", Severity.INFO, "quiet"),
            Finding("b.err", Severity.ERROR, "loud", hint="fix it"),
        ]
        text = render_text(findings)
        assert text.index("b.err") < text.index("a.info")
        assert "fix it" in text
        assert "2 finding(s)" in text

    def test_render_json_roundtrips(self):
        import json

        findings = [Finding("r", Severity.WARNING, "msg", file="f.py", line=3)]
        data = json.loads(render_json(findings))
        assert data[0]["rule"] == "r"
        assert data[0]["severity"] == "warning"
        assert data[0]["line"] == 3

    def test_has_errors(self):
        assert not has_errors([Finding("r", Severity.WARNING, "m")])
        assert has_errors([Finding("r", Severity.ERROR, "m")])


# ----------------------------------------------------------------------
# Sanitizer scenarios
# ----------------------------------------------------------------------


class TestSanitizerScenarios:
    def test_clean_synchronous_pipeline(self):
        hip = make_runtime(memory_gib=2, trace=True)
        buf = hip.array(1 << 20, np.float32, "hipMalloc")
        hip.launchKernel(_spec("produce", buf.allocation, "write"))
        hip.hipDeviceSynchronize()
        hip.runCpuKernel(_spec("consume", buf.allocation, "read"))
        assert analyze_runtime(hip) == []

    def test_unsynchronized_d2h_read(self):
        hip = make_runtime(memory_gib=2, trace=True)
        buf = hip.array(1 << 20, np.float32, "hipMalloc")
        hip.launchKernel(_spec("produce", buf.allocation, "write"))
        hip.runCpuKernel(_spec("consume", buf.allocation, "read"))
        findings = analyze_runtime(hip)
        assert _rules(findings) == {"hipsan.unsync-d2h-read"}
        assert findings[0].severity == Severity.ERROR

    def test_event_edge_suppresses_stream_race(self):
        hip = make_runtime(memory_gib=2, trace=True)
        buf = hip.array(1 << 20, np.float32, "hipMalloc")
        s1, s2 = hip.hipStreamCreate("a"), hip.hipStreamCreate("b")
        hip.launchKernel(_spec("first", buf.allocation, "write"), s1)
        event = hip.hipEventCreate("edge")
        hip.hipEventRecord(event, s1)
        hip.hipStreamWaitEvent(s2, event)
        hip.launchKernel(_spec("second", buf.allocation, "write"), s2)
        hip.hipDeviceSynchronize()
        assert analyze_runtime(hip) == []

    def test_missing_event_is_stream_race(self):
        hip = make_runtime(memory_gib=2, trace=True)
        buf = hip.array(1 << 20, np.float32, "hipMalloc")
        s1, s2 = hip.hipStreamCreate("a"), hip.hipStreamCreate("b")
        hip.launchKernel(_spec("first", buf.allocation, "write"), s1)
        hip.launchKernel(_spec("second", buf.allocation, "write"), s2)
        hip.hipDeviceSynchronize()
        assert _rules(analyze_runtime(hip)) == {"hipsan.stream-race"}

    def test_disjoint_ranges_do_not_race(self):
        hip = make_runtime(memory_gib=2, trace=True)
        buf = hip.array(1 << 20, np.float32, "hipMalloc")
        half = (1 << 20) * 2  # bytes of the first half
        hip.launchKernel(KernelSpec("low", [BufferAccess(
            buf.allocation, "write", size_bytes=half)]))
        hip.runCpuKernel(KernelSpec("high", [BufferAccess(
            buf.allocation, "write", offset_bytes=half, size_bytes=half)]))
        hip.hipDeviceSynchronize()
        assert analyze_runtime(hip) == []

    def test_read_read_is_not_a_race(self):
        hip = make_runtime(memory_gib=2, trace=True)
        buf = hip.array(1 << 20, np.float32, "hipMalloc")
        hip.apu.touch(buf.allocation, "cpu")
        hip.launchKernel(_spec("gpu_reader", buf.allocation, "read"))
        hip.runCpuKernel(_spec("cpu_reader", buf.allocation, "read"))
        hip.hipDeviceSynchronize()
        assert analyze_runtime(hip) == []

    def test_pinned_async_copy_race_and_fix(self):
        for fix in (False, True):
            hip = make_runtime(memory_gib=2, trace=True)
            src = hip.array(1 << 20, np.float32, "hipHostMalloc")
            dst = hip.array(1 << 20, np.float32, "hipMalloc")
            stream = hip.hipStreamCreate("copy")
            hip.hipMemcpyAsync(dst, src, stream=stream)
            if fix:
                hip.hipStreamSynchronize(stream)
            hip.runCpuKernel(_spec("refill", src.allocation, "write"))
            findings = analyze_runtime(hip)
            if fix:
                assert findings == []
            else:
                assert _rules(findings) == {"hipsan.memcpy-race"}

    def test_pageable_async_copy_is_host_synchronous(self):
        # hipMemcpyAsync from pageable memory stages synchronously on
        # the host side, so rewriting the source afterwards is safe.
        hip = make_runtime(memory_gib=2, trace=True)
        src = hip.array(1 << 20, np.float32, "malloc")
        dst = hip.array(1 << 20, np.float32, "hipMalloc")
        hip.apu.touch(src.allocation, "cpu")
        stream = hip.hipStreamCreate("copy")
        hip.hipMemcpyAsync(dst, src, stream=stream)
        hip.runCpuKernel(_spec("refill", src.allocation, "write"))
        hip.hipStreamSynchronize(stream)
        assert analyze_runtime(hip) == []

    def test_free_in_flight_and_use_after_free(self):
        hip = make_runtime(memory_gib=2, xnack=True, trace=True)
        buf = hip.array(1 << 20, np.float32, "hipMalloc")
        alloc = buf.allocation
        hip.launchKernel(_spec("writer", alloc, "write"))
        hip.hipFree(alloc)
        hip.launchKernel(_spec("stale", alloc, "read"))
        hip.hipDeviceSynchronize()
        rules = _rules(analyze_runtime(hip))
        assert "hipsan.free-in-flight" in rules
        assert "hipsan.use-after-free" in rules

    def test_synchronized_free_is_clean(self):
        hip = make_runtime(memory_gib=2, trace=True)
        buf = hip.array(1 << 20, np.float32, "hipMalloc")
        hip.launchKernel(_spec("writer", buf.allocation, "write"))
        hip.hipDeviceSynchronize()
        hip.hipFree(buf.allocation)
        assert analyze_runtime(hip) == []

    def test_double_free_detected(self):
        from repro.runtime.hip import HipError, hipErrorInvalidValue

        hip = make_runtime(memory_gib=2, trace=True)
        alloc = hip.hipMalloc(1 << 20)
        hip.hipFree(alloc)
        with pytest.raises(HipError) as failure:
            hip.hipFree(alloc)
        assert failure.value.code == hipErrorInvalidValue
        assert _rules(analyze_runtime(hip)) == {"hipsan.double-free"}

    def test_xnack_fatal_access_reported(self):
        from repro.core.faults import GPUMemoryAccessError

        hip = make_runtime(memory_gib=2, xnack=False, trace=True)
        buf = hip.array(1 << 20, np.float32, "malloc")
        hip.apu.touch(buf.allocation, "cpu")
        with pytest.raises(GPUMemoryAccessError):
            hip.launchKernel(_spec("toucher", buf.allocation, "read"))
            hip.hipDeviceSynchronize()
        assert _rules(analyze_runtime(hip)) == {"hipsan.xnack-fatal"}

    def test_fault_storm_is_info_only(self):
        hip = make_runtime(memory_gib=2, xnack=True, trace=True)
        buf = hip.array(8 << 20, np.uint8, "hipMallocManaged")
        hip.launchKernel(_spec("first_touch", buf.allocation, "read"))
        hip.hipDeviceSynchronize()
        findings = analyze_runtime(hip)
        assert _rules(findings) == {"hipsan.fault-storm"}
        assert all(f.severity == Severity.INFO for f in findings)

    def test_findings_deduplicated_across_iterations(self):
        hip = make_runtime(memory_gib=2, trace=True)
        buf = hip.array(1 << 20, np.float32, "hipMalloc")
        for _ in range(5):
            hip.launchKernel(_spec("produce", buf.allocation, "write"))
            hip.runCpuKernel(_spec("consume", buf.allocation, "read"))
        assert len(analyze_runtime(hip)) == 1

    def test_untraced_runtime_rejected(self):
        hip = make_runtime(memory_gib=2)
        with pytest.raises(ValueError, match="trace"):
            analyze_runtime(hip)


# ----------------------------------------------------------------------
# Regression gates
# ----------------------------------------------------------------------


def _load_racey_port():
    path = ROOT / "examples" / "racey_port.py"
    spec = importlib.util.spec_from_file_location("racey_port", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRaceyPortExample:
    """The acceptance gate: each seeded bug in the example is caught."""

    @pytest.fixture(scope="class")
    def racey(self):
        return _load_racey_port()

    def test_detects_unsynchronized_d2h_read(self, racey):
        assert "hipsan.unsync-d2h-read" in _rules(racey.unsync_d2h_read())

    def test_detects_cpu_gpu_race(self, racey):
        assert "hipsan.cpu-gpu-race" in _rules(racey.cpu_gpu_race())

    def test_detects_use_after_free(self, racey):
        rules = _rules(racey.use_after_free())
        assert "hipsan.use-after-free" in rules
        assert "hipsan.free-in-flight" in rules

    def test_detects_every_remaining_rule(self, racey):
        assert "hipsan.memcpy-race" in _rules(racey.memcpy_race())
        assert "hipsan.stream-race" in _rules(racey.stream_race())
        assert "hipsan.double-free" in _rules(racey.double_free())
        assert "hipsan.xnack-fatal" in _rules(racey.xnack_fatal())
        assert "hipsan.fault-storm" in _rules(racey.fault_storm())

    def test_every_scenario_reports_something(self, racey):
        for scenario in racey.SCENARIOS:
            assert scenario(), scenario.__name__


def _app_variant_matrix():
    for name in sorted(ALL_APPS):
        for variant in ALL_APPS[name]().variants:
            yield name, variant


@pytest.mark.parametrize("name,variant", list(_app_variant_matrix()))
def test_rodinia_ports_analyze_clean(name, variant):
    """All six ports, every memory model: no races, no lifetime bugs."""
    findings = analyze_app(name, variant, params=SMALL_PARAMS[name])
    reported = [f for f in findings if f.severity > Severity.INFO]
    assert reported == [], render_text(reported)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestAnalyzeCli:
    def test_analyze_single_app_quick(self, capsys):
        from repro.cli import main

        code = main(["analyze", "--quick", "--app", "hotspot"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hotspot" in out
        assert "clean" in out

    def test_analyze_rejects_unknown_app(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["analyze", "--app", "nosuchapp"])
