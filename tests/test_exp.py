"""Tests for the declarative experiment layer (repro.exp spec/registry/cache)."""

import json

import pytest

from repro.exp import (
    ExperimentSpec,
    ResultCache,
    UnknownExperimentError,
    all_specs,
    code_version,
    experiment_names,
    get_spec,
    temporarily_registered,
)


def dummy_runner(a, b, c):
    return [[a, b, c]]


def make_spec(**overrides):
    kwargs = dict(
        name="dummy",
        title="Dummy",
        columns=["a", "b", "c"],
        runner=dummy_runner,
        grid={"a": [1, 2], "b": ["x", "y"]},
        fixed={"c": 3},
    )
    kwargs.update(overrides)
    return ExperimentSpec.define(**kwargs)


class TestGridExpansion:
    def test_cross_product_with_fixed(self):
        points = make_spec().points()
        assert len(points) == 4
        assert [p.index for p in points] == [0, 1, 2, 3]
        assert points[0].params == {"a": 1, "b": "x", "c": 3}
        assert points[3].params == {"a": 2, "b": "y", "c": 3}

    def test_empty_grid_is_one_point(self):
        spec = make_spec(grid=None, fixed={"a": 1, "b": 2, "c": 3})
        points = spec.points()
        assert len(points) == 1
        assert points[0].params == {"a": 1, "b": 2, "c": 3}

    def test_quick_grid_and_fixed_variants(self):
        spec = make_spec(
            quick_grid={"a": [1], "b": ["x"]}, quick_fixed={"c": 99}
        )
        assert spec.point_count() == 4
        assert spec.point_count(quick=True) == 1
        assert spec.points(quick=True)[0].params == {"a": 1, "b": "x", "c": 99}

    def test_quick_falls_back_to_full(self):
        spec = make_spec()
        assert spec.points(quick=True) == spec.points()

    def test_axes(self):
        assert make_spec().axes() == ["a", "b"]

    def test_describe_names_point_params(self):
        point = make_spec().points()[0]
        assert point.describe() == "dummy[a=1, b='x', c=3]"


class TestSpecHash:
    def test_stable_across_identical_definitions(self):
        assert make_spec().spec_hash() == make_spec().spec_hash()

    @pytest.mark.parametrize("override", [
        {"grid": {"a": [1, 2, 3], "b": ["x", "y"]}},
        {"fixed": {"c": 4}},
        {"columns": ["a", "b", "z"]},
        {"quick_fixed": {"c": 5}},
        {"name": "other"},
    ])
    def test_any_declarative_change_rehashes(self, override):
        assert make_spec(**override).spec_hash() != make_spec().spec_hash()

    def test_runner_identity_hashes(self):
        assert make_spec(runner=print).spec_hash() != make_spec().spec_hash()


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        expected = {
            "table1", "fig2", "fig3", "memcpy", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "apps", "uvm", "partition",
        }
        assert expected <= set(experiment_names())

    def test_specs_are_well_formed(self):
        for spec in all_specs():
            assert spec.columns, spec.name
            assert spec.point_count() >= 1, spec.name
            assert spec.point_count(quick=True) <= spec.point_count(), spec.name
            # Runners must be module-level (picklable for the pool).
            assert spec.runner.__qualname__ == spec.runner.__name__, spec.name

    def test_unknown_name_raises_with_attribute(self):
        with pytest.raises(UnknownExperimentError) as excinfo:
            get_spec("fig99")
        assert excinfo.value.experiment == "fig99"

    def test_temporarily_registered_restores(self):
        spec = make_spec(name="ephemeral")
        with temporarily_registered(spec):
            assert get_spec("ephemeral") is spec
        with pytest.raises(UnknownExperimentError):
            get_spec("ephemeral")

    def test_temporarily_registered_shadows_and_restores(self):
        original = get_spec("fig8")
        shadow = make_spec(name="fig8")
        with temporarily_registered(shadow):
            assert get_spec("fig8") is shadow
        assert get_spec("fig8") is original


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = ResultCache.key("v1", "spec", {"a": 1})
        payload = {"rows": [[1, 2]], "sim_time_ns": 5.0}
        cache.put(key, payload)
        assert key in cache
        assert cache.get(key) == payload
        assert cache.hits == 1

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = ResultCache.key("v1", "spec", {"a": 1})
        path = cache.put(key, {"rows": []})
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_key_sensitivity(self):
        base = ResultCache.key("v1", "spec", {"a": 1})
        assert ResultCache.key("v2", "spec", {"a": 1}) != base
        assert ResultCache.key("v1", "other", {"a": 1}) != base
        assert ResultCache.key("v1", "spec", {"a": 2}) != base

    def test_key_param_order_independent(self):
        assert ResultCache.key("v", "s", {"a": 1, "b": 2}) == \
            ResultCache.key("v", "s", {"b": 2, "a": 1})


class TestCodeVersion:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "pinned-version")
        assert code_version() == "pinned-version"

    def test_detected_version_is_nonempty(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODE_VERSION", raising=False)
        assert code_version()
