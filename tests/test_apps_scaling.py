"""Application scaling and robustness tests.

Complements test_apps.py: problem-size monotonicity, determinism across
runs, XNACK wiring, and memory accounting consistency.
"""

import pytest

from repro.apps import ALL_APPS
from repro.apps.hotspot import Hotspot
from repro.apps.nn import NearestNeighbor
from repro.apps.srad import SradV1
from repro.core.faults import GPUMemoryAccessError


class TestDeterminism:
    @pytest.mark.parametrize("name", ["hotspot", "srad_v1"])
    def test_same_seed_same_everything(self, name):
        app = ALL_APPS[name]()
        params = {"hotspot": {"grid": 128, "iterations": 4},
                  "srad_v1": {"dim": 128, "iterations": 3}}[name]
        a = app.run("explicit", memory_gib=2, params=params)
        b = app.run("explicit", memory_gib=2, params=params)
        assert a.checksum == b.checksum
        assert a.total_time_s == b.total_time_s
        assert a.peak_memory_bytes == b.peak_memory_bytes


class TestProblemScaling:
    def test_hotspot_time_grows_with_grid(self):
        app = Hotspot()
        small = app.run("unified", memory_gib=2,
                        params={"grid": 128, "iterations": 8})
        big = app.run("unified", memory_gib=2,
                      params={"grid": 512, "iterations": 8})
        assert big.total_time_s > small.total_time_s
        assert big.peak_memory_bytes > small.peak_memory_bytes

    def test_hotspot_time_grows_with_iterations(self):
        app = Hotspot()
        few = app.run("unified", memory_gib=2,
                      params={"grid": 128, "iterations": 4})
        many = app.run("unified", memory_gib=2,
                       params={"grid": 128, "iterations": 16})
        assert many.compute_time_s > few.compute_time_s
        # Memory does not depend on the iteration count.
        assert many.peak_memory_bytes == few.peak_memory_bytes

    def test_srad_iterations_scale_compute_only(self):
        app = SradV1()
        few = app.run("explicit", memory_gib=2,
                      params={"dim": 128, "iterations": 2})
        many = app.run("explicit", memory_gib=2,
                       params={"dim": 128, "iterations": 8})
        assert many.compute_time_s > 2 * few.compute_time_s
        assert many.io_time_s == pytest.approx(few.io_time_s, rel=0.05)

    def test_nn_memory_scales_with_records(self):
        app = NearestNeighbor()
        small = app.run("explicit", memory_gib=2,
                        params={"records": 1 << 16, "k": 4})
        big = app.run("explicit", memory_gib=2,
                      params={"records": 1 << 18, "k": 4})
        assert big.peak_memory_bytes > 2 * small.peak_memory_bytes


class TestMemoryAccounting:
    def test_explicit_roughly_double_unified(self):
        """Merged duplicate buffers: explicit ~ 2x unified for the data-
        duplication apps."""
        app = Hotspot()
        params = {"grid": 512, "iterations": 4}
        explicit = app.run("explicit", memory_gib=2, params=params)
        unified = app.run("unified", memory_gib=2, params=params)
        ratio = explicit.peak_memory_bytes / unified.peak_memory_bytes
        assert 1.3 <= ratio <= 2.2

    def test_peak_memory_in_plausible_range(self):
        app = Hotspot()
        result = app.run("unified", memory_gib=2,
                         params={"grid": 512, "iterations": 4})
        data = 3 * 512 * 512 * 4  # temp + power + out
        assert data <= result.peak_memory_bytes <= 2 * data


class TestXNACKWiring:
    def test_unified_variants_run_with_xnack(self):
        for cls in ALL_APPS.values():
            app = cls()
            for variant in app.variants:
                expected = variant != "explicit"
                assert app.needs_xnack(variant) == expected, (app.name, variant)

    def test_nn_unified_requires_xnack(self):
        """nn's unified variant reads a malloc'd vector from the GPU —
        impossible without XNACK (Table 1)."""
        app = NearestNeighbor()

        class NoXnack(NearestNeighbor):
            def needs_xnack(self, variant):
                return False

        with pytest.raises(GPUMemoryAccessError):
            NoXnack().run("unified", memory_gib=2,
                          params={"records": 1 << 14, "k": 2})
