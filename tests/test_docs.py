"""Documentation consistency checks.

DESIGN.md promises an experiment index and EXPERIMENTS.md a
paper-vs-measured record; these tests keep the documents honest against
the actual repository contents.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design():
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments():
    return (ROOT / "EXPERIMENTS.md").read_text()


@pytest.fixture(scope="module")
def bench_modules():
    return {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}


class TestDesignDoc:
    def test_exists_with_substitution_table(self, design):
        assert "Substitution table" in design
        assert "MI300A" in design

    def test_experiment_index_points_to_real_benches(self, design, bench_modules):
        referenced = set(re.findall(r"benchmarks/(test_\w+\.py)", design))
        assert referenced, "DESIGN.md must reference bench modules"
        missing = referenced - bench_modules
        assert not missing, f"DESIGN.md references missing benches: {missing}"

    def test_every_figure_has_an_index_row(self, design):
        for token in ("Table 1", "Table 2", "Fig 2", "Fig 3", "Fig 4",
                      "Fig 5", "Fig 6", "Fig 7", "Fig 8", "Fig 9",
                      "Fig 10", "Fig 11"):
            assert token in design, token

    def test_inventory_matches_packages(self, design):
        src = ROOT / "src" / "repro"
        for package in ("hw", "core", "runtime", "perf", "bench",
                        "profiling", "apps", "porting", "uvm", "analyze"):
            assert f"repro.{package}" in design, package
            assert (src / package / "__init__.py").exists(), package


class TestExperimentsDoc:
    def test_every_bench_module_documented(self, experiments, bench_modules):
        for module in bench_modules:
            assert module in experiments, f"{module} missing from EXPERIMENTS.md"

    def test_paper_anchor_values_present(self, experiments):
        for anchor in ("3.6 TB/s", "208", "181", "872", "9.0 M", "58 GB/s",
                       "158 K", "472"):
            assert anchor in experiments, anchor

    def test_deviations_are_recorded(self, experiments):
        assert "Deviation" in experiments


class TestReadme:
    def test_quickstart_imports_are_real(self):
        readme = (ROOT / "README.md").read_text()
        import repro

        for name in ("make_runtime", "KernelSpec", "BufferAccess"):
            assert name in readme
            assert hasattr(repro, name)

    def test_example_scripts_exist(self):
        readme = (ROOT / "README.md").read_text()
        for script in re.findall(r"examples/(\w+\.py)", readme):
            assert (ROOT / "examples" / script).exists(), script

    def test_bench_table_rows_exist(self):
        readme = (ROOT / "README.md").read_text()
        for module in re.findall(r"`(test_\w+\.py)`", readme):
            assert (ROOT / "benchmarks" / module).exists(), module


class TestModelingDoc:
    def test_covers_all_perf_models(self):
        modeling = (ROOT / "MODELING.md").read_text()
        for section in ("latency", "bandwidth", "Atomics", "fault",
                        "Fragments", "UVM"):
            assert section.lower() in modeling.lower(), section
