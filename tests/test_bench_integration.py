"""Integration tests for the benchmark library (repro.bench).

Small problem sizes; the full paper-scale sweeps live in benchmarks/.
"""

import numpy as np
import pytest

from repro.bench import (
    allocspeed,
    hipbandwidth,
    histogram,
    multichase,
    pagefault,
    stream,
)
from repro.hw.config import KiB, MiB


class TestMultichase:
    def test_curve_shape(self):
        samples = multichase.chase_curve(
            "hipMalloc", "gpu", sizes=[1 * KiB, 1 * MiB, 64 * MiB],
            memory_gib=2,
        )
        latencies = [s.latency_ns for s in samples]
        assert latencies == sorted(latencies)
        assert samples[0].latency_ns == pytest.approx(57, abs=2)

    def test_cpu_below_gpu(self):
        cpu = multichase.chase_curve(
            "hipMalloc", "cpu", sizes=[1 * MiB], memory_gib=2
        )[0]
        gpu = multichase.chase_curve(
            "hipMalloc", "gpu", sizes=[1 * MiB], memory_gib=2
        )[0]
        assert cpu.latency_ns < gpu.latency_ns

    def test_malloc_penalty_near_ic_capacity(self):
        malloc = multichase.chase_curve(
            "malloc", "cpu", sizes=[512 * MiB], memory_gib=16
        )[0]
        hip = multichase.chase_curve(
            "hipMalloc", "cpu", sizes=[512 * MiB], memory_gib=16
        )[0]
        assert malloc.latency_ns > hip.latency_ns + 10

    def test_unknown_allocator_rejected(self):
        with pytest.raises(ValueError):
            multichase.chase_curve("cudaMalloc", "cpu", sizes=[1 * KiB])

    def test_format_table(self):
        samples = multichase.chase_curve(
            "hipMalloc", "gpu", sizes=[1 * KiB], memory_gib=2
        )
        text = multichase.format_table(samples)
        assert "hipMalloc" in text
        assert "latency_ns" in text


class TestStream:
    def test_gpu_tiers(self):
        hip = stream.gpu_triad("hipMalloc", array_bytes=64 * MiB, memory_gib=2)
        host = stream.gpu_triad("hipHostMalloc", array_bytes=64 * MiB, memory_gib=2)
        assert hip.bandwidth_bytes_per_s > host.bandwidth_bytes_per_s

    def test_cpu_best_threads(self):
        result = stream.cpu_triad(
            "hipMalloc", array_bytes=64 * MiB, memory_gib=2
        )
        assert result.best_threads == 24
        result_b = stream.cpu_triad(
            "malloc", array_bytes=64 * MiB, memory_gib=16
        )
        assert result_b.best_threads == 9

    def test_fault_counter_scales_with_array(self):
        report = stream.cpu_fault_count(
            "malloc", xnack=False, array_bytes=16 * MiB, memory_gib=2
        )
        assert report.page_faults == 3 * (16 * MiB // 4096)

    def test_hipmalloc_far_fewer_cpu_faults(self):
        hip_faults = stream.cpu_fault_count(
            "hipMalloc", xnack=False, array_bytes=16 * MiB, memory_gib=2
        ).page_faults
        malloc_faults = stream.cpu_fault_count(
            "malloc", xnack=False, array_bytes=16 * MiB, memory_gib=2
        ).page_faults
        assert malloc_faults > 50 * hip_faults

    def test_tlb_miss_gap(self):
        rows = stream.gpu_tlb_miss_table(
            allocators=["malloc", "hipMalloc"],
            array_bytes=64 * MiB,
            memory_gib=2,
        )
        by_name = {r.allocator: r.gpu_tlb_misses for r in rows}
        assert by_name["malloc"] > 5 * by_name["hipMalloc"]


class TestHipBandwidth:
    def test_three_regimes(self):
        slow = hipbandwidth.measure_memcpy(
            "malloc", "hipMalloc", sdma_enabled=True, copy_bytes=64 * MiB,
            memory_gib=2,
        )
        blit = hipbandwidth.measure_memcpy(
            "malloc", "hipMalloc", sdma_enabled=False, copy_bytes=64 * MiB,
            memory_gib=2,
        )
        d2d = hipbandwidth.measure_memcpy(
            "hipMalloc", "hipMalloc", copy_bytes=64 * MiB, memory_gib=2
        )
        assert slow == pytest.approx(58e9, rel=0.1)
        assert blit == pytest.approx(850e9, rel=0.1)
        assert d2d == pytest.approx(1.9e12, rel=0.15)
        assert slow < blit < d2d


class TestHistogramBench:
    def test_sweeps_return_samples(self):
        cpu = histogram.cpu_sweep(1 << 10, "uint64", threads=[1, 24])
        gpu = histogram.gpu_sweep(1 << 10, "uint64", threads=[64, 3328])
        assert len(cpu) == 2 and len(gpu) == 2
        assert all(s.updates_per_s > 0 for s in cpu + gpu)

    def test_hybrid_grid_dimensions(self):
        grid = histogram.hybrid_grid(
            1 << 10, "uint64", cpu_threads=[6], gpu_threads=[64, 3328]
        )
        assert len(grid) == 2

    def test_histogram_conservation(self):
        hist = histogram.run_histogram_kernel(128, updates=10_000, workers=7)
        assert hist.sum() == 10_000

    def test_histogram_deterministic(self):
        a = histogram.run_histogram_kernel(64, 1000, workers=3, seed=1)
        b = histogram.run_histogram_kernel(64, 1000, workers=3, seed=1)
        assert np.array_equal(a, b)

    def test_histogram_fp64(self):
        hist = histogram.run_histogram_kernel(16, 500, dtype="fp64")
        assert hist.dtype == np.float64
        assert hist.sum() == pytest.approx(500.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            histogram.run_histogram_kernel(0, 10)


class TestAllocSpeedBench:
    def test_cost_sweep_matches_live_timing(self):
        """The live allocators must charge what the models predict."""
        for allocator in ("malloc", "hipMalloc", "hipHostMalloc"):
            model = allocspeed.cost_sweep(allocator, sizes=[1 * MiB])[0]
            live = allocspeed.timed_loop(allocator, 1 * MiB, count=10, warmup=2)
            assert live.alloc_ns == pytest.approx(model.alloc_ns, rel=0.01)
            assert live.free_ns == pytest.approx(model.free_ns, rel=0.01)

    def test_malloc_fastest_small(self):
        rows = {
            a: allocspeed.cost_sweep(a, sizes=[32])[0].alloc_ns
            for a in allocspeed.ALLOCATORS
        }
        assert min(rows, key=rows.get) == "malloc"

    def test_managed_xnack_constant(self):
        rows = allocspeed.cost_sweep(
            "hipMallocManaged(xnack=1)", sizes=[2, 1 * MiB, 1 << 30]
        )
        assert len({r.alloc_ns for r in rows}) == 1

    def test_full_sweep_covers_allocators(self):
        rows = allocspeed.full_cost_sweep(sizes=[4096])
        assert {r.allocator for r in rows} == set(allocspeed.ALLOCATORS)


class TestPageFaultBench:
    def test_throughput_curves(self):
        samples = pagefault.full_throughput_sweep(page_counts=[100, 10_000])
        assert len(samples) == 8

    def test_measured_close_to_model_at_plateau(self):
        measured = pagefault.measured_throughput("cpu", 20_000)
        assert measured == pytest.approx(872e3, rel=0.25)

    def test_measured_gpu_minor_beats_major(self):
        minor = pagefault.measured_throughput("gpu_minor", 20_000)
        major = pagefault.measured_throughput("gpu_major", 20_000)
        assert minor > major

    def test_measured_cpu12_beats_cpu1(self):
        one = pagefault.measured_throughput("cpu", 20_000)
        twelve = pagefault.measured_throughput("cpu12", 20_000)
        assert twelve > 2 * one

    def test_latency_stats(self):
        stats = {s.scenario: s for s in pagefault.latency_distributions(5_000)}
        assert stats["cpu"].mean_us == pytest.approx(9.0, rel=0.05)
        assert stats["gpu_major"].p95_us > stats["cpu"].p95_us

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            pagefault.measured_throughput("dma", 10)
