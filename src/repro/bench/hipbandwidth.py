"""Legacy CPU-GPU transfer benchmark (paper Section 4.3, hip_bandwidth).

Measures achieved hipMemcpy bandwidth between "host memory" (malloc or
hipHostMalloc) and "GPU memory" (hipMalloc), and GPU-to-GPU, with the
SDMA engines enabled or disabled.  Buffers are pre-touched so the
numbers isolate the copy path, as the original benchmark's warmup does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..hw.config import MiB
from ..runtime.apu import make_apu
from ..runtime.hip import HipRuntime

DEFAULT_COPY_BYTES = 256 * MiB

#: (label, src allocator, dst allocator) combinations of the paper.
COMBINATIONS = [
    ("malloc -> hipMalloc", "malloc", "hipMalloc"),
    ("hipHostMalloc -> hipMalloc", "hipHostMalloc", "hipMalloc"),
    ("hipMalloc -> hipMalloc", "hipMalloc", "hipMalloc"),
]


@dataclass(frozen=True)
class MemcpyResult:
    """One measured transfer configuration."""

    label: str
    sdma_enabled: bool
    copy_bytes: int
    bandwidth_bytes_per_s: float


def _alloc(runtime: HipRuntime, allocator: str, size: int):
    if allocator == "malloc":
        return runtime.malloc(size)
    if allocator == "hipMalloc":
        return runtime.hipMalloc(size)
    if allocator == "hipHostMalloc":
        return runtime.hipHostMalloc(size)
    raise ValueError(f"unknown allocator {allocator!r}")


def measure_memcpy(
    src_allocator: str,
    dst_allocator: str,
    sdma_enabled: bool = True,
    copy_bytes: int = DEFAULT_COPY_BYTES,
    warmup: int = 1,
    iterations: int = 3,
    memory_gib: Optional[int] = None,
) -> float:
    """Achieved bandwidth (bytes/s) of one transfer configuration."""
    if memory_gib is None:
        memory_gib = max(4, (copy_bytes >> 30) * 4 + 2)
    apu = make_apu(memory_gib, xnack=True)
    runtime = HipRuntime(apu, sdma_enabled=sdma_enabled)
    src = _alloc(runtime, src_allocator, copy_bytes)
    dst = _alloc(runtime, dst_allocator, copy_bytes)
    for _ in range(warmup):
        runtime.hipMemcpy(dst, src, copy_bytes)
    start = apu.clock.now_ns
    for _ in range(iterations):
        runtime.hipMemcpy(dst, src, copy_bytes)
    elapsed_s = (apu.clock.now_ns - start) / 1e9
    return copy_bytes * iterations / elapsed_s


def full_sweep(
    copy_bytes: int = DEFAULT_COPY_BYTES,
    memory_gib: Optional[int] = None,
) -> List[MemcpyResult]:
    """All paper combinations, with SDMA on and off."""
    out: List[MemcpyResult] = []
    for label, src, dst in COMBINATIONS:
        for sdma in (True, False):
            bandwidth = measure_memcpy(
                src, dst, sdma_enabled=sdma, copy_bytes=copy_bytes,
                memory_gib=memory_gib,
            )
            out.append(MemcpyResult(label, sdma, copy_bytes, bandwidth))
    return out
