"""Parallel-histogram atomics benchmark (paper Figs. 4-5).

An array of 2^0, 2^10, 2^20, or 2^30 UINT64/FP64 elements is updated at
random indices with atomic adds, from CPU threads, GPU threads, or both
at once.  Throughput comes from the contention model in
:mod:`repro.perf.atomics`; the *functional* side (random increments and
the conservation invariant that total count equals total updates) is
executed with numpy so correctness is testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..hw.config import MI300AConfig, default_config
from ..perf.atomics import (
    DType,
    HybridThroughput,
    cpu_atomic_throughput,
    gpu_atomic_throughput,
    hybrid_atomic_throughput,
)

#: The paper's four array sizes (elements).
ARRAY_SIZES = [1, 1 << 10, 1 << 20, 1 << 30]

#: CPU thread counts swept in Fig. 4's first row.
CPU_THREADS = [1, 2, 3, 6, 12, 24]

#: GPU thread counts swept in Fig. 4's second row (64-thread blocks).
GPU_THREADS = [64, 640, 1280, 2304, 3328, 6400, 10496, 14592]


@dataclass(frozen=True)
class AtomicsSample:
    """One point on a Fig. 4 curve."""

    device: str
    dtype: DType
    elements: int
    threads: int
    updates_per_s: float


def cpu_sweep(
    elements: int,
    dtype: DType = "uint64",
    threads: Optional[Sequence[int]] = None,
    config: Optional[MI300AConfig] = None,
) -> List[AtomicsSample]:
    """Isolated CPU throughput across thread counts."""
    config = config or default_config()
    return [
        AtomicsSample(
            "cpu", dtype, elements, t,
            cpu_atomic_throughput(config, elements, t, dtype),
        )
        for t in (threads if threads is not None else CPU_THREADS)
    ]


def gpu_sweep(
    elements: int,
    dtype: DType = "uint64",
    threads: Optional[Sequence[int]] = None,
    config: Optional[MI300AConfig] = None,
) -> List[AtomicsSample]:
    """Isolated GPU throughput across thread counts."""
    config = config or default_config()
    return [
        AtomicsSample(
            "gpu", dtype, elements, t,
            gpu_atomic_throughput(config, elements, t, dtype),
        )
        for t in (threads if threads is not None else GPU_THREADS)
    ]


@dataclass(frozen=True)
class HybridSample:
    """One cell of a Fig. 5 heatmap."""

    dtype: DType
    elements: int
    cpu_threads: int
    gpu_threads: int
    result: HybridThroughput


def hybrid_grid(
    elements: int,
    dtype: DType = "uint64",
    cpu_threads: Optional[Sequence[int]] = None,
    gpu_threads: Optional[Sequence[int]] = None,
    config: Optional[MI300AConfig] = None,
) -> List[HybridSample]:
    """Co-running CPU x GPU grid of relative performance (Fig. 5)."""
    config = config or default_config()
    cpu_list = list(cpu_threads) if cpu_threads is not None else [1, 3, 6, 12, 24]
    gpu_list = list(gpu_threads) if gpu_threads is not None else GPU_THREADS
    out: List[HybridSample] = []
    for ct in cpu_list:
        for gt in gpu_list:
            out.append(
                HybridSample(
                    dtype, elements, ct, gt,
                    hybrid_atomic_throughput(config, elements, ct, gt, dtype),
                )
            )
    return out


def run_histogram_kernel(
    elements: int,
    updates: int,
    workers: int = 4,
    dtype: DType = "uint64",
    seed: int = 0xA70,
) -> np.ndarray:
    """Functionally execute the histogram update loop.

    Splits *updates* across *workers* pseudo-threads, each with its own
    deterministic RNG stream (the paper's CPU kernel uses per-thread
    ``std::minstd_rand``; the GPU kernel uses XORWOW).  Returns the final
    histogram; atomicity in the simulator is trivially exact, so the
    conservation law ``histogram.sum() == updates`` is the correctness
    oracle.
    """
    if elements <= 0 or updates < 0 or workers <= 0:
        raise ValueError("elements/updates/workers must be positive")
    np_dtype = np.uint64 if dtype == "uint64" else np.float64
    histogram = np.zeros(elements, dtype=np_dtype)
    base, extra = divmod(updates, workers)
    for worker in range(workers):
        n = base + (1 if worker < extra else 0)
        if n == 0:
            continue
        rng = np.random.default_rng(seed + worker)
        indices = rng.integers(0, elements, size=n)
        np.add.at(histogram, indices, np_dtype(1))
    return histogram
