"""STREAM TRIAD bandwidth benchmark (paper Fig. 3 and Figs. 9-10).

GPU arrays are 256 MiB, CPU arrays 610 MiB, as in the paper.  Each
configuration is (allocator, first-touch device); the CPU side sweeps
thread counts 1..24 and reports the best, reproducing the paper's
methodology.  The benchmark runs through the kernel engine, so the GPU
TLB-miss counter (Fig. 9) and the CPU page-fault counter (Fig. 10) tick
as side effects and can be sampled with the profiling interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


from ..hw.config import MiB
from ..profiling.perfstat import PerfStat, PerfStatReport
from ..profiling.rocprof import RocProf
from ..runtime.apu import APU, make_apu
from ..runtime.kernels import BufferAccess, KernelEngine, KernelSpec

#: Array sizes from the paper's method section.
GPU_ARRAY_BYTES = 256 * MiB
CPU_ARRAY_BYTES = 610 * MiB

#: STREAM's standard iteration count (best-of-10 reporting).
NTIMES = 10

STREAM_ALLOCATORS = [
    "malloc",
    "malloc+register",
    "hipMalloc",
    "hipHostMalloc",
    "hipMallocManaged(xnack=0)",
    "hipMallocManaged(xnack=1)",
    "__managed__",
]


@dataclass
class StreamResult:
    """One bar of Fig. 3 plus the profiler counters behind Figs. 9-10."""

    allocator: str
    device: str
    init_device: str
    array_bytes: int
    bandwidth_bytes_per_s: float
    best_threads: int
    gpu_tlb_misses: int
    cpu_page_faults: int


def _make_apu_for(allocator: str, memory_gib: Optional[int]) -> APU:
    xnack = allocator in ("malloc", "hipMallocManaged(xnack=1)")
    if memory_gib is None:
        memory_gib = 16
    return make_apu(memory_gib, xnack=xnack)


def _alloc(apu: APU, allocator: str, size: int):
    mem = apu.memory
    if allocator == "malloc":
        return mem.malloc(size)
    if allocator == "malloc+register":
        return mem.host_register(mem.malloc(size))
    if allocator == "hipMalloc":
        return mem.hip_malloc(size)
    if allocator == "hipHostMalloc":
        return mem.hip_host_malloc(size)
    if allocator.startswith("hipMallocManaged"):
        return mem.hip_malloc_managed(size)
    if allocator == "__managed__":
        return mem.managed_static(size)
    raise ValueError(f"unknown allocator {allocator!r}")


def _triad_spec(a, b, c, passes: int) -> KernelSpec:
    return KernelSpec(
        "triad",
        [
            BufferAccess(a, "read", "stream", passes=passes),
            BufferAccess(b, "read", "stream", passes=passes),
            BufferAccess(c, "write", "stream", passes=passes),
        ],
    )


def gpu_triad(
    allocator: str,
    init_device: str = "cpu",
    array_bytes: int = GPU_ARRAY_BYTES,
    ntimes: int = NTIMES,
    memory_gib: Optional[int] = None,
) -> StreamResult:
    """GPU TRIAD bandwidth for one allocator/init combination."""
    apu = _make_apu_for(allocator, memory_gib)
    arrays = [_alloc(apu, allocator, array_bytes) for _ in range(3)]
    for arr in arrays:
        apu.touch(arr, init_device)

    engine = KernelEngine(apu)
    rocprof, perf = RocProf(apu), PerfStat(apu)
    rocprof.start()
    perf.start()
    result = engine.run_gpu(_triad_spec(*arrays, passes=ntimes))
    apu.streams.device_synchronize()
    counters = rocprof.stop()
    faults = perf.stop()

    moved = 3 * array_bytes * ntimes
    bandwidth = moved / (result.memory_ns / 1e9)
    return StreamResult(
        allocator,
        "gpu",
        init_device,
        array_bytes,
        bandwidth,
        best_threads=0,
        gpu_tlb_misses=counters.tlb_misses,
        cpu_page_faults=faults.page_faults,
    )


def cpu_triad(
    allocator: str,
    init_device: str = "cpu",
    array_bytes: int = CPU_ARRAY_BYTES,
    ntimes: int = NTIMES,
    threads: Optional[Sequence[int]] = None,
    memory_gib: Optional[int] = None,
) -> StreamResult:
    """CPU TRIAD: sweeps thread counts and reports the best (Fig. 3)."""
    apu = _make_apu_for(allocator, memory_gib)
    arrays = [_alloc(apu, allocator, array_bytes) for _ in range(3)]
    perf = PerfStat(apu)
    perf.start()
    for arr in arrays:
        apu.touch(arr, init_device)

    engine = KernelEngine(apu)
    sweep = list(threads) if threads is not None else list(
        range(1, apu.cpu.cores + 1)
    )
    best_bw, best_threads = 0.0, sweep[0]
    for t in sweep:
        result = engine.run_cpu(_triad_spec(*arrays, passes=ntimes), threads=t)
        moved = 3 * array_bytes * ntimes
        bandwidth = moved / (result.memory_ns / 1e9)
        if bandwidth > best_bw:
            best_bw, best_threads = bandwidth, t
    faults = perf.stop()
    return StreamResult(
        allocator,
        "cpu",
        init_device,
        array_bytes,
        best_bw,
        best_threads=best_threads,
        gpu_tlb_misses=0,
        cpu_page_faults=faults.page_faults,
    )


def cpu_fault_count(
    allocator: str,
    xnack: bool,
    init_device: str = "cpu",
    array_bytes: int = CPU_ARRAY_BYTES,
    ntimes: int = NTIMES,
    memory_gib: int = 16,
) -> PerfStatReport:
    """Total CPU page faults in the CPU STREAM benchmark (Fig. 10).

    Counts faults across allocation, initialisation and *ntimes* TRIAD
    iterations, for an explicit XNACK mode (Fig. 10's three configs are
    baseline XNACK=0, XNACK=1, and GPU init).
    """
    apu = make_apu(memory_gib, xnack=xnack)
    perf = PerfStat(apu)
    perf.start()
    arrays = [_alloc(apu, allocator, array_bytes) for _ in range(3)]
    for arr in arrays:
        apu.touch(arr, init_device)
    engine = KernelEngine(apu)
    engine.run_cpu(_triad_spec(*arrays, passes=ntimes), threads=apu.cpu.cores)
    return perf.stop()


def gpu_tlb_miss_table(
    allocators: Optional[Sequence[str]] = None,
    array_bytes: int = GPU_ARRAY_BYTES,
    ntimes: int = NTIMES,
    memory_gib: Optional[int] = None,
) -> List[StreamResult]:
    """Fig. 9: GPU TLB misses in TRIAD for each allocator."""
    chosen = (
        list(allocators)
        if allocators is not None
        else ["malloc", "malloc+register", "hipMalloc", "hipHostMalloc",
              "hipMallocManaged(xnack=0)"]
    )
    return [
        gpu_triad(a, array_bytes=array_bytes, ntimes=ntimes,
                  memory_gib=memory_gib)
        for a in chosen
    ]
