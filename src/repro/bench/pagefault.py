"""Page-fault overhead benchmark (paper Figs. 7-8 and Section 5.2).

Four scenarios, as in the paper:

* **GPU Major** — on-demand memory first-touched by the GPU;
* **GPU Minor** — memory pre-touched by the CPU, then faulted on the GPU
  (PTE propagation only);
* **1CPU / 12CPU** — on-demand memory touched from 1 or 12 CPU cores.

Throughput is evaluated against the calibrated queueing model
(:mod:`repro.perf.faultmodel`) and, for cross-checking, measured on a
live simulated APU by actually mmapping a buffer, issuing one access per
page, and reading the simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..hw.config import MI300AConfig, PAGE_SIZE, default_config
from ..perf.faultmodel import (
    Scenario,
    fault_throughput_pages_per_s,
    sample_latency_distribution,
)
from ..runtime.apu import APU, make_apu

#: Page counts swept in Fig. 7 (1 to 10 M pages; 10 M pages = 40 GiB).
DEFAULT_PAGE_COUNTS = [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000]

SCENARIOS: List[Scenario] = ["gpu_major", "gpu_minor", "cpu", "cpu12"]


@dataclass(frozen=True)
class ThroughputSample:
    """One point on a Fig. 7 curve."""

    scenario: Scenario
    pages: int
    pages_per_s: float


def throughput_curve(
    scenario: Scenario,
    page_counts: Optional[Sequence[int]] = None,
    config: Optional[MI300AConfig] = None,
) -> List[ThroughputSample]:
    """Model-based Fig. 7 curve for one scenario."""
    config = config or default_config()
    counts = list(page_counts) if page_counts is not None else DEFAULT_PAGE_COUNTS
    return [
        ThroughputSample(
            scenario, n, fault_throughput_pages_per_s(config, scenario, n)
        )
        for n in counts
    ]


def full_throughput_sweep(
    page_counts: Optional[Sequence[int]] = None,
    config: Optional[MI300AConfig] = None,
) -> List[ThroughputSample]:
    """All four Fig. 7 curves."""
    out: List[ThroughputSample] = []
    for scenario in SCENARIOS:
        out.extend(throughput_curve(scenario, page_counts, config))
    return out


def measured_throughput(
    scenario: Scenario,
    pages: int,
    apu: Optional[APU] = None,
) -> float:
    """Measure fault throughput on a live APU (cross-check of the model).

    Uses ``mmap`` semantics (a fresh on-demand VMA per run) so every test
    is independent, as the paper's methodology specifies.
    """
    if apu is None:
        needed_gib = max(2, (pages * PAGE_SIZE >> 30) * 2 + 1)
        apu = make_apu(needed_gib, xnack=True)
    size = pages * PAGE_SIZE
    buffer = apu.memory.malloc(size, name=f"faultbench-{scenario}")

    if scenario == "gpu_minor":
        apu.touch(buffer, "cpu", concurrency=12)  # pre-fault, untimed
        device, concurrency = "gpu", apu.gpu.compute_units
    elif scenario == "gpu_major":
        device, concurrency = "gpu", apu.gpu.compute_units
    elif scenario == "cpu":
        device, concurrency = "cpu", 1
    elif scenario == "cpu12":
        device, concurrency = "cpu", 12
    else:
        raise ValueError(f"unknown scenario {scenario!r}")

    start = apu.clock.now_ns
    apu.touch(buffer, device, concurrency=concurrency)
    elapsed_s = (apu.clock.now_ns - start) / 1e9
    apu.memory.free(buffer)
    if elapsed_s <= 0:
        raise RuntimeError("fault burst took no simulated time")
    return pages / elapsed_s


@dataclass(frozen=True)
class LatencyStats:
    """Fig. 8 summary statistics for one fault type."""

    scenario: str
    mean_us: float
    p50_us: float
    p95_us: float

    @classmethod
    def from_samples(cls, scenario: str, samples_ns: np.ndarray) -> "LatencyStats":
        """Summarise raw latency draws."""
        return cls(
            scenario,
            float(samples_ns.mean() / 1e3),
            float(np.percentile(samples_ns, 50) / 1e3),
            float(np.percentile(samples_ns, 95) / 1e3),
        )


def latency_distributions(
    samples: int = 10_000,
    config: Optional[MI300AConfig] = None,
) -> List[LatencyStats]:
    """Fig. 8: single-fault latency distributions for CPU/GPU faults."""
    config = config or default_config()
    out = []
    for scenario in ("cpu", "gpu_minor", "gpu_major"):
        draws = sample_latency_distribution(config, scenario, samples)
        out.append(LatencyStats.from_samples(scenario, draws))
    return out
