"""Allocation-speed benchmark (paper Fig. 6 and Section 5.1).

The paper's benchmark allocates N=100 chunks of size M in one loop and
frees them in a second loop, timing each loop, for M from 2 B to 1 GiB.
Two modes are provided:

* :func:`cost_sweep` queries the calibrated allocator cost models
  directly (exactly the Fig. 6 curves, cheap at any size);
* :func:`timed_loop` actually performs the allocations on a simulated
  APU and reads the clock, verifying the live allocators charge the same
  costs the models predict (used by the integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core import allocators as alloc_costs
from ..hw.config import GiB, MI300AConfig, default_config
from ..runtime.apu import APU, make_apu

#: Fig. 6's size axis: 2 B to 1 GiB, powers of two (decimated for speed).
DEFAULT_SIZES = [2 << i for i in range(0, 30, 2)] + [1 * GiB]

ALLOCATORS = [
    "malloc",
    "hipMalloc",
    "hipHostMalloc",
    "hipMallocManaged(xnack=0)",
    "hipMallocManaged(xnack=1)",
]


@dataclass(frozen=True)
class AllocSample:
    """Per-call allocation and deallocation times at one size."""

    allocator: str
    size_bytes: int
    alloc_ns: float
    free_ns: float


def _cost_functions(
    config: MI300AConfig, allocator: str
) -> tuple[Callable[[int], float], Callable[[int], float]]:
    if allocator == "malloc":
        return (
            lambda s: alloc_costs.malloc_cost_ns(config, s),
            lambda s: alloc_costs.malloc_free_cost_ns(config, s),
        )
    if allocator == "hipMalloc":
        return (
            lambda s: alloc_costs.hip_malloc_cost_ns(config, s),
            lambda s: alloc_costs.hip_free_cost_ns(config, s),
        )
    if allocator == "hipHostMalloc":
        return (
            lambda s: alloc_costs.pinned_alloc_cost_ns(config, s, managed=False),
            lambda s: alloc_costs.pinned_free_cost_ns(config, s),
        )
    if allocator == "hipMallocManaged(xnack=0)":
        return (
            lambda s: alloc_costs.pinned_alloc_cost_ns(config, s, managed=True),
            lambda s: alloc_costs.pinned_free_cost_ns(config, s),
        )
    if allocator == "hipMallocManaged(xnack=1)":
        costs = config.allocator_costs
        return (
            lambda s: costs.managed_xnack_alloc_ns,
            lambda s: costs.managed_xnack_free_ns,
        )
    raise ValueError(f"unknown allocator {allocator!r}")


def cost_sweep(
    allocator: str,
    sizes: Optional[Sequence[int]] = None,
    config: Optional[MI300AConfig] = None,
) -> List[AllocSample]:
    """The Fig. 6 curve for one allocator, from the cost models."""
    config = config or default_config()
    alloc_fn, free_fn = _cost_functions(config, allocator)
    return [
        AllocSample(allocator, size, alloc_fn(size), free_fn(size))
        for size in (sizes if sizes is not None else DEFAULT_SIZES)
    ]


def full_cost_sweep(
    sizes: Optional[Sequence[int]] = None,
    config: Optional[MI300AConfig] = None,
) -> List[AllocSample]:
    """All allocators' Fig. 6 curves."""
    out: List[AllocSample] = []
    for allocator in ALLOCATORS:
        out.extend(cost_sweep(allocator, sizes, config))
    return out


def timed_loop(
    allocator: str,
    size_bytes: int,
    count: int = 100,
    warmup: int = 10,
    apu: Optional[APU] = None,
) -> AllocSample:
    """Run the paper's two-loop benchmark on a live APU.

    Allocates *count* chunks in a loop (after *warmup* discarded rounds
    of a single alloc/free pair), frees them in a second loop, and reads
    the simulated clock around each loop.
    """
    if apu is None:
        needed_gib = max(2, (size_bytes * count >> 30) + 1)
        apu = make_apu(
            needed_gib, xnack=allocator.endswith("(xnack=1)")
        )
    mem = apu.memory

    def allocate():
        if allocator == "malloc":
            return mem.malloc(size_bytes)
        if allocator == "hipMalloc":
            return mem.hip_malloc(size_bytes)
        if allocator == "hipHostMalloc":
            return mem.hip_host_malloc(size_bytes)
        if allocator.startswith("hipMallocManaged"):
            return mem.hip_malloc_managed(size_bytes)
        raise ValueError(f"unknown allocator {allocator!r}")

    for _ in range(warmup):
        mem.free(allocate())

    start = apu.clock.now_ns
    chunks = [allocate() for _ in range(count)]
    alloc_ns = (apu.clock.now_ns - start) / count

    start = apu.clock.now_ns
    for chunk in chunks:
        mem.free(chunk)
    free_ns = (apu.clock.now_ns - start) / count

    return AllocSample(allocator, size_bytes, alloc_ns, free_ns)
