"""Pointer-chase latency benchmark (paper Fig. 2, adapted multichase).

The paper's methodology: a chase over buffers from 1 KiB to 4 GiB, per
allocator, on both the CPU and the GPU, with a 256 MiB cache flush
between samples.  Here a single maximal buffer is allocated per
allocator and initialised (first-touched) on the chosen device; latency
is then evaluated at each working-set size over the buffer's physical
frame prefix — exactly the state the latency model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..core.allocators import Allocation
from ..hw.config import GiB, KiB, MiB
from ..perf.latency import chase_latency_ns
from ..runtime.apu import APU, make_apu

#: The buffer sizes of the paper's sweep (1 KiB to 4 GiB, semi-log).
DEFAULT_SIZES = [
    1 * KiB, 4 * KiB, 32 * KiB, 256 * KiB,
    1 * MiB, 8 * MiB, 32 * MiB, 96 * MiB, 128 * MiB,
    256 * MiB, 512 * MiB, 1 * GiB, 2 * GiB, 4 * GiB,
]

#: Allocator names accepted by the sweep (managed allocators are tagged
#: with the XNACK mode they imply).
ALLOCATORS = [
    "malloc",
    "malloc+register",
    "hipMalloc",
    "hipHostMalloc",
    "hipMallocManaged(xnack=0)",
    "hipMallocManaged(xnack=1)",
]


@dataclass(frozen=True)
class LatencySample:
    """One point on a Fig. 2 curve."""

    allocator: str
    device: str
    size_bytes: int
    latency_ns: float


def _allocate(apu: APU, allocator: str, size: int) -> Allocation:
    mem = apu.memory
    if allocator == "malloc":
        return mem.malloc(size)
    if allocator == "malloc+register":
        return mem.host_register(mem.malloc(size))
    if allocator == "hipMalloc":
        return mem.hip_malloc(size)
    if allocator == "hipHostMalloc":
        return mem.hip_host_malloc(size)
    if allocator.startswith("hipMallocManaged"):
        return mem.hip_malloc_managed(size)
    raise ValueError(f"unknown allocator {allocator!r}")


def _wants_xnack(allocator: str) -> bool:
    return allocator.endswith("(xnack=1)") or allocator == "malloc"


def chase_curve(
    allocator: str,
    device: str,
    sizes: Optional[Sequence[int]] = None,
    init_device: str = "cpu",
    memory_gib: Optional[int] = None,
) -> List[LatencySample]:
    """Latency-vs-size curve for one allocator on one device.

    A fresh APU is built per curve (the paper similarly isolates runs on
    one APU); *init_device* selects which side first-touches the buffer.
    """
    sizes = list(sizes) if sizes is not None else list(DEFAULT_SIZES)
    max_size = max(sizes)
    if memory_gib is None:
        # Pool must comfortably exceed the buffer so scattered draws
        # retain the free-list skew (see PolicyModel calibration note).
        memory_gib = max(16, (max_size >> 30) * 4)
    apu = make_apu(memory_gib, xnack=_wants_xnack(allocator))
    allocation = _allocate(apu, allocator, max_size)
    apu.touch(allocation, init_device)

    frames = allocation.vma.resident_frames()
    uncached = allocation.vma.uncached
    samples = []
    for size in sizes:
        latency = chase_latency_ns(
            apu.config,
            device,
            size,
            ic=apu.infinity_cache,
            frames=frames,
            uncached=uncached,
        )
        samples.append(LatencySample(allocator, device, size, latency))
    return samples


def full_sweep(
    sizes: Optional[Sequence[int]] = None,
    allocators: Optional[Iterable[str]] = None,
    devices: Sequence[str] = ("cpu", "gpu"),
    memory_gib: Optional[int] = None,
) -> List[LatencySample]:
    """The complete Fig. 2 grid: allocator x device x size."""
    out: List[LatencySample] = []
    for allocator in allocators if allocators is not None else ALLOCATORS:
        for device in devices:
            out.extend(
                chase_curve(allocator, device, sizes, memory_gib=memory_gib)
            )
    return out


def format_table(samples: Sequence[LatencySample]) -> str:
    """Render samples as the rows the paper's figure plots."""
    lines = [f"{'allocator':28s} {'dev':4s} {'size':>12s} {'latency_ns':>11s}"]
    for s in samples:
        lines.append(
            f"{s.allocator:28s} {s.device:4s} {s.size_bytes:>12,} "
            f"{s.latency_ns:>11.1f}"
        )
    return "\n".join(lines)
