"""The paper's benchmarks (Table 2) as library functions.

* :mod:`~repro.bench.multichase` — memory latency (Fig. 2)
* :mod:`~repro.bench.stream` — memory bandwidth + TLB/fault counters
  (Figs. 3, 9, 10)
* :mod:`~repro.bench.hipbandwidth` — legacy transfers (Section 4.3)
* :mod:`~repro.bench.histogram` — coherence/atomics (Figs. 4-5)
* :mod:`~repro.bench.allocspeed` — allocation speed (Fig. 6)
* :mod:`~repro.bench.pagefault` — page-fault overhead (Figs. 7-8)
"""

from . import allocspeed, hipbandwidth, histogram, multichase, pagefault, stream

__all__ = [
    "allocspeed",
    "hipbandwidth",
    "histogram",
    "multichase",
    "pagefault",
    "stream",
]
