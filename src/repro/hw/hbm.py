"""HBM3 stack and channel model.

The MI300A has eight HBM3 stacks of 16 GiB each; every stack exposes 16
memory channels, for 128 channels total.  Physical pages are interleaved
among the stacks at 4 KiB granularity (paper Section 5.4), so the memory
channel serving a physical page is a pure function of its frame number.

The subsystem also models the NPS memory-partitioning modes of the
Instinct partitioning guide (SNIPPETS.md §1): in NPS1 (the default, and
the paper's testbed) the whole physical range interleaves across all
eight stacks; in NPS4 the range splits into four equal NUMA domains, one
per IOD, each interleaving only across that IOD's two stacks.  The
frame→(stack, channel) mapping stays a pure function of the frame number
in every mode.

This module provides that mapping plus per-channel traffic accounting used
by the Infinity Cache balance model.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .config import HBMGeometry, PAGE_SIZE

#: Latency of one on-the-fly ECC correction event (scrub + retry of the
#: affected burst).  HBM3 corrects single-symbol errors inline; the cost
#: is small but observable under an injected error storm.
ECC_CORRECTION_NS = 2_000.0


class UncorrectableECCError(RuntimeError):
    """A multi-symbol HBM frame error the ECC code cannot correct.

    On hardware this poisons the cacheline and RAS kills the consuming
    process; the runtime surfaces it as ``hipErrorECCNotCorrectable``.
    """


class HBMSubsystem:
    """Maps physical frames to stacks/channels and tracks traffic.

    Args:
        geometry: the HBM organisation to model.
        numa_domains: number of NPS memory partitions (1 for NPS1, 4 for
            NPS4).  Domain *d* owns the contiguous frame range
            ``[d * frames_per_domain, (d+1) * frames_per_domain)`` and
            interleaves it across the stacks ``d, d + numa_domains, ...``
            — the stacks hosted by IOD *d* in the package topology.
    """

    def __init__(self, geometry: HBMGeometry, numa_domains: int = 1) -> None:
        if geometry.interleave_bytes % PAGE_SIZE != 0:
            raise ValueError("interleave granularity must be a page multiple")
        if numa_domains < 1 or geometry.stacks % numa_domains != 0:
            raise ValueError(
                f"numa_domains must divide the {geometry.stacks} stacks, "
                f"got {numa_domains}"
            )
        total_frames = geometry.capacity_bytes // PAGE_SIZE
        if total_frames % numa_domains != 0:
            raise ValueError("domains must split the pool evenly")
        self._geometry = geometry
        self._numa_domains = numa_domains
        self._frames_per_domain = total_frames // numa_domains
        self._stacks_per_domain = geometry.stacks // numa_domains
        self._channel_bytes = np.zeros(geometry.channels, dtype=np.int64)
        # RAS counters (the `amd-smi metric --ecc` view) + fault injection.
        self.inject = None
        self.correctable_errors = 0
        self.uncorrectable_errors = 0

    @property
    def geometry(self) -> HBMGeometry:
        """The HBM organisation this subsystem models."""
        return self._geometry

    @property
    def capacity_bytes(self) -> int:
        """Total HBM capacity in bytes."""
        return self._geometry.capacity_bytes

    @property
    def numa_domains(self) -> int:
        """Number of NPS memory partitions (1 = NPS1, 4 = NPS4)."""
        return self._numa_domains

    @property
    def frames_per_domain(self) -> int:
        """Frames in each NUMA domain's contiguous physical range."""
        return self._frames_per_domain

    def domain_of_frame(self, frame: int) -> int:
        """NUMA domain owning physical frame number *frame*."""
        return frame // self._frames_per_domain

    def domain_frame_range(self, domain: int) -> Tuple[int, int]:
        """Half-open frame range ``[lo, hi)`` of one NUMA domain."""
        self._check_domain(domain)
        lo = domain * self._frames_per_domain
        return lo, lo + self._frames_per_domain

    def stacks_of_domain(self, domain: int) -> List[int]:
        """Stack indices a NUMA domain interleaves over.

        Domain *d* owns the stacks hosted by IOD *d* (stack indices
        congruent to *d* modulo the domain count); in NPS1 the single
        domain owns every stack.
        """
        self._check_domain(domain)
        return [
            s for s in range(self._geometry.stacks)
            if s % self._numa_domains == domain
        ]

    def channels_of_domain(self, domain: int) -> List[int]:
        """Memory-channel indices served by a NUMA domain's stacks."""
        lanes = self._geometry.channels_per_stack
        return [
            s * lanes + lane
            for s in self.stacks_of_domain(domain)
            for lane in range(lanes)
        ]

    def _check_domain(self, domain: int) -> None:
        if not 0 <= domain < self._numa_domains:
            raise IndexError(
                f"domain {domain} out of range [0, {self._numa_domains})"
            )

    def stack_of_frame(self, frame: int) -> int:
        """Stack index serving physical frame number *frame*.

        Frames are interleaved round-robin at the interleave granularity
        (one 4 KiB page per stack by default) across the owning domain's
        stacks — all of them in NPS1, the local IOD's two in NPS4.
        """
        pages_per_unit = self._geometry.interleave_bytes // PAGE_SIZE
        domain = frame // self._frames_per_domain
        local_unit = (frame % self._frames_per_domain) // pages_per_unit
        return domain + self._numa_domains * (local_unit % self._stacks_per_domain)

    def channel_of_frame(self, frame: int) -> int:
        """Memory channel index serving physical frame number *frame*.

        Within a stack, consecutive interleave units rotate across that
        stack's channels, so a long contiguous physical range touches every
        channel of its domain evenly — this is why up-front contiguous
        allocations achieve balanced Infinity Cache slice utilisation
        (paper Section 5.4); in NPS4 the rotation covers only the local
        domain's 32 channels.
        """
        geo = self._geometry
        pages_per_unit = geo.interleave_bytes // PAGE_SIZE
        domain = frame // self._frames_per_domain
        unit = (frame % self._frames_per_domain) // pages_per_unit
        stack = domain + self._numa_domains * (unit % self._stacks_per_domain)
        lane = (unit // self._stacks_per_domain) % geo.channels_per_stack
        return stack * geo.channels_per_stack + lane

    def channels_of_frames(self, frames: Sequence[int]) -> np.ndarray:
        """Vectorised :meth:`channel_of_frame` over an array of frames."""
        geo = self._geometry
        arr = np.asarray(frames, dtype=np.int64)
        pages_per_unit = geo.interleave_bytes // PAGE_SIZE
        domain = arr // self._frames_per_domain
        unit = (arr % self._frames_per_domain) // pages_per_unit
        stack = domain + self._numa_domains * (unit % self._stacks_per_domain)
        lane = (unit // self._stacks_per_domain) % geo.channels_per_stack
        return stack * geo.channels_per_stack + lane

    def local_fraction(self, frames: Sequence[int], domain: int) -> float:
        """Fraction of *frames* resident in *domain* (1.0 for empty sets)."""
        self._check_domain(domain)
        arr = np.asarray(frames, dtype=np.int64)
        if arr.size == 0:
            return 1.0
        return float(np.mean(arr // self._frames_per_domain == domain))

    def channel_histogram(self, frames: Sequence[int]) -> np.ndarray:
        """Bytes-per-channel histogram for a set of resident frames."""
        channels = self.channels_of_frames(frames)
        counts = np.bincount(channels, minlength=self._geometry.channels)
        return counts * PAGE_SIZE

    def record_traffic(self, frames: Iterable[int], bytes_per_frame: int) -> None:
        """Account *bytes_per_frame* of traffic to each frame's channel."""
        for frame in frames:
            self._channel_bytes[self.channel_of_frame(frame)] += bytes_per_frame

    def traffic_bytes(self) -> np.ndarray:
        """A copy of cumulative per-channel traffic counters."""
        return self._channel_bytes.copy()

    def reset_traffic(self) -> None:
        """Zero all per-channel traffic counters."""
        self._channel_bytes[:] = 0

    def ecc_check(self, nbytes: int) -> float:
        """Consult the injection plan for frame errors on one access.

        Returns the extra correction latency in ns (0 when nothing
        fired).  Correctable errors bump the RAS counter and cost
        :data:`ECC_CORRECTION_NS` each; an uncorrectable error raises
        :class:`UncorrectableECCError` after counting itself.
        """
        if self.inject is None:
            return 0.0
        fault = self.inject.fire("hbm.ecc", nbytes=nbytes)
        if fault is None:
            return 0.0
        if fault.kind == "correctable":
            count = max(1, int(fault.params.get("count", 1)))
            self.correctable_errors += count
            return count * ECC_CORRECTION_NS
        if fault.kind == "uncorrectable":
            self.uncorrectable_errors += 1
            raise UncorrectableECCError(
                f"uncorrectable HBM frame error during a {nbytes}-byte "
                "access: data poisoned"
            )
        raise ValueError(f"hbm.ecc does not understand kind {fault.kind!r}")


def channel_balance(histogram: np.ndarray) -> float:
    """Return a [0, 1] balance score for a bytes-per-channel histogram.

    1.0 means perfectly even distribution across channels; lower values
    indicate bias.  Defined as the ratio of mean to max occupancy, which is
    1 for a uniform histogram and approaches ``1/n`` when all data sits on
    one of *n* channels.  An empty histogram is perfectly balanced.
    """
    total = float(histogram.sum())
    if total == 0.0:
        return 1.0
    peak = float(histogram.max())
    mean = total / len(histogram)
    return mean / peak


def effective_slice_hit_fraction(
    histogram: np.ndarray, slice_capacity_bytes: int
) -> float:
    """Fraction of resident bytes coverable by per-channel cache slices.

    The Infinity Cache is partitioned into slices mapped to individual
    memory channels (paper Section 5.4): a slice can only cache data on its
    own channel.  Given the bytes-per-channel histogram of a buffer, the
    cacheable fraction is ``sum(min(bytes_c, slice_capacity)) / sum(bytes_c)``.
    Bias in the physical mapping overloads some slices while leaving others
    idle, reducing this fraction — the mechanism behind malloc's higher CPU
    latency near the Infinity Cache capacity (paper Fig. 2 and Section 5.4).
    """
    total = float(histogram.sum())
    if total == 0.0:
        return 1.0
    covered = np.minimum(histogram, slice_capacity_bytes).sum()
    return float(covered) / total
