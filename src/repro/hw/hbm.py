"""HBM3 stack and channel model.

The MI300A has eight HBM3 stacks of 16 GiB each; every stack exposes 16
memory channels, for 128 channels total.  Physical pages are interleaved
among the stacks at 4 KiB granularity (paper Section 5.4), so the memory
channel serving a physical page is a pure function of its frame number.

This module provides that mapping plus per-channel traffic accounting used
by the Infinity Cache balance model.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .config import HBMGeometry, PAGE_SIZE


class HBMSubsystem:
    """Maps physical frames to stacks/channels and tracks traffic."""

    def __init__(self, geometry: HBMGeometry) -> None:
        if geometry.interleave_bytes % PAGE_SIZE != 0:
            raise ValueError("interleave granularity must be a page multiple")
        self._geometry = geometry
        self._channel_bytes = np.zeros(geometry.channels, dtype=np.int64)

    @property
    def geometry(self) -> HBMGeometry:
        """The HBM organisation this subsystem models."""
        return self._geometry

    @property
    def capacity_bytes(self) -> int:
        """Total HBM capacity in bytes."""
        return self._geometry.capacity_bytes

    def stack_of_frame(self, frame: int) -> int:
        """Stack index serving physical frame number *frame*.

        Frames are interleaved round-robin across stacks at the interleave
        granularity (one 4 KiB page per stack by default).
        """
        pages_per_unit = self._geometry.interleave_bytes // PAGE_SIZE
        return (frame // pages_per_unit) % self._geometry.stacks

    def channel_of_frame(self, frame: int) -> int:
        """Memory channel index serving physical frame number *frame*.

        Within a stack, consecutive interleave units rotate across that
        stack's channels, so a long contiguous physical range touches every
        channel evenly — this is why up-front contiguous allocations achieve
        balanced Infinity Cache slice utilisation (paper Section 5.4).
        """
        geo = self._geometry
        pages_per_unit = geo.interleave_bytes // PAGE_SIZE
        unit = frame // pages_per_unit
        stack = unit % geo.stacks
        lane = (unit // geo.stacks) % geo.channels_per_stack
        return stack * geo.channels_per_stack + lane

    def channels_of_frames(self, frames: Sequence[int]) -> np.ndarray:
        """Vectorised :meth:`channel_of_frame` over an array of frames."""
        geo = self._geometry
        arr = np.asarray(frames, dtype=np.int64)
        pages_per_unit = geo.interleave_bytes // PAGE_SIZE
        unit = arr // pages_per_unit
        stack = unit % geo.stacks
        lane = (unit // geo.stacks) % geo.channels_per_stack
        return stack * geo.channels_per_stack + lane

    def channel_histogram(self, frames: Sequence[int]) -> np.ndarray:
        """Bytes-per-channel histogram for a set of resident frames."""
        channels = self.channels_of_frames(frames)
        counts = np.bincount(channels, minlength=self._geometry.channels)
        return counts * PAGE_SIZE

    def record_traffic(self, frames: Iterable[int], bytes_per_frame: int) -> None:
        """Account *bytes_per_frame* of traffic to each frame's channel."""
        for frame in frames:
            self._channel_bytes[self.channel_of_frame(frame)] += bytes_per_frame

    def traffic_bytes(self) -> np.ndarray:
        """A copy of cumulative per-channel traffic counters."""
        return self._channel_bytes.copy()

    def reset_traffic(self) -> None:
        """Zero all per-channel traffic counters."""
        self._channel_bytes[:] = 0


def channel_balance(histogram: np.ndarray) -> float:
    """Return a [0, 1] balance score for a bytes-per-channel histogram.

    1.0 means perfectly even distribution across channels; lower values
    indicate bias.  Defined as the ratio of mean to max occupancy, which is
    1 for a uniform histogram and approaches ``1/n`` when all data sits on
    one of *n* channels.  An empty histogram is perfectly balanced.
    """
    total = float(histogram.sum())
    if total == 0.0:
        return 1.0
    peak = float(histogram.max())
    mean = total / len(histogram)
    return mean / peak


def effective_slice_hit_fraction(
    histogram: np.ndarray, slice_capacity_bytes: int
) -> float:
    """Fraction of resident bytes coverable by per-channel cache slices.

    The Infinity Cache is partitioned into slices mapped to individual
    memory channels (paper Section 5.4): a slice can only cache data on its
    own channel.  Given the bytes-per-channel histogram of a buffer, the
    cacheable fraction is ``sum(min(bytes_c, slice_capacity)) / sum(bytes_c)``.
    Bias in the physical mapping overloads some slices while leaving others
    idle, reducing this fraction — the mechanism behind malloc's higher CPU
    latency near the Infinity Cache capacity (paper Fig. 2 and Section 5.4).
    """
    total = float(histogram.sum())
    if total == 0.0:
        return 1.0
    covered = np.minimum(histogram, slice_capacity_bytes).sum()
    return float(covered) / total
