"""Multi-APU node: four MI300As joined by Infinity Fabric (xGMI).

The paper's testbed has four APUs per node, bound to one APU with
``numactl`` / ``HIP_VISIBLE_DEVICES`` (Section 3); its companion study
(Schieffer et al., "Inter-APU communication on AMD MI300A systems via
Infinity Fabric", cited as [30]) characterises the links between them
and finds that **hipMalloc buffers provide the best communication
performance** — the same contiguity/pinning properties that win inside
one APU (Figs. 3 and 9) also govern the DMA path between APUs.

This module models the node level: the fully connected xGMI topology,
per-link bandwidth, allocator-dependent peer-transfer efficiency, and
the numactl-style binding the paper uses to isolate one APU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..core.allocators import Allocation, AllocatorKind
from ..partition.modes import PartitionConfig
from .config import MI300AConfig


@dataclass(frozen=True)
class NodeConfig:
    """One node of the paper's testbed (an El Capitan-class blade)."""

    apus_per_node: int = 4
    #: Peak unidirectional xGMI bandwidth between a pair of APUs.
    xgmi_link_bandwidth_bytes_per_s: float = 48e9
    #: Peer-transfer efficiency by source-buffer allocator: pinned,
    #: contiguous hipMalloc memory feeds the DMA engines at full rate;
    #: pinned host memory loses some to smaller descriptors; pageable
    #: memory bounces through the CPU fault path.
    hipmalloc_efficiency: float = 1.0
    pinned_efficiency: float = 0.75
    pageable_efficiency: float = 0.33
    #: Per-transfer setup (peer mapping + doorbell).
    transfer_setup_ns: float = 8_000.0


#: Allocator kinds treated as contiguous device memory by the peer path.
_DEVICE_KINDS = (AllocatorKind.HIP_MALLOC, AllocatorKind.STATIC_DEVICE)
_PINNED_KINDS = (
    AllocatorKind.HIP_HOST_MALLOC,
    AllocatorKind.HIP_MALLOC_MANAGED,
    AllocatorKind.MALLOC_REGISTERED,
    AllocatorKind.MANAGED_STATIC,
)


class MI300ANode:
    """Four simulated APUs and the xGMI fabric between them.

    APUs are created lazily by index; the node keeps them independent
    (each has its own clock and memory pool, as separate NUMA domains),
    and models communication *between* them with the link model.
    """

    def __init__(
        self,
        node_config: Optional[NodeConfig] = None,
        apu_memory_gib: Optional[int] = None,
        xnack: bool = False,
        seed: int = 0x1300A,
        partition: Optional[PartitionConfig] = None,
    ) -> None:
        self.config = node_config if node_config is not None else NodeConfig()
        self._apu_memory_gib = apu_memory_gib
        self._xnack = xnack
        self._seed = seed
        self._apus: Dict[int, "APU"] = {}
        self._graph = nx.complete_graph(self.config.apus_per_node)
        self._link_traffic: Dict[Tuple[int, int], int] = {}
        self._visible: Optional[List[int]] = None
        self._default_partition = partition
        self._partitions: Dict[int, PartitionConfig] = {}

    # ------------------------------------------------------------------
    # APU access / binding
    # ------------------------------------------------------------------

    def apu(self, index: int) -> "APU":
        """The APU at *index* (created on first use)."""
        self._check_index(index)
        if self._visible is not None and index not in self._visible:
            raise PermissionError(
                f"APU {index} hidden by HIP_VISIBLE_DEVICES={self._visible}"
            )
        if index not in self._apus:
            from ..runtime.apu import make_apu

            self._apus[index] = make_apu(
                self._apu_memory_gib, xnack=self._xnack,
                seed=self._seed + index,
                partition=self.partition_of(index),
            )
        return self._apus[index]

    def partition_of(self, index: int) -> Optional[PartitionConfig]:
        """The partition mode APU *index* will boot with (None = SPX/NPS1)."""
        self._check_index(index)
        return self._partitions.get(index, self._default_partition)

    def set_partition(self, index: int, partition: PartitionConfig) -> None:
        """Repartition one APU, amd-smi style.

        Like ``amd-smi set --compute-partition/--memory-partition``, the
        mode change requires the accelerator to be idle: any existing
        simulated APU state at *index* (allocations, clock, page tables)
        is discarded and the APU is rebuilt on next use.
        """
        self._check_index(index)
        self._partitions[index] = partition
        self._apus.pop(index, None)

    def bind(self, index: int) -> "APU":
        """numactl + HIP_VISIBLE_DEVICES: restrict the process to one APU.

        This is the paper's experimental methodology (Section 3) — all
        single-APU experiments run bound like this.
        """
        self._check_index(index)
        self._visible = [index]
        return self.apu(index)

    def bind_logical(self, index: int, device: int) -> Tuple["APU", object]:
        """Bind to one *logical* device of a partitioned APU.

        The partitioned analogue of :meth:`bind`: the paper pins a
        process to one APU with numactl + HIP_VISIBLE_DEVICES, and on a
        repartitioned node the same recipe pins it to one logical device
        (e.g. one CPX XCD with its NPS4 quadrant).  Returns the APU and
        the selected :class:`~repro.partition.LogicalDevice`.
        """
        apu = self.bind(index)
        return apu, apu.placement.device(device)

    def unbind(self) -> None:
        """Make all APUs visible again."""
        self._visible = None

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.config.apus_per_node:
            raise IndexError(
                f"APU index {index} out of range "
                f"[0, {self.config.apus_per_node})"
            )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """The xGMI interconnect graph (fully connected)."""
        return self._graph

    def hops(self, src: int, dst: int) -> int:
        """Fabric hops between two APUs (1 everywhere on this node)."""
        return nx.shortest_path_length(self._graph, src, dst)

    # ------------------------------------------------------------------
    # Peer transfers
    # ------------------------------------------------------------------

    def peer_bandwidth(self, allocation: Allocation) -> float:
        """Achievable inter-APU bandwidth for a source buffer.

        The finding of [30]: hipMalloc buffers communicate best; pinned
        host memory is mid-tier; pageable memory is slowest.
        """
        cfg = self.config
        link = cfg.xgmi_link_bandwidth_bytes_per_s
        if allocation.kind in _DEVICE_KINDS:
            return link * cfg.hipmalloc_efficiency
        if allocation.kind in _PINNED_KINDS and allocation.pinned:
            return link * cfg.pinned_efficiency
        return link * cfg.pageable_efficiency

    def peer_memcpy(
        self,
        dst_apu: int,
        src_apu: int,
        allocation: Allocation,
        nbytes: Optional[int] = None,
    ) -> float:
        """Copy a buffer between APUs; returns the transfer time in ns.

        Advances both endpoints' clocks (the transfer occupies both
        sides' fabric interfaces) and accounts link traffic.
        """
        self._check_index(dst_apu)
        self._check_index(src_apu)
        if dst_apu == src_apu:
            raise ValueError("peer copy requires two distinct APUs")
        if nbytes is None:
            nbytes = allocation.size_bytes
        if nbytes <= 0 or nbytes > allocation.size_bytes:
            raise ValueError(f"bad transfer size {nbytes}")
        bandwidth = self.peer_bandwidth(allocation)
        duration = self.config.transfer_setup_ns + nbytes / bandwidth * 1e9
        key = (min(src_apu, dst_apu), max(src_apu, dst_apu))
        self._link_traffic[key] = self._link_traffic.get(key, 0) + nbytes
        for index in (src_apu, dst_apu):
            if index in self._apus:
                self._apus[index].clock.advance(duration)
        return duration

    def link_traffic_bytes(self) -> Dict[Tuple[int, int], int]:
        """Cumulative bytes per link (sorted APU-index pairs)."""
        return dict(self._link_traffic)

    def all_to_all_time_ns(self, allocation_bytes: int, kind: str = "hipMalloc") -> float:
        """Model an all-to-all exchange of *allocation_bytes* per pair.

        Each APU sends to every other APU; links are independent, so the
        exchange completes in (n-1) sequential rounds of parallel pair
        transfers.  Used by the node-level bench.
        """
        cfg = self.config
        efficiency = {
            "hipMalloc": cfg.hipmalloc_efficiency,
            "hipHostMalloc": cfg.pinned_efficiency,
            "malloc": cfg.pageable_efficiency,
        }.get(kind)
        if efficiency is None:
            raise ValueError(f"unknown allocator kind {kind!r}")
        bandwidth = cfg.xgmi_link_bandwidth_bytes_per_s * efficiency
        per_round = cfg.transfer_setup_ns + allocation_bytes / bandwidth * 1e9
        return (cfg.apus_per_node - 1) * per_round
