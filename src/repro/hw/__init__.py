"""Hardware substrate for the simulated MI300A APU.

Exports the configuration dataclasses, the simulated clock, the HBM
channel-mapping model, the Infinity Cache model, the cache-hierarchy
latency model, and the chiplet topology.
"""

from .caches import CacheHierarchy, HierarchyLevel, cpu_hierarchy, gpu_hierarchy
from .clock import SimClock, Stopwatch
from .config import (
    GiB,
    KiB,
    MAX_FRAGMENT_EXPONENT,
    MI300AConfig,
    MiB,
    PAGE_SIZE,
    TiB,
    default_config,
    small_config,
)
from .hbm import HBMSubsystem, channel_balance, effective_slice_hit_fraction
from .infinity_cache import ICResidency, InfinityCache
from .topology import APUTopology, Chiplet, link_pairs

__all__ = [
    "APUTopology",
    "CacheHierarchy",
    "Chiplet",
    "GiB",
    "HBMSubsystem",
    "HierarchyLevel",
    "ICResidency",
    "InfinityCache",
    "KiB",
    "MAX_FRAGMENT_EXPONENT",
    "MI300AConfig",
    "MiB",
    "PAGE_SIZE",
    "SimClock",
    "Stopwatch",
    "TiB",
    "channel_balance",
    "cpu_hierarchy",
    "default_config",
    "effective_slice_hit_fraction",
    "gpu_hierarchy",
    "link_pairs",
    "small_config",
]
