"""Chiplet topology of the MI300A APU.

The APU is built from six accelerator complex dies (XCDs, the GPU part),
three CPU complex dies (CCDs), and four IO dies (IODs) that implement
cross-die communication and the HBM3 interface (paper Fig. 1).  Every two
XCDs or three CCDs share an IOD; the Infinity Fabric interconnects the
chiplets and routes memory requests to channels.

The topology is represented as a :mod:`networkx` graph so examples and
tests can reason about paths (e.g. XCD -> IOD -> HBM stack) and the
benchmark suite can verify structural invariants (all six XCDs presented
as one device, shared memory reachable from every chiplet).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import networkx as nx

from .config import MI300AConfig


@dataclass(frozen=True)
class Chiplet:
    """One die on the APU package."""

    kind: str  # "xcd", "ccd", or "iod"
    index: int

    @property
    def node_id(self) -> str:
        """Stable graph-node identifier, e.g. ``xcd3``."""
        return f"{self.kind}{self.index}"


class APUTopology:
    """Graph view of the MI300A chiplet interconnect."""

    def __init__(self, config: MI300AConfig) -> None:
        self._config = config
        self._graph = nx.Graph()
        self._build()

    def _build(self) -> None:
        cfg = self._config
        for i in range(cfg.iod_count):
            self._graph.add_node(f"iod{i}", kind="iod")
        for i in range(cfg.xcd_count):
            self._graph.add_node(f"xcd{i}", kind="xcd")
        for i in range(cfg.ccd_count):
            self._graph.add_node(f"ccd{i}", kind="ccd")
        for i in range(cfg.hbm.stacks):
            self._graph.add_node(f"hbm{i}", kind="hbm")

        # Every two XCDs share an IOD (6 XCDs -> IODs 0..2).
        for i in range(cfg.xcd_count):
            self._graph.add_edge(f"xcd{i}", f"iod{i // 2}", link="infinity_fabric")
        # The three CCDs share the remaining IOD.
        ccd_iod = cfg.iod_count - 1
        for i in range(cfg.ccd_count):
            self._graph.add_edge(f"ccd{i}", f"iod{ccd_iod}", link="infinity_fabric")
        # IODs are fully connected by Infinity Fabric.
        for a in range(cfg.iod_count):
            for b in range(a + 1, cfg.iod_count):
                self._graph.add_edge(f"iod{a}", f"iod{b}", link="infinity_fabric")
        # Each IOD hosts the interface to two HBM stacks.
        for stack in range(cfg.hbm.stacks):
            self._graph.add_edge(
                f"hbm{stack}", f"iod{stack % cfg.iod_count}", link="hbm_phy"
            )

    @property
    def graph(self) -> nx.Graph:
        """The underlying interconnect graph (do not mutate)."""
        return self._graph

    def chiplets(self, kind: str) -> List[Chiplet]:
        """All chiplets of *kind* ("xcd", "ccd", "iod", or "hbm")."""
        nodes = sorted(
            n for n, d in self._graph.nodes(data=True) if d["kind"] == kind
        )
        return [Chiplet(kind, int(n[len(kind):])) for n in nodes]

    def hops(self, src: str, dst: str) -> int:
        """Number of Infinity Fabric hops between two nodes."""
        return nx.shortest_path_length(self._graph, src, dst)

    def path(self, src: str, dst: str) -> List[str]:
        """A shortest path between two nodes."""
        return nx.shortest_path(self._graph, src, dst)

    # ------------------------------------------------------------------
    # Partition-aware views (repro.partition builds on these)
    # ------------------------------------------------------------------

    def iod_of_xcd(self, xcd: int) -> int:
        """IOD index hosting XCD *xcd* (every two XCDs share an IOD)."""
        if not 0 <= xcd < self._config.xcd_count:
            raise IndexError(f"XCD index {xcd} out of range")
        return xcd // 2

    def xcds_of_iod(self, iod: int) -> List[int]:
        """XCD indices hosted by IOD *iod* (empty for the CCD IOD)."""
        if not 0 <= iod < self._config.iod_count:
            raise IndexError(f"IOD index {iod} out of range")
        return [x for x in range(self._config.xcd_count) if x // 2 == iod]

    def stacks_of_iod(self, iod: int) -> List[int]:
        """HBM stack indices whose PHY lives on IOD *iod*.

        Mirrors the graph's ``hbm<s> -- iod<s % iod_count>`` edges: with
        8 stacks over 4 IODs, IOD *i* hosts stacks *i* and *i + 4*.
        These per-IOD stack pairs are the NPS4 NUMA domains.
        """
        if not 0 <= iod < self._config.iod_count:
            raise IndexError(f"IOD index {iod} out of range")
        return [
            s for s in range(self._config.hbm.stacks)
            if s % self._config.iod_count == iod
        ]

    def memory_reachable_from_all(self) -> bool:
        """True when every compute chiplet can reach every HBM stack.

        This is the structural property that makes the memory *physically
        unified*: there is no stack private to the CPU or the GPU.
        """
        compute = [c.node_id for c in self.chiplets("xcd") + self.chiplets("ccd")]
        stacks = [c.node_id for c in self.chiplets("hbm")]
        return all(
            nx.has_path(self._graph, c, s) for c in compute for s in stacks
        )

    def max_hops_to_memory(self) -> int:
        """Worst-case hop count from any compute chiplet to any stack."""
        compute = [c.node_id for c in self.chiplets("xcd") + self.chiplets("ccd")]
        stacks = [c.node_id for c in self.chiplets("hbm")]
        return max(self.hops(c, s) for c in compute for s in stacks)

    def describe(self) -> str:
        """Human-readable one-line summary of the package."""
        cfg = self._config
        return (
            f"{cfg.name}: {cfg.xcd_count} XCD ({cfg.gpu_compute_units} CUs), "
            f"{cfg.ccd_count} CCD ({cfg.cpu_cores} cores), "
            f"{cfg.iod_count} IOD, {cfg.hbm.stacks}x"
            f"{cfg.hbm.stack_capacity_bytes // (1 << 30)} GiB HBM3"
        )


def link_pairs(topology: APUTopology) -> List[Tuple[str, str]]:
    """All Infinity Fabric edges in the package, as sorted node pairs."""
    return sorted(
        (min(a, b), max(a, b))
        for a, b, d in topology.graph.edges(data=True)
        if d.get("link") == "infinity_fabric"
    )
