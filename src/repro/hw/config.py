"""Hardware configuration for the simulated MI300A APU.

Every latency, bandwidth, capacity, and policy constant used by the
simulator lives here, in one frozen dataclass, so that model code contains
no magic numbers and alternate hardware points (for ablations or future
parts) can be constructed by replacing fields.

Constants are calibrated against the measurements reported in:

    Wahlgren et al., "Dissecting CPU-GPU Unified Physical Memory on AMD
    MI300A APUs", IISWC 2025.

and, where the paper is silent, the AMD CDNA 3 whitepaper.  Each field's
docstring names the paper section/figure it was calibrated to.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

#: Base page size used by both the system and GPU page tables (bytes).
PAGE_SIZE = 4 * KiB

#: Number of bits in the PTE fragment field (paper Section 3.2: "Each PTE
#: has a 5-bit fragment field, theoretically supporting sizes from a single
#: page (4 KiB) to 2^31 pages (8 TiB)").
FRAGMENT_FIELD_BITS = 5

#: Largest encodable fragment exponent: fragment value f covers 2**f pages.
MAX_FRAGMENT_EXPONENT = (1 << FRAGMENT_FIELD_BITS) - 1


@dataclass(frozen=True)
class CacheGeometry:
    """Capacity and load-to-use latency of one cache level."""

    name: str
    capacity_bytes: int
    latency_ns: float
    line_bytes: int = 128

    def fits(self, working_set_bytes: int) -> bool:
        """Return True when *working_set_bytes* fits entirely in this level."""
        return working_set_bytes <= self.capacity_bytes


@dataclass(frozen=True)
class TLBGeometry:
    """Entry count and miss penalty of one TLB level.

    The GPU L1 TLB stores one entry per *fragment* (a contiguous aligned
    power-of-two run of pages), so its reach scales with fragment size
    (paper Section 3.2, "GPU Adaptive Fragment Size").
    """

    name: str
    entries: int
    miss_penalty_ns: float
    fragment_aware: bool = False


@dataclass(frozen=True)
class HBMGeometry:
    """HBM3 stack/channel organisation (paper Section 2.2).

    Eight 16 GiB stacks, 16 channels each; physical pages are interleaved
    among the stacks at 4 KiB granularity (paper Section 5.4, citing the
    CDNA 3 whitepaper).
    """

    stacks: int = 8
    channels_per_stack: int = 16
    stack_capacity_bytes: int = 16 * GiB
    interleave_bytes: int = PAGE_SIZE
    peak_bandwidth_bytes_per_s: float = 5.3e12

    @property
    def channels(self) -> int:
        """Total number of memory channels on the APU."""
        return self.stacks * self.channels_per_stack

    @property
    def capacity_bytes(self) -> int:
        """Total HBM capacity (128 GiB on MI300A)."""
        return self.stacks * self.stack_capacity_bytes


@dataclass(frozen=True)
class InfinityCacheGeometry:
    """Memory-side Infinity Cache (paper Section 2.2 and 5.4).

    256 MiB shared between CPU and GPU, partitioned into slices mapped to
    individual memory channels; it does not participate in coherency.
    """

    capacity_bytes: int = 256 * MiB
    peak_bandwidth_bytes_per_s: float = 17.2e12
    slices: int = 128

    @property
    def slice_capacity_bytes(self) -> int:
        """Capacity of the slice serving one memory channel."""
        return self.capacity_bytes // self.slices


@dataclass(frozen=True)
class AllocatorCostModel:
    """Cost constants for the allocation-speed model (paper Fig. 6).

    The paper measures the time of calling each allocator for sizes from
    2 B to 1 GiB.  We decompose each allocator's cost into a fixed call
    overhead, a minimum physical-allocation granularity below which cost is
    flat, and a per-page cost above it; deallocation has its own constants
    (paper Section 5.1 reports free/hipFree asymmetries).
    """

    # malloc: 14 ns at 32 B; ~6 us at 1 GiB (mmap path, no physical pages).
    malloc_base_ns: float = 14.0
    malloc_mmap_threshold_bytes: int = 128 * KiB
    malloc_mmap_base_ns: float = 1_500.0
    malloc_mmap_per_mib_ns: float = 4.4
    # free is faster than malloc until 16 MiB, then 4-9x slower (unmap walk).
    free_base_ns: float = 10.0
    free_unmap_threshold_bytes: int = 16 * MiB
    free_unmap_base_ns: float = 6_400.0
    free_unmap_per_mib_ns: float = 40.0

    # hipMalloc: 10 us flat up to 16 KiB, then scaling to 37 ms at 1 GiB.
    hip_malloc_base_ns: float = 10_000.0
    hip_malloc_min_granularity_bytes: int = 16 * KiB
    hip_malloc_per_page_ns: float = 141.0
    # hipFree: faster than hipMalloc until 2 MiB, then up to 22x slower
    # (TLB shootdown + fragment teardown).
    hip_free_base_ns: float = 6_000.0
    hip_free_threshold_bytes: int = 2 * MiB
    hip_free_per_page_ns: float = 3_100.0

    # hipHostMalloc / hipMallocManaged(no XNACK): 15-34 us up to 16 KiB,
    # scaling to 200-400 ms at 1 GiB (page-locking each page).
    pinned_base_ns: float = 15_000.0
    pinned_managed_base_ns: float = 34_000.0
    pinned_min_granularity_bytes: int = 16 * KiB
    pinned_per_page_ns: float = 800.0
    pinned_managed_per_page_ns: float = 1_500.0
    # freeing pinned memory: 220 us .. 67 ms at 1 GiB.
    pinned_free_base_ns: float = 220_000.0
    pinned_free_per_page_ns: float = 255.0

    # hipMallocManaged with XNACK: constant-time regardless of size (paper:
    # "its execution time is constant ... overhead in the HIP implementation
    # optimized for discrete GPUs").
    managed_xnack_alloc_ns: float = 25_000.0
    managed_xnack_free_ns: float = 12_000.0

    # hipHostRegister: pins pre-existing pages, similar slope to pinned.
    host_register_base_ns: float = 20_000.0
    host_register_per_page_ns: float = 900.0


@dataclass(frozen=True)
class FaultCostModel:
    """Service-time constants for the page-fault model (paper Figs. 7-8).

    Calibration points from the paper:

    * CPU single-fault latency 9 us mean, 11 us p95.
    * GPU minor fault 16 us mean / 20 us p95; major 18 us / 22 us p95.
    * Saturated throughput: 1CPU 872 K pages/s, 12CPU 3.7 M pages/s,
      GPU Major 1.1 M pages/s, GPU Minor up to 9.0 M pages/s.
    """

    cpu_single_latency_ns: float = 9_000.0
    cpu_latency_sigma: float = 0.11  # lognormal shape -> ~11 us p95
    gpu_minor_single_latency_ns: float = 16_000.0
    gpu_major_single_latency_ns: float = 18_000.0
    gpu_latency_sigma: float = 0.13  # -> ~20/22 us p95

    # Batched (amortised) per-page service times at saturation.
    cpu_batched_page_ns: float = 1_147.0  # 1 core -> 872 K pages/s
    cpu_core_scaling: float = 0.354  # 12 cores -> 3.7 M pages/s (4.24x)
    gpu_major_batched_page_ns: float = 909.0  # -> 1.1 M pages/s
    gpu_minor_batched_page_ns: float = 111.0  # -> 9.0 M pages/s

    # Number of concurrent pages at which each curve reaches its plateau.
    cpu_saturation_pages: int = 1_000
    cpu12_saturation_pages: int = 10_000
    gpu_major_saturation_pages: int = 10_000
    gpu_minor_saturation_pages: int = 10_000_000


@dataclass(frozen=True)
class AtomicsCostModel:
    """Constants for the atomics contention model (paper Figs. 4-5).

    The CPU implements integer atomics with ``lock incq`` and FP64 atomics
    with a CAS loop (``lock cmpxchgq``); the GPU has native atomic-add
    units in the shared L2 for both types (paper Section 4.4).
    """

    # Un-contended per-update cost for a single CPU thread, by residency.
    cpu_l1_update_ns: float = 6.5
    cpu_l2_update_ns: float = 9.0
    cpu_mem_update_ns: float = 100.0
    # Cache-line ping-pong penalty when another core owns the line
    # (exclusive-ownership transfer across CCDs via the IOD).
    cpu_pingpong_ns: float = 300.0
    # Extra CAS-loop iteration cost on collision (FP64 only).
    cpu_cas_retry_ns: float = 55.0
    # FP64 un-contended overhead multiplier (load + cmpxchg vs single incq).
    cpu_fp64_overhead: float = 3.0

    # GPU: atomic units live in L2; per-update service time per L2 bank.
    gpu_l2_update_ns: float = 2.0
    gpu_mem_update_ns: float = 9.0
    gpu_l2_banks: int = 64
    gpu_serialization_ns: float = 14.0  # same-address serialisation cost
    gpu_threads_per_cu: int = 64
    # Hybrid interference: probability-weighted cross-device line transfers.
    hybrid_transfer_ns: float = 450.0
    # Small shared-footprint co-run bonus (paper: 1M UINT64 sees ~1.01-1.14x).
    hybrid_warm_cache_bonus: float = 0.14


@dataclass(frozen=True)
class BandwidthModel:
    """Constants composing achievable STREAM bandwidth (paper Fig. 3).

    Calibration points:

    * GPU TRIAD: hipMalloc 3.5-3.6 TB/s; pinned allocators 2.1-2.2 TB/s;
      on-demand allocators 1.8-1.9 TB/s; ``__managed__`` statics 103 GB/s.
    * CPU TRIAD: 208 GB/s (case A) vs ~180 GB/s (case B).
    * hipMemcpy: 58 GB/s (SDMA), 850 GB/s (SDMA disabled), 1.9 TB/s D2D.
    """

    gpu_peak_stream_bytes_per_s: float = 3.6e12
    # Penalty multipliers relative to the hipMalloc large-fragment path.
    gpu_small_fragment_factor: float = 0.60  # 4-16 KiB fragments -> 2.1 TB/s
    gpu_on_demand_factor: float = 0.52  # + fault-path mapping -> 1.87 TB/s
    gpu_managed_static_bytes_per_s: float = 103e9  # uncached carve-out

    cpu_peak_stream_bytes_per_s: float = 208e9  # case A
    cpu_biased_stream_bytes_per_s: float = 181e9  # case B (IC imbalance)
    cpu_case_a_best_threads: int = 24
    cpu_case_b_best_threads: int = 9
    cpu_case_b_allcore_bytes_per_s: float = 174e9
    # Single-thread STREAM rate, identical in both cases (the cases only
    # diverge in how they saturate): 9 threads x 20.1 GB/s = the case-B
    # peak, after which case A keeps climbing slowly to 208 GB/s at 24.
    cpu_single_thread_bytes_per_s: float = 20.1e9
    # CPU access to the nominally uncacheable __managed__ aperture is
    # capped (write-combined streaming, no cache reuse).
    cpu_uncached_bytes_per_s: float = 20.0e9

    memcpy_sdma_bytes_per_s: float = 58e9
    memcpy_no_sdma_bytes_per_s: float = 850e9
    memcpy_d2d_bytes_per_s: float = 1_900e9


@dataclass(frozen=True)
class PolicyModel:
    """System-software policy knobs (paper Sections 5.3-5.4).

    These encode *policies* whose consequences the paper observes through
    counters, rather than raw costs:

    * the driver's opportunistic fragment scan yields large fragments for
      contiguous up-front allocations and small ones for on-demand pages;
    * up-front allocators fault into the CPU page table at a large
      granularity (3.7-4.6 K faults for 3x610 MiB arrays vs 472 K for
      malloc, Fig. 10);
    * the physical allocator's free-list bias degrades Infinity Cache
      slice balance for scattered on-demand allocations (Section 5.4).
    """

    # Typical contiguity (bytes) achieved by the kernel buddy allocator for
    # scattered on-demand faults after steady-state fragmentation.
    on_demand_contiguity_bytes: int = PAGE_SIZE
    # Fraction of on-demand faults served from an aligned free buddy pair
    # (order-1 block).  Calibrated so the STREAM TRIAD GPU TLB miss count
    # for on-demand memory lands in the paper's 1.0-1.2 M band (Fig. 9).
    on_demand_pair_fraction: float = 0.88
    # Contiguity achieved by up-front GPU allocations (drives Fig. 9's
    # 158 K vs 1.0-1.2 M TLB miss split: 64 KiB fragments cut misses ~7x...
    # calibrated so STREAM sees ~16x fewer misses with hipMalloc).
    up_front_contiguity_bytes: int = 64 * KiB
    # CPU first-touch mapping granularity for up-front allocations
    # (fault-around): 512 KiB when CPU-initialised, 256 KiB after GPU init.
    up_front_cpu_fault_granularity_bytes: int = 512 * KiB
    up_front_cpu_fault_granularity_gpu_init_bytes: int = 256 * KiB
    # Lognormal skew of the free list across channels seen by scattered
    # allocations; 0 = perfectly balanced.  Calibrated (with a >= 16 GiB
    # pool) so CPU pointer-chase latency on malloc'd memory reaches
    # ~230 ns at 512 MiB (Fig. 2) while HIP allocators stay balanced.
    free_list_channel_skew: float = 1.1
    # Eager GPU maps (Bertolli et al. [11], cited in Section 7): when
    # enabled, CPU first-touch immediately propagates PTEs into the GPU
    # page table, trading extra CPU-fault time for zero GPU minor faults
    # later.  Off by default, as on the paper's testbed.
    eager_gpu_maps: bool = False
    # Per-page cost of the eager propagation during the CPU fault.
    eager_map_page_ns: float = 150.0


@dataclass(frozen=True)
class PartitionCostModel:
    """Constants for the compute/memory partitioning model.

    Calibrated against AMD's Instinct partitioning guide (see
    SNIPPETS.md §1): NPS4 localisation buys 5-10% stream bandwidth in
    partition-local streaming, remote (cross-domain) accesses pay an
    extra IOD-to-IOD Infinity Fabric hop, and CPX mode shaves a little
    off kernel-launch overhead because each launch targets one XCD.
    """

    #: Fractional STREAM bandwidth gain for partition-local accesses in
    #: NPS4 (the guide's headline: "5-10% higher bandwidths in stream
    #: benchmarks" from localisation; no inter-IOD traffic).
    nps4_local_bandwidth_uplift: float = 0.07
    #: Bandwidth factor for cross-domain accesses in NPS4: the data is
    #: interleaved over only 2 remote stacks and every request crosses
    #: the IOD-to-IOD fabric, so remote streams run well below local.
    nps4_remote_bandwidth_factor: float = 0.55
    #: Extra load-to-use latency (ns) for a cross-domain access in NPS4
    #: (one additional IOD-to-IOD Infinity Fabric hop).
    nps4_remote_latency_extra_ns: float = 105.0
    #: Kernel-launch overhead factor in CPX mode (the guide notes
    #: "additional small savings for kernel launch in CPX mode").
    cpx_launch_overhead_factor: float = 0.9


@dataclass(frozen=True)
class MI300AConfig:
    """Full configuration of one simulated MI300A APU.

    The defaults describe the paper's testbed: 228 GPU compute units,
    24 CPU cores, 128 GiB HBM3 at 5.3 TB/s, 256 MiB Infinity Cache.
    """

    name: str = "MI300A"
    xcd_count: int = 6
    ccd_count: int = 3
    iod_count: int = 4
    gpu_compute_units: int = 228
    cpu_cores: int = 24

    hbm: HBMGeometry = field(default_factory=HBMGeometry)
    infinity_cache: InfinityCacheGeometry = field(
        default_factory=InfinityCacheGeometry
    )

    # Cache hierarchy; latencies calibrated to Fig. 2 of the paper.
    gpu_l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry("gpu_l1", 32 * KiB, 57.0)
    )
    gpu_l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry("gpu_l2", 4 * MiB, 104.0)
    )
    cpu_l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry("cpu_l1", 32 * KiB, 1.0, 64)
    )
    cpu_l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry("cpu_l2", 1 * MiB, 3.2, 64)
    )
    cpu_l3: CacheGeometry = field(
        default_factory=lambda: CacheGeometry("cpu_l3", 96 * MiB, 13.0, 64)
    )
    # Memory-side latencies seen past the last private level (Fig. 2).
    gpu_ic_latency_ns: float = 212.0
    gpu_hbm_latency_ns: float = 342.0
    cpu_ic_latency_ns: float = 150.0
    # Raw CPU->HBM load-to-use; set so the capacity-weighted 4 GiB chase
    # (which still gets small L3/IC contributions) lands on the paper's
    # measured 236-241 ns plateau.
    cpu_hbm_latency_ns: float = 250.0

    gpu_l1_tlb: TLBGeometry = field(
        default_factory=lambda: TLBGeometry(
            "gpu_l1_tlb", 32, 450.0, fragment_aware=True
        )
    )
    gpu_l2_tlb: TLBGeometry = field(
        default_factory=lambda: TLBGeometry("gpu_l2_tlb", 512, 900.0)
    )
    cpu_tlb: TLBGeometry = field(
        default_factory=lambda: TLBGeometry("cpu_tlb", 1536, 35.0)
    )

    allocator_costs: AllocatorCostModel = field(default_factory=AllocatorCostModel)
    fault_costs: FaultCostModel = field(default_factory=FaultCostModel)
    atomics: AtomicsCostModel = field(default_factory=AtomicsCostModel)
    bandwidth: BandwidthModel = field(default_factory=BandwidthModel)
    policy: PolicyModel = field(default_factory=PolicyModel)
    partition_costs: PartitionCostModel = field(default_factory=PartitionCostModel)

    def replace(self, **changes: object) -> "MI300AConfig":
        """Return a copy of this config with *changes* applied."""
        return dataclasses.replace(self, **changes)

    @property
    def memory_capacity_bytes(self) -> int:
        """Total unified physical memory on the APU."""
        return self.hbm.capacity_bytes

    @property
    def total_pages(self) -> int:
        """Number of base (4 KiB) pages in physical memory."""
        return self.memory_capacity_bytes // PAGE_SIZE


def default_config() -> MI300AConfig:
    """Return the paper-calibrated MI300A configuration."""
    return MI300AConfig()


def small_config(memory_bytes: int = 2 * GiB) -> MI300AConfig:
    """Return a down-scaled config for fast tests.

    The topology and policies are identical to :func:`default_config`;
    only the HBM capacity is reduced so the physical allocator's frame
    bookkeeping stays small.
    """
    per_stack = memory_bytes // 8
    return MI300AConfig(hbm=HBMGeometry(stack_capacity_bytes=per_stack))
