"""Infinity Cache model.

The Infinity Cache is a 256 MiB memory-side cache shared between the CPU
and GPU, new in CDNA 3.  It is partitioned into slices mapped to individual
memory channels and does not participate in coherency (paper Section 2.2).

Because it is memory-side, its effectiveness for a given buffer depends on
how the buffer's *physical* pages are distributed across memory channels:
each slice can only hold data homed on its channel.  This module turns a
physical frame set into a hit-fraction estimate used by the latency and
bandwidth models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .config import InfinityCacheGeometry
from .hbm import HBMSubsystem, channel_balance, effective_slice_hit_fraction


@dataclass(frozen=True)
class ICResidency:
    """How well a buffer's working set maps onto the Infinity Cache.

    Attributes:
        working_set_bytes: bytes of the buffer under consideration.
        capacity_fraction: working set / IC capacity (can exceed 1).
        balance: [0, 1] channel-balance score of the physical mapping.
        hit_fraction: expected fraction of memory-side accesses served
            from the IC once warmed.
    """

    working_set_bytes: int
    capacity_fraction: float
    balance: float
    hit_fraction: float


class InfinityCache:
    """Slice-partitioned memory-side cache."""

    def __init__(self, geometry: InfinityCacheGeometry, hbm: HBMSubsystem) -> None:
        if geometry.slices != hbm.geometry.channels:
            raise ValueError(
                "Infinity Cache slices must match HBM channel count "
                f"({geometry.slices} != {hbm.geometry.channels})"
            )
        self._geometry = geometry
        self._hbm = hbm

    @property
    def geometry(self) -> InfinityCacheGeometry:
        """The cache organisation this model uses."""
        return self._geometry

    @property
    def capacity_bytes(self) -> int:
        """Total Infinity Cache capacity."""
        return self._geometry.capacity_bytes

    def residency(
        self,
        frames: Sequence[int],
        visible_channels: Optional[Sequence[int]] = None,
    ) -> ICResidency:
        """Estimate steady-state IC behaviour for a buffer's frame set.

        For a buffer streamed repeatedly (the paper's pointer-chase and
        STREAM patterns), the achievable hit fraction is bounded by how
        much of each channel's share of the buffer fits in that channel's
        slice.  A perfectly interleaved buffer no larger than the IC gets
        hit_fraction 1.0; a biased mapping saturates the hot slices first.

        *visible_channels* restricts the usable slices to a subset — the
        partition-aware view: a logical device in a partitioned mode can
        only warm the slices of the channels its traffic reaches, so bytes
        homed on other channels are uncacheable from its perspective.
        """
        frames = np.asarray(frames, dtype=np.int64)
        working_set = int(frames.size) * 4096
        if frames.size == 0:
            return ICResidency(0, 0.0, 1.0, 1.0)
        histogram = self._hbm.channel_histogram(frames)
        balance = channel_balance(histogram)
        if visible_channels is None:
            hit_fraction = effective_slice_hit_fraction(
                histogram, self._geometry.slice_capacity_bytes
            )
        else:
            visible = np.zeros(len(histogram), dtype=bool)
            visible[np.asarray(visible_channels, dtype=np.int64)] = True
            covered = np.minimum(
                histogram[visible], self._geometry.slice_capacity_bytes
            ).sum()
            hit_fraction = float(covered) / float(histogram.sum())
        capacity_fraction = working_set / self._geometry.capacity_bytes
        return ICResidency(working_set, capacity_fraction, balance, hit_fraction)

    def hit_fraction(
        self,
        frames: Sequence[int],
        visible_channels: Optional[Sequence[int]] = None,
    ) -> float:
        """Shorthand for ``residency(frames).hit_fraction``."""
        return self.residency(frames, visible_channels).hit_fraction

    def slice_subset_capacity_bytes(self, channels: Sequence[int]) -> int:
        """Aggregate capacity of the slices serving a channel subset."""
        return len(set(int(c) for c in channels)) * self._geometry.slice_capacity_bytes
