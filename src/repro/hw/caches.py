"""CPU and GPU cache-hierarchy capacity/latency model.

The paper's latency study (Fig. 2) walks a pointer chain over buffers from
1 KiB to 4 GiB and reads off plateaus at each cache level.  For a random
pointer chase the level that serves an access is essentially determined by
whether the working set fits in that level, with smooth transitions as the
working set straddles a capacity boundary.  This module models exactly
that: a stack of levels, each with a capacity and a load-to-use latency,
plus a capacity-weighted blending rule at the boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .config import CacheGeometry, MI300AConfig


@dataclass(frozen=True)
class HierarchyLevel:
    """One level of the lookup hierarchy as seen by the latency model.

    ``capacity_bytes`` of None marks the terminal level (main memory),
    which serves everything that misses all finite levels.
    """

    name: str
    capacity_bytes: int | None
    latency_ns: float


class CacheHierarchy:
    """A stack of cache levels terminated by main memory."""

    def __init__(self, levels: Sequence[HierarchyLevel]) -> None:
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        if levels[-1].capacity_bytes is not None:
            raise ValueError("last level must be terminal (capacity None)")
        finite = [lv.capacity_bytes for lv in levels[:-1]]
        if any(c is None for c in finite):
            raise ValueError("only the last level may be terminal")
        if any(
            finite[i] >= finite[i + 1]  # type: ignore[operator]
            for i in range(len(finite) - 1)
        ):
            raise ValueError("finite level capacities must strictly increase")
        self._levels = list(levels)

    @property
    def levels(self) -> List[HierarchyLevel]:
        """The hierarchy levels, innermost first."""
        return list(self._levels)

    def serving_level(self, working_set_bytes: int) -> HierarchyLevel:
        """The innermost level whose capacity covers the working set."""
        for level in self._levels:
            if level.capacity_bytes is None:
                return level
            if working_set_bytes <= level.capacity_bytes:
                return level
        return self._levels[-1]

    def hit_fractions(self, working_set_bytes: int) -> List[Tuple[str, float]]:
        """Fraction of uniform-random accesses served by each level.

        For a working set W and level capacities c1 < c2 < ..., a uniform
        random chase keeps the hottest ``c_i`` bytes at level i (ideal LRU
        behaviour), so level i serves ``min(W, c_i) - min(W, c_{i-1})``
        bytes' worth of accesses out of W.
        """
        if working_set_bytes <= 0:
            raise ValueError("working set must be positive")
        fractions: List[Tuple[str, float]] = []
        covered = 0
        for level in self._levels:
            if level.capacity_bytes is None:
                served = working_set_bytes - covered
            else:
                reach = min(working_set_bytes, level.capacity_bytes)
                served = max(0, reach - covered)
                covered = max(covered, reach)
            fractions.append((level.name, served / working_set_bytes))
        return fractions

    def average_latency_ns(self, working_set_bytes: int) -> float:
        """Capacity-weighted average access latency for a random chase."""
        total = 0.0
        for (name, fraction), level in zip(
            self.hit_fractions(working_set_bytes), self._levels
        ):
            total += fraction * level.latency_ns
        return total


def gpu_hierarchy(
    config: MI300AConfig, ic_hit_fraction: float = 1.0
) -> CacheHierarchy:
    """Build the GPU-side hierarchy: L1, L2, Infinity Cache, HBM.

    *ic_hit_fraction* scales the usable Infinity Cache capacity to reflect
    channel-balance effects (1.0 = perfectly balanced physical mapping).
    The GPU has no L3; between L2 (4 MiB) and the IC (256 MiB) the paper
    observes the 205-218 ns IC plateau.
    """
    ic_capacity = int(config.infinity_cache.capacity_bytes * ic_hit_fraction)
    levels = [
        _level(config.gpu_l1),
        _level(config.gpu_l2),
        HierarchyLevel("infinity_cache", max(ic_capacity, 1), config.gpu_ic_latency_ns),
        HierarchyLevel("hbm", None, config.gpu_hbm_latency_ns),
    ]
    return CacheHierarchy(levels)


def cpu_hierarchy(
    config: MI300AConfig, ic_hit_fraction: float = 1.0
) -> CacheHierarchy:
    """Build the CPU-side hierarchy: L1, L2, L3, Infinity Cache, HBM.

    The CPU L3 is 96 MiB; past it, accesses may still hit the memory-side
    Infinity Cache.  The usable IC capacity is scaled by
    *ic_hit_fraction*: a malloc'd buffer with biased channel mapping sees
    a smaller effective IC and therefore reaches the 240 ns HBM plateau
    earlier than hipMalloc'd memory (paper Fig. 2 and Section 5.4).
    """
    ic_capacity = int(config.infinity_cache.capacity_bytes * ic_hit_fraction)
    ic_capacity = max(ic_capacity, config.cpu_l3.capacity_bytes + 1)
    levels = [
        _level(config.cpu_l1),
        _level(config.cpu_l2),
        _level(config.cpu_l3),
        HierarchyLevel("infinity_cache", ic_capacity, config.cpu_ic_latency_ns),
        HierarchyLevel("hbm", None, config.cpu_hbm_latency_ns),
    ]
    return CacheHierarchy(levels)


def _level(geometry: CacheGeometry) -> HierarchyLevel:
    return HierarchyLevel(geometry.name, geometry.capacity_bytes, geometry.latency_ns)
