"""Simulated time base for the APU model.

All runtime components advance a shared :class:`SimClock`.  Time is kept in
nanoseconds as a float; helper constructors convert from common units.  The
clock also supports *regions* — named spans used by benchmarks to attribute
elapsed simulated time to phases (e.g. "compute" vs "io"), mirroring the
paper's use of inserted timers around the main compute phase.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple


class SimClock:
    """A monotonically advancing simulated clock with named regions."""

    def __init__(self) -> None:
        self._now_ns: float = 0.0
        self._regions: Dict[str, float] = {}
        self._stack: List[Tuple[str, float]] = []

    @property
    def now_ns(self) -> float:
        """Current simulated time in nanoseconds since clock creation."""
        return self._now_ns

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_ns / 1e9

    def advance(self, delta_ns: float) -> float:
        """Advance simulated time by *delta_ns* (must be >= 0).

        Returns the new time.  A negative delta indicates a model bug and
        raises ``ValueError`` rather than silently rewinding time.
        """
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by negative {delta_ns} ns")
        self._now_ns += delta_ns
        return self._now_ns

    def advance_to(self, when_ns: float) -> float:
        """Advance to absolute time *when_ns* if it is in the future."""
        if when_ns > self._now_ns:
            self._now_ns = when_ns
        return self._now_ns

    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        """Attribute simulated time spent in this block to region *name*.

        Regions may nest; nested time is attributed to every enclosing
        region (like wall-clock timers placed around nested phases).
        """
        start = self._now_ns
        self._stack.append((name, start))
        try:
            yield
        finally:
            self._stack.pop()
            elapsed = self._now_ns - start
            self._regions[name] = self._regions.get(name, 0.0) + elapsed

    def region_ns(self, name: str) -> float:
        """Total simulated nanoseconds attributed to region *name*."""
        return self._regions.get(name, 0.0)

    def regions(self) -> Dict[str, float]:
        """A copy of all region totals (ns), keyed by region name."""
        return dict(self._regions)

    def reset(self) -> None:
        """Reset time to zero and clear all regions.

        Only valid outside any open region.
        """
        if self._stack:
            raise RuntimeError("cannot reset clock inside an open region")
        self._now_ns = 0.0
        self._regions.clear()

    def __repr__(self) -> str:
        return f"SimClock(now={self._now_ns:.1f} ns)"


class Stopwatch:
    """Convenience timer over a :class:`SimClock`.

    Mirrors the CPU timers the paper inserts around benchmark loops::

        sw = Stopwatch(clock)
        sw.start()
        ...  # simulated work
        elapsed = sw.stop_ns()
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start_ns: float | None = None

    def start(self) -> None:
        """Record the current simulated time as the start point."""
        self._start_ns = self._clock.now_ns

    def stop_ns(self) -> float:
        """Return nanoseconds since :meth:`start` and clear the start point."""
        if self._start_ns is None:
            raise RuntimeError("Stopwatch.stop_ns() called before start()")
        elapsed = self._clock.now_ns - self._start_ns
        self._start_ns = None
        return elapsed

    def peek_ns(self) -> float:
        """Return nanoseconds since :meth:`start` without clearing it."""
        if self._start_ns is None:
            raise RuntimeError("Stopwatch.peek_ns() called before start()")
        return self._clock.now_ns - self._start_ns
