"""Page and page-table-entry primitives.

The MI300A keeps two page tables: the system (CPU) page table and the GPU
page table (paper Section 2.3).  Both map virtual page numbers to physical
frame numbers; GPU PTEs additionally carry a 5-bit *fragment* field used to
extend TLB reach (paper Section 3.2).

For memory efficiency the page tables themselves store PTE data in numpy
arrays (see :mod:`repro.core.page_table`); this module defines the scalar
view of one entry plus flag constants shared by both tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.config import MAX_FRAGMENT_EXPONENT, PAGE_SIZE

# PTE flag bits (shared by the system and GPU page tables).
PTE_VALID = 1 << 0  # entry maps a physical frame
PTE_WRITABLE = 1 << 1
PTE_PINNED = 1 << 2  # page-locked (hipHostMalloc / hipHostRegister)
PTE_GPU_MAPPED = 1 << 3  # mirrored into the GPU page table
PTE_UNCACHED = 1 << 4  # nominally uncacheable (managed statics)

#: Sentinel frame number for a not-present entry.
NO_FRAME = -1


def page_number(address: int) -> int:
    """Virtual (or physical) page number containing byte *address*."""
    if address < 0:
        raise ValueError(f"negative address {address:#x}")
    return address // PAGE_SIZE


def page_offset(address: int) -> int:
    """Byte offset of *address* within its page."""
    return address % PAGE_SIZE


def pages_spanned(address: int, size: int) -> int:
    """Number of pages touched by a byte range of *size* at *address*."""
    if size <= 0:
        raise ValueError(f"range size must be positive, got {size}")
    first = page_number(address)
    last = page_number(address + size - 1)
    return last - first + 1


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to the next multiple of *alignment*."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


def align_down(value: int, alignment: int) -> int:
    """Round *value* down to the previous multiple of *alignment*."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)


@dataclass(frozen=True)
class PTE:
    """Scalar view of one page-table entry.

    Attributes:
        frame: physical frame number, or :data:`NO_FRAME` when not present.
        flags: bitwise OR of the ``PTE_*`` constants.
        fragment: fragment-field exponent — this PTE belongs to an aligned
            contiguous run of ``2**fragment`` pages with identical flags.
            Only meaningful in the GPU page table; 0 in the system table.
    """

    frame: int = NO_FRAME
    flags: int = 0
    fragment: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.fragment <= MAX_FRAGMENT_EXPONENT:
            raise ValueError(
                f"fragment exponent {self.fragment} outside "
                f"[0, {MAX_FRAGMENT_EXPONENT}]"
            )

    @property
    def valid(self) -> bool:
        """True when this entry maps a physical frame."""
        return bool(self.flags & PTE_VALID) and self.frame != NO_FRAME

    @property
    def pinned(self) -> bool:
        """True when the mapped page is page-locked."""
        return bool(self.flags & PTE_PINNED)

    @property
    def gpu_mapped(self) -> bool:
        """True when the entry has been mirrored into the GPU table."""
        return bool(self.flags & PTE_GPU_MAPPED)

    @property
    def uncached(self) -> bool:
        """True for nominally uncacheable memory (managed statics)."""
        return bool(self.flags & PTE_UNCACHED)

    @property
    def fragment_pages(self) -> int:
        """Number of pages covered by this entry's fragment."""
        return 1 << self.fragment

    @property
    def fragment_bytes(self) -> int:
        """Bytes covered by this entry's fragment."""
        return self.fragment_pages * PAGE_SIZE
