"""TLB models: CPU TLB and fragment-aware GPU TLB.

The GPU L1 TLB can store a single entry for a whole *fragment* (an aligned
power-of-two run of pages), so the reach of its limited entry count
depends directly on the fragment exponents in the GPU page table (paper
Section 3.2).  The CPU TLB holds conventional per-page entries (memory
fragments are not used in the CPU page table, paper Section 5.4).

Two interfaces are provided:

* :class:`TLB` — an exact LRU simulation, used by unit/property tests and
  small kernels.
* :func:`streaming_tlb_misses` — a closed-form fast path for long
  sequential streams (the STREAM TRIAD access pattern), which the kernel
  engine uses to produce the Fig. 9 counter values without walking tens of
  millions of pages.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..hw.config import TLBGeometry


@dataclass
class TLBStats:
    """Hit/miss counters of one TLB instance."""

    hits: int = 0
    misses: int = 0
    #: Hits served while an injected shootdown was pending: the entry
    #: should already have been invalidated (stale-translation window).
    stale_hits: int = 0

    @property
    def accesses(self) -> int:
        """Total translations requested."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses / accesses (0 when idle)."""
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses


class TLB:
    """LRU translation cache, optionally fragment-aware."""

    def __init__(self, geometry: TLBGeometry) -> None:
        if geometry.entries <= 0:
            raise ValueError("TLB needs at least one entry")
        self._geometry = geometry
        self._entries: "OrderedDict[int, None]" = OrderedDict()
        self.stats = TLBStats()
        self.inject = None  # InjectionPlan for delayed-shootdown faults
        self._deferred_flush: "int | None" = None  # accesses until it lands

    @property
    def geometry(self) -> TLBGeometry:
        """Entry count / penalty configuration."""
        return self._geometry

    def _tag(self, vpn: int, fragment_exponent: int) -> int:
        if self._geometry.fragment_aware and fragment_exponent > 0:
            # One entry covers the whole aligned fragment block.  Tags are
            # disambiguated by folding the exponent in, since blocks of
            # different sizes must not alias.
            return ((vpn >> fragment_exponent) << 6) | fragment_exponent
        return (vpn << 6) | 0

    def access(self, vpn: int, fragment_exponent: int = 0) -> bool:
        """Translate one page access; returns True on hit."""
        deferred = self._deferred_flush is not None
        tag = self._tag(vpn, fragment_exponent)
        if tag in self._entries:
            self._entries.move_to_end(tag)
            self.stats.hits += 1
            if deferred:
                # Served from an entry a pending shootdown should have
                # invalidated: a stale translation.
                self.stats.stale_hits += 1
            hit = True
        else:
            self.stats.misses += 1
            self._entries[tag] = None
            if len(self._entries) > self._geometry.entries:
                self._entries.popitem(last=False)
            hit = False
        if deferred:
            self._deferred_flush -= 1
            if self._deferred_flush <= 0:
                self._entries.clear()
                self._deferred_flush = None
        return hit

    def flush(self) -> None:
        """Invalidate all entries (TLB shootdown).

        An attached injection plan can delay the invalidation by N
        accesses (``tlb.shootdown``/``delay``): until it lands, lookups
        keep hitting the stale entries (counted in
        :attr:`TLBStats.stale_hits`).  A second flush while one is
        pending lands immediately, as a real IOMMU invalidation-queue
        drain would.
        """
        if self._deferred_flush is not None:
            # Back-to-back shootdowns drain the queue: flush now.
            self._entries.clear()
            self._deferred_flush = None
            return
        if self.inject is not None:
            fault = self.inject.fire(
                "tlb.shootdown", entries=len(self._entries)
            )
            if fault is not None and fault.kind == "delay":
                self._deferred_flush = max(
                    1, int(fault.params.get("delay_accesses", 8))
                )
                return
        self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters, keeping entries resident."""
        self.stats = TLBStats()

    @property
    def occupancy(self) -> int:
        """Number of live entries."""
        return len(self._entries)

    def reach_bytes(self, typical_fragment_exponent: int = 0) -> int:
        """Address-space reach given a typical fragment exponent."""
        pages_per_entry = (
            1 << typical_fragment_exponent if self._geometry.fragment_aware else 1
        )
        return self._geometry.entries * pages_per_entry * 4096


def streaming_tlb_misses(
    fragment_exponents: np.ndarray,
    passes: int,
    tlb_entries: int,
    fragment_aware: bool = True,
) -> int:
    """TLB misses for *passes* sequential sweeps over a mapped range.

    For a sequential stream, every entry to a new translation unit (a
    fragment for a fragment-aware TLB, a page otherwise) is a compulsory
    miss on the first pass.  On subsequent passes the stream either fits
    in the TLB (all hits) or thrashes the LRU completely (every unit
    misses again) — the classic cyclic-access LRU cliff.

    This closed form is what the GPU profiler counter converges to in the
    TRIAD kernel (paper Fig. 9): allocators yielding ~page-sized fragments
    pay ~one miss per page per pass, hipMalloc's large fragments cut the
    unit count by the fragment size.
    """
    if passes <= 0:
        raise ValueError(f"passes must be positive, got {passes}")
    exps = np.asarray(fragment_exponents, dtype=np.int64)
    if exps.size == 0:
        return 0
    if fragment_aware:
        units = float((1.0 / np.power(2.0, exps)).sum())
    else:
        units = float(exps.size)
    units_int = int(round(units))
    if units_int <= tlb_entries:
        return units_int  # compulsory misses only; later passes hit
    return units_int * passes
