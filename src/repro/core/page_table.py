"""System and GPU page tables, synchronised through an HMM mirror.

The MI300A manages address translation with two page tables: the system
page table on the CPU and a separate GPU page table.  The GPU can only
access its own table, so PTEs must be propagated from the system table to
the GPU table before the GPU can touch a page; Linux's heterogeneous
memory management (HMM) subsystem keeps the two copies in sync (paper
Section 2.3).

The authoritative per-page state lives in each :class:`~.address_space.VMA`
(numpy arrays); the classes here provide the table-level operations and
bookkeeping counters the experiments observe:

* :class:`SystemPageTable` — CPU-side mapping, minor/major fault targets.
* :class:`GPUPageTable` — GPU-side mirror with fragment computation on map
  (the amdgpu opportunistic fragment scan, paper Section 3.2).
* :class:`HMMMirror` — propagation and invalidation between the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .address_space import VMA
from .fragments import compute_fragments
from .page import NO_FRAME


@dataclass
class PageTableStats:
    """Counters exposed for profiling and tests."""

    mapped_pages: int = 0
    unmapped_pages: int = 0
    propagated_ptes: int = 0
    invalidated_ptes: int = 0
    fragment_scans: int = 0


class SystemPageTable:
    """The CPU-side (authoritative) page table."""

    def __init__(self) -> None:
        self.stats = PageTableStats()

    def map_range(
        self, vma: VMA, first_page: int, frames: np.ndarray
    ) -> None:
        """Install *frames* for ``vma`` pages starting at *first_page*.

        All target pages must currently be unmapped in the system table;
        mapping an already-present page indicates a model bug (real kernels
        would be corrupting a PTE) and raises ``ValueError``.
        """
        count = len(frames)
        self._check_range(vma, first_page, count)
        sl = slice(first_page, first_page + count)
        if vma.sys_valid[sl].any():
            raise ValueError("remapping pages already present in system table")
        existing = vma.frames[sl]
        fresh = existing == NO_FRAME
        if not fresh.all():
            # Pages already have physical backing (e.g. GPU faulted first);
            # the provided frames must agree with it.
            if not np.array_equal(existing[~fresh], np.asarray(frames)[~fresh]):
                raise ValueError("conflicting physical frames for mapped pages")
        vma.frames[sl] = frames
        vma.sys_valid[sl] = True
        self.stats.mapped_pages += count

    def unmap_range(self, vma: VMA, first_page: int, count: int) -> np.ndarray:
        """Remove *count* pages from the system table; returns their frames.

        GPU mirror entries must be invalidated separately (via
        :meth:`HMMMirror.invalidate_range`) before the frames are reused.
        """
        self._check_range(vma, first_page, count)
        sl = slice(first_page, first_page + count)
        present = vma.sys_valid[sl].copy()
        vma.sys_valid[sl] = False
        self.stats.unmapped_pages += int(present.sum())
        freed = vma.frames[sl][present].copy()
        return freed

    def is_present(self, vma: VMA, page_index: int) -> bool:
        """True when the page is mapped in the system table."""
        return bool(vma.sys_valid[page_index])

    @staticmethod
    def _check_range(vma: VMA, first_page: int, count: int) -> None:
        if count <= 0:
            raise ValueError(f"page count must be positive, got {count}")
        if first_page < 0 or first_page + count > vma.npages:
            raise ValueError(
                f"page range [{first_page}, {first_page + count}) escapes "
                f"VMA of {vma.npages} pages"
            )


class GPUPageTable:
    """The GPU-side mirror table with fragment-field maintenance."""

    def __init__(self) -> None:
        self.stats = PageTableStats()

    def map_range(self, vma: VMA, first_page: int, count: int) -> None:
        """Mirror *count* already-backed pages into the GPU table.

        Every target page must have a physical frame (the GPU table never
        invents backing).  After setting the valid bits, the amdgpu-style
        fragment scan recomputes fragment exponents over each contiguous
        GPU-valid region touching the mapped range, so neighbouring pages
        mapped earlier can coalesce into larger fragments.
        """
        SystemPageTable._check_range(vma, first_page, count)
        sl = slice(first_page, first_page + count)
        if (vma.frames[sl] == NO_FRAME).any():
            raise ValueError("GPU-mapping pages without physical backing")
        vma.gpu_valid[sl] = True
        self.stats.mapped_pages += count
        self._rescan_fragments(vma, first_page, count)

    def unmap_range(self, vma: VMA, first_page: int, count: int) -> None:
        """Drop *count* pages from the GPU table (TLB shootdown implied)."""
        SystemPageTable._check_range(vma, first_page, count)
        sl = slice(first_page, first_page + count)
        removed = int(vma.gpu_valid[sl].sum())
        vma.gpu_valid[sl] = False
        vma.fragment[sl] = 0
        self.stats.unmapped_pages += removed

    def is_present(self, vma: VMA, page_index: int) -> bool:
        """True when the page is mapped in the GPU table."""
        return bool(vma.gpu_valid[page_index])

    def _rescan_fragments(self, vma: VMA, first_page: int, count: int) -> None:
        """Recompute fragments over the GPU-valid region around a mapping."""
        # Extend to the surrounding contiguous gpu_valid region so adjacent
        # earlier mappings merge with the new pages.
        lo = first_page
        while lo > 0 and vma.gpu_valid[lo - 1]:
            lo -= 1
        hi = first_page + count
        while hi < vma.npages and vma.gpu_valid[hi]:
            hi += 1
        region = slice(lo, hi)
        vma.fragment[region] = compute_fragments(
            vma.frames[region], vma.base_vpn + lo
        )
        self.stats.fragment_scans += 1


class HMMMirror:
    """Keeps the GPU table consistent with the system table.

    Propagation copies present system PTEs into the GPU table (making the
    pages GPU-accessible); invalidation removes GPU entries when the
    system mapping goes away.  Both directions are what the Linux HMM
    subsystem does for the amdgpu driver (paper Section 2.3).
    """

    def __init__(self, system: SystemPageTable, gpu: GPUPageTable) -> None:
        self._system = system
        self._gpu = gpu

    @property
    def system(self) -> SystemPageTable:
        """The CPU-side table."""
        return self._system

    @property
    def gpu(self) -> GPUPageTable:
        """The GPU-side mirror."""
        return self._gpu

    def propagate_range(self, vma: VMA, first_page: int, count: int) -> int:
        """Copy present system PTEs in the range into the GPU table.

        Returns the number of PTEs actually propagated (pages present in
        the system table and not yet in the GPU table).
        """
        SystemPageTable._check_range(vma, first_page, count)
        sl = slice(first_page, first_page + count)
        needed = vma.sys_valid[sl] & ~vma.gpu_valid[sl]
        total = 0
        # Map each contiguous needed run so the fragment rescan sees it.
        idx = np.flatnonzero(needed)
        if idx.size:
            breaks = np.flatnonzero(np.diff(idx) != 1) + 1
            starts = np.concatenate(([0], breaks))
            ends = np.concatenate((breaks, [idx.size]))
            for s, e in zip(starts, ends):
                run_first = first_page + int(idx[s])
                run_count = int(idx[e - 1] - idx[s]) + 1
                self._gpu.map_range(vma, run_first, run_count)
                total += run_count
        self._gpu.stats.propagated_ptes += total
        return total

    def invalidate_range(self, vma: VMA, first_page: int, count: int) -> int:
        """Remove GPU entries for the range (MMU-notifier path).

        Returns the number of GPU PTEs invalidated.
        """
        SystemPageTable._check_range(vma, first_page, count)
        sl = slice(first_page, first_page + count)
        present = int(vma.gpu_valid[sl].sum())
        self._gpu.unmap_range(vma, first_page, count)
        self._gpu.stats.invalidated_ptes += present
        return present
