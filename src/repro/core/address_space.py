"""Process virtual address space: VMAs and virtual allocation.

A :class:`VMA` is a virtually contiguous range of pages with per-page
backing state.  Because the MI300A keeps two page tables (system and GPU,
paper Section 2.3), each page tracks *independently* whether it is present
in the CPU table and in the GPU table, over a shared physical frame — this
is the representation that lets hipMalloc memory be GPU-mapped up-front
yet CPU-faulted lazily, and malloc memory the reverse.

Per-page state is held in numpy arrays so multi-GiB buffers (the paper's
benchmarks reach 40 GiB) remain cheap to represent.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..hw.config import PAGE_SIZE
from .page import NO_FRAME, PTE, PTE_GPU_MAPPED, PTE_PINNED, PTE_UNCACHED, PTE_VALID

#: Where the simulated process's mmap region starts.
MMAP_BASE = 0x7000_0000_0000

#: GPU-access policy of a VMA (decided by its allocator, paper Table 1).
GPU_ACCESS_ALWAYS = "always"  # mapped or mappable regardless of XNACK
GPU_ACCESS_XNACK = "xnack"  # reachable only via XNACK fault replay
GPU_ACCESS_NEVER = "never"  # static host memory: invisible to the GPU linker


class VMA:
    """One virtual memory area with per-page backing state."""

    def __init__(
        self,
        start: int,
        npages: int,
        name: str = "",
        pinned: bool = False,
        uncached: bool = False,
    ) -> None:
        if start % PAGE_SIZE:
            raise ValueError(f"VMA start {start:#x} not page aligned")
        if npages <= 0:
            raise ValueError(f"VMA needs at least one page, got {npages}")
        self.start = start
        self.npages = npages
        self.name = name
        self.pinned = pinned
        self.uncached = uncached
        #: One of the GPU_ACCESS_* policies (set by the owning allocator).
        self.gpu_access = GPU_ACCESS_ALWAYS
        #: Whether the GPU has ever touched this VMA (affects the CPU
        #: fault-around granularity, paper Fig. 10's "GPU init" bars).
        self.gpu_touched = False
        #: Whether physical backing is deferred to first touch.
        self.on_demand = False
        #: Physical frame per page; NO_FRAME when no physical backing yet.
        self.frames = np.full(npages, NO_FRAME, dtype=np.int64)
        #: Present in the system (CPU) page table.
        self.sys_valid = np.zeros(npages, dtype=bool)
        #: Present (mirrored) in the GPU page table.
        self.gpu_valid = np.zeros(npages, dtype=bool)
        #: GPU PTE fragment exponent (meaningful where gpu_valid).
        self.fragment = np.zeros(npages, dtype=np.int8)

    @property
    def end(self) -> int:
        """One past the last mapped byte."""
        return self.start + self.npages * PAGE_SIZE

    @property
    def size_bytes(self) -> int:
        """Size of the virtual range in bytes."""
        return self.npages * PAGE_SIZE

    @property
    def base_vpn(self) -> int:
        """Virtual page number of the first page."""
        return self.start // PAGE_SIZE

    def contains(self, address: int) -> bool:
        """True when *address* falls inside this VMA."""
        return self.start <= address < self.end

    def page_index(self, address: int) -> int:
        """Index (within this VMA) of the page containing *address*."""
        if not self.contains(address):
            raise ValueError(
                f"address {address:#x} outside VMA [{self.start:#x}, {self.end:#x})"
            )
        return (address - self.start) // PAGE_SIZE

    def page_range(self, address: int, size: int) -> Tuple[int, int]:
        """(first page index, page count) covering ``[address, address+size)``."""
        if size <= 0:
            raise ValueError(f"range size must be positive, got {size}")
        if not self.contains(address) or address + size > self.end:
            raise ValueError("byte range escapes VMA")
        first = self.page_index(address)
        last = self.page_index(address + size - 1)
        return first, last - first + 1

    def resident_pages(self) -> int:
        """Number of pages with physical backing."""
        return int((self.frames != NO_FRAME).sum())

    def resident_bytes(self) -> int:
        """Bytes of physical memory backing this VMA."""
        return self.resident_pages() * PAGE_SIZE

    def resident_frames(self) -> np.ndarray:
        """Physical frames currently backing this VMA."""
        return self.frames[self.frames != NO_FRAME]

    def pte(self, page_index: int, table: str = "system") -> PTE:
        """Scalar PTE view of one page in the chosen table.

        *table* is ``"system"`` or ``"gpu"``.  An absent entry is returned
        as an invalid PTE (frame NO_FRAME, no flags).
        """
        if table not in ("system", "gpu"):
            raise ValueError(f"unknown page table {table!r}")
        present = (
            self.sys_valid[page_index]
            if table == "system"
            else self.gpu_valid[page_index]
        )
        if not present:
            return PTE()
        flags = PTE_VALID
        if self.pinned:
            flags |= PTE_PINNED
        if self.uncached:
            flags |= PTE_UNCACHED
        if self.gpu_valid[page_index]:
            flags |= PTE_GPU_MAPPED
        fragment = int(self.fragment[page_index]) if table == "gpu" else 0
        return PTE(frame=int(self.frames[page_index]), flags=flags, fragment=fragment)

    def __repr__(self) -> str:
        return (
            f"VMA({self.name or 'anon'}, {self.start:#x}+{self.size_bytes}, "
            f"resident={self.resident_pages()}/{self.npages})"
        )


class AddressSpace:
    """Per-process virtual address space (a sorted set of VMAs)."""

    def __init__(self) -> None:
        self._vmas: List[VMA] = []
        self._starts: List[int] = []
        self._next_va = MMAP_BASE

    def mmap(
        self,
        size: int,
        name: str = "",
        pinned: bool = False,
        uncached: bool = False,
        alignment: int = PAGE_SIZE,
    ) -> VMA:
        """Reserve a fresh virtual range of at least *size* bytes.

        The range is rounded up to whole pages and aligned to *alignment*
        (power of two, >= page size).  Mirrors anonymous ``mmap``: no
        physical memory is allocated here.
        """
        if size <= 0:
            raise ValueError(f"mmap size must be positive, got {size}")
        if alignment < PAGE_SIZE or alignment & (alignment - 1):
            raise ValueError(f"bad alignment {alignment}")
        npages = -(-size // PAGE_SIZE)
        start = (self._next_va + alignment - 1) & ~(alignment - 1)
        self._next_va = start + npages * PAGE_SIZE
        vma = VMA(start, npages, name=name, pinned=pinned, uncached=uncached)
        idx = bisect.bisect_left(self._starts, start)
        self._vmas.insert(idx, vma)
        self._starts.insert(idx, start)
        return vma

    def munmap(self, vma: VMA) -> None:
        """Remove *vma* from the address space.

        The caller is responsible for returning its physical frames to the
        frame allocator first.
        """
        idx = bisect.bisect_left(self._starts, vma.start)
        if idx >= len(self._vmas) or self._vmas[idx] is not vma:
            raise ValueError("VMA not part of this address space")
        del self._vmas[idx]
        del self._starts[idx]

    def find(self, address: int) -> Optional[VMA]:
        """The VMA containing *address*, or None."""
        idx = bisect.bisect_right(self._starts, address) - 1
        if idx < 0:
            return None
        vma = self._vmas[idx]
        return vma if vma.contains(address) else None

    def require(self, address: int) -> VMA:
        """Like :meth:`find` but raising on unmapped addresses (a segfault)."""
        vma = self.find(address)
        if vma is None:
            raise SegmentationFault(address)
        return vma

    def __iter__(self) -> Iterator[VMA]:
        return iter(self._vmas)

    def __len__(self) -> int:
        return len(self._vmas)

    def total_resident_bytes(self) -> int:
        """Physical bytes backing all VMAs (the process's true footprint)."""
        return sum(vma.resident_bytes() for vma in self._vmas)

    def total_virtual_bytes(self) -> int:
        """Virtual bytes reserved by all VMAs."""
        return sum(vma.size_bytes for vma in self._vmas)


class SegmentationFault(Exception):
    """Access to an address not covered by any VMA."""

    def __init__(self, address: int) -> None:
        super().__init__(f"segmentation fault at {address:#x}")
        self.address = address
