"""Memory-usage reporting interfaces and their blind spots.

No single interface gives a complete picture of memory allocations on
MI300A (paper Section 3.2):

* ``/proc/meminfo`` and libnuma report *physical* usage at the APU level —
  up-front allocations immediately, on-demand ones only after first touch.
* ``hipMemGetInfo`` and ``rocm-smi`` report free memory "on the device"
  but only capture hipMalloc allocations.
* ``VmRSS`` (``/proc/pid/status``) reports process-resident memory but
  does *not* capture hipMalloc allocations.

The paper profiles peak usage by sampling libnuma; applications that size
buffers from ``hipMemGetInfo`` must be ported to a reliable counter
(Section 3.3, "Memory Usage Consideration").  This module reproduces each
interface over the simulated system, plus the libnuma-based peak sampler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from .allocators import AllocatorKind, MemoryManager
from .physical import PhysicalMemory

if TYPE_CHECKING:
    from ..hw.hbm import HBMSubsystem
    from ..partition.logical_device import LogicalDevice

#: Allocator kinds whose usage hipMemGetInfo / rocm-smi can see.
_HIP_DEVICE_KINDS = (AllocatorKind.HIP_MALLOC, AllocatorKind.STATIC_DEVICE)


def proc_meminfo(physical: PhysicalMemory) -> Dict[str, int]:
    """System-level ``/proc/meminfo`` view (bytes, not kB, for clarity).

    Reflects true physical allocation: up-front allocators appear
    immediately, on-demand allocators only after first touch.
    """
    total = physical.total_frames * 4096
    free = physical.free_bytes
    return {
        "MemTotal": total,
        "MemFree": free,
        "MemAvailable": free,
        "MemUsed": total - free,
    }


def libnuma_free(physical: PhysicalMemory) -> Tuple[int, int]:
    """libnuma's (free, total) for the APU's single NUMA node.

    Same visibility as meminfo; this is the interface the paper samples
    for peak memory usage because it sees *all* allocation types.
    """
    return physical.free_bytes, physical.total_frames * 4096


def hip_mem_get_info(manager: MemoryManager, physical: PhysicalMemory) -> Tuple[int, int]:
    """``hipMemGetInfo``'s (free, total) — hipMalloc-only visibility.

    The HIP interface reports free memory "on the device" but only
    captures allocations made through hipMalloc, so buffers from malloc,
    hipHostMalloc, or hipMallocManaged are invisible to it.  Sizing
    datasets from this counter is therefore unreliable on UPM.
    """
    total = physical.total_frames * 4096
    hip_used = sum(
        a.vma.resident_bytes()
        for a in manager.allocations
        if a.kind in _HIP_DEVICE_KINDS
    )
    return total - hip_used, total


def hip_mem_get_info_device(
    manager: MemoryManager,
    physical: PhysicalMemory,
    hbm: "HBMSubsystem",
    device: "LogicalDevice",
) -> Tuple[int, int]:
    """``hipMemGetInfo`` as one *logical device* reports it.

    Partitioned modes make the interface's blind spots NUMA-shaped:
    total is the capacity of the device's visible stacks (the whole pool
    in NPS1, one quadrant in NPS4), and the used figure counts only
    hipMalloc-style frames homed in that visible range — a buffer placed
    in another quadrant is invisible here even though the XCDs could
    reach it over the fabric.
    """
    total = device.memory_capacity_bytes
    if hbm.numa_domains == 1:
        return hip_mem_get_info(manager, physical)
    lo, hi = hbm.domain_frame_range(device.numa_domain)
    used = 0
    for a in manager.allocations:
        if a.kind not in _HIP_DEVICE_KINDS:
            continue
        frames = a.vma.resident_frames()
        if frames.size:
            used += int(((frames >= lo) & (frames < hi)).sum()) * 4096
    return total - used, total


def rocm_smi_used_bytes(manager: MemoryManager) -> int:
    """``rocm-smi``'s used-VRAM figure — also hipMalloc-only."""
    return sum(
        a.vma.resident_bytes()
        for a in manager.allocations
        if a.kind in _HIP_DEVICE_KINDS
    )


def vm_rss(manager: MemoryManager) -> int:
    """Process ``VmRSS`` — resident set excluding hipMalloc allocations.

    hipMalloc memory is owned by the driver, not mapped as ordinary
    process pages, so ``top``-style accounting misses it (Section 3.2).
    """
    return sum(
        a.vma.resident_bytes()
        for a in manager.allocations
        if a.kind not in _HIP_DEVICE_KINDS
    )


@dataclass
class UsageSnapshot:
    """One sample of every interface, for side-by-side comparison."""

    meminfo_used: int
    libnuma_used: int
    hip_free: int
    rocm_smi_used: int
    vm_rss: int


def snapshot(manager: MemoryManager, physical: PhysicalMemory) -> UsageSnapshot:
    """Sample all five interfaces at once."""
    free, total = libnuma_free(physical)
    hip_free, _ = hip_mem_get_info(manager, physical)
    return UsageSnapshot(
        meminfo_used=proc_meminfo(physical)["MemUsed"],
        libnuma_used=total - free,
        hip_free=hip_free,
        rocm_smi_used=rocm_smi_used_bytes(manager),
        vm_rss=vm_rss(manager),
    )


class PeakUsageSampler:
    """Peak physical memory tracker, libnuma-style (the paper's method).

    Call :meth:`sample` at interesting points (the simulated runtime calls
    it after every allocation, fault burst, and kernel); :attr:`peak_bytes`
    is the high-water mark relative to the baseline captured at creation.
    """

    def __init__(self, physical: PhysicalMemory) -> None:
        self._physical = physical
        self._baseline = physical.used_bytes
        self.peak_bytes = 0

    def sample(self) -> int:
        """Record the current usage; returns usage relative to baseline."""
        current = self._physical.used_bytes - self._baseline
        if current > self.peak_bytes:
            self.peak_bytes = current
        return current
