"""Opportunistic GPU page-table fragment computation.

A *fragment* is a virtually and physically contiguous, naturally aligned,
power-of-two run of pages with identical flags.  The GPU L1 TLB can hold a
single entry for a whole fragment, greatly increasing its reach (paper
Section 3.2).  The amdgpu driver sets the 5-bit PTE fragment field
opportunistically by scanning for maximal contiguous page ranges when it
maps pages.

This module reproduces that scan.  Given the physical frames backing a
virtually contiguous page range, it:

1. finds maximal runs where frames are physically contiguous (constant
   ``frame - vpn`` delta),
2. decomposes each run into maximal power-of-two blocks aligned in both
   the virtual and the physical address space (which coincide whenever the
   run's delta is itself suitably aligned), and
3. assigns each page the exponent of its covering block.

Up-front allocators produce long aligned runs and therefore large
fragments; on-demand first-touch order produces mostly single-page runs
and fragment exponent 0 — the mechanism behind Fig. 9's TLB miss gap.
"""

from __future__ import annotations

import numpy as np

from ..hw.config import MAX_FRAGMENT_EXPONENT


def _trailing_zeros(values: np.ndarray) -> np.ndarray:
    """Number of trailing zero bits per element (0 input -> 63)."""
    v = values.astype(np.int64)
    out = np.zeros(v.shape, dtype=np.int64)
    zero = v == 0
    v = np.where(zero, 1, v)
    isolated = v & -v  # lowest set bit
    # log2 of a power of two via float is exact for < 2**53.
    out = np.log2(isolated.astype(np.float64)).astype(np.int64)
    out[zero] = 63
    return out


def contiguous_runs(frames: np.ndarray) -> list[tuple[int, int]]:
    """Maximal physically contiguous runs over a virtually contiguous range.

    *frames* holds the physical frame of each consecutive virtual page.
    Returns ``(start_index, length)`` pairs covering the whole range.
    """
    frames = np.asarray(frames, dtype=np.int64)
    n = len(frames)
    if n == 0:
        return []
    breaks = np.flatnonzero(np.diff(frames) != 1) + 1
    starts = np.concatenate(([0], breaks))
    ends = np.concatenate((breaks, [n]))
    return [(int(s), int(e - s)) for s, e in zip(starts, ends)]


def compute_fragments(
    frames: np.ndarray,
    base_vpn: int,
    max_exponent: int = MAX_FRAGMENT_EXPONENT,
) -> np.ndarray:
    """Per-page fragment exponents for a mapped virtual range.

    Args:
        frames: physical frame number of each consecutive virtual page,
            starting at virtual page number *base_vpn*.
        base_vpn: virtual page number of ``frames[0]`` (fragment blocks
            must be aligned in the virtual address space).
        max_exponent: cap on the exponent (5-bit field -> 31).

    Returns:
        int8 array of the same length: entry i covers ``2**exp[i]`` pages.
    """
    frames = np.asarray(frames, dtype=np.int64)
    n = len(frames)
    out = np.zeros(n, dtype=np.int8)
    if n == 0:
        return out

    # Vectorised fast path for the dominant scattered case: pages whose
    # neighbours are not physically adjacent are single-page fragments
    # (exponent 0) and need no per-run work.
    prev_adjacent = np.zeros(n, dtype=bool)
    next_adjacent = np.zeros(n, dtype=bool)
    if n > 1:
        adj = np.diff(frames) == 1
        prev_adjacent[1:] = adj
        next_adjacent[:-1] = adj
    isolated = ~(prev_adjacent | next_adjacent)
    # out already 0 for isolated pages.

    if isolated.all():
        return out

    # Enumerate only multi-page runs (the Python loop below is O(runs)).
    breaks = np.flatnonzero(np.diff(frames) != 1) + 1
    starts = np.concatenate(([0], breaks))
    ends = np.concatenate((breaks, [n]))
    lengths = ends - starts
    multi = lengths > 1
    for start, length in zip(starts[multi], lengths[multi]):
        _assign_run(out, frames, base_vpn, int(start), int(length), max_exponent)
    return out


def _assign_run(
    out: np.ndarray,
    frames: np.ndarray,
    base_vpn: int,
    start: int,
    length: int,
    max_exponent: int,
) -> None:
    """Greedy aligned power-of-two decomposition of one contiguous run.

    Mirrors amdgpu's update loop: repeatedly emit the largest block that
    (a) starts at the current position, (b) is aligned at both the virtual
    and physical page number, and (c) fits in the remainder of the run.
    """
    pos = start
    end = start + length
    while pos < end:
        vpn = base_vpn + pos
        pfn = int(frames[pos])
        align = min(
            _scalar_trailing_zeros(vpn),
            _scalar_trailing_zeros(pfn),
        )
        remaining = end - pos
        size_exp = min(align, remaining.bit_length() - 1, max_exponent)
        block = 1 << size_exp
        out[pos : pos + block] = size_exp
        pos += block


def _scalar_trailing_zeros(value: int) -> int:
    if value == 0:
        return 63
    return (value & -value).bit_length() - 1


def fragment_histogram(exponents: np.ndarray) -> dict[int, int]:
    """Count of pages per fragment exponent (for profiling/diagnostics)."""
    exponents = np.asarray(exponents)
    values, counts = np.unique(exponents, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def distinct_fragments(exponents: np.ndarray) -> int:
    """Number of distinct fragment entries covering the range.

    Each block of ``2**exp`` pages sharing one exponent is a single TLB
    entry, so the count of distinct fragments is what a streaming kernel's
    TLB miss counter converges to (one miss per fragment per pass when the
    stream exceeds TLB reach).
    """
    exponents = np.asarray(exponents, dtype=np.int64)
    if len(exponents) == 0:
        return 0
    weights = 1.0 / np.power(2.0, exponents)
    return int(round(float(weights.sum())))


def average_fragment_bytes(exponents: np.ndarray, page_size: int = 4096) -> float:
    """Average fragment size in bytes over the mapped range."""
    count = distinct_fragments(exponents)
    if count == 0:
        return 0.0
    return len(exponents) * page_size / count
