"""Physical frame allocator for the unified memory pool.

One MI300A APU exposes a single 128 GiB physical memory shared by the CPU
and the GPU.  This module manages that pool at 4 KiB frame granularity and
models the two behaviours the paper's system-software study hinges on:

* **Up-front allocations** (hipMalloc et al.) obtain *contiguous, aligned
  chunks*, which later let the amdgpu driver encode large fragments in GPU
  PTEs (paper Section 5.3) and interleave evenly across memory channels
  (Section 5.4).

* **On-demand allocations** (malloc first-touch faults) draw *scattered
  single frames* from a steady-state fragmented free list whose available
  frames are biased across channels.  The bias is what degrades Infinity
  Cache slice utilisation for malloc'd buffers (Section 5.4), and the lack
  of contiguity is what produces small GPU fragments and ~7-16x more GPU
  TLB misses (Section 5.3, Fig. 9).

The allocator is deterministic given its seed, so experiments reproduce
bit-identically.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..hw.config import MI300AConfig, PAGE_SIZE


class OutOfMemoryError(MemoryError):
    """Raised when the physical pool cannot satisfy a request."""


class TransientAllocationError(OutOfMemoryError):
    """An allocation failed for a transient reason (injected): the pool
    is not actually exhausted and an immediate retry may succeed.  The
    HIP layer's bounded retry-with-backoff consumes these."""


class PhysicalMemory:
    """Frame allocator over the APU's unified physical pool."""

    def __init__(self, config: MI300AConfig, seed: int = 0x1300A) -> None:
        self._config = config
        self._total_frames = config.total_pages
        # True = frame is free.
        self._free = np.ones(self._total_frames, dtype=bool)
        self._free_count = self._total_frames
        self._rng = np.random.default_rng(seed)
        # Steady-state free-list channel bias: scattered allocations draw
        # frames from channels according to these weights.  The weights are
        # fixed per boot (per instance), mirroring how a long-running
        # system's buddy free list ends up unevenly distributed.
        channels = config.hbm.channels
        skew = config.policy.free_list_channel_skew
        if skew > 0:
            raw = np.exp(self._rng.normal(0.0, 4.0 * skew, size=channels))
        else:
            raw = np.ones(channels)
        self._channel_weights = raw / raw.sum()
        # With one page per interleave unit, the frames of channel
        # (stack s, lane l) form the residue class  s + stacks*l  mod
        # (stacks * lanes); precompute residue per channel index.
        geo = config.hbm
        stacks = np.arange(channels) // geo.channels_per_stack
        lanes = np.arange(channels) % geo.channels_per_stack
        self._channel_residue = stacks + geo.stacks * lanes
        self._residue_modulus = geo.stacks * geo.channels_per_stack
        # Fault injection: plan consulted at allocation entry, and the
        # frames claimed by injected fragmentation pressure (released by
        # defragment()/release_pressure(), owned by no allocation).
        self.inject = None
        self._pressure_frames = np.empty(0, dtype=np.int64)

    @property
    def total_frames(self) -> int:
        """Number of 4 KiB frames in the pool."""
        return self._total_frames

    @property
    def free_frames(self) -> int:
        """Number of currently free frames."""
        return self._free_count

    @property
    def used_bytes(self) -> int:
        """Bytes of physical memory currently allocated."""
        return (self._total_frames - self._free_count) * PAGE_SIZE

    @property
    def free_bytes(self) -> int:
        """Bytes of physical memory currently free."""
        return self._free_count * PAGE_SIZE

    def channel_weights(self) -> np.ndarray:
        """The free-list channel bias weights (for inspection/ablation)."""
        return self._channel_weights.copy()

    # ------------------------------------------------------------------
    # Contiguous (up-front) allocation
    # ------------------------------------------------------------------

    def alloc_chunks(
        self,
        npages: int,
        chunk_pages: int,
        frame_range: Optional[Tuple[int, int]] = None,
    ) -> np.ndarray:
        """Allocate *npages* frames as aligned contiguous chunks.

        Frames are returned in allocation order: whole chunks of
        *chunk_pages* contiguous frames, each aligned to *chunk_pages*, with
        a final partial chunk if *npages* is not a multiple.  This is the
        up-front allocator path (hipMalloc and friends): the driver can
        later encode each chunk as a single large fragment.

        *frame_range* restricts the search to the half-open frame window
        ``[lo, hi)`` — the NPS4 placement path, where a partition-local
        allocation must stay inside one NUMA domain's physical quadrant.
        """
        if npages <= 0:
            raise ValueError(f"npages must be positive, got {npages}")
        if chunk_pages <= 0 or chunk_pages & (chunk_pages - 1):
            raise ValueError(f"chunk_pages must be a power of two, got {chunk_pages}")
        self._consult_inject(npages, contiguous=True)
        if npages > self._free_count:
            raise OutOfMemoryError(
                f"requested {npages} frames, only {self._free_count} free"
            )
        full_chunks, tail = divmod(npages, chunk_pages)
        starts = self._find_aligned_runs(
            full_chunks + (1 if tail else 0), chunk_pages, frame_range
        )
        frames = np.concatenate(
            [np.arange(s, s + chunk_pages, dtype=np.int64) for s in starts]
        )
        frames = frames[:npages]
        self._claim(frames)
        return frames

    def _check_range(self, frame_range: Tuple[int, int]) -> Tuple[int, int]:
        lo, hi = frame_range
        if not 0 <= lo < hi <= self._total_frames:
            raise ValueError(
                f"frame range [{lo}, {hi}) outside pool of "
                f"{self._total_frames} frames"
            )
        return lo, hi

    def _find_aligned_runs(
        self,
        count: int,
        chunk_pages: int,
        frame_range: Optional[Tuple[int, int]] = None,
    ) -> np.ndarray:
        """Find *count* free, aligned runs of *chunk_pages* frames each."""
        if count == 0:
            return np.empty(0, dtype=np.int64)
        # View the bitmap as aligned blocks and find fully-free blocks.
        if frame_range is None:
            first_block = 0
            usable = (self._total_frames // chunk_pages) * chunk_pages
        else:
            lo, hi = self._check_range(frame_range)
            first_block = -(-lo // chunk_pages)  # align the window start up
            usable = (hi // chunk_pages) * chunk_pages
        base = first_block * chunk_pages
        if base >= usable:
            raise OutOfMemoryError(
                f"frame range too small for {chunk_pages}-page chunks"
            )
        blocks = self._free[base:usable].reshape(-1, chunk_pages)
        candidates = first_block + np.flatnonzero(blocks.all(axis=1))
        if len(candidates) < count:
            raise OutOfMemoryError(
                f"cannot find {count} contiguous runs of {chunk_pages} pages "
                f"(only {len(candidates)} available)"
            )
        # Leave a gap between selected blocks when the pool allows it:
        # separately obtained chunks are not physically adjacent on a
        # steady-state system, so chunks must not merge into accidental
        # mega-fragments that a real fragmented free list would not give.
        # The stride is odd (3) so the selected blocks still sweep every
        # memory-channel residue class of the power-of-two interleave
        # (an even stride would alias onto a subset of the channels).
        if len(candidates) >= 3 * count:
            candidates = candidates[::3]
        return candidates[:count].astype(np.int64) * chunk_pages

    # ------------------------------------------------------------------
    # Scattered (on-demand) allocation
    # ------------------------------------------------------------------

    def alloc_scattered(
        self,
        npages: int,
        pair_fraction: Optional[float] = None,
        frame_range: Optional[Tuple[int, int]] = None,
    ) -> np.ndarray:
        """Allocate *npages* frames one page at a time, with free-list bias.

        This is the on-demand fault path for CPU first touch: frames are
        drawn from channels according to the biased free-list weights, and
        a configurable fraction of draws land an adjacent free pair
        (modelling occasional buddy-allocator luck).  The result is low
        physical contiguity and an uneven channel histogram.

        *frame_range* restricts draws to the half-open window ``[lo, hi)``
        (NPS4 placement: scattered pages stay in one NUMA domain).
        """
        if npages <= 0:
            raise ValueError(f"npages must be positive, got {npages}")
        self._consult_inject(npages, contiguous=False)
        if npages > self._free_count:
            raise OutOfMemoryError(
                f"requested {npages} frames, only {self._free_count} free"
            )
        if pair_fraction is None:
            pair_fraction = self._config.policy.on_demand_pair_fraction

        allocated: list[np.ndarray] = []
        remaining = npages
        try:
            # Some draws produce adjacent pairs: allocate those in pairs.
            pair_pages = int(npages * pair_fraction) & ~1
            if pair_pages:
                pairs = self._draw_scattered(pair_pages // 2, run=2,
                                             frame_range=frame_range)
                allocated.append(pairs)
                remaining -= len(pairs)
            if remaining:
                singles = self._draw_scattered(remaining, run=1,
                                               frame_range=frame_range)
                allocated.append(singles)
        except OutOfMemoryError:
            # A failed later draw must not leak the earlier batches.
            for batch in allocated:
                self.free(batch)
            raise
        frames = np.concatenate(allocated)[:npages]
        return frames

    def _draw_scattered(
        self,
        ndraws: int,
        run: int,
        frame_range: Optional[Tuple[int, int]] = None,
    ) -> np.ndarray:
        """Draw *ndraws* free runs of length *run* from biased channels.

        Returns the flattened frame numbers (``ndraws * run`` entries) in
        draw order.  Falls back to an exhaustive sweep if rejection
        sampling stalls (nearly-full pool).
        """
        mod = self._residue_modulus
        if frame_range is None:
            lo, hi = 0, self._total_frames
        else:
            lo, hi = self._check_range(frame_range)
        k_lo, k_hi = -(-lo // mod), hi // mod
        total = ndraws * run
        out = np.empty(total, dtype=np.int64)
        filled = 0
        attempts = 0
        rng = self._rng
        while filled < total and attempts < 64:
            need_runs = (total - filled + run - 1) // run
            # Oversample to absorb rejections.
            n = max(int(need_runs * 1.6) + 16, 32)
            channels = rng.choice(
                len(self._channel_weights), size=n, p=self._channel_weights
            )
            ks = rng.integers(k_lo, max(k_hi - 1, k_lo + 1), size=n)
            starts = self._channel_residue[channels] + ks * mod
            if run > 1:
                # Buddy order-(run) blocks are naturally aligned; keep the
                # alignment so the driver can encode them as fragments.
                starts &= ~np.int64(run - 1)
            starts = starts[(starts >= lo) & (starts + run <= hi)]
            ok = self._free[starts]
            for extra in range(1, run):
                ok &= self._free[starts + extra]
            starts = np.unique(starts[ok])
            if run > 1 and starts.size > 1:
                # Drop runs overlapping an earlier selected run.
                keep = np.empty(starts.size, dtype=bool)
                keep[0] = True
                keep[1:] = np.diff(starts) >= run
                starts = starts[keep]
            starts = starts[:need_runs]
            if starts.size:
                if run == 1:
                    frames = starts.astype(np.int64)
                else:
                    frames = (
                        starts[:, None] + np.arange(run, dtype=np.int64)
                    ).ravel()
                self._claim(frames)
                out[filled : filled + len(frames)] = frames
                filled += len(frames)
            attempts += 1
        if filled < total:
            # Pool too full for sampling: sweep for any free frames.
            free_idx = lo + np.flatnonzero(self._free[lo:hi])[: total - filled]
            if len(free_idx) < total - filled:
                # Roll back the frames this draw already claimed so a
                # failed allocation never leaks partial progress.
                if filled:
                    self.free(out[:filled])
                raise OutOfMemoryError("physical pool exhausted")
            self._claim(free_idx)
            out[filled:] = free_idx
        return out

    # ------------------------------------------------------------------
    # Free / bookkeeping
    # ------------------------------------------------------------------

    def free(self, frames: np.ndarray) -> None:
        """Return *frames* to the pool.  Double-free raises ``ValueError``."""
        frames = np.asarray(frames, dtype=np.int64)
        if frames.size == 0:
            return
        if frames.min() < 0 or frames.max() >= self._total_frames:
            raise ValueError("frame number out of range")
        if self._free[frames].any():
            raise ValueError("double free of physical frame")
        self._free[frames] = True
        self._free_count += int(frames.size)

    def _claim(self, frames: np.ndarray) -> None:
        if not self._free[frames].all():
            raise OutOfMemoryError("attempted to claim a non-free frame")
        self._free[frames] = False
        self._free_count -= int(frames.size)

    def is_free(self, frame: int) -> bool:
        """True when *frame* is currently unallocated."""
        return bool(self._free[frame])

    # ------------------------------------------------------------------
    # Fault injection: transient failures and fragmentation pressure
    # ------------------------------------------------------------------

    def _consult_inject(self, npages: int, contiguous: bool) -> None:
        """Fire the ``physical.alloc`` injection site for this request."""
        if self.inject is None:
            return
        fault = self.inject.fire(
            "physical.alloc",
            npages=npages,
            contiguous=contiguous,
            free_frames=self._free_count,
        )
        if fault is None:
            return
        if fault.kind == "transient":
            raise TransientAllocationError(
                f"injected transient allocation failure "
                f"({npages} frame request)"
            )
        if fault.kind == "pressure":
            self.apply_pressure(float(fault.params.get("fraction", 0.25)))
        else:
            raise ValueError(
                f"physical.alloc does not understand kind {fault.kind!r}"
            )

    def apply_pressure(self, fraction: float) -> int:
        """Fragment the free list: claim every other free frame.

        Claims up to *fraction* of the free frames in an every-second
        pattern, destroying contiguous runs the way a hostile co-tenant
        (or a long uptime) would.  The frames belong to no allocation;
        :meth:`release_pressure` / :meth:`defragment` return them.
        Returns the number of frames claimed.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"pressure fraction must be in [0, 1], got {fraction}")
        free_idx = np.flatnonzero(self._free)
        take = free_idx[::2][: int(len(free_idx) * fraction)]
        if take.size == 0:
            return 0
        self._claim(take)
        self._pressure_frames = np.concatenate([self._pressure_frames, take])
        return int(take.size)

    def release_pressure(self) -> int:
        """Free all injected-pressure frames; returns how many."""
        reclaimed = int(self._pressure_frames.size)
        if reclaimed:
            self.free(self._pressure_frames)
            self._pressure_frames = np.empty(0, dtype=np.int64)
        return reclaimed

    def defragment(self) -> int:
        """Memory-reclaim/compaction analogue: the defrag-then-retry hook.

        On real hardware the driver responds to allocation failure by
        compacting and reclaiming; in the simulator the only reclaimable
        state is injected fragmentation pressure.  Returns the number of
        frames recovered (0 = the OOM is genuine).
        """
        return self.release_pressure()

    @property
    def pressure_frames(self) -> int:
        """Frames currently held by injected fragmentation pressure."""
        return int(self._pressure_frames.size)

    def audit(self) -> list[str]:
        """Internal-consistency problems (empty list = healthy pool)."""
        problems: list[str] = []
        bitmap_free = int(self._free.sum())
        if bitmap_free != self._free_count:
            problems.append(
                f"free bitmap ({bitmap_free}) disagrees with free count "
                f"({self._free_count})"
            )
        if self._pressure_frames.size:
            problems.append(
                f"{self._pressure_frames.size} injected-pressure frame(s) "
                "still claimed"
            )
        return problems
