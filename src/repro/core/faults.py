"""Page-fault handling for the unified physical memory system.

Fault taxonomy on MI300A (paper Sections 2.3, 3.1 and 5.2):

* **CPU minor fault** — CPU touches a page with no system PTE.  For
  on-demand memory the kernel allocates a (scattered) physical frame; for
  up-front allocations the frame already exists and the kernel merely
  installs PTEs, batching neighbouring pages (fault-around) at a large
  granularity — which is why hipMalloc'd memory shows ~100x fewer CPU
  faults than malloc'd memory in CPU STREAM (Fig. 10).

* **GPU major fault** — GPU touches a page with no physical backing.
  Requires XNACK: the TLB holds the replay until the fault handler
  allocates frames (in larger contiguous chunks than the CPU path) and
  propagates PTEs through HMM.  Without XNACK the access is fatal.

* **GPU minor fault** — the page is backed and present in the system
  table but absent from the GPU table; HMM propagates the PTE.  Faster
  than a major fault (Figs. 7-8) since no allocation happens.

The handler operates on whole touched ranges (the benchmarks touch one
load per page over large arrays); counters record both fault *events*
(what ``perf stat`` shows) and faulted *pages*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..hw.config import MI300AConfig, PAGE_SIZE
from .address_space import (
    GPU_ACCESS_NEVER,
    GPU_ACCESS_XNACK,
    VMA,
)
from .page import NO_FRAME
from .page_table import HMMMirror
from .physical import PhysicalMemory, TransientAllocationError

Device = Literal["cpu", "gpu"]


class GPUMemoryAccessError(RuntimeError):
    """Fatal GPU access: unmapped page and no XNACK replay available."""


@dataclass
class FaultCounters:
    """Cumulative fault statistics (the ``perf stat`` view)."""

    cpu_fault_events: int = 0
    cpu_faulted_pages: int = 0
    gpu_major_events: int = 0
    gpu_major_pages: int = 0
    gpu_minor_events: int = 0
    gpu_minor_pages: int = 0
    xnack_retries: int = 0
    storm_replay_pages: int = 0

    def snapshot(self) -> "FaultCounters":
        """A copy of the current counters."""
        return FaultCounters(**self.__dict__)

    def delta(self, earlier: "FaultCounters") -> "FaultCounters":
        """Counters accumulated since *earlier*."""
        return FaultCounters(
            **{k: getattr(self, k) - getattr(earlier, k) for k in self.__dict__}
        )


@dataclass
class FaultReport:
    """Outcome of touching one range from one device."""

    device: Device
    touched_pages: int
    cpu_fault_events: int = 0
    cpu_faulted_pages: int = 0
    gpu_major_pages: int = 0
    gpu_minor_pages: int = 0
    eager_mapped_pages: int = 0
    xnack_retries: int = 0
    storm_replay_pages: int = 0
    service_time_ns: float = 0.0

    @property
    def any_faults(self) -> bool:
        """True when at least one fault was taken."""
        return bool(
            self.cpu_fault_events or self.gpu_major_pages or self.gpu_minor_pages
        )


class FaultHandler:
    """Resolves CPU and GPU page faults against the unified pool."""

    #: Hardware XNACK replay budget: how many times one access's replay
    #: may be dropped/NACKed before the wave aborts (the fatal path).
    XNACK_RETRY_LIMIT = 8

    #: Direct-reclaim analogue: how many times the fault path retries a
    #: transiently failed frame allocation before giving up.  The kernel
    #: retries inside the fault handler, so userspace never sees these.
    FAULT_ALLOC_RETRY_LIMIT = 4

    def __init__(
        self,
        config: MI300AConfig,
        physical: PhysicalMemory,
        hmm: HMMMirror,
        xnack_enabled: bool = False,
        seed: int = 0xFA07,
    ) -> None:
        self._config = config
        self._physical = physical
        self._hmm = hmm
        self.xnack_enabled = xnack_enabled
        self.counters = FaultCounters()
        self._rng = np.random.default_rng(seed)
        self.trace = None  # EventLog when the owning APU traces
        self.inject = None  # InjectionPlan when fault injection is active

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def touch_range(
        self,
        vma: VMA,
        first_page: int,
        count: int,
        device: Device,
        concurrency: int = 1,
    ) -> FaultReport:
        """Resolve all faults for *device* touching the given page range.

        *concurrency* is the number of threads/waves generating faults in
        parallel; it feeds the batched service-time model.  Returns a
        report including the simulated fault-service time (the caller
        advances the clock).
        """
        if device not in ("cpu", "gpu"):
            raise ValueError(f"unknown device {device!r}")
        report = FaultReport(device=device, touched_pages=count)
        if device == "gpu":
            self._check_gpu_access(vma)
            self._touch_gpu(vma, first_page, count, report)
        else:
            self._touch_cpu(vma, first_page, count, report)
        report.service_time_ns = self._service_time_ns(report, concurrency)
        if self.trace is not None and report.any_faults:
            self.trace.emit(
                "fault",
                device=device,
                buffer=self.trace.buffer_for_vma(vma),
                name=vma.name,
                cpu_pages=report.cpu_faulted_pages,
                gpu_major=report.gpu_major_pages,
                gpu_minor=report.gpu_minor_pages,
            )
        return report

    # ------------------------------------------------------------------
    # CPU path
    # ------------------------------------------------------------------

    def _touch_cpu(
        self, vma: VMA, first_page: int, count: int, report: FaultReport
    ) -> None:
        sl = slice(first_page, first_page + count)
        missing_pte = ~vma.sys_valid[sl]
        if not missing_pte.any():
            return
        have_frame = vma.frames[sl] != NO_FRAME

        # Pages needing physical allocation: on-demand first touch.
        need_alloc = missing_pte & ~have_frame
        n_alloc = int(need_alloc.sum())
        if n_alloc:
            frames = self._alloc_with_reclaim(
                lambda: self._physical.alloc_scattered(n_alloc), vma
            )
            idx = first_page + np.flatnonzero(need_alloc)
            self._map_cpu_pages(vma, idx, frames)
            # One fault event per page: anonymous memory faults in
            # page-sized increments on the CPU.
            report.cpu_fault_events += n_alloc
            report.cpu_faulted_pages += n_alloc

        # Pages already backed (up-front allocation or GPU first touch):
        # install PTEs with fault-around batching.
        need_map = missing_pte & have_frame
        n_map = int(need_map.sum())
        if n_map:
            granularity = self._cpu_fault_around_pages(vma)
            idx = first_page + np.flatnonzero(need_map)
            self._map_cpu_pages(vma, idx, vma.frames[idx])
            events = self._fault_around_events(idx, granularity)
            report.cpu_fault_events += events
            report.cpu_faulted_pages += n_map

        self.counters.cpu_fault_events += report.cpu_fault_events
        self.counters.cpu_faulted_pages += report.cpu_faulted_pages

        # Eager GPU maps (Bertolli et al.): propagate the fresh PTEs into
        # the GPU table right away, so the GPU never takes minor faults
        # on this range.  The extra time is charged via eager_map_pages.
        if (
            self._config.policy.eager_gpu_maps
            and vma.gpu_access != GPU_ACCESS_NEVER
        ):
            propagated = self._hmm.propagate_range(vma, first_page, count)
            report.eager_mapped_pages += propagated

    def _map_cpu_pages(self, vma: VMA, indices: np.ndarray, frames: np.ndarray) -> None:
        """Install system PTEs for scattered page indices (run-batched)."""
        if indices.size == 0:
            return
        breaks = np.flatnonzero(np.diff(indices) != 1) + 1
        starts = np.concatenate(([0], breaks))
        ends = np.concatenate((breaks, [indices.size]))
        for s, e in zip(starts, ends):
            self._hmm.system.map_range(
                vma, int(indices[s]), np.asarray(frames[s:e], dtype=np.int64)
            )

    def _cpu_fault_around_pages(self, vma: VMA) -> int:
        """Fault-around batch size for mapping already-backed pages."""
        policy = self._config.policy
        if vma.gpu_touched:
            gran = policy.up_front_cpu_fault_granularity_gpu_init_bytes
        else:
            gran = policy.up_front_cpu_fault_granularity_bytes
        return max(1, gran // PAGE_SIZE)

    @staticmethod
    def _fault_around_events(indices: np.ndarray, granularity_pages: int) -> int:
        """Number of fault events when mapping *indices* with fault-around.

        Each event maps the aligned *granularity_pages* window around the
        faulting page, so the event count is the number of distinct
        windows touched.
        """
        windows = np.unique(indices // granularity_pages)
        return int(windows.size)

    # ------------------------------------------------------------------
    # GPU path
    # ------------------------------------------------------------------

    def _check_gpu_access(self, vma: VMA) -> None:
        mode = vma.gpu_access
        if mode == GPU_ACCESS_NEVER:
            self._emit_fatal(vma, "static host symbols are invisible to the GPU")
            raise GPUMemoryAccessError(
                f"GPU cannot access {vma.name or 'static host memory'}: "
                "static host symbols are invisible to the GPU linker"
            )
        if mode == GPU_ACCESS_XNACK and not self.xnack_enabled:
            self._emit_fatal(
                vma, "pageable memory needs XNACK for GPU fault replay"
            )
            raise GPUMemoryAccessError(
                f"GPU access to {vma.name or 'pageable memory'} requires "
                "XNACK (HSA_XNACK=1): the GPU cannot resolve page faults"
            )

    def _emit_fatal(self, vma: VMA, reason: str) -> None:
        if self.trace is not None:
            self.trace.emit(
                "fatal_gpu_access",
                name=vma.name,
                buffer=self.trace.buffer_for_vma(vma),
                reason=reason,
            )

    def _touch_gpu(
        self, vma: VMA, first_page: int, count: int, report: FaultReport
    ) -> None:
        sl = slice(first_page, first_page + count)
        not_gpu_mapped = ~vma.gpu_valid[sl]
        if not not_gpu_mapped.any():
            vma.gpu_touched = True
            return
        if not self.xnack_enabled:
            self._emit_fatal(
                vma, "unmapped page touched with XNACK disabled"
            )
            raise GPUMemoryAccessError(
                f"GPU page fault on {vma.name or 'memory'} with XNACK "
                "disabled: on-demand mapped pages are inaccessible"
            )
        report.xnack_retries = self._xnack_replay_retries(
            vma, first_page, count
        )
        have_frame = vma.frames[sl] != NO_FRAME

        # Major faults: allocate physical frames in contiguous chunks (the
        # driver batches GPU faults and grabs larger blocks than the CPU
        # anon path — the reason GPU-first-touched malloc memory ends up
        # channel-balanced, Section 5.4).
        need_alloc = not_gpu_mapped & ~have_frame
        n_alloc = int(need_alloc.sum())
        if n_alloc:
            chunk_pages = max(
                1, self._config.policy.up_front_contiguity_bytes // PAGE_SIZE
            )
            frames = self._alloc_with_reclaim(
                lambda: self._physical.alloc_chunks(n_alloc, chunk_pages), vma
            )
            idx = first_page + np.flatnonzero(need_alloc)
            self._map_cpu_pages(vma, idx, frames)
            report.gpu_major_pages += n_alloc

        # Minor faults: backed and CPU-mapped, just propagate PTEs.
        minor = not_gpu_mapped & ~need_alloc
        n_minor = int(minor.sum())
        report.gpu_minor_pages += n_minor

        # Both flavours end with HMM propagation into the GPU table.
        self._hmm.propagate_range(vma, first_page, count)
        vma.gpu_touched = True

        report.storm_replay_pages = self._retry_storm_pages(vma, report)

        self.counters.gpu_major_pages += report.gpu_major_pages
        self.counters.gpu_minor_pages += report.gpu_minor_pages
        self.counters.xnack_retries += report.xnack_retries
        self.counters.storm_replay_pages += report.storm_replay_pages
        if report.gpu_major_pages:
            self.counters.gpu_major_events += 1
        if report.gpu_minor_pages:
            self.counters.gpu_minor_events += 1

    def _alloc_with_reclaim(self, alloc, vma: VMA) -> np.ndarray:
        """Frame allocation with the kernel's direct-reclaim retry.

        The fault path must not surface transient allocation failures
        to userspace: the kernel retries (direct reclaim) up to
        :attr:`FAULT_ALLOC_RETRY_LIMIT` times before letting the
        failure propagate.  Genuine exhaustion propagates immediately.
        """
        retries = 0
        while True:
            try:
                return alloc()
            except TransientAllocationError:
                if retries >= self.FAULT_ALLOC_RETRY_LIMIT:
                    raise
                retries += 1
                if self.inject is not None:
                    self.inject.note(
                        "recover.fault.reclaim-retry",
                        name=vma.name,
                        attempt=retries,
                    )

    # ------------------------------------------------------------------
    # Injected XNACK pathologies
    # ------------------------------------------------------------------

    def _xnack_replay_retries(
        self, vma: VMA, first_page: int, count: int
    ) -> int:
        """Bounded XNACK retry loop under injected replay drops.

        Each ``xnack.retry``/``drop`` fire models the fault handler's
        acknowledgement getting lost: the wave replays, faults again,
        and the handler re-runs.  The loop is bounded by
        :attr:`XNACK_RETRY_LIMIT`; exhausting it escalates to the same
        fatal path a disabled XNACK takes (aborted wavefront).
        """
        if self.inject is None:
            return 0
        retries = 0
        while retries <= self.XNACK_RETRY_LIMIT:
            fault = self.inject.fire(
                "xnack.retry",
                name=vma.name,
                address=vma.start + first_page * PAGE_SIZE,
                pages=count,
            )
            if fault is None or fault.kind != "drop":
                return retries
            retries += 1
        self._emit_fatal(
            vma, f"XNACK retry limit ({self.XNACK_RETRY_LIMIT}) exceeded"
        )
        raise GPUMemoryAccessError(
            f"GPU access to {vma.name or 'memory'} aborted: XNACK replay "
            f"dropped more than {self.XNACK_RETRY_LIMIT} times"
        )

    def _retry_storm_pages(self, vma: VMA, report: FaultReport) -> int:
        """Extra replayed pages under an injected XNACK retry storm."""
        if self.inject is None:
            return 0
        faulted = report.gpu_major_pages + report.gpu_minor_pages
        if not faulted:
            return 0
        fault = self.inject.fire(
            "xnack.storm", name=vma.name, pages=faulted
        )
        if fault is None or fault.kind != "storm":
            return 0
        factor = float(fault.params.get("factor", 4.0))
        return int(faulted * max(0.0, factor - 1.0))

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def _service_time_ns(self, report: FaultReport, concurrency: int) -> float:
        """Total fault-service time for the touched range.

        Single faults pay the full handler latency; concurrent fault
        streams amortise towards the batched per-page service times that
        produce the paper's throughput plateaus (Fig. 7).  The detailed
        throughput curve lives in :mod:`repro.perf.faultmodel`; this is
        the inline cost the kernel engine charges.
        """
        costs = self._config.fault_costs
        total = 0.0
        if report.cpu_faulted_pages:
            total += _batched_time(
                report.cpu_fault_events,
                costs.cpu_single_latency_ns,
                costs.cpu_batched_page_ns * _cpu_core_factor(concurrency),
            )
        if report.gpu_major_pages:
            total += _batched_time(
                report.gpu_major_pages,
                costs.gpu_major_single_latency_ns,
                costs.gpu_major_batched_page_ns,
            )
        if report.gpu_minor_pages:
            total += _batched_time(
                report.gpu_minor_pages,
                costs.gpu_minor_single_latency_ns,
                costs.gpu_minor_batched_page_ns,
            )
        total += report.eager_mapped_pages * self._config.policy.eager_map_page_ns
        # Injected XNACK pathologies: every dropped replay re-runs a full
        # handler pass; storm replays re-service pages at the batched rate.
        if report.xnack_retries:
            total += report.xnack_retries * costs.gpu_major_single_latency_ns
        if report.storm_replay_pages:
            total += report.storm_replay_pages * costs.gpu_minor_batched_page_ns
        return total

    def sample_single_fault_latency_ns(
        self, kind: Literal["cpu", "gpu_minor", "gpu_major"], size: int = 1
    ) -> np.ndarray:
        """Draw single-fault handler latencies (Fig. 8's distributions).

        Latencies are lognormally distributed around the calibrated means;
        the shape parameters were fitted to the paper's mean/p95 pairs.
        """
        costs = self._config.fault_costs
        if kind == "cpu":
            mean, sigma = costs.cpu_single_latency_ns, costs.cpu_latency_sigma
        elif kind == "gpu_minor":
            mean, sigma = costs.gpu_minor_single_latency_ns, costs.gpu_latency_sigma
        elif kind == "gpu_major":
            mean, sigma = costs.gpu_major_single_latency_ns, costs.gpu_latency_sigma
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
        mu = np.log(mean) - sigma * sigma / 2.0
        return self._rng.lognormal(mu, sigma, size=size)


def _batched_time(events: int, single_ns: float, per_event_ns: float) -> float:
    """Latency of a fault burst: one full handler pass plus pipelined rest."""
    if events <= 0:
        return 0.0
    return single_ns + (events - 1) * per_event_ns


#: Sub-linear scaling exponent of concurrent CPU fault handling, fitted to
#: the paper's pair (1 core: 872 K pages/s, 12 cores: 3.7 M pages/s):
#: throughput ~ cores**s with s = ln(4.24)/ln(12).
CPU_FAULT_SCALING_EXPONENT = 0.581


def _cpu_core_factor(cores: int) -> float:
    """Per-page service-time multiplier when *cores* fault concurrently."""
    if cores <= 1:
        return 1.0
    return float(cores**-CPU_FAULT_SCALING_EXPONENT)
