"""The MI300A memory allocators (paper Table 1).

Seven allocation paths, differing along the axes the paper studies:

===========================  ==========  ==========  ===============
Allocator                    GPU access  CPU access  Physical alloc
===========================  ==========  ==========  ===============
malloc                       XNACK only  yes         on-demand
malloc + hipHostRegister     yes         yes         up-front
hipMalloc                    yes         yes         up-front
hipHostMalloc                yes         yes         up-front
hipMallocManaged (XNACK=0)   yes         yes         up-front
hipMallocManaged (XNACK=1)   yes         yes         on-demand
``__managed__`` static       yes         yes         up-front
===========================  ==========  ==========  ===============

Each allocator decides

* *when* physical frames are obtained (up-front at the call vs on first
  touch),
* *how* they are obtained (contiguous aligned chunks vs scattered,
  free-list-biased single frames — the lever behind GPU TLB fragments,
  Fig. 9, and Infinity Cache balance, Section 5.4),
* which page tables are pre-populated (GPU table for hipMalloc and
  friends; neither for malloc), and
* what the call itself costs (the Fig. 6 allocation-speed curves,
  reproduced by the cost functions at the bottom of this module).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..hw.clock import SimClock
from ..hw.config import MI300AConfig, PAGE_SIZE
from .address_space import (
    AddressSpace,
    GPU_ACCESS_ALWAYS,
    GPU_ACCESS_NEVER,
    GPU_ACCESS_XNACK,
    VMA,
)
from .faults import FaultHandler
from .page import NO_FRAME
from .page_table import HMMMirror
from .physical import OutOfMemoryError, PhysicalMemory


class AllocatorKind(enum.Enum):
    """Identity of the allocation path that produced a buffer."""

    MALLOC = "malloc"
    MALLOC_REGISTERED = "malloc+hipHostRegister"
    HIP_MALLOC = "hipMalloc"
    HIP_HOST_MALLOC = "hipHostMalloc"
    HIP_MALLOC_MANAGED = "hipMallocManaged"
    MANAGED_STATIC = "__managed__"
    STATIC_HOST = "static host"
    STATIC_DEVICE = "__device__ static"


@dataclass
class Allocation:
    """A live buffer: its VMA plus allocator provenance."""

    vma: VMA
    kind: AllocatorKind
    size_bytes: int
    on_demand: bool
    pinned: bool
    xnack_at_alloc: bool
    alloc_cost_ns: float

    @property
    def address(self) -> int:
        """Base virtual address of the buffer."""
        return self.vma.start

    @property
    def npages(self) -> int:
        """Pages spanned by the buffer."""
        return self.vma.npages

    def __repr__(self) -> str:
        return (
            f"Allocation({self.kind.value}, {self.size_bytes} B @ "
            f"{self.address:#x})"
        )


class MemoryManager:
    """All allocator entry points over one process's address space.

    The manager owns the registry of live allocations — the ground truth
    the :mod:`repro.core.meminfo` interfaces selectively reveal.
    """

    def __init__(
        self,
        config: MI300AConfig,
        physical: PhysicalMemory,
        address_space: AddressSpace,
        hmm: HMMMirror,
        faults: FaultHandler,
        clock: SimClock,
    ) -> None:
        self._config = config
        self._physical = physical
        self._as = address_space
        self._hmm = hmm
        self._faults = faults
        self._clock = clock
        self.allocations: List[Allocation] = []
        self.trace = None  # EventLog when the owning APU traces

    @property
    def xnack_enabled(self) -> bool:
        """Whether the process runs with HSA_XNACK=1."""
        return self._faults.xnack_enabled

    # ------------------------------------------------------------------
    # On-demand allocators
    # ------------------------------------------------------------------

    def malloc(self, size: int, name: str = "malloc") -> Allocation:
        """Standard libc allocation: virtual only, physical on first touch.

        GPU access requires XNACK (Table 1); the first GPU touch then
        takes major faults.
        """
        cost = malloc_cost_ns(self._config, size)
        self._clock.advance(cost)
        vma = self._as.mmap(size, name=name)
        vma.gpu_access = GPU_ACCESS_XNACK
        vma.on_demand = True
        return self._register(
            Allocation(vma, AllocatorKind.MALLOC, size, True, False,
                       self.xnack_enabled, cost)
        )

    def hip_malloc_managed(
        self,
        size: int,
        name: str = "managed",
        frame_range: Optional[Tuple[int, int]] = None,
    ) -> Allocation:
        """hipMallocManaged: on-demand with XNACK, up-front without.

        With XNACK=1 this behaves like malloc (on-demand, scattered
        first-touch frames) but is GPU-accessible by construction.  With
        XNACK=0 the runtime allocates and pins everything up-front, like
        hipHostMalloc (Table 1, Fig. 6).  *frame_range* confines up-front
        frames to a NUMA-domain window (NPS4 partition-local placement);
        the XNACK on-demand path ignores it, as first-touch placement
        follows the faulting thread, not the allocating device.
        """
        if self.xnack_enabled:
            cost = self._config.allocator_costs.managed_xnack_alloc_ns
            self._clock.advance(cost)
            vma = self._as.mmap(size, name=name)
            vma.gpu_access = GPU_ACCESS_ALWAYS
            vma.on_demand = True
            return self._register(
                Allocation(vma, AllocatorKind.HIP_MALLOC_MANAGED, size, True,
                           False, True, cost)
            )
        cost = pinned_alloc_cost_ns(self._config, size, managed=True)
        self._clock.advance(cost)
        vma = self._up_front_vma(
            size, name, pinned=True, contiguous=False, frame_range=frame_range
        )
        return self._register(
            Allocation(vma, AllocatorKind.HIP_MALLOC_MANAGED, size, False,
                       True, False, cost)
        )

    # ------------------------------------------------------------------
    # Up-front allocators
    # ------------------------------------------------------------------

    def hip_malloc(
        self,
        size: int,
        name: str = "hipMalloc",
        frame_range: Optional[Tuple[int, int]] = None,
    ) -> Allocation:
        """The standard GPU allocator: up-front, contiguous, GPU-mapped.

        Physical frames come as large aligned chunks, so the driver's
        fragment scan encodes big fragments (few GPU TLB misses, Fig. 9)
        and the channel interleave is perfectly balanced (full Infinity
        Cache utilisation, Section 5.4).  On UPM the CPU can access the
        buffer too; its PTEs appear lazily via fault-around.  Under NPS4
        the runtime passes *frame_range* to home the buffer in the
        current logical device's local NUMA domain.
        """
        cost = hip_malloc_cost_ns(self._config, size)
        self._clock.advance(cost)
        vma = self._up_front_vma(
            size, name, pinned=True, contiguous=True, frame_range=frame_range
        )
        return self._register(
            Allocation(vma, AllocatorKind.HIP_MALLOC, size, False, True,
                       self.xnack_enabled, cost)
        )

    def hip_host_malloc(
        self,
        size: int,
        name: str = "hipHostMalloc",
        frame_range: Optional[Tuple[int, int]] = None,
    ) -> Allocation:
        """Page-locked host allocation, GPU-mapped up-front.

        Pages are pinned one by one, so the physical layout is balanced
        across channels but only minimally contiguous — small fragments,
        hence the mid-tier GPU bandwidth (Fig. 3) and ~page-level TLB
        misses (Fig. 9).
        """
        cost = pinned_alloc_cost_ns(self._config, size, managed=False)
        self._clock.advance(cost)
        vma = self._up_front_vma(
            size, name, pinned=True, contiguous=False, frame_range=frame_range
        )
        return self._register(
            Allocation(vma, AllocatorKind.HIP_HOST_MALLOC, size, False, True,
                       self.xnack_enabled, cost)
        )

    def host_register(self, allocation: Allocation) -> Allocation:
        """hipHostRegister over an existing malloc'd buffer.

        Faults in any untouched pages (keeping whatever scattered frames
        the buffer already has), pins them, and mirrors the range into the
        GPU page table.  The buffer becomes GPU-accessible without XNACK,
        but its physical layout stays malloc-like — which is why
        malloc+register shows hipHostMalloc-class bandwidth, not
        hipMalloc-class (Fig. 3).
        """
        if allocation.kind is not AllocatorKind.MALLOC:
            raise ValueError("hipHostRegister expects a malloc'd buffer")
        vma = allocation.vma
        cost = host_register_cost_ns(self._config, allocation.size_bytes)
        self._clock.advance(cost)
        # Resident pages are required for pinning: fault the rest in now.
        report = self._faults.touch_range(vma, 0, vma.npages, "cpu")
        self._clock.advance(report.service_time_ns)
        vma.pinned = True
        vma.gpu_access = GPU_ACCESS_ALWAYS
        vma.on_demand = False
        self._hmm.propagate_range(vma, 0, vma.npages)
        allocation.kind = AllocatorKind.MALLOC_REGISTERED
        allocation.pinned = True
        allocation.on_demand = False
        if self.trace is not None:
            self.trace.emit(
                "pin", buffer=self.trace.buffer_uid(allocation)
            )
        return allocation

    def managed_static(self, size: int, name: str = "__managed__") -> Allocation:
        """A ``__managed__`` storage-class variable.

        Unified static variables are carved from a nominally uncacheable
        aperture at program load; both CPU and GPU can access them but at
        drastically reduced bandwidth (103 GB/s, Fig. 3).
        """
        vma = self._up_front_vma(size, name, pinned=True, contiguous=False)
        vma.uncached = True
        return self._register(
            Allocation(vma, AllocatorKind.MANAGED_STATIC, size, False, True,
                       self.xnack_enabled, 0.0)
        )

    def static_host(self, size: int, name: str = "static host") -> Allocation:
        """A static host array: CPU-only, invisible to the GPU linker."""
        vma = self._as.mmap(size, name=name)
        vma.gpu_access = GPU_ACCESS_NEVER
        vma.on_demand = True
        return self._register(
            Allocation(vma, AllocatorKind.STATIC_HOST, size, True, False,
                       self.xnack_enabled, 0.0)
        )

    def static_device(self, size: int, name: str = "__device__") -> Allocation:
        """A ``__device__`` static array: GPU-only from the CPU's view."""
        cost = hip_malloc_cost_ns(self._config, size)
        self._clock.advance(cost)
        vma = self._up_front_vma(size, name, pinned=True, contiguous=True)
        return self._register(
            Allocation(vma, AllocatorKind.STATIC_DEVICE, size, False, True,
                       self.xnack_enabled, cost)
        )

    # ------------------------------------------------------------------
    # Free
    # ------------------------------------------------------------------

    def free(self, allocation: Allocation) -> float:
        """Release *allocation*; returns the simulated call cost in ns."""
        if self.trace is not None:
            # Emitted before the liveness check so the sanitizer's log
            # captures double frees the strict runtime rejects.
            self.trace.emit(
                "free", buffer=self.trace.buffer_uid(allocation)
            )
        if allocation not in self.allocations:
            raise ValueError(f"double free or foreign allocation: {allocation}")
        cost = free_cost_ns(self._config, allocation)
        self._clock.advance(cost)
        vma = allocation.vma
        self._hmm.invalidate_range(vma, 0, vma.npages)
        self._hmm.system.unmap_range(vma, 0, vma.npages)
        frames = vma.resident_frames()
        if frames.size:
            self._physical.free(frames)
        vma.frames[:] = NO_FRAME
        self._as.munmap(vma)
        self.allocations.remove(allocation)
        return cost

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _up_front_vma(
        self,
        size: int,
        name: str,
        pinned: bool,
        contiguous: bool,
        frame_range: Optional[Tuple[int, int]] = None,
    ) -> VMA:
        """Create a VMA with physical frames allocated immediately.

        *contiguous* selects large aligned chunks (hipMalloc) vs balanced
        but minimally contiguous pages (pinned host memory, pinned in
        pairs).  The GPU page table is populated right away; CPU PTEs
        appear lazily via fault-around (Fig. 10's low fault counts).
        *frame_range* confines the frames to one NUMA domain's window.
        """
        vma = self._as.mmap(size, name=name, pinned=pinned)
        vma.gpu_access = GPU_ACCESS_ALWAYS
        vma.on_demand = False
        try:
            if contiguous:
                chunk_pages = max(
                    1, self._config.policy.up_front_contiguity_bytes // PAGE_SIZE
                )
                frames = self._physical.alloc_chunks(
                    vma.npages, chunk_pages, frame_range=frame_range
                )
            else:
                # Pinning grabs pages through the normal buddy path but in
                # allocation order (balanced across channels), landing pairs.
                frames = self._physical.alloc_chunks(
                    vma.npages, 2, frame_range=frame_range
                )
        except OutOfMemoryError:
            # A failed frame allocation must not leak the address range.
            self._as.munmap(vma)
            raise
        vma.frames[:] = frames
        self._hmm.gpu.map_range(vma, 0, vma.npages)
        return vma

    def up_front_degraded(
        self,
        size: int,
        name: str,
        kind: AllocatorKind,
        frame_range: Optional[Tuple[int, int]] = None,
    ) -> Allocation:
        """Degraded-mode up-front allocation from scattered single frames.

        The recovery fallback for the pinned allocators under memory
        pressure: when the paired/chunked path cannot find aligned runs,
        the runtime retries with pageable-style scattered frames — still
        pinned and GPU-mapped up-front, but with malloc-class contiguity
        (small fragments, biased channels), so the downgrade has the
        observable performance signature the paper associates with
        on-demand layouts.
        """
        if kind not in (
            AllocatorKind.HIP_HOST_MALLOC,
            AllocatorKind.HIP_MALLOC_MANAGED,
        ):
            raise ValueError(f"no degraded-mode path for {kind}")
        managed = kind is AllocatorKind.HIP_MALLOC_MANAGED
        cost = pinned_alloc_cost_ns(self._config, size, managed=managed)
        self._clock.advance(cost)
        vma = self._as.mmap(size, name=name, pinned=True)
        vma.gpu_access = GPU_ACCESS_ALWAYS
        vma.on_demand = False
        try:
            frames = self._physical.alloc_scattered(
                vma.npages, pair_fraction=0.0, frame_range=frame_range
            )
        except OutOfMemoryError:
            self._as.munmap(vma)
            raise
        vma.frames[:] = frames
        self._hmm.gpu.map_range(vma, 0, vma.npages)
        return self._register(
            Allocation(vma, kind, size, False, True, self.xnack_enabled, cost)
        )

    def _register(self, allocation: Allocation) -> Allocation:
        self.allocations.append(allocation)
        if self.trace is not None:
            self.trace.emit(
                "alloc",
                buffer=self.trace.register_buffer(allocation, fresh=True),
                name=allocation.vma.name,
                allocator=allocation.kind.value,
                size=allocation.size_bytes,
                pinned=allocation.pinned,
                on_demand=allocation.on_demand,
            )
        return allocation

    def live_bytes(self, kind: Optional[AllocatorKind] = None) -> int:
        """Total requested bytes of live allocations (optionally by kind)."""
        return sum(
            a.size_bytes
            for a in self.allocations
            if kind is None or a.kind is kind
        )


# ----------------------------------------------------------------------
# Cost functions (Fig. 6 curves) — pure, so benchmarks can sweep them
# ----------------------------------------------------------------------


def _pages(size: int) -> int:
    return -(-size // PAGE_SIZE)


def malloc_cost_ns(config: MI300AConfig, size: int) -> float:
    """Cost of one malloc call: metadata-only until the mmap threshold."""
    costs = config.allocator_costs
    if size < costs.malloc_mmap_threshold_bytes:
        return costs.malloc_base_ns
    return costs.malloc_mmap_base_ns + costs.malloc_mmap_per_mib_ns * (
        size / (1024 * 1024)
    )


def malloc_free_cost_ns(config: MI300AConfig, size: int) -> float:
    """Cost of free: cheap until 16 MiB, then the unmap walk dominates."""
    costs = config.allocator_costs
    if size < costs.free_unmap_threshold_bytes:
        return costs.free_base_ns
    return costs.free_unmap_base_ns + costs.free_unmap_per_mib_ns * (
        size / (1024 * 1024)
    )


def hip_malloc_cost_ns(config: MI300AConfig, size: int) -> float:
    """hipMalloc: 10 us floor, then per-page cost past 16 KiB."""
    costs = config.allocator_costs
    floor_pages = costs.hip_malloc_min_granularity_bytes // PAGE_SIZE
    billable = max(0, _pages(size) - floor_pages)
    return costs.hip_malloc_base_ns + billable * costs.hip_malloc_per_page_ns


def hip_free_cost_ns(config: MI300AConfig, size: int) -> float:
    """hipFree: cheaper than hipMalloc until 2 MiB, then far slower."""
    costs = config.allocator_costs
    if size <= costs.hip_free_threshold_bytes:
        return costs.hip_free_base_ns
    return costs.hip_free_base_ns + _pages(size) * costs.hip_free_per_page_ns


def pinned_alloc_cost_ns(config: MI300AConfig, size: int, managed: bool) -> float:
    """hipHostMalloc / hipMallocManaged(XNACK=0): per-page pinning cost."""
    costs = config.allocator_costs
    base = costs.pinned_managed_base_ns if managed else costs.pinned_base_ns
    per_page = (
        costs.pinned_managed_per_page_ns if managed else costs.pinned_per_page_ns
    )
    floor_pages = costs.pinned_min_granularity_bytes // PAGE_SIZE
    billable = max(0, _pages(size) - floor_pages)
    return base + billable * per_page


def pinned_free_cost_ns(config: MI300AConfig, size: int) -> float:
    """Freeing pinned memory: unpin walk over every page."""
    costs = config.allocator_costs
    return costs.pinned_free_base_ns + _pages(size) * costs.pinned_free_per_page_ns


def host_register_cost_ns(config: MI300AConfig, size: int) -> float:
    """hipHostRegister: pin + GPU-map an existing range."""
    costs = config.allocator_costs
    return costs.host_register_base_ns + _pages(size) * costs.host_register_per_page_ns


def free_cost_ns(config: MI300AConfig, allocation: Allocation) -> float:
    """Dispatch the deallocation cost model by allocator kind."""
    config_size = allocation.size_bytes
    kind = allocation.kind
    if kind in (AllocatorKind.MALLOC, AllocatorKind.STATIC_HOST):
        return malloc_free_cost_ns(config, config_size)
    if kind in (AllocatorKind.HIP_MALLOC, AllocatorKind.STATIC_DEVICE):
        return hip_free_cost_ns(config, config_size)
    if kind is AllocatorKind.HIP_MALLOC_MANAGED and allocation.on_demand:
        return config.allocator_costs.managed_xnack_free_ns
    if kind in (
        AllocatorKind.HIP_HOST_MALLOC,
        AllocatorKind.HIP_MALLOC_MANAGED,
        AllocatorKind.MALLOC_REGISTERED,
        AllocatorKind.MANAGED_STATIC,
    ):
        return pinned_free_cost_ns(config, config_size)
    raise ValueError(f"no free-cost model for {kind}")


def allocator_table(xnack: bool) -> List[dict]:
    """Reproduce the paper's Table 1 capability matrix for an XNACK mode."""
    rows = [
        {
            "allocator": "malloc",
            "gpu_access": xnack,
            "cpu_access": True,
            "physical_allocation": "on-demand",
        },
        {
            "allocator": "malloc + hipHostRegister",
            "gpu_access": True,
            "cpu_access": True,
            "physical_allocation": "up-front",
        },
        {
            "allocator": "hipMalloc",
            "gpu_access": True,
            "cpu_access": True,
            "physical_allocation": "up-front",
        },
        {
            "allocator": "hipHostMalloc",
            "gpu_access": True,
            "cpu_access": True,
            "physical_allocation": "up-front",
        },
        {
            "allocator": "hipMallocManaged",
            "gpu_access": True,
            "cpu_access": True,
            "physical_allocation": "on-demand" if xnack else "up-front",
        },
    ]
    return rows
