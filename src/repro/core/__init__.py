"""Core OS/driver memory management for the simulated MI300A.

This package is the subject of the paper's system-software study: the
physical frame allocator, the two page tables and their HMM mirror, the
fragment-aware TLBs, the page-fault handler with XNACK semantics, the
seven memory allocators of Table 1, and the (mutually inconsistent)
memory-usage reporting interfaces.
"""

from .address_space import (
    AddressSpace,
    GPU_ACCESS_ALWAYS,
    GPU_ACCESS_NEVER,
    GPU_ACCESS_XNACK,
    SegmentationFault,
    VMA,
)
from .allocators import (
    Allocation,
    AllocatorKind,
    MemoryManager,
    allocator_table,
    free_cost_ns,
    hip_free_cost_ns,
    hip_malloc_cost_ns,
    host_register_cost_ns,
    malloc_cost_ns,
    malloc_free_cost_ns,
    pinned_alloc_cost_ns,
    pinned_free_cost_ns,
)
from .faults import (
    FaultCounters,
    FaultHandler,
    FaultReport,
    GPUMemoryAccessError,
)
from .fragments import (
    average_fragment_bytes,
    compute_fragments,
    contiguous_runs,
    distinct_fragments,
    fragment_histogram,
)
from .meminfo import (
    PeakUsageSampler,
    UsageSnapshot,
    hip_mem_get_info,
    libnuma_free,
    proc_meminfo,
    rocm_smi_used_bytes,
    snapshot,
    vm_rss,
)
from .page import NO_FRAME, PTE, page_number, page_offset, pages_spanned
from .page_table import GPUPageTable, HMMMirror, PageTableStats, SystemPageTable
from .physical import OutOfMemoryError, PhysicalMemory
from .tlb import TLB, TLBStats, streaming_tlb_misses

__all__ = [
    "AddressSpace",
    "Allocation",
    "AllocatorKind",
    "FaultCounters",
    "FaultHandler",
    "FaultReport",
    "GPUMemoryAccessError",
    "GPUPageTable",
    "GPU_ACCESS_ALWAYS",
    "GPU_ACCESS_NEVER",
    "GPU_ACCESS_XNACK",
    "HMMMirror",
    "MemoryManager",
    "NO_FRAME",
    "OutOfMemoryError",
    "PTE",
    "PageTableStats",
    "PeakUsageSampler",
    "PhysicalMemory",
    "SegmentationFault",
    "SystemPageTable",
    "TLB",
    "TLBStats",
    "UsageSnapshot",
    "VMA",
    "allocator_table",
    "average_fragment_bytes",
    "compute_fragments",
    "contiguous_runs",
    "distinct_fragments",
    "fragment_histogram",
    "free_cost_ns",
    "hip_free_cost_ns",
    "hip_malloc_cost_ns",
    "hip_mem_get_info",
    "host_register_cost_ns",
    "libnuma_free",
    "malloc_cost_ns",
    "malloc_free_cost_ns",
    "page_number",
    "page_offset",
    "pages_spanned",
    "pinned_alloc_cost_ns",
    "pinned_free_cost_ns",
    "proc_meminfo",
    "rocm_smi_used_bytes",
    "snapshot",
    "streaming_tlb_misses",
    "vm_rss",
]
