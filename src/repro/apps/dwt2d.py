"""dwt2d — 2D discrete wavelet transform (Rodinia).

Transforms an input image through several levels of a 2D Haar-style
wavelet decomposition.  The explicit variant stages the image to the
device through a *partial-transfer pipeline* — chunks are copied and
consumed in a loop to overlap movement with compute (the Section 3.3
"Partial Memory Transfer" pattern) — and copies the coefficients back.
In the unified variant the merged buffer obviates the transfers
entirely: the paper measures an 86 % compute-time reduction, while total
time barely moves because image I/O dominates it (Fig. 11).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..porting.strategies import ChunkSchedule, merged_pipeline
from ..runtime.hip import HipRuntime
from ..runtime.kernels import BufferAccess, KernelSpec
from .common import RodiniaApp, simulate_io

#: Fitted per-pixel kernel cost of one DWT level (lifting steps),
#: calibrated so removing the transfers cuts compute time by ~86 %
#: (Fig. 11's dwt2d bar).
PIXEL_NS = 0.018

#: Pipeline chunk size of the explicit variant (rows worth of bytes).
CHUNK_BYTES = 16 << 20


def _haar_level(image: np.ndarray) -> np.ndarray:
    """One in-place-style 2D Haar decomposition level (numerically real)."""
    rows = image.reshape(image.shape[0], -1, 2)
    low = (rows[:, :, 0] + rows[:, :, 1]) / 2.0
    high = (rows[:, :, 0] - rows[:, :, 1]) / 2.0
    horiz = np.hstack([low, high])
    cols = horiz.reshape(-1, 2, horiz.shape[1])
    low2 = (cols[:, 0, :] + cols[:, 1, :]) / 2.0
    high2 = (cols[:, 0, :] - cols[:, 1, :]) / 2.0
    return np.vstack([low2, high2])


def dwt_forward(image: np.ndarray, levels: int) -> np.ndarray:
    """Multi-level forward DWT: each level transforms the LL quadrant."""
    out = image.astype(np.float32).copy()
    h, w = out.shape
    for _ in range(levels):
        out[:h, :w] = _haar_level(out[:h, :w])
        h, w = h // 2, w // 2
        if h < 2 or w < 2:
            break
    return out


class Dwt2d(RodiniaApp):
    """The dwt2d workload in both memory models."""

    name = "dwt2d"

    def default_params(self) -> Dict[str, int]:
        return {"dim": 8192, "levels": 3}

    def _run(self, variant, runtime, profiler, params):
        if variant == "explicit":
            return self._run_explicit(runtime, profiler, params)
        return self._run_unified(runtime, profiler, params)

    # ------------------------------------------------------------------

    def _load_image(self, runtime: HipRuntime, profiler, dim: int, allocator: str):
        """The dominant I/O phase: decode the input bitmap.

        The decoder stages the raw RGB file and two component planes in
        temporary CPU buffers — this is where dwt2d's peak memory occurs,
        which is why unifying the GPU buffers does not reduce the
        application's peak usage (Fig. 11, lower plot).
        """
        apu = runtime.apu
        rng = np.random.default_rng(23)
        image = runtime.array((dim, dim), np.float32, allocator, name="image")
        # Temporary decode buffers: raw 3-byte pixels + two float planes.
        raw = apu.memory.malloc(dim * dim * 3, name="bmp_raw")
        planes = [
            apu.memory.malloc(dim * dim * 4, name=f"plane{i}") for i in range(2)
        ]
        apu.touch(raw, "cpu")
        for plane in planes:
            apu.touch(plane, "cpu")
        image.np[:] = rng.integers(0, 256, size=(dim, dim)).astype(np.float32)
        simulate_io(apu, raw.size_bytes)  # read the bitmap file
        init = KernelSpec(
            "bmp_decode", [BufferAccess(image.allocation, "write")]
        )
        runtime.runCpuKernel(init, threads=1)
        profiler.sample()  # the application's peak footprint is here
        for plane in planes:
            apu.memory.free(plane)
        apu.memory.free(raw)
        return image

    def _dwt_kernels(self, src_alloc, dst_alloc, dim: int, levels: int):
        """One KernelSpec per decomposition level (shrinking quadrant)."""
        specs = []
        h = dim
        for level in range(levels):
            nbytes = h * h * 4
            specs.append(
                KernelSpec(
                    f"fdwt53_level{level}",
                    [
                        BufferAccess(src_alloc, "read", size_bytes=nbytes),
                        BufferAccess(dst_alloc, "write", size_bytes=nbytes),
                    ],
                    compute_ns=h * h * PIXEL_NS,
                )
            )
            h //= 2
            if h < 2:
                break
        return specs

    # ------------------------------------------------------------------

    def _run_explicit(self, runtime: HipRuntime, profiler, params):
        dim, levels = params["dim"], params["levels"]
        apu = runtime.apu
        h_image = self._load_image(runtime, profiler, dim, "malloc")
        d_image = runtime.array((dim, dim), np.float32, "hipMalloc")
        d_out = runtime.array((dim, dim), np.float32, "hipMalloc")
        profiler.sample()

        with apu.clock.region("compute"):
            # Partial-transfer pipeline: copy chunk i while chunk i-1 is
            # being pre-processed, then run the level kernels.
            schedule = ChunkSchedule(h_image.nbytes, min(CHUNK_BYTES, h_image.nbytes))
            for offset, size in schedule.chunks():
                runtime.hipMemcpy(
                    d_image, h_image, size, dst_offset=offset, src_offset=offset
                )
            for spec in self._dwt_kernels(
                d_image.allocation, d_out.allocation, dim, levels
            ):
                runtime.launchKernel(spec)
            runtime.hipDeviceSynchronize()
            d_out.np[:] = dwt_forward(h_image.np, levels)
            runtime.hipMemcpy(h_image, d_out)
            profiler.sample()
        simulate_io(apu, h_image.nbytes)  # write coefficient planes
        return float(np.abs(h_image.np).sum())

    def _run_unified(self, runtime: HipRuntime, profiler, params):
        dim, levels = params["dim"], params["levels"]
        apu = runtime.apu
        image = self._load_image(runtime, profiler, dim, "hipMalloc")
        out = runtime.array((dim, dim), np.float32, "hipMalloc")
        profiler.sample()

        with apu.clock.region("compute"):
            # Merged buffers: same chunk coverage, zero transfers.
            schedule = ChunkSchedule(image.nbytes, min(CHUNK_BYTES, image.nbytes))
            merged_pipeline(schedule)  # the kernels consume chunks in place
            for spec in self._dwt_kernels(
                image.allocation, out.allocation, dim, levels
            ):
                runtime.launchKernel(spec)
            runtime.hipDeviceSynchronize()
            out.np[:] = dwt_forward(image.np, levels)
            profiler.sample()
        simulate_io(apu, out.nbytes)
        return float(np.abs(out.np).sum())
