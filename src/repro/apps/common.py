"""Shared harness for the six ported Rodinia workloads (paper Section 3.4).

Every application is implemented twice:

* an **explicit** variant, the hipify-style baseline: separate host and
  device allocations, hipMemcpy at the phase boundaries (Listing 1);
* a **unified** variant: one allocation per logical buffer, no copies
  (Listing 2), using the Section 3.3 porting strategies where a
  challenge arises.

Both variants do the numerically identical computation with numpy, so
equality of their outputs is an invariant the test suite checks.  Total
time is what ``/usr/bin/time`` would report on the simulated clock; the
compute phase is bracketed with the inserted-timer analogue (clock
regions).  Peak memory is sampled libnuma-style.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..profiling.memusage import MemoryUsageProfiler
from ..runtime.apu import APU
from ..runtime.hip import HipRuntime, make_runtime

#: Simulated filesystem streaming bandwidth for I/O phases (bytes/s).
IO_BANDWIDTH = 2.0e9


@dataclass(frozen=True)
class AppResult:
    """One application run's headline numbers (one bar group of Fig. 11)."""

    app: str
    variant: str
    total_time_s: float
    compute_time_s: float
    peak_memory_bytes: int
    checksum: float

    @property
    def io_time_s(self) -> float:
        """Non-compute portion of the run."""
        return self.total_time_s - self.compute_time_s


@dataclass(frozen=True)
class Comparison:
    """Unified-vs-explicit ratios, normalised to the explicit baseline."""

    app: str
    variant: str
    total_time_ratio: float
    compute_time_ratio: float
    memory_ratio: float


def compare(baseline: AppResult, candidate: AppResult) -> Comparison:
    """Normalise *candidate* to *baseline* (the Fig. 11 presentation)."""
    if baseline.app != candidate.app:
        raise ValueError("comparing different applications")
    return Comparison(
        app=candidate.app,
        variant=candidate.variant,
        total_time_ratio=candidate.total_time_s / baseline.total_time_s,
        compute_time_ratio=candidate.compute_time_s / baseline.compute_time_s,
        memory_ratio=candidate.peak_memory_bytes
        / max(1, baseline.peak_memory_bytes),
    )


def simulate_io(apu: APU, nbytes: int) -> None:
    """Advance the clock by a file-read/write of *nbytes*."""
    if nbytes < 0:
        raise ValueError(f"negative I/O size {nbytes}")
    apu.clock.advance(nbytes / IO_BANDWIDTH * 1e9)


class RodiniaApp(abc.ABC):
    """Base class for the six ported workloads."""

    #: Application name (matches the Rodinia binary name).
    name: str = ""
    #: Variant labels this app supports.
    variants: Tuple[str, ...] = ("explicit", "unified")

    #: Event log of the most recent traced run (``run(trace=True)``),
    #: consumed by the hipsan regression sweep.
    last_trace = None

    #: APU of the most recent run, kept so the chaos harness can check
    #: post-run invariants (leaked frames, page-table consistency).
    last_apu = None

    #: Map from port model to the method names implementing it, used by
    #: ``repro advise --apps`` to bucket static findings per port.
    #: Apps whose entry points differ (nn, heartwall) override this.
    advise_ports: Dict[str, Tuple[str, ...]] = {
        "explicit": ("_run_explicit",),
        "managed": ("_run_unified",),
    }

    def default_params(self) -> Dict[str, int]:
        """Problem-size parameters (overridable per run)."""
        return {}

    @abc.abstractmethod
    def _run(
        self,
        variant: str,
        runtime: HipRuntime,
        profiler: MemoryUsageProfiler,
        params: Dict[str, int],
    ) -> float:
        """Execute one variant; returns the output checksum.

        Implementations bracket the main compute phase with
        ``runtime.apu.clock.region("compute")``.
        """

    def needs_xnack(self, variant: str) -> bool:
        """Whether the variant relies on GPU fault replay.

        Unified variants touch pageable memory from the GPU (nn's
        std::vector is the paper's example) and therefore run with
        HSA_XNACK=1, as the paper's unified configurations do.
        """
        return variant != "explicit"

    def run(
        self,
        variant: str = "explicit",
        memory_gib: Optional[int] = 16,
        params: Optional[Dict[str, int]] = None,
        seed: int = 0x1300A,
        trace: bool = False,
        inject=None,
    ) -> AppResult:
        """Run one variant on a fresh APU and collect the Fig. 11 metrics.

        With ``trace=True`` the runtime records a hipsan event log,
        available afterwards as :attr:`last_trace`.  *inject* attaches
        an :class:`~repro.inject.InjectionPlan` to the run's APU (the
        chaos harness's entry point); the APU itself stays reachable as
        :attr:`last_apu` for post-run invariant checks.
        """
        if variant not in self.variants:
            raise ValueError(
                f"{self.name} supports variants {self.variants}, "
                f"got {variant!r}"
            )
        merged = dict(self.default_params())
        if params:
            unknown = set(params) - set(merged)
            if unknown:
                raise ValueError(f"unknown params for {self.name}: {unknown}")
            merged.update(params)
        runtime = make_runtime(
            memory_gib, xnack=self.needs_xnack(variant), seed=seed,
            trace=trace, inject=inject,
        )
        self.last_trace = runtime.apu.trace
        self.last_apu = runtime.apu
        apu = runtime.apu
        profiler = MemoryUsageProfiler(apu)
        start = apu.clock.now_ns
        try:
            with apu.clock.region("total"):
                checksum = self._run(variant, runtime, profiler, merged)
                runtime.hipDeviceSynchronize()
            profiler.sample()
        finally:
            # Teardown: the apps borrow the runtime's memory arena and
            # leave their buffers live; the harness releases everything
            # here, after the measured window, the way process exit does
            # for the real Rodinia binaries.  hipFree is expensive at
            # these sizes (Fig. 6), so freeing inside the window would
            # distort the Fig. 11 ratios.  Running in a finally block
            # means a faulted run (injected fatal error) still returns
            # its frames — the no-leak invariant the chaos harness
            # checks.
            end_ns = apu.clock.now_ns
            for allocation in list(apu.memory.allocations):
                apu.memory.free(allocation)
        total_s = (end_ns - start) / 1e9
        compute_s = apu.clock.region_ns("compute") / 1e9
        return AppResult(
            app=self.name,
            variant=variant,
            total_time_s=total_s,
            compute_time_s=compute_s,
            peak_memory_bytes=profiler.peak_bytes,
            checksum=float(checksum),
        )

    def compare_variants(
        self,
        variants: Optional[Iterable[str]] = None,
        memory_gib: Optional[int] = 16,
        params: Optional[Dict[str, int]] = None,
    ) -> Dict[str, Comparison]:
        """Run the explicit baseline plus *variants*; return Fig. 11 rows."""
        baseline = self.run("explicit", memory_gib=memory_gib, params=params)
        chosen = list(variants) if variants is not None else [
            v for v in self.variants if v != "explicit"
        ]
        out: Dict[str, Comparison] = {}
        for variant in chosen:
            result = self.run(variant, memory_gib=memory_gib, params=params)
            out[variant] = compare(baseline, result)
        return out
