"""nn — k-nearest-neighbours over hurricane records (Rodinia).

Builds a large record set (latitude/longitude pairs) on the CPU — in the
original via ``std::vector`` reading from data files — then computes the
Euclidean distance of every record to a query point on the GPU and picks
the k smallest on the CPU.

Porting hazards exercised (paper Sections 3.3 and 6):

* **Memory usage consideration** — the original sizes the dataset from
  ``hipGetMemInfo``; the unified port drops the check (the paper's
  "pragmatic solution") since the counter is unreliable on UPM.
* **Hidden allocator** — the unified port keeps the default
  ``std::vector``; its pageable, CPU-touched pages make the GPU take a
  major/minor fault per page inside the kernel, the Fig. 11 compute-time
  outlier.  The ``std::allocator`` fix (a hipMalloc-backed vector) is
  provided as the third variant, ``unified-hipalloc``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..porting.containers import UnifiedVector
from ..porting.strategies import naive_free_memory
from ..runtime.hip import HipRuntime
from ..runtime.kernels import BufferAccess, KernelSpec
from .common import RodiniaApp, simulate_io

#: Query point (the paper's runs search around a fixed coordinate).
QUERY_LAT, QUERY_LNG = 30.0, 90.0

#: Fitted per-record kernel cost (one distance evaluation).
RECORD_NS = 0.02

#: File-read chunking of the record loader (elements per read).
CHUNK_ELEMENTS = 1 << 20


class NearestNeighbor(RodiniaApp):
    """The nn workload: explicit, unified (default vector), and the
    std::allocator-style fixed unified variant."""

    name = "nn"
    variants = ("explicit", "unified", "unified-hipalloc")
    advise_ports = {
        "explicit": ("_compute_explicit",),
        "managed": ("_compute_unified",),
    }

    def default_params(self) -> Dict[str, int]:
        return {"records": 1 << 25, "k": 8}

    def _run(self, variant, runtime, profiler, params):
        records, k = params["records"], params["k"]
        apu = runtime.apu

        vector_allocator = "hipMalloc" if variant == "unified-hipalloc" else "malloc"
        vector = self._build_records(runtime, records, vector_allocator)
        profiler.sample()

        if variant == "explicit":
            checksum = self._compute_explicit(runtime, profiler, vector, k)
        else:
            checksum = self._compute_unified(runtime, profiler, vector, k)
        return checksum

    # ------------------------------------------------------------------

    def _build_records(
        self, runtime: HipRuntime, records: int, allocator: str
    ) -> UnifiedVector:
        """I/O phase: stream the record files into a growing vector."""
        apu = runtime.apu
        rng = np.random.default_rng(41)
        vector = UnifiedVector(apu, np.float32, allocator=allocator)
        remaining = records * 2  # lat/lng interleaved
        while remaining > 0:
            chunk = min(CHUNK_ELEMENTS, remaining)
            values = rng.random(chunk, dtype=np.float32) * 180.0
            vector.extend(values)
            simulate_io(apu, chunk * 4)
            remaining -= chunk
        return vector

    def _distance_math(self, coords: np.ndarray, k: int) -> float:
        lat = coords[0::2]
        lng = coords[1::2]
        dist = np.sqrt((lat - QUERY_LAT) ** 2 + (lng - QUERY_LNG) ** 2)
        nearest = np.partition(dist, k)[:k]
        return float(np.sort(nearest).sum())

    def _kernel(self, records_alloc, dist_alloc, nbytes: int, count: int):
        return KernelSpec(
            "euclid",
            [
                BufferAccess(records_alloc, "read", size_bytes=nbytes),
                BufferAccess(dist_alloc, "write"),
            ],
            compute_ns=count * RECORD_NS,
        )

    # ------------------------------------------------------------------

    def _compute_explicit(self, runtime, profiler, vector, k):
        apu = runtime.apu
        count = vector.size // 2
        nbytes = vector.size * 4

        # The original sizes its dataset from the GPU free-memory query —
        # fine on a discrete GPU, misleading on UPM (Section 3.3).
        if nbytes > naive_free_memory(runtime):
            raise MemoryError("dataset exceeds reported device memory")

        # Staging: duplicate the records on the "device" and pre-allocate
        # the host-side result array (outside the timed compute phase,
        # where the original's timers sit).
        d_records = runtime.hipMalloc(nbytes, name="d_records")
        d_dist = runtime.array(count, np.float32, "hipMalloc", name="dist")
        h_dist = runtime.array(count, np.float32, "malloc", name="h_dist")
        apu.touch(h_dist.allocation, "cpu")
        runtime.hipMemcpy(d_records, vector.allocation, nbytes)
        profiler.sample()

        with apu.clock.region("compute"):
            runtime.launchKernel(
                self._kernel(d_records, d_dist.allocation, nbytes, count)
            )
            runtime.hipDeviceSynchronize()
            runtime.hipMemcpy(h_dist, d_dist)
            checksum = self._distance_math(vector.data, k)
            profiler.sample()
        simulate_io(apu, 4096)  # print the k nearest records
        return checksum

    def _compute_unified(self, runtime, profiler, vector, k):
        apu = runtime.apu
        count = vector.size // 2
        nbytes = vector.size * 4

        dist = runtime.array(count, np.float32, "hipMalloc", name="dist")
        profiler.sample()
        with apu.clock.region("compute"):
            # The GPU reads the vector's memory directly.  With the
            # default allocator those are pageable CPU-touched pages:
            # the kernel eats one GPU fault per page (the outlier).
            runtime.launchKernel(
                self._kernel(vector.allocation, dist.allocation, nbytes, count)
            )
            runtime.hipDeviceSynchronize()
            checksum = self._distance_math(vector.data, k)
            profiler.sample()
        simulate_io(apu, 4096)
        return checksum
