"""backprop — feed-forward neural network training (Rodinia).

One training pass of a two-layer perceptron: forward propagation of an
input layer through a 16-unit hidden layer, error backpropagation, and a
weight-adjustment pass.  The explicit variant copies the input and
weight matrices to the device, runs the two kernels, and copies the
adjusted weights back — several transfers inside the main compute phase.
The unified variant allocates the buffers once with hipMalloc and
eliminates every copy, which is where the paper's 35 % compute-time and
19 % total-time reductions come from (Fig. 11).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..runtime.arrays import DeviceArray
from ..runtime.hip import HipRuntime
from ..runtime.kernels import BufferAccess, KernelSpec
from .common import RodiniaApp

#: Hidden-layer width (fixed at 16 in the Rodinia code).
HIDDEN = 16

#: Fitted per-connection kernel cost: the layerforward/adjust kernels are
#: reduction-heavy and run far below peak FLOPs.  Calibrated so the
#: explicit variant's copy share reproduces Fig. 11's backprop deltas
#: (compute -35 %, total -19 % when the copies are removed).
CONNECTION_NS = 0.30

#: Learning rate / momentum of the Rodinia implementation.
ETA, MOMENTUM = 0.3, 0.3


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


class Backprop(RodiniaApp):
    """The backprop workload in both memory models."""

    name = "backprop"

    def default_params(self) -> Dict[str, int]:
        return {"input_units": 1 << 21}

    def _run(self, variant, runtime, profiler, params):
        if variant == "explicit":
            return self._run_explicit(runtime, profiler, params)
        return self._run_unified(runtime, profiler, params)

    # ------------------------------------------------------------------

    def _generate(self, runtime: HipRuntime, n: int, allocator: str):
        """Setup phase: read the face dataset, allocate and initialise."""
        from .common import simulate_io

        rng = np.random.default_rng(7)
        x = runtime.array(n, np.float32, allocator, name="input")
        w1 = runtime.array((n, HIDDEN), np.float32, allocator, name="w1")
        w2 = runtime.array(HIDDEN, np.float32, allocator, name="w2")
        simulate_io(runtime.apu, x.nbytes + w1.nbytes)  # dataset + net file
        x.np[:] = rng.random(n, dtype=np.float32)
        w1.np[:] = rng.random((n, HIDDEN), dtype=np.float32) - 0.5
        w2.np[:] = rng.random(HIDDEN, dtype=np.float32) - 0.5
        # The init loops stream-write the buffers from one CPU thread.
        init = KernelSpec(
            "init",
            [
                BufferAccess(x.allocation, "write"),
                BufferAccess(w1.allocation, "write"),
                BufferAccess(w2.allocation, "write"),
            ],
        )
        runtime.runCpuKernel(init, threads=1)
        return x, w1, w2

    def _kernels(self, x_buf, w1_buf, h_buf) -> tuple[KernelSpec, KernelSpec]:
        n = x_buf.allocation.size_bytes // 4
        connections = n * HIDDEN
        forward = KernelSpec(
            "bpnn_layerforward",
            [
                BufferAccess(x_buf.allocation, "read"),
                BufferAccess(w1_buf.allocation, "read"),
                BufferAccess(h_buf.allocation, "write"),
            ],
            compute_ns=connections * CONNECTION_NS,
        )
        adjust = KernelSpec(
            "bpnn_adjust_weights",
            [
                BufferAccess(x_buf.allocation, "read"),
                BufferAccess(w1_buf.allocation, "readwrite"),
            ],
            compute_ns=connections * CONNECTION_NS,
        )
        return forward, adjust

    def _train_math(self, x, w1, w2):
        """The numerically real training step (shared by both variants).

        Operates on copies so simulated copies cannot alias the result.
        """
        n = len(x)
        w1, w2 = w1.copy(), w2.copy()
        hidden = _sigmoid(x @ w1 / n)
        output = _sigmoid(hidden @ w2)
        target = 0.1
        delta_out = output * (1.0 - output) * (target - output)
        delta_hidden = hidden * (1.0 - hidden) * (w2 * delta_out)
        w2 += ETA * delta_out * hidden
        w1 += ETA * np.outer(x, delta_hidden).astype(np.float32)
        return w1, w2, float(output)

    # ------------------------------------------------------------------

    def _run_explicit(self, runtime: HipRuntime, profiler, params):
        n = params["input_units"]
        apu = runtime.apu
        h_x, h_w1, h_w2 = self._generate(runtime, n, "malloc")
        profiler.sample()

        with apu.clock.region("compute"):
            d_x = runtime.array(n, np.float32, "hipMalloc", name="d_input")
            d_w1 = runtime.array((n, HIDDEN), np.float32, "hipMalloc", name="d_w1")
            d_h = runtime.array(HIDDEN, np.float32, "hipMalloc", name="d_hidden")
            h_hidden = runtime.array(HIDDEN, np.float32, "malloc", name="hidden")
            profiler.sample()
            runtime.hipMemcpy(d_x, h_x)
            runtime.hipMemcpy(d_w1, h_w1)
            forward, adjust = self._kernels(d_x, d_w1, d_h)
            runtime.launchKernel(forward)
            runtime.hipDeviceSynchronize()
            runtime.hipMemcpy(h_hidden, d_h)  # hidden partial sums back
            new_w1, new_w2, out = self._train_math(h_x.np, h_w1.np, h_w2.np)
            runtime.launchKernel(adjust)
            runtime.hipDeviceSynchronize()
            runtime.hipMemcpy(h_w1, d_w1)  # adjusted weights back
            profiler.sample()
        h_w1.np[:] = new_w1
        h_w2.np[:] = new_w2
        self._write_output(runtime, h_w1)
        return float(np.abs(new_w1).sum() + np.abs(new_w2).sum() + out)

    @staticmethod
    def _write_output(runtime: HipRuntime, weights: DeviceArray) -> None:
        """facetrain's output phase: dump the trained network to disk."""
        from .common import simulate_io

        simulate_io(runtime.apu, weights.nbytes)

    def _run_unified(self, runtime: HipRuntime, profiler, params):
        n = params["input_units"]
        apu = runtime.apu
        x, w1, w2 = self._generate(runtime, n, "hipMalloc")
        profiler.sample()

        with apu.clock.region("compute"):
            hidden = runtime.array(HIDDEN, np.float32, "hipMalloc", name="hidden")
            forward, adjust = self._kernels(x, w1, hidden)
            runtime.launchKernel(forward)
            runtime.hipDeviceSynchronize()
            new_w1, new_w2, out = self._train_math(x.np, w1.np, w2.np)
            runtime.launchKernel(adjust)
            runtime.hipDeviceSynchronize()
            profiler.sample()
        w1.np[:] = new_w1
        w2.np[:] = new_w2
        self._write_output(runtime, w1)
        return float(np.abs(new_w1).sum() + np.abs(new_w2).sum() + out)
