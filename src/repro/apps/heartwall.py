"""heartwall — ultrasound heart-wall tracking (Rodinia).

Tracks sample points on heart-wall boundaries through a sequence of
ultrasound frames.  Each frame is pre-processed on the CPU and consumed
by a GPU tracking kernel; the original pipelines the next frame's
pre-processing with the current frame's GPU work, and keeps both host
and device data in *static* arrays.

Three variants, as in the paper (Section 6):

* **explicit** — the hipified baseline: static-sized host/device frame
  buffers, async H2D copy overlapping the kernel.
* **unified-v1** — the minimal port: the static frame buffers become
  ``__managed__`` variables.  Managed statics live in an uncacheable
  aperture with ~103 GB/s bandwidth (Fig. 3), costing ~18 % total time.
* **unified-v2** — the restructured port: dynamic hipMalloc allocations
  with :class:`~repro.porting.strategies.DoubleBuffer` and stream-event
  synchronisation, reaching parity with the explicit version.  Peak
  memory is unchanged: two unified buffers replace host+device pairs.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..porting.strategies import DoubleBuffer, event_synchronised_swap
from ..runtime.hip import HipRuntime
from ..runtime.kernels import BufferAccess, KernelSpec
from .common import RodiniaApp, simulate_io

#: Tracking template radius (the kernel correlates a patch per point).
TEMPLATE = 8

#: Fitted per-pixel cost of the tracking kernel's correlation sweeps.
PIXEL_NS = 0.03

#: Fitted per-pixel cost of the CPU pre-processing (SRAD-like filter).
#: Pre-processing is heartwall's pipeline bottleneck: when it overlaps
#: the GPU work (explicit async copies, unified-v2 double buffering) the
#: per-frame time is prep-bound, which is why v2 matches the explicit
#: version while the non-overlapped v1 pays the managed-static kernel
#: penalty on top (Fig. 11).
PREP_NS = 0.25


def _preprocess_frame(rng: np.random.Generator, shape) -> np.ndarray:
    """Generate + filter one ultrasound frame (numerically real)."""
    frame = rng.random(shape, dtype=np.float32)
    # Cheap separable smoothing, standing in for the SRAD pre-filter.
    frame = (frame + np.roll(frame, 1, axis=0) + np.roll(frame, 1, axis=1)) / 3.0
    return frame


def _track(frame: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Move each tracked point toward its patch's brightest pixel."""
    h, w = frame.shape
    out = points.copy()
    for i, (y, x) in enumerate(points):
        y0, y1 = max(0, int(y) - TEMPLATE), min(h, int(y) + TEMPLATE + 1)
        x0, x1 = max(0, int(x) - TEMPLATE), min(w, int(x) + TEMPLATE + 1)
        patch = frame[y0:y1, x0:x1]
        dy, dx = np.unravel_index(int(patch.argmax()), patch.shape)
        out[i, 0] = np.clip(y0 + dy, TEMPLATE, h - TEMPLATE - 1)
        out[i, 1] = np.clip(x0 + dx, TEMPLATE, w - TEMPLATE - 1)
    return out


class Heartwall(RodiniaApp):
    """The heartwall workload: explicit, managed-static, restructured."""

    name = "heartwall"
    variants = ("explicit", "unified-v1", "unified-v2")
    advise_ports = {
        "explicit": ("_run_explicit",),
        "managed": ("_run_managed_static", "_run_double_buffered"),
    }

    def default_params(self) -> Dict[str, int]:
        return {"frame_dim": 1024, "frames": 40, "points": 64}

    def _run(self, variant, runtime, profiler, params):
        if variant == "explicit":
            return self._run_explicit(runtime, profiler, params)
        if variant == "unified-v1":
            return self._run_managed_static(runtime, profiler, params)
        return self._run_double_buffered(runtime, profiler, params)

    # ------------------------------------------------------------------

    def _setup(self, runtime: HipRuntime, params):
        """Read the AVI header and seed the tracked points."""
        dim = params["frame_dim"]
        simulate_io(runtime.apu, dim * dim * 4)  # first frame decode
        rng = np.random.default_rng(53)
        points = rng.integers(
            TEMPLATE, dim - TEMPLATE, size=(params["points"], 2)
        ).astype(np.int64)
        return rng, points

    def _prep_spec(self, target_alloc, dim: int) -> KernelSpec:
        return KernelSpec(
            "frame_preprocess",
            [BufferAccess(target_alloc, "write")],
            compute_ns=dim * dim * PREP_NS,
        )

    def _track_spec(self, frame_alloc, dim: int, passes: int = 2) -> KernelSpec:
        return KernelSpec(
            "heartwall_kernel",
            [BufferAccess(frame_alloc, "read", passes=passes)],
            compute_ns=dim * dim * PIXEL_NS,
        )

    # ------------------------------------------------------------------

    def _run_explicit(self, runtime: HipRuntime, profiler, params):
        dim, frames = params["frame_dim"], params["frames"]
        apu = runtime.apu
        rng, points = self._setup(runtime, params)
        # Static-sized frame buffers: host staging + device copy.
        h_frame = runtime.array((dim, dim), np.float32, "malloc", name="h_frame")
        d_frame = runtime.array((dim, dim), np.float32, "hipMalloc", name="d_frame")
        apu.touch(h_frame.allocation, "cpu")
        copy_stream = runtime.hipStreamCreate("copy")
        profiler.sample()

        with apu.clock.region("compute"):
            for _ in range(frames):
                # CPU pre-processing of the next frame overlaps the GPU
                # kernel still running on the previous one.
                frame = _preprocess_frame(rng, (dim, dim))
                h_frame.np[:] = frame
                runtime.runCpuKernel(self._prep_spec(h_frame.allocation, dim))
                runtime.hipMemcpyAsync(d_frame, h_frame, stream=copy_stream)
                # The kernel (default stream) waits for the copy via an
                # event; the host moves straight to the next frame's prep.
                copied = runtime.hipEventCreate("copied")
                runtime.hipEventRecord(copied, copy_stream)
                runtime.hipStreamWaitEvent(None, copied)
                runtime.launchKernel(self._track_spec(d_frame.allocation, dim))
                # The next iteration's copy must not overwrite d_frame
                # while this kernel still reads it: the copy stream waits
                # on an event recorded after the launch.  Pre-processing
                # dominates the per-frame time, so the wait is free.
                tracked = runtime.hipEventCreate("tracked")
                runtime.hipEventRecord(tracked)
                runtime.hipStreamWaitEvent(copy_stream, tracked)
                points = _track(frame, points)
            runtime.hipDeviceSynchronize()
            profiler.sample()
        return float(points.sum())

    def _run_managed_static(self, runtime: HipRuntime, profiler, params):
        dim, frames = params["frame_dim"], params["frames"]
        apu = runtime.apu
        rng, points = self._setup(runtime, params)
        # The minimal port: the static arrays become __managed__ — one
        # buffer, no copies, but every access goes through the uncached
        # aperture (Fig. 3's 103 GB/s tier).
        frame_buf = runtime.array(
            (dim, dim), np.float32, "managed_static", name="managed_frame"
        )
        profiler.sample()

        with apu.clock.region("compute"):
            for _ in range(frames):
                frame = _preprocess_frame(rng, (dim, dim))
                frame_buf.np[:] = frame
                runtime.runCpuKernel(self._prep_spec(frame_buf.allocation, dim))
                runtime.launchKernel(self._track_spec(frame_buf.allocation, dim))
                runtime.hipDeviceSynchronize()
                points = _track(frame, points)
            runtime.hipDeviceSynchronize()
            profiler.sample()
        return float(points.sum())

    def _run_double_buffered(self, runtime: HipRuntime, profiler, params):
        dim, frames = params["frame_dim"], params["frames"]
        apu = runtime.apu
        rng, points = self._setup(runtime, params)
        # The restructured port: two dynamic unified buffers swapped per
        # frame, with stream events ordering producer and consumer.
        front = runtime.array((dim, dim), np.float32, "hipMalloc", name="front")
        back = runtime.array((dim, dim), np.float32, "hipMalloc", name="back")
        buffers = DoubleBuffer(front, back)
        compute_stream = runtime.hipStreamCreate("compute")
        # Per-buffer producer guards: the event recorded after the last
        # kernel that read a buffer; the CPU waits on it before
        # overwriting that buffer again (two iterations later).
        guards: Dict[int, object] = {}
        profiler.sample()

        with apu.clock.region("compute"):
            for _ in range(frames):
                frame = _preprocess_frame(rng, (dim, dim))
                target = buffers.back
                guard = guards.get(id(target.allocation))
                if guard is not None:
                    # In steady state the consumer finished long ago, so
                    # this wait costs nothing — it only orders the reuse.
                    runtime.hipEventSynchronize(guard)
                target.np[:] = frame
                runtime.runCpuKernel(self._prep_spec(target.allocation, dim))
                event = event_synchronised_swap(runtime, buffers, compute_stream)
                runtime.hipStreamWaitEvent(compute_stream, event)
                runtime.launchKernel(
                    self._track_spec(buffers.front.allocation, dim),
                    compute_stream,
                )
                done = runtime.hipEventCreate("tracked")
                runtime.hipEventRecord(done, compute_stream)
                guards[id(buffers.front.allocation)] = done
                points = _track(frame, points)
            runtime.hipStreamSynchronize(compute_stream)
            profiler.sample()
        return float(points.sum())
