"""srad_v1 — speckle-reducing anisotropic diffusion (Rodinia).

An iterative image-denoising stencil: each iteration computes diffusion
coefficients from local gradients and then updates the image.  The
explicit variant performs only a small transfer per iteration (the
statistics needed for the diffusion coefficient), so runtime is
dominated by kernel execution and the unified variant's compute time is
essentially unchanged (Fig. 11).  The port exercises two Section 3.3
strategies: merged buffers for the partial per-iteration transfers, and
a *stack variable* — the loop-stop flag written by a GPU kernel — which
is safe to share because the host synchronises before reading it.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..porting.strategies import StackFlag
from ..runtime.hip import HipRuntime
from ..runtime.kernels import BufferAccess, KernelSpec
from .common import RodiniaApp, simulate_io

#: Diffusion coefficient scale of the Rodinia code.
LAMBDA = 0.5

#: Fitted per-pixel cost of one iteration's two kernels combined
#: (kernel execution dominates srad_v1's runtime, Fig. 11).
PIXEL_NS = 0.15


def _srad_iteration(image: np.ndarray) -> np.ndarray:
    """One numerically real SRAD update (reflecting boundaries)."""
    north = np.vstack([image[:1], image[:-1]])
    south = np.vstack([image[1:], image[-1:]])
    west = np.hstack([image[:, :1], image[:, :-1]])
    east = np.hstack([image[:, 1:], image[:, -1:]])

    mean = image.mean()
    var = image.var()
    q0_sq = var / (mean * mean + 1e-12)

    grad = north + south + east + west - 4.0 * image
    num = (north - image) ** 2 + (south - image) ** 2
    num += (east - image) ** 2 + (west - image) ** 2
    denom = image * image + 1e-12
    q_sq = (0.5 * num / denom - (0.0625 * (grad / image) ** 2)) / (
        (1.0 + 0.25 * grad / image) ** 2 + 1e-12
    )
    coeff = 1.0 / (1.0 + (q_sq - q0_sq) / (q0_sq * (1.0 + q0_sq) + 1e-12))
    coeff = np.clip(coeff, 0.0, 1.0)
    return image + (LAMBDA / 4.0) * coeff * grad


class SradV1(RodiniaApp):
    """The srad_v1 workload in both memory models."""

    name = "srad_v1"

    def default_params(self) -> Dict[str, int]:
        return {"dim": 1024, "iterations": 40}

    def _run(self, variant, runtime, profiler, params):
        if variant == "explicit":
            return self._run_explicit(runtime, profiler, params)
        return self._run_unified(runtime, profiler, params)

    # ------------------------------------------------------------------

    def _load(self, runtime: HipRuntime, dim: int, allocator: str):
        rng = np.random.default_rng(31)
        image = runtime.array((dim, dim), np.float32, allocator, name="image")
        image.np[:] = np.exp(
            rng.random((dim, dim), dtype=np.float32)
        )
        simulate_io(runtime.apu, image.nbytes)
        init = KernelSpec("read_pgm", [BufferAccess(image.allocation, "write")])
        runtime.runCpuKernel(init, threads=1)
        return image

    def _iteration_kernels(self, image_alloc, coeff_alloc, dim: int):
        prepare = KernelSpec(
            "srad_kernel1",  # gradients + diffusion coefficient
            [
                BufferAccess(image_alloc, "read"),
                BufferAccess(coeff_alloc, "write"),
            ],
            compute_ns=dim * dim * PIXEL_NS * 0.5,
        )
        update = KernelSpec(
            "srad_kernel2",  # divergence + image update
            [
                BufferAccess(coeff_alloc, "read"),
                BufferAccess(image_alloc, "readwrite"),
            ],
            compute_ns=dim * dim * PIXEL_NS * 0.5,
        )
        return prepare, update

    # ------------------------------------------------------------------

    def _run_explicit(self, runtime: HipRuntime, profiler, params):
        dim, iterations = params["dim"], params["iterations"]
        apu = runtime.apu
        h_image = self._load(runtime, dim, "malloc")
        h_stats = runtime.array(2, np.float32, "malloc", name="stats")
        d_image = runtime.array((dim, dim), np.float32, "hipMalloc")
        d_coeff = runtime.array((dim, dim), np.float32, "hipMalloc")
        d_stats = runtime.array(2, np.float32, "hipMalloc")
        profiler.sample()

        result = h_image.np.astype(np.float64)
        with apu.clock.region("compute"):
            runtime.hipMemcpy(d_image, h_image)
            prepare, update = self._iteration_kernels(
                d_image.allocation, d_coeff.allocation, dim
            )
            for _ in range(iterations):
                # Per-iteration partial transfer: image statistics for q0.
                runtime.hipMemcpy(h_stats, d_stats)
                runtime.launchKernel(prepare)
                runtime.launchKernel(update)
                result = _srad_iteration(result)
            runtime.hipDeviceSynchronize()
            d_image.np[:] = result.astype(np.float32)
            runtime.hipMemcpy(h_image, d_image)
            profiler.sample()
        simulate_io(apu, h_image.nbytes)
        return float(h_image.np.mean())

    def _run_unified(self, runtime: HipRuntime, profiler, params):
        dim, iterations = params["dim"], params["iterations"]
        apu = runtime.apu
        image = self._load(runtime, dim, "hipMalloc")
        coeff = runtime.array((dim, dim), np.float32, "hipMalloc")
        profiler.sample()

        result = image.np.astype(np.float64)
        with apu.clock.region("compute"):
            prepare, update = self._iteration_kernels(
                image.allocation, coeff.allocation, dim
            )
            # The loop-stop flag lives on the host stack and is written
            # by the GPU kernel; safe under the synchronise-before-read
            # discipline (Section 3.3, Stack Variables).
            with StackFlag(runtime, initial=1.0) as continue_flag:
                i = 0
                while continue_flag.read() and i < iterations:
                    runtime.launchKernel(prepare)
                    kernel = runtime.launchKernel(update)
                    result = _srad_iteration(result)
                    i += 1
                    continue_flag.gpu_write(
                        1.0 if i < iterations else 0.0
                    )
                runtime.hipDeviceSynchronize()
            image.np[:] = result.astype(np.float32)
            profiler.sample()
        simulate_io(apu, image.nbytes)
        return float(image.np.mean())
