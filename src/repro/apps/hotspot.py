"""hotspot — thermal simulation stencil (Rodinia).

Iteratively estimates processor temperature from power dissipation on a
2D grid: each step updates every cell from its four neighbours, its own
temperature, and the local power draw.  The explicit variant copies the
temperature and power grids to the device before the iteration loop and
the result back after it; the unified variant runs the same kernels on
single shared buffers.  Hotspot has no porting hazards (no concurrent
access, statics, or hidden allocators), making it the plain-sailing case
of Fig. 11: competitive time, duplicated grids merged.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..runtime.hip import HipRuntime
from ..runtime.kernels import BufferAccess, KernelSpec
from .common import RodiniaApp, simulate_io

#: Physical constants of the Rodinia implementation (scaled).
CAP, RX, RY, RZ = 0.5, 1.0, 1.0, 4.75
AMB_TEMP = 80.0

#: Fitted per-cell kernel cost (stencil ALU work per grid point).
CELL_NS = 0.02


def _stencil_step(temp: np.ndarray, power: np.ndarray) -> np.ndarray:
    """One numerically real hotspot update (edge cells clamp outward)."""
    north = np.vstack([temp[:1], temp[:-1]])
    south = np.vstack([temp[1:], temp[-1:]])
    west = np.hstack([temp[:, :1], temp[:, :-1]])
    east = np.hstack([temp[:, 1:], temp[:, -1:]])
    delta = (CAP) * (
        power
        + (south + north - 2.0 * temp) / RY
        + (east + west - 2.0 * temp) / RX
        + (AMB_TEMP - temp) / RZ
    )
    return temp + delta * 0.001


class Hotspot(RodiniaApp):
    """The hotspot workload in both memory models."""

    name = "hotspot"

    def default_params(self) -> Dict[str, int]:
        return {"grid": 2048, "iterations": 60}

    def _run(self, variant, runtime, profiler, params):
        if variant == "explicit":
            return self._run_explicit(runtime, profiler, params)
        return self._run_unified(runtime, profiler, params)

    # ------------------------------------------------------------------

    def _load_inputs(self, runtime: HipRuntime, grid: int, allocator: str):
        """Read the temperature and power grids from disk (I/O phase)."""
        rng = np.random.default_rng(11)
        temp = runtime.array((grid, grid), np.float32, allocator, name="temp")
        power = runtime.array((grid, grid), np.float32, allocator, name="power")
        temp.np[:] = 320.0 + 10.0 * rng.random((grid, grid), dtype=np.float32)
        power.np[:] = rng.random((grid, grid), dtype=np.float32)
        simulate_io(runtime.apu, temp.nbytes + power.nbytes)
        init = KernelSpec(
            "read_input",
            [
                BufferAccess(temp.allocation, "write"),
                BufferAccess(power.allocation, "write"),
            ],
        )
        runtime.runCpuKernel(init, threads=1)
        return temp, power

    def _kernel(self, temp_alloc, power_alloc, out_alloc, grid: int) -> KernelSpec:
        return KernelSpec(
            "hotspot_kernel",
            [
                BufferAccess(temp_alloc, "read"),
                BufferAccess(power_alloc, "read"),
                BufferAccess(out_alloc, "write"),
            ],
            compute_ns=grid * grid * CELL_NS,
        )

    def _iterate(self, runtime, temp_np, power_np, iterations: int,
                 spec_ab: KernelSpec, spec_ba: KernelSpec) -> np.ndarray:
        result = temp_np
        for i in range(iterations):
            runtime.launchKernel(spec_ab if i % 2 == 0 else spec_ba)
            result = _stencil_step(result, power_np)
        runtime.hipDeviceSynchronize()
        return result

    # ------------------------------------------------------------------

    def _run_explicit(self, runtime: HipRuntime, profiler, params):
        grid, iterations = params["grid"], params["iterations"]
        apu = runtime.apu
        h_temp, h_power = self._load_inputs(runtime, grid, "malloc")
        profiler.sample()

        with apu.clock.region("compute"):
            d_temp = runtime.array((grid, grid), np.float32, "hipMalloc")
            d_power = runtime.array((grid, grid), np.float32, "hipMalloc")
            d_out = runtime.array((grid, grid), np.float32, "hipMalloc")
            profiler.sample()
            runtime.hipMemcpy(d_temp, h_temp)
            runtime.hipMemcpy(d_power, h_power)
            spec_ab = self._kernel(
                d_temp.allocation, d_power.allocation, d_out.allocation, grid
            )
            spec_ba = self._kernel(
                d_out.allocation, d_power.allocation, d_temp.allocation, grid
            )
            result = self._iterate(
                runtime, h_temp.np, h_power.np, iterations, spec_ab, spec_ba
            )
            d_final = d_out if iterations % 2 else d_temp
            d_final.np[:] = result
            runtime.hipMemcpy(h_temp, d_final)
            profiler.sample()
        simulate_io(apu, h_temp.nbytes)  # write output.out
        return float(h_temp.np.mean())

    def _run_unified(self, runtime: HipRuntime, profiler, params):
        grid, iterations = params["grid"], params["iterations"]
        apu = runtime.apu
        temp, power = self._load_inputs(runtime, grid, "hipMalloc")
        profiler.sample()

        with apu.clock.region("compute"):
            out = runtime.array((grid, grid), np.float32, "hipMalloc")
            profiler.sample()
            spec_ab = self._kernel(
                temp.allocation, power.allocation, out.allocation, grid
            )
            spec_ba = self._kernel(
                out.allocation, power.allocation, temp.allocation, grid
            )
            result = self._iterate(
                runtime, temp.np, power.np, iterations, spec_ab, spec_ba
            )
            final = out if iterations % 2 else temp
            final.np[:] = result
            profiler.sample()
        simulate_io(apu, temp.nbytes)
        return float(result.mean())
