"""Six Rodinia workloads ported to the unified memory model (Section 6).

Each app implements the explicit baseline and one or more unified
variants; ``ALL_APPS`` is the registry used by the Fig. 11 bench.
"""

from .backprop import Backprop
from .common import AppResult, Comparison, RodiniaApp, compare, simulate_io
from .dwt2d import Dwt2d
from .heartwall import Heartwall
from .hotspot import Hotspot
from .nn import NearestNeighbor
from .srad import SradV1

#: Registry of the paper's six applications.
ALL_APPS = {
    "backprop": Backprop,
    "dwt2d": Dwt2d,
    "heartwall": Heartwall,
    "hotspot": Hotspot,
    "nn": NearestNeighbor,
    "srad_v1": SradV1,
}

__all__ = [
    "ALL_APPS",
    "AppResult",
    "Backprop",
    "Comparison",
    "Dwt2d",
    "Heartwall",
    "Hotspot",
    "NearestNeighbor",
    "RodiniaApp",
    "SradV1",
    "compare",
    "simulate_io",
]
