"""NPS-aware physical placement and the local/remote cost split.

NPS4 turns the single interleaved pool into four NUMA domains, each a
contiguous physical quadrant interleaved over one IOD's two stacks
(:class:`repro.hw.hbm.HBMSubsystem`).  Placement then matters the same
way it does across sockets: an allocation serviced from the local
quadrant avoids crossing IODs, which is where the partitioning guide's
5-10% stream-bandwidth uplift comes from, while remote-quadrant traffic
pays an Infinity Fabric hop (lower bandwidth, extra latency).

:class:`PartitionPlacement` is the policy object: it pins each logical
device to its local domain's frame window and forwards allocations with
the matching ``frame_range``, so partition-local buffers come out of
the right quadrant by construction.  The module-level functions turn a
measured local fraction into effective bandwidth/latency, reading their
coefficients from :class:`repro.hw.config.PartitionCostModel`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.physical import PhysicalMemory
from ..hw.config import MI300AConfig
from ..hw.hbm import HBMSubsystem
from ..perf.bandwidth import BufferTraits, gpu_stream_bandwidth
from .logical_device import LogicalDevice, enumerate_logical_devices
from .modes import ComputePartition, PartitionConfig


class PartitionPlacement:
    """Binds logical devices to NUMA domains and places frames locally.

    Args:
        config: the hardware configuration.
        partition: the active compute/memory mode pair.
        physical: the shared physical frame allocator.
        hbm: the HBM subsystem; must be built with the same domain count
            as *partition* so frame windows and interleave agree.
    """

    def __init__(
        self,
        config: MI300AConfig,
        partition: PartitionConfig,
        physical: PhysicalMemory,
        hbm: HBMSubsystem,
    ) -> None:
        if hbm.numa_domains != partition.numa_domains:
            raise ValueError(
                f"HBM models {hbm.numa_domains} NUMA domains but the "
                f"partition mode {partition.describe()} expects "
                f"{partition.numa_domains}"
            )
        self._config = config
        self._partition = partition
        self._physical = physical
        self._hbm = hbm
        self._devices = enumerate_logical_devices(config, partition)

    @property
    def partition(self) -> PartitionConfig:
        """The mode pair this placement enforces."""
        return self._partition

    @property
    def devices(self) -> List[LogicalDevice]:
        """The logical devices, in HIP id order."""
        return list(self._devices)

    def device(self, index: int) -> LogicalDevice:
        """The logical device with HIP id *index*."""
        if not 0 <= index < len(self._devices):
            raise IndexError(
                f"device {index} out of range [0, {len(self._devices)})"
            )
        return self._devices[index]

    def domain_of_device(self, index: int) -> int:
        """The NUMA domain local to logical device *index*."""
        return self.device(index).numa_domain

    def frame_range(self, index: int) -> Optional[Tuple[int, int]]:
        """Local frame window for device *index*; ``None`` in NPS1.

        ``None`` keeps the allocators on their whole-pool paths, so the
        default mode is bit-identical to the unpartitioned model.
        """
        if self._partition.numa_domains == 1:
            return None
        return self._hbm.domain_frame_range(self.domain_of_device(index))

    # ------------------------------------------------------------------
    # Partition-local allocation
    # ------------------------------------------------------------------

    def alloc_chunks(
        self, index: int, npages: int, chunk_pages: int
    ) -> np.ndarray:
        """Contiguous aligned chunks from device *index*'s local domain."""
        return self._physical.alloc_chunks(
            npages, chunk_pages, frame_range=self.frame_range(index)
        )

    def alloc_scattered(
        self, index: int, npages: int, pair_fraction: Optional[float] = None
    ) -> np.ndarray:
        """Scattered on-demand frames from device *index*'s local domain."""
        return self._physical.alloc_scattered(
            npages, pair_fraction, frame_range=self.frame_range(index)
        )

    def local_fraction(self, frames: Sequence[int], index: int) -> float:
        """Fraction of *frames* homed in device *index*'s local domain."""
        if self._partition.numa_domains == 1:
            return 1.0
        return self._hbm.local_fraction(frames, self.domain_of_device(index))


# ----------------------------------------------------------------------
# Local/remote cost split
# ----------------------------------------------------------------------


def device_stream_bandwidth(
    config: MI300AConfig,
    device: LogicalDevice,
    traits: BufferTraits,
    local_fraction: float = 1.0,
) -> float:
    """Achievable stream bandwidth (bytes/s) of one logical device.

    The device's share of the package bandwidth scales with its XCD
    count (the memory system serves all XCDs symmetrically).  Under
    NPS4 the share then splits by placement: the local-domain portion
    streams at the localised rate (shorter data path — the guide's
    5-10% uplift), the remote portion at the Infinity-Fabric-crossing
    rate, and the two phases combine time-weighted (harmonically), as
    a stream must move both portions.
    """
    if not 0.0 <= local_fraction <= 1.0:
        raise ValueError(f"local fraction {local_fraction} outside [0, 1]")
    share = (
        gpu_stream_bandwidth(config, traits)
        * len(device.xcds)
        / config.xcd_count
    )
    if device.partition.numa_domains == 1:
        return share
    costs = config.partition_costs
    local_bw = share * (1.0 + costs.nps4_local_bandwidth_uplift)
    remote_bw = share * costs.nps4_remote_bandwidth_factor
    if local_fraction == 1.0:
        return local_bw
    if local_fraction == 0.0:
        return remote_bw
    time_per_byte = (
        local_fraction / local_bw + (1.0 - local_fraction) / remote_bw
    )
    return 1.0 / time_per_byte


def remote_access_latency_extra_ns(
    config: MI300AConfig, device: LogicalDevice, local_fraction: float
) -> float:
    """Mean extra access latency (ns) from remote-domain residency.

    Zero in NPS1 (one domain, nothing is remote); under NPS4 every
    remote-domain access adds the cross-IOD Infinity Fabric hop, so the
    expected extra cost scales with the remote fraction.
    """
    if not 0.0 <= local_fraction <= 1.0:
        raise ValueError(f"local fraction {local_fraction} outside [0, 1]")
    if device.partition.numa_domains == 1:
        return 0.0
    costs = config.partition_costs
    return (1.0 - local_fraction) * costs.nps4_remote_latency_extra_ns


def kernel_launch_factor(
    config: MI300AConfig, partition: PartitionConfig
) -> float:
    """Kernel-launch time multiplier for a partition mode.

    CPX devices skip the cross-XCD workgroup distribution step of the
    fused modes, which the partitioning guide reports as a small
    launch-overhead saving; SPX and TPX launch at the baseline cost.
    """
    if partition.compute is ComputePartition.CPX:
        return config.partition_costs.cpx_launch_overhead_factor
    return 1.0
