"""Compute (SPX/TPX/CPX) and memory (NPS1/NPS4) partitioning.

The subsystem models the MI300A repartitioning the AMD Instinct
partitioning guide describes: :mod:`modes` validates the mode pairs,
:mod:`logical_device` presents XCD subsets as independent logical GPUs,
and :mod:`placement` pins allocations to NUMA-domain frame windows and
prices the local/remote split.
"""

from .logical_device import (
    LogicalDevice,
    enumerate_logical_devices,
    ic_reach_fraction,
)
from .modes import (
    ComputePartition,
    InvalidPartitionError,
    MemoryPartition,
    PartitionConfig,
    all_valid_modes,
)
from .placement import (
    PartitionPlacement,
    device_stream_bandwidth,
    kernel_launch_factor,
    remote_access_latency_extra_ns,
)

__all__ = [
    "ComputePartition",
    "InvalidPartitionError",
    "LogicalDevice",
    "MemoryPartition",
    "PartitionConfig",
    "PartitionPlacement",
    "all_valid_modes",
    "device_stream_bandwidth",
    "enumerate_logical_devices",
    "ic_reach_fraction",
    "kernel_launch_factor",
    "remote_access_latency_extra_ns",
]
