"""Compute (SPX/TPX/CPX) and memory (NPS1/NPS4) partitioning modes.

The MI300A's six XCDs and four IODs are normally presented as one
logical GPU over one interleaved memory pool — the view the paper
characterises.  The same silicon supports repartitioning (AMD Instinct
partitioning guide, SNIPPETS.md §1), set with ``amd-smi set
--compute-partition`` / ``--memory-partition``:

* **Compute partitioning** (Modular Chiplet Platform): SPX presents all
  six XCDs as one device, TPX presents three devices of two XCDs (one
  per GPU IOD), CPX presents each XCD as its own device with explicit
  workgroup placement.
* **Memory partitioning** (NUMA Per Socket): NPS1 interleaves physical
  memory across all eight HBM stacks; NPS4 splits it into four NUMA
  domains, each interleaved over the two stacks of one IOD.

The guide's constraint is that there can be at most as many memory
partitions as compute partitions, so NPS4 (four domains) requires CPX
(six devices) on this part — TPX only exposes three.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple


class InvalidPartitionError(ValueError):
    """An unsupported compute/memory partition combination was requested."""


class ComputePartition(enum.Enum):
    """Compute partitioning mode: how XCDs group into logical devices."""

    SPX = "SPX"  # Single Partition X-celerator: one device, all XCDs
    TPX = "TPX"  # Triple Partition X-celerator: one device per GPU IOD
    CPX = "CPX"  # Core Partitioned X-celerator: one device per XCD

    def device_count(self, xcd_count: int = 6) -> int:
        """Logical devices this mode carves out of *xcd_count* XCDs."""
        per_device = self.xcds_per_device(xcd_count)
        return xcd_count // per_device

    def xcds_per_device(self, xcd_count: int = 6) -> int:
        """XCDs fused into each logical device."""
        if self is ComputePartition.SPX:
            return xcd_count
        if self is ComputePartition.TPX:
            if xcd_count % 3 != 0:
                raise InvalidPartitionError(
                    f"TPX needs an XCD count divisible by 3, got {xcd_count}"
                )
            return xcd_count // 3
        return 1


class MemoryPartition(enum.Enum):
    """Memory partitioning mode: how HBM stacks group into NUMA domains."""

    NPS1 = "NPS1"  # one domain interleaved across every stack
    NPS4 = "NPS4"  # one domain per IOD (two stacks each)

    @property
    def numa_domains(self) -> int:
        """NUMA domains this mode exposes."""
        return 1 if self is MemoryPartition.NPS1 else 4


@dataclass(frozen=True)
class PartitionConfig:
    """A validated compute/memory partition mode pair.

    The default (SPX/NPS1) is the paper's testbed configuration: one
    logical device over one interleaved pool, so a default-constructed
    config leaves every existing model unchanged.
    """

    compute: ComputePartition = ComputePartition.SPX
    memory: MemoryPartition = MemoryPartition.NPS1

    def __post_init__(self) -> None:
        # The guide's compatibility matrix: memory partitions must not
        # outnumber compute partitions (NPS4 is a CPX-only mode here).
        if self.memory.numa_domains > self.compute.device_count():
            raise InvalidPartitionError(
                f"{self.memory.value} exposes {self.memory.numa_domains} "
                f"memory domains but {self.compute.value} only "
                f"{self.compute.device_count()} compute partitions"
            )

    @property
    def device_count(self) -> int:
        """Logical GPU devices visible in this mode (MI300A: 6 XCDs)."""
        return self.compute.device_count()

    @property
    def numa_domains(self) -> int:
        """NUMA memory domains visible in this mode."""
        return self.memory.numa_domains

    def xcds_of_device(self, device: int, xcd_count: int = 6) -> Tuple[int, ...]:
        """The physical XCD indices fused into logical device *device*.

        Devices take consecutive XCD groups, so a TPX device's two XCDs
        share an IOD and a CPX device is a single XCD.
        """
        count = self.compute.device_count(xcd_count)
        if not 0 <= device < count:
            raise IndexError(f"device {device} out of range [0, {count})")
        per_device = self.compute.xcds_per_device(xcd_count)
        return tuple(range(device * per_device, (device + 1) * per_device))

    def describe(self) -> str:
        """The amd-smi style mode label, e.g. ``CPX/NPS4``."""
        return f"{self.compute.value}/{self.memory.value}"


def all_valid_modes() -> List[PartitionConfig]:
    """Every compute/memory combination the compatibility matrix allows."""
    modes = []
    for compute in ComputePartition:
        for memory in MemoryPartition:
            try:
                modes.append(PartitionConfig(compute, memory))
            except InvalidPartitionError:
                continue
    return modes
