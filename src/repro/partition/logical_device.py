"""Logical devices: partitioned XCD subsets presented as GPUs.

In a partitioned mode each logical device is a subset of the package's
XCDs with its own compute units, its own per-XCD L2 slices, and — via
the memory partition — its own reach into the HBM stacks and Infinity
Cache slices.  This mirrors what ``amd-smi list`` shows after
repartitioning: CPX turns one MI300A into six small GPUs of 38 CUs
each, every one sharing the physical package (same UUID) but scheduled
independently.

The Infinity Cache is memory-side, so a logical device's *cache reach*
follows its memory traffic: in NPS1 every device's accesses spread over
all 128 slices (shared six ways across the XCDs), while in NPS4 a
device only touches the 32 slices of its local IOD's two stacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..hw.config import MI300AConfig
from .modes import MemoryPartition, PartitionConfig


@dataclass(frozen=True)
class LogicalDevice:
    """One GPU as enumerated under a partition mode.

    Attributes:
        index: position in the logical-device enumeration (the HIP
            device id inside this APU).
        partition: the mode pair that produced this view.
        xcds: physical XCD indices fused into this device.
        iods: IODs hosting those XCDs.
        compute_units: CUs this device schedules onto.
        l2_slices: per-XCD L2 cache slices owned by this device.
        numa_domain: the NPS domain local to this device (0 in NPS1).
        hbm_stacks: stacks directly visible to this device.
        memory_capacity_bytes: capacity of the visible stacks.
        ic_slice_channels: memory channels (= Infinity Cache slices)
            this device's traffic can reach.
        ic_reach_bytes: effective Infinity Cache capacity available to
            this device when every logical device is active — the
            reachable slices' capacity divided among the XCDs sharing
            them.
    """

    index: int
    partition: PartitionConfig
    xcds: Tuple[int, ...]
    iods: Tuple[int, ...]
    compute_units: int
    l2_slices: int
    numa_domain: int
    hbm_stacks: Tuple[int, ...]
    memory_capacity_bytes: int
    ic_slice_channels: Tuple[int, ...]
    ic_reach_bytes: float

    @property
    def ic_slice_count(self) -> int:
        """Number of Infinity Cache slices this device can reach."""
        return len(self.ic_slice_channels)

    @property
    def name(self) -> str:
        """amd-smi style label, e.g. ``MI300A[CPX/NPS4] gpu2``."""
        return f"MI300A[{self.partition.describe()}] gpu{self.index}"

    def __repr__(self) -> str:
        return (
            f"LogicalDevice({self.name}, {self.compute_units} CUs, "
            f"{self.memory_capacity_bytes >> 30} GiB visible)"
        )


def ic_reach_fraction(device: LogicalDevice, config: MI300AConfig) -> float:
    """*device*'s effective IC reach as a fraction of the full cache."""
    return device.ic_reach_bytes / config.infinity_cache.capacity_bytes


def enumerate_logical_devices(
    config: MI300AConfig, partition: PartitionConfig
) -> List[LogicalDevice]:
    """All logical devices the partition mode exposes, in HIP id order.

    CU counts split the package's 228 CUs evenly by XCD share; stack and
    slice visibility follows the memory mode (everything in NPS1, the
    local IOD's quadrant in NPS4, matching
    :meth:`repro.hw.hbm.HBMSubsystem.stacks_of_domain`).
    """
    geo = config.hbm
    lanes = geo.channels_per_stack
    domains = partition.numa_domains
    devices = []
    for index in range(partition.device_count):
        xcds = partition.xcds_of_device(index, config.xcd_count)
        # Two XCDs per IOD, as in APUTopology: XCD i sits on IOD i // 2.
        iods = tuple(sorted({x // 2 for x in xcds}))
        compute_units = config.gpu_compute_units * len(xcds) // config.xcd_count
        if partition.memory is MemoryPartition.NPS1:
            domain = 0
            stacks = tuple(range(geo.stacks))
            sharing_xcds = config.xcd_count
        else:
            # NPS4 pairs each device with its IOD's quadrant; devices on
            # the same IOD share that quadrant's stacks and slices.
            domain = iods[0]
            stacks = tuple(s for s in range(geo.stacks) if s % domains == domain)
            sharing_xcds = sum(
                1 for x in range(config.xcd_count) if x // 2 == domain
            )
        channels = tuple(
            s * lanes + lane for s in stacks for lane in range(lanes)
        )
        subset_capacity = (
            len(channels) * config.infinity_cache.slice_capacity_bytes
        )
        devices.append(
            LogicalDevice(
                index=index,
                partition=partition,
                xcds=xcds,
                iods=iods,
                compute_units=compute_units,
                l2_slices=len(xcds),
                numa_domain=domain,
                hbm_stacks=stacks,
                memory_capacity_bytes=len(stacks) * geo.stack_capacity_bytes,
                ic_slice_channels=channels,
                ic_reach_bytes=subset_capacity * len(xcds) / sharing_xcds,
            )
        )
    return devices
