"""Memory-event tracing and porting advisor.

The paper's related work surveys GPU memory profilers (DrGPUM [25],
Lotus [9]) that detect inefficient memory usage patterns without
modifying the application.  This module brings that style of analysis
to the simulator: a :class:`MemoryTracer` records allocation, copy,
fault, and kernel events from a run, and the :class:`PortingAdvisor`
mines the trace for exactly the inefficiencies the paper's porting
strategies (Section 3.3) eliminate:

* **duplicated buffer pairs** — a host and a device allocation of equal
  size connected by copies: the explicit-model signature, mergeable
  into one unified allocation (the Fig. 11 memory saving);
* **copy overhead** — time spent in hipMemcpy relative to kernels,
  i.e. what merging would recover;
* **dead allocations** — buffers never accessed after allocation;
* **fault-dominated kernels** — GPU time dominated by page faults (the
  nn outlier), fixable with hipMalloc-backed containers or pre-faulting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.allocators import Allocation, AllocatorKind


class EventKind(enum.Enum):
    """Trace event types."""

    ALLOC = "alloc"
    FREE = "free"
    COPY = "copy"
    KERNEL = "kernel"
    CPU_PHASE = "cpu_phase"
    FAULT_BURST = "fault_burst"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event (timestamped in simulated ns)."""

    kind: EventKind
    time_ns: float
    name: str
    nbytes: int = 0
    duration_ns: float = 0.0
    src: Optional[str] = None
    dst: Optional[str] = None
    allocator: Optional[str] = None


class MemoryTracer:
    """Application-side event recorder.

    The tracer is deliberately explicit (the harness calls ``record_*``
    at the instrumentation points) rather than monkey-patching the
    runtime — mirroring how DrGPUM instruments through API overloading
    at well-defined call sites.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._live: Dict[str, TraceEvent] = {}
        self._accessed: set[str] = set()

    # -- recording -----------------------------------------------------

    def record_alloc(self, allocation: Allocation, time_ns: float) -> None:
        """Record an allocation event."""
        name = allocation.vma.name or f"buf@{allocation.address:#x}"
        event = TraceEvent(
            EventKind.ALLOC, time_ns, name,
            nbytes=allocation.size_bytes,
            allocator=allocation.kind.value,
        )
        self.events.append(event)
        self._live[name] = event

    def record_free(self, name: str, time_ns: float) -> None:
        """Record a deallocation."""
        self.events.append(TraceEvent(EventKind.FREE, time_ns, name))
        self._live.pop(name, None)

    def record_copy(
        self, dst: str, src: str, nbytes: int, time_ns: float,
        duration_ns: float,
    ) -> None:
        """Record one hipMemcpy."""
        self.events.append(
            TraceEvent(EventKind.COPY, time_ns, f"{src}->{dst}",
                       nbytes=nbytes, duration_ns=duration_ns,
                       src=src, dst=dst)
        )
        self._accessed.update((src, dst))

    def record_kernel(
        self, name: str, buffers: List[str], time_ns: float,
        duration_ns: float, fault_ns: float = 0.0,
    ) -> None:
        """Record one kernel launch and the buffers it touched."""
        self.events.append(
            TraceEvent(EventKind.KERNEL, time_ns, name,
                       duration_ns=duration_ns, nbytes=int(fault_ns))
        )
        self._accessed.update(buffers)

    # -- queries ---------------------------------------------------------

    def live_bytes(self) -> int:
        """Bytes of currently live traced allocations."""
        return sum(e.nbytes for e in self._live.values())

    def allocations(self) -> List[TraceEvent]:
        """All allocation events in order."""
        return [e for e in self.events if e.kind is EventKind.ALLOC]

    def copies(self) -> List[TraceEvent]:
        """All copy events in order."""
        return [e for e in self.events if e.kind is EventKind.COPY]

    def kernels(self) -> List[TraceEvent]:
        """All kernel events in order."""
        return [e for e in self.events if e.kind is EventKind.KERNEL]

    def accessed(self, name: str) -> bool:
        """Whether a buffer was ever used by a copy or kernel."""
        return name in self._accessed


@dataclass(frozen=True)
class DuplicationFinding:
    """A host/device buffer pair that could be one unified allocation."""

    host_buffer: str
    device_buffer: str
    nbytes: int
    copies: int
    copy_time_ns: float

    @property
    def memory_saving_bytes(self) -> int:
        """Bytes saved by merging the pair (one copy disappears)."""
        return self.nbytes


@dataclass
class AdvisorReport:
    """The advisor's findings over one trace."""

    duplicated_pairs: List[DuplicationFinding] = field(default_factory=list)
    dead_allocations: List[str] = field(default_factory=list)
    copy_time_ns: float = 0.0
    kernel_time_ns: float = 0.0
    fault_dominated_kernels: List[str] = field(default_factory=list)

    @property
    def potential_memory_saving_bytes(self) -> int:
        """Total bytes recoverable by unifying all duplicated pairs."""
        return sum(f.memory_saving_bytes for f in self.duplicated_pairs)

    @property
    def copy_fraction(self) -> float:
        """Share of traced GPU-path time spent copying."""
        total = self.copy_time_ns + self.kernel_time_ns
        if total == 0:
            return 0.0
        return self.copy_time_ns / total


#: Allocator kinds considered "host-side" for pairing purposes.
_HOST_KINDS = {
    AllocatorKind.MALLOC.value,
    AllocatorKind.MALLOC_REGISTERED.value,
    AllocatorKind.HIP_HOST_MALLOC.value,
}
_DEVICE_KINDS = {
    AllocatorKind.HIP_MALLOC.value,
    AllocatorKind.STATIC_DEVICE.value,
}


class PortingAdvisor:
    """Mines a trace for explicit-model inefficiencies."""

    def __init__(self, tracer: MemoryTracer) -> None:
        self._tracer = tracer

    def analyse(self, fault_threshold: float = 0.5) -> AdvisorReport:
        """Produce the full advisor report.

        *fault_threshold*: a kernel whose fault time exceeds this share
        of its duration is flagged fault-dominated.
        """
        report = AdvisorReport()
        report.duplicated_pairs = self._find_duplicated_pairs()
        report.dead_allocations = self._find_dead_allocations()
        report.copy_time_ns = sum(e.duration_ns for e in self._tracer.copies())
        report.kernel_time_ns = sum(
            e.duration_ns for e in self._tracer.kernels()
        )
        for kernel in self._tracer.kernels():
            fault_ns = float(kernel.nbytes)  # stored in nbytes slot
            if kernel.duration_ns > 0 and (
                fault_ns / kernel.duration_ns > fault_threshold
            ):
                report.fault_dominated_kernels.append(kernel.name)
        return report

    def _find_duplicated_pairs(self) -> List[DuplicationFinding]:
        allocations = {e.name: e for e in self._tracer.allocations()}
        pair_stats: Dict[Tuple[str, str], Tuple[int, float]] = {}
        for copy in self._tracer.copies():
            if copy.src is None or copy.dst is None:
                continue
            src = allocations.get(copy.src)
            dst = allocations.get(copy.dst)
            if src is None or dst is None:
                continue
            host, device = None, None
            if src.allocator in _HOST_KINDS and dst.allocator in _DEVICE_KINDS:
                host, device = src, dst
            elif src.allocator in _DEVICE_KINDS and dst.allocator in _HOST_KINDS:
                host, device = dst, src
            if host is None or host.nbytes != device.nbytes:
                continue
            key = (host.name, device.name)
            count, time_ns = pair_stats.get(key, (0, 0.0))
            pair_stats[key] = (count + 1, time_ns + copy.duration_ns)
        return [
            DuplicationFinding(
                host_buffer=host,
                device_buffer=device,
                nbytes=allocations[host].nbytes,
                copies=count,
                copy_time_ns=time_ns,
            )
            for (host, device), (count, time_ns) in sorted(pair_stats.items())
        ]

    def _find_dead_allocations(self) -> List[str]:
        return [
            e.name
            for e in self._tracer.allocations()
            if not self._tracer.accessed(e.name)
        ]

    def summarise(self, report: Optional[AdvisorReport] = None) -> str:
        """Human-readable advisor output (the DrGPUM-style report)."""
        report = report if report is not None else self.analyse()
        lines = ["Porting advisor findings:"]
        if report.duplicated_pairs:
            lines.append(
                f"  {len(report.duplicated_pairs)} duplicated host/device "
                f"pair(s); merging saves "
                f"{report.potential_memory_saving_bytes >> 20} MiB and removes "
                f"{report.copy_time_ns / 1e6:.2f} ms of copies"
            )
            for f in report.duplicated_pairs:
                lines.append(
                    f"    {f.host_buffer} <-> {f.device_buffer}: "
                    f"{f.nbytes >> 20} MiB, {f.copies} copies"
                )
        else:
            lines.append("  no duplicated buffer pairs (already unified?)")
        if report.copy_fraction > 0.2:
            lines.append(
                f"  copies are {report.copy_fraction:.0%} of GPU-path time — "
                "a unified-memory port removes them (Listing 2)"
            )
        for name in report.fault_dominated_kernels:
            lines.append(
                f"  kernel {name!r} is fault-dominated — use a hipMalloc-"
                "backed container or CPU pre-faulting (Sections 5.2, 6)"
            )
        for name in report.dead_allocations:
            lines.append(f"  allocation {name!r} is never accessed")
        return "\n".join(lines)
