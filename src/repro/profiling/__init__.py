"""Profiling interfaces mirroring the paper's tooling (Table 2):
rocprofv3 GPU counters, perf-stat CPU events, and libnuma usage sampling.
"""

from .memusage import MemoryUsageProfiler, UsageTimeline
from .perfstat import PerfStat, PerfStatReport
from .rocprof import COUNTER_MAP, ProfileRegion, RocProf
from .tracer import (
    AdvisorReport,
    DuplicationFinding,
    EventKind,
    MemoryTracer,
    PortingAdvisor,
    TraceEvent,
)

__all__ = [
    "AdvisorReport",
    "COUNTER_MAP",
    "DuplicationFinding",
    "EventKind",
    "MemoryTracer",
    "MemoryUsageProfiler",
    "PerfStat",
    "PerfStatReport",
    "PortingAdvisor",
    "ProfileRegion",
    "RocProf",
    "TraceEvent",
    "UsageTimeline",
]
