"""rocprofv3-style GPU profiling (paper Section 3.2).

The fragment size in the GPU page table cannot be read from userspace;
the paper uses the GPU L1 TLB miss counter
(``TCP_UTCL1_TRANSLATION_MISS_sum``) as a proxy.  This module exposes the
same counter-sampling workflow over the simulated GPU device: snapshot
counters, run a region, and read the deltas.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator

from ..runtime.apu import APU
from ..runtime.device import GPUCounters

#: The counter names rocprofv3 reports, mapped to the simulator's fields.
COUNTER_MAP = {
    "TCP_UTCL1_TRANSLATION_MISS_sum": "tlb_misses",
    "GRBM_GUI_ACTIVE_kernels": "kernels_launched",
    "TCC_EA_RDREQ_bytes": "bytes_read",
    "TCC_EA_WRREQ_bytes": "bytes_written",
}


@dataclass
class ProfileRegion:
    """Counter deltas captured across one profiled region."""

    counters: Dict[str, int]

    def __getitem__(self, name: str) -> int:
        return self.counters[name]

    @property
    def tlb_misses(self) -> int:
        """Shorthand for the paper's fragment-size proxy counter."""
        return self.counters["TCP_UTCL1_TRANSLATION_MISS_sum"]


class RocProf:
    """Counter sampler bound to one APU's GPU."""

    def __init__(self, apu: APU) -> None:
        self._apu = apu
        self._baseline: GPUCounters | None = None

    def start(self) -> None:
        """Begin a profiled region (snapshot all counters)."""
        self._baseline = self._apu.gpu.counters.snapshot()

    def stop(self) -> ProfileRegion:
        """End the region and return counter deltas."""
        if self._baseline is None:
            raise RuntimeError("RocProf.stop() called before start()")
        delta = self._apu.gpu.counters.delta(self._baseline)
        self._baseline = None
        return ProfileRegion(
            {name: getattr(delta, attr) for name, attr in COUNTER_MAP.items()}
        )

    @contextmanager
    def region(self) -> Iterator[list]:
        """Context manager variant: yields a one-item list that receives
        the :class:`ProfileRegion` when the block exits."""
        out: list = []
        self.start()
        try:
            yield out
        finally:
            out.append(self.stop())
