"""perf-stat-style CPU event counting (paper Section 3.2).

On the CPU side the paper infers allocation granularity from the number
of page faults (and TLB misses) observed by ``perf stat`` while running
the CPU STREAM benchmark.  This module samples the simulated fault
handler's counters the same way.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..core.faults import FaultCounters
from ..runtime.apu import APU


@dataclass
class PerfStatReport:
    """CPU event deltas captured across one measured region."""

    page_faults: int
    faulted_pages: int
    gpu_major_pages: int
    gpu_minor_pages: int

    def __str__(self) -> str:
        return (
            f"{self.page_faults:>12,} page-faults\n"
            f"{self.faulted_pages:>12,} faulted-pages\n"
        )


class PerfStat:
    """``perf stat`` analogue bound to one APU."""

    def __init__(self, apu: APU) -> None:
        self._apu = apu
        self._baseline: FaultCounters | None = None

    def start(self) -> None:
        """Begin a measured region."""
        self._baseline = self._apu.faults.counters.snapshot()

    def stop(self) -> PerfStatReport:
        """End the region and return event deltas."""
        if self._baseline is None:
            raise RuntimeError("PerfStat.stop() called before start()")
        delta = self._apu.faults.counters.delta(self._baseline)
        self._baseline = None
        return PerfStatReport(
            page_faults=delta.cpu_fault_events,
            faulted_pages=delta.cpu_faulted_pages,
            gpu_major_pages=delta.gpu_major_pages,
            gpu_minor_pages=delta.gpu_minor_pages,
        )

    @contextmanager
    def region(self) -> Iterator[list]:
        """Context-manager variant; the report lands in the yielded list."""
        out: list = []
        self.start()
        try:
            yield out
        finally:
            out.append(self.stop())
