"""Memory-usage profiling (paper Sections 3.2 and 6).

The paper profiles peak memory usage by sampling the libnuma free-memory
counter, the only interface that sees all allocation types on MI300A.
:class:`MemoryUsageProfiler` does the same against the simulated pool and
also records the per-interface disagreement table for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..core.meminfo import PeakUsageSampler, UsageSnapshot, snapshot
from ..runtime.apu import APU


@dataclass
class UsageTimeline:
    """Samples collected over a profiled run."""

    times_ns: List[float] = field(default_factory=list)
    used_bytes: List[int] = field(default_factory=list)

    @property
    def peak_bytes(self) -> int:
        """High-water mark over the timeline."""
        return max(self.used_bytes, default=0)


class MemoryUsageProfiler:
    """libnuma-style peak-usage sampler over one APU."""

    def __init__(self, apu: APU) -> None:
        self._apu = apu
        self._sampler = PeakUsageSampler(apu.physical)
        self.timeline = UsageTimeline()

    def sample(self) -> int:
        """Record one sample; returns usage relative to the baseline."""
        used = self._sampler.sample()
        self.timeline.times_ns.append(self._apu.clock.now_ns)
        self.timeline.used_bytes.append(used)
        return used

    @property
    def peak_bytes(self) -> int:
        """Peak physical usage since profiler creation."""
        return self._sampler.peak_bytes

    def interfaces(self) -> UsageSnapshot:
        """Side-by-side readings of all five usage interfaces."""
        return snapshot(self._apu.memory, self._apu.physical)
