"""Porting strategies for moving explicit-model codes to unified memory
(paper Section 3.3): double buffering, reliable memory counters, merged
partial-transfer pipelines, guarded stack variables, and containers with
pluggable allocators.
"""

from .containers import UnifiedVector
from .strategies import (
    ChunkSchedule,
    DoubleBuffer,
    StackFlag,
    event_synchronised_swap,
    merged_pipeline,
    naive_free_memory,
    reliable_free_memory,
)

__all__ = [
    "ChunkSchedule",
    "DoubleBuffer",
    "StackFlag",
    "UnifiedVector",
    "event_synchronised_swap",
    "merged_pipeline",
    "naive_free_memory",
    "reliable_free_memory",
]
