"""Porting strategies for the unified memory model (paper Section 3.3).

Each helper encodes one of the paper's identified challenges when moving
code from the explicit model (Listing 1) to the unified model
(Listing 2):

* **Concurrent CPU-GPU access** → :class:`DoubleBuffer` (swap instead of
  copy, synchronised with stream events);
* **Memory usage consideration** → :func:`reliable_free_memory` (libnuma
  instead of hipMemGetInfo);
* **Partial memory transfer** → merged buffers; :func:`merged_pipeline`
  documents the transformation and validates chunk schedules;
* **Stack variables** → :class:`StackFlag` (GPU-writable host scalar with
  a lifetime guard);
* **Static variables** → managed statics via
  :meth:`MemoryManager.managed_static` (performance caveat applies) or
  restructuring to dynamic allocation;
* **Hidden allocator** → :class:`~repro.porting.containers.UnifiedVector`
  with a pluggable allocator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..core.meminfo import libnuma_free
from ..runtime.apu import APU
from ..runtime.arrays import DeviceArray
from ..runtime.hip import HipRuntime
from ..runtime.stream import Event, Stream


class DoubleBuffer:
    """Two buffers swapped each iteration instead of copied.

    The unified-model answer to concurrent CPU-GPU access: while the GPU
    consumes the *front* buffer, the CPU fills the *back* buffer; at the
    iteration boundary the roles swap.  Synchronisation uses stream
    events, as in the paper's heartwall port.
    """

    def __init__(self, front: DeviceArray, back: DeviceArray) -> None:
        if front.shape != back.shape or front.dtype != back.dtype:
            raise ValueError("double buffer halves must match")
        self._buffers = [front, back]
        self._front = 0
        self.swaps = 0

    @property
    def front(self) -> DeviceArray:
        """The buffer currently owned by the consumer (GPU)."""
        return self._buffers[self._front]

    @property
    def back(self) -> DeviceArray:
        """The buffer currently owned by the producer (CPU)."""
        return self._buffers[1 - self._front]

    def swap(self) -> None:
        """Exchange producer/consumer roles (no data movement)."""
        self._front = 1 - self._front
        self.swaps += 1

    @property
    def memory_bytes(self) -> int:
        """Total footprint — equal to the explicit model's host+device
        pair, which is why heartwall's peak memory is unchanged (Fig. 11)."""
        return sum(b.allocation.size_bytes for b in self._buffers)


def reliable_free_memory(apu: APU) -> int:
    """Free memory from an interface that sees *all* allocation types.

    Ported applications must not size datasets from ``hipMemGetInfo``:
    on UPM it only reflects hipMalloc usage (Section 3.2).  The reliable
    counter is libnuma's per-node free memory.
    """
    free, _total = libnuma_free(apu.physical)
    return free


def naive_free_memory(runtime: HipRuntime) -> int:
    """The *unreliable* legacy counter (hipMemGetInfo), kept for
    demonstrating the porting pitfall in examples and tests."""
    free, _total = runtime.hipMemGetInfo()
    return free


@dataclass(frozen=True)
class ChunkSchedule:
    """A partial-transfer pipeline schedule over one buffer."""

    total_bytes: int
    chunk_bytes: int

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0 or self.total_bytes <= 0:
            raise ValueError("sizes must be positive")
        if self.chunk_bytes > self.total_bytes:
            raise ValueError("chunk larger than buffer")

    def chunks(self) -> Iterator[Tuple[int, int]]:
        """Yield (offset, size) pairs covering the buffer."""
        offset = 0
        while offset < self.total_bytes:
            size = min(self.chunk_bytes, self.total_bytes - offset)
            yield offset, size
            offset += size

    @property
    def chunk_count(self) -> int:
        """Number of pipeline stages."""
        return -(-self.total_bytes // self.chunk_bytes)


def merged_pipeline(schedule: ChunkSchedule) -> List[Tuple[int, int]]:
    """The unified-model version of a partial-transfer pipeline.

    Merging the host and device buffers obviates the copies entirely:
    the compute kernel consumes each chunk in place.  Returns the chunk
    list the kernel iterates over — identical coverage, zero transfers.
    """
    return list(schedule.chunks())


class StackFlag:
    """A host stack variable written by GPU kernels (srad_v1's stop flag).

    UPM lets the GPU access the host stack, but the asynchronous
    execution model makes the variable's lifetime hazardous: the host
    frame must not be torn down while a kernel may still write it.  The
    guard enforces the paper's rule — the owner must synchronise before
    the scope exits.
    """

    def __init__(self, runtime: HipRuntime, initial: float = 0.0) -> None:
        self._runtime = runtime
        self.value = initial
        self._pending: List[Stream] = []

    def gpu_write(self, value: float, stream: Optional[Stream] = None) -> None:
        """Record a kernel-side write (takes effect on the stream)."""
        resolved = self._runtime.apu.streams.resolve(stream)
        self._pending.append(resolved)
        self.value = value

    def read(self) -> float:
        """Host-side read: must synchronise outstanding GPU writes."""
        for stream in self._pending:
            stream.synchronize()
        self._pending.clear()
        return self.value

    def close(self) -> None:
        """Lifetime guard: error if the scope exits with pending writes."""
        if self._pending:
            raise RuntimeError(
                "stack variable going out of scope with unsynchronised GPU "
                "writes — the host function must not return before the "
                "kernel completes (Section 3.3, Stack Variables)"
            )

    def __enter__(self) -> "StackFlag":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.read()
        self.close()


def event_synchronised_swap(
    runtime: HipRuntime,
    buffer: DoubleBuffer,
    compute_stream: Stream,
) -> Event:
    """One double-buffering handover, synchronised with a stream event.

    Records an event after the GPU's current work on the front buffer,
    swaps the buffers, and returns the event the producer must wait on
    before overwriting the new back buffer.
    """
    event = runtime.hipEventCreate("swap")
    runtime.hipEventRecord(event, compute_stream)
    buffer.swap()
    return event
