"""Hidden-allocator containers (paper Section 3.3, "Hidden Allocator").

Libraries that allocate on the user's behalf — C++ containers being the
canonical case — are a porting hazard: either the container's default
allocator is used (pageable malloc memory, so the GPU later takes major
faults on it, the paper's nn outlier in Fig. 11), or the developer
plumbs a custom allocator through (hipMalloc-backed, fast but invasive).

:class:`UnifiedVector` models a ``std::vector`` with geometric growth
over the simulated allocators, supporting both choices via the
*allocator* argument — the ``std::allocator`` API swap the paper
recommends for optimal nn performance.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.allocators import Allocation
from ..runtime.apu import APU


class UnifiedVector:
    """A growable typed vector over simulated memory.

    Growth follows the libstdc++ policy (double the capacity), and every
    reallocation really happens in the simulator: a new allocation is
    made, contents are CPU-copied (touching pages), and the old buffer is
    freed.  The resulting physical layout is therefore exactly what a
    CPU-populated ``std::vector`` would have — scattered, free-list
    biased malloc pages — unless a HIP-backed allocator is selected.
    """

    def __init__(
        self,
        apu: APU,
        dtype: np.dtype | str = np.float32,
        allocator: str = "malloc",
        initial_capacity: int = 16,
    ) -> None:
        if initial_capacity <= 0:
            raise ValueError("capacity must be positive")
        if allocator not in ("malloc", "hipMalloc", "hipHostMalloc"):
            raise ValueError(f"unsupported vector allocator {allocator!r}")
        self._apu = apu
        self._allocator = allocator
        self._dtype = np.dtype(dtype)
        self._size = 0
        self._capacity = initial_capacity
        self._allocation = self._allocate(initial_capacity)
        self._data = np.zeros(initial_capacity, dtype=self._dtype)
        self.reallocations = 0

    def _allocate(self, capacity: int) -> Allocation:
        nbytes = max(1, capacity * self._dtype.itemsize)
        mem = self._apu.memory
        if self._allocator == "malloc":
            return mem.malloc(nbytes, name="std::vector")
        if self._allocator == "hipMalloc":
            return mem.hip_malloc(nbytes, name="std::vector<hip>")
        return mem.hip_host_malloc(nbytes, name="std::vector<pinned>")

    @property
    def allocation(self) -> Allocation:
        """The current backing allocation (changes on growth)."""
        return self._allocation

    @property
    def data(self) -> np.ndarray:
        """The live elements as a numpy view."""
        return self._data[: self._size]

    @property
    def size(self) -> int:
        """Number of elements stored."""
        return self._size

    @property
    def capacity(self) -> int:
        """Allocated element slots."""
        return self._capacity

    def push_back(self, value: float) -> None:
        """Append one element, growing geometrically when full."""
        if self._size == self._capacity:
            self._grow(self._capacity * 2)
        self._data[self._size] = value
        # First touch of the element's page happens on the CPU.
        offset = self._size * self._dtype.itemsize
        self._apu.touch(
            self._allocation, "cpu", offset_bytes=offset,
            size_bytes=self._dtype.itemsize,
        )
        self._size += 1

    def extend(self, values: Iterable[float]) -> None:
        """Append many elements (bulk push_back)."""
        values = np.asarray(list(values), dtype=self._dtype)
        needed = self._size + len(values)
        if needed > self._capacity:
            new_capacity = self._capacity
            while new_capacity < needed:
                new_capacity *= 2
            self._grow(new_capacity)
        self._data[self._size : needed] = values
        if len(values):
            start = self._size * self._dtype.itemsize
            self._apu.touch(
                self._allocation, "cpu", offset_bytes=start,
                size_bytes=max(1, len(values) * self._dtype.itemsize),
            )
        self._size = needed

    def _grow(self, new_capacity: int) -> None:
        old_allocation = self._allocation
        old_data = self._data
        self._allocation = self._allocate(new_capacity)
        self._data = np.zeros(new_capacity, dtype=self._dtype)
        self._data[: self._size] = old_data[: self._size]
        if self._size:
            # The copy touches both buffers on the CPU.
            nbytes = max(1, self._size * self._dtype.itemsize)
            self._apu.touch(old_allocation, "cpu", size_bytes=nbytes)
            self._apu.touch(self._allocation, "cpu", size_bytes=nbytes)
        self._apu.memory.free(old_allocation)
        self._capacity = new_capacity
        self.reallocations += 1

    def reserve(self, capacity: int) -> None:
        """Pre-size the vector (avoids repeated reallocation)."""
        if capacity > self._capacity:
            self._grow(capacity)

    def free(self) -> None:
        """Release the backing allocation."""
        self._apu.memory.free(self._allocation)
        self._size = 0
        self._capacity = 0

    def __len__(self) -> int:
        return self._size
