"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro list                 # the experiment menu
    python -m repro fig9                 # regenerate one figure's table
    python -m repro fig2 --quick         # reduced problem sizes
    python -m repro apps --app hotspot   # one application comparison
    python -m repro uvm                  # the UPM-vs-UVM extension
    python -m repro partition            # SPX/TPX/CPX x NPS1/NPS4 sweep
    python -m repro export --out results # CSV export of the results
    python -m repro lint examples        # static HIP API-misuse linter
    python -m repro analyze --quick      # hipsan sweep over the apps

Every command prints the same rows the corresponding `benchmarks/`
module asserts against; the CLI exists for interactive exploration, the
bench suite for verification.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Iterable, List, Sequence

from .hw.config import GiB, KiB, MiB


def _print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), 14) for h in header]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def _rate(value: float, unit: str = "B/s") -> str:
    for scale, prefix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if value >= scale:
            return f"{value / scale:.2f} {prefix}{unit}"
    return f"{value:.2f} {unit}"


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_table1(args: argparse.Namespace) -> None:
    """Table 1: allocator capability matrix."""
    from .core.allocators import allocator_table

    rows = []
    for xnack in (False, True):
        for r in allocator_table(xnack):
            rows.append(
                (r["allocator"], xnack, r["gpu_access"], r["cpu_access"],
                 r["physical_allocation"])
            )
    _print_table(
        "Table 1: memory allocators on MI300A",
        ["allocator", "xnack", "gpu_access", "cpu_access", "physical"],
        rows,
    )


def cmd_fig2(args: argparse.Namespace) -> None:
    """Fig. 2: memory latency curves."""
    from .bench import multichase

    sizes = (
        [1 * KiB, 1 * MiB, 128 * MiB, 512 * MiB]
        if args.quick
        else [1 * KiB, 32 * KiB, 1 * MiB, 32 * MiB, 128 * MiB, 256 * MiB,
              512 * MiB, 1 * GiB, 2 * GiB, 4 * GiB]
    )
    allocators = (
        ["malloc", "hipMalloc"] if args.quick else multichase.ALLOCATORS
    )
    samples = multichase.full_sweep(
        sizes=sizes, allocators=allocators, memory_gib=16
    )
    _print_table(
        "Fig. 2: pointer-chase latency (ns)",
        ["allocator", "device", "size_KiB", "latency_ns"],
        [(s.allocator, s.device, s.size_bytes >> 10, f"{s.latency_ns:.1f}")
         for s in samples],
    )


def cmd_fig3(args: argparse.Namespace) -> None:
    """Fig. 3: STREAM TRIAD bandwidth."""
    from .bench import stream

    gpu_allocators = (
        ["hipMalloc", "malloc"] if args.quick else stream.STREAM_ALLOCATORS
    )
    rows = []
    for allocator in gpu_allocators:
        r = stream.gpu_triad(allocator, memory_gib=16)
        rows.append(("gpu", r.allocator, _rate(r.bandwidth_bytes_per_s), "-"))
    for allocator in ("hipMalloc", "malloc"):
        r = stream.cpu_triad(allocator, memory_gib=16)
        rows.append(
            ("cpu", r.allocator, _rate(r.bandwidth_bytes_per_s), r.best_threads)
        )
    _print_table(
        "Fig. 3: STREAM TRIAD bandwidth",
        ["device", "allocator", "bandwidth", "best_threads"],
        rows,
    )


def cmd_memcpy(args: argparse.Namespace) -> None:
    """Section 4.3: legacy hipMemcpy bandwidth."""
    from .bench import hipbandwidth

    size = 64 * MiB if args.quick else 256 * MiB
    rows = hipbandwidth.full_sweep(copy_bytes=size, memory_gib=4)
    _print_table(
        "Section 4.3: hipMemcpy bandwidth",
        ["transfer", "sdma", "bandwidth"],
        [(r.label, r.sdma_enabled, _rate(r.bandwidth_bytes_per_s))
         for r in rows],
    )


def cmd_fig4(args: argparse.Namespace) -> None:
    """Fig. 4: isolated atomics throughput."""
    from .bench import histogram

    rows = []
    for dtype in ("uint64", "fp64"):
        for elements, label in ((1, "1"), (1 << 10, "1K"), (1 << 20, "1M"),
                                (1 << 30, "1G")):
            for s in histogram.cpu_sweep(elements, dtype):
                rows.append(("cpu", dtype, label, s.threads,
                             _rate(s.updates_per_s, "upd/s")))
            for s in histogram.gpu_sweep(elements, dtype):
                rows.append(("gpu", dtype, label, s.threads,
                             _rate(s.updates_per_s, "upd/s")))
    _print_table(
        "Fig. 4: atomics throughput",
        ["device", "dtype", "array", "threads", "throughput"], rows,
    )


def cmd_fig5(args: argparse.Namespace) -> None:
    """Fig. 5: co-running CPU+GPU atomics."""
    from .bench import histogram

    rows = []
    for elements, label in ((1 << 10, "1K"), (1 << 20, "1M")):
        for s in histogram.hybrid_grid(elements, "uint64"):
            rows.append(
                (label, s.cpu_threads, s.gpu_threads,
                 f"{s.result.cpu_relative:.2f}",
                 f"{s.result.gpu_relative:.2f}")
            )
    _print_table(
        "Fig. 5: co-run relative performance (uint64)",
        ["array", "cpu_threads", "gpu_threads", "cpu_rel", "gpu_rel"], rows,
    )


def cmd_fig6(args: argparse.Namespace) -> None:
    """Fig. 6: allocation speed."""
    from .bench import allocspeed

    sizes = [2, 1 * KiB, 1 * MiB, 1 * GiB] if args.quick else None
    rows = allocspeed.full_cost_sweep(sizes=sizes)
    _print_table(
        "Fig. 6: allocation / deallocation time (us)",
        ["allocator", "size_B", "alloc_us", "free_us"],
        [(s.allocator, s.size_bytes, f"{s.alloc_ns / 1e3:.3f}",
          f"{s.free_ns / 1e3:.3f}") for s in rows],
    )


def cmd_fig7(args: argparse.Namespace) -> None:
    """Fig. 7: page-fault throughput."""
    from .bench import pagefault

    rows = pagefault.full_throughput_sweep()
    _print_table(
        "Fig. 7: page-fault throughput",
        ["scenario", "pages", "pages_per_s"],
        [(s.scenario, f"{s.pages:,}", _rate(s.pages_per_s, "pages/s"))
         for s in rows],
    )


def cmd_fig8(args: argparse.Namespace) -> None:
    """Fig. 8: single-fault latency distribution."""
    from .bench import pagefault

    rows = pagefault.latency_distributions()
    _print_table(
        "Fig. 8: single-fault latency (us)",
        ["fault type", "mean", "p50", "p95"],
        [(s.scenario, f"{s.mean_us:.1f}", f"{s.p50_us:.1f}",
          f"{s.p95_us:.1f}") for s in rows],
    )


def cmd_fig9(args: argparse.Namespace) -> None:
    """Fig. 9: GPU TLB misses per allocator."""
    from .bench import stream

    size = 64 * MiB if args.quick else 256 * MiB
    rows = stream.gpu_tlb_miss_table(array_bytes=size, memory_gib=16)
    _print_table(
        "Fig. 9: GPU TLB misses in TRIAD",
        ["allocator", "tlb_misses", "bandwidth"],
        [(r.allocator, f"{r.gpu_tlb_misses:,}",
          _rate(r.bandwidth_bytes_per_s)) for r in rows],
    )


def cmd_fig10(args: argparse.Namespace) -> None:
    """Fig. 10: CPU page faults in CPU STREAM."""
    from .bench import stream

    size = 64 * MiB if args.quick else 610 * MiB
    configs = [
        ("malloc / baseline", "malloc", False, "cpu"),
        ("malloc / xnack", "malloc", True, "cpu"),
        ("hipMalloc / baseline", "hipMalloc", False, "cpu"),
        ("hipMalloc / gpu-init", "hipMalloc", False, "gpu"),
        ("hipHostMalloc / baseline", "hipHostMalloc", False, "cpu"),
        ("managed / xnack", "hipMallocManaged(xnack=1)", True, "cpu"),
    ]
    rows = []
    for label, allocator, xnack, init in configs:
        report = stream.cpu_fault_count(
            allocator, xnack=xnack, init_device=init, array_bytes=size,
            memory_gib=16,
        )
        rows.append((label, f"{report.page_faults:,}"))
    _print_table(
        "Fig. 10: CPU page faults in CPU STREAM", ["config", "faults"], rows
    )


def cmd_apps(args: argparse.Namespace) -> None:
    """Fig. 11: application comparisons."""
    from .apps import ALL_APPS

    names = [args.app] if args.app else sorted(ALL_APPS)
    rows = []
    for name in names:
        if name not in ALL_APPS:
            raise SystemExit(
                f"unknown app {name!r}; choose from {sorted(ALL_APPS)}"
            )
        app = ALL_APPS[name]()
        params = None
        if args.quick:
            params = {
                "backprop": {"input_units": 1 << 17},
                "dwt2d": {"dim": 2048},
                "heartwall": {"frame_dim": 512, "frames": 10},
                "hotspot": {"grid": 512, "iterations": 20},
                "nn": {"records": 1 << 20},
                "srad_v1": {"dim": 512, "iterations": 10},
            }[name]
        for variant, comparison in app.compare_variants(params=params).items():
            rows.append(
                (name, variant, f"{comparison.total_time_ratio:.2f}",
                 f"{comparison.compute_time_ratio:.2f}",
                 f"{comparison.memory_ratio:.2f}")
            )
    _print_table(
        "Fig. 11: unified / explicit ratios",
        ["app", "variant", "total", "compute", "memory"], rows,
    )


def cmd_export(args: argparse.Namespace) -> None:
    """Export experiment results as CSV (to --out, default ./results)."""
    from .report import export_all

    out_dir = args.out or "results"
    paths = export_all(out_dir, quick=args.quick)
    print(f"wrote {len(paths)} CSV files to {out_dir}/:")
    for path in paths:
        print(f"  {path}")


def cmd_uvm(args: argparse.Namespace) -> None:
    """Extension: UPM vs UVM vs explicit."""
    from .uvm import three_way_comparison

    size = 256 * MiB if args.quick else 1 * GiB
    results = three_way_comparison(working_set_bytes=size, iterations=10)
    baseline = results["explicit/discrete"]
    _print_table(
        "UPM vs UVM vs explicit",
        ["model", "time_ms", "vs explicit", "moved_MiB"],
        [(name, f"{r.time_ms:.1f}", f"{r.relative_to(baseline):.2f}x",
          r.moved_bytes >> 20) for name, r in results.items()],
    )


def cmd_partition(args: argparse.Namespace) -> None:
    """Partitioning: logical devices and bandwidth per mode."""
    from .partition import (
        all_valid_modes,
        device_stream_bandwidth,
        kernel_launch_factor,
    )
    from .runtime.hip import make_runtime

    memory_gib = 2 if args.quick else 4
    array_bytes = (16 if args.quick else 64) * MiB
    rows = []
    for mode in all_valid_modes():
        hip = make_runtime(memory_gib, partition=mode)
        apu = hip.apu
        aggregate = 0.0
        local_fractions = []
        for device in apu.logical_devices:
            hip.hipSetDevice(device.index)
            buf = hip.hipMalloc(array_bytes)
            frames = buf.vma.resident_frames()
            local = apu.placement.local_fraction(frames, device.index)
            local_fractions.append(local)
            aggregate += device_stream_bandwidth(
                apu.config, device, apu.buffer_traits(buf), local
            )
            hip.hipFree(buf)
        first = apu.logical_devices[0]
        rows.append(
            (mode.describe(), len(apu.logical_devices), first.compute_units,
             f"{first.memory_capacity_bytes / GiB:.2f}",
             f"{first.ic_reach_bytes / MiB:.1f}",
             f"{min(local_fractions):.2f}",
             _rate(aggregate),
             f"{kernel_launch_factor(apu.config, mode):.2f}")
        )
    _print_table(
        "Partition modes (per logical device, aggregate STREAM)",
        ["mode", "devices", "CUs/dev", "GiB/dev", "IC_MiB/dev",
         "local_frac", "aggregate_bw", "launch_factor"],
        rows,
    )


def cmd_lint(args: argparse.Namespace) -> int:
    """Static HIP API-misuse linter over Python sources."""
    from .analyze import has_errors, lint_paths, render_json, render_text

    paths = args.paths or ["examples", "src/repro/apps"]
    findings = lint_paths(paths, exclude=tuple(args.exclude or ()))
    if args.json:
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if has_errors(findings) else 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """hipsan: happens-before sanitizer over the ported applications."""
    from .analyze import SMALL_PARAMS, Severity, analyze_app, render_text
    from .apps import ALL_APPS

    names = [args.app] if args.app else sorted(ALL_APPS)
    failed = False
    for name in names:
        if name not in ALL_APPS:
            raise SystemExit(
                f"unknown app {name!r}; choose from {sorted(ALL_APPS)}"
            )
        app = ALL_APPS[name]()
        params = SMALL_PARAMS.get(name) if args.quick else None
        for variant in app.variants:
            findings = analyze_app(name, variant, params=params)
            reported = [f for f in findings if f.severity > Severity.INFO]
            status = "clean" if not reported else f"{len(reported)} finding(s)"
            print(f"{name:10s} {variant:16s} {status}")
            if reported:
                failed = True
                print(render_text(reported))
    return 1 if failed else 0


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "table1": cmd_table1,
    "fig2": cmd_fig2,
    "fig3": cmd_fig3,
    "memcpy": cmd_memcpy,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "apps": cmd_apps,
    "fig11": cmd_apps,
    "uvm": cmd_uvm,
    "partition": cmd_partition,
    "export": cmd_export,
    "lint": cmd_lint,
    "analyze": cmd_analyze,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from the MI300A UPM paper "
        "on the simulator.",
    )
    parser.add_argument(
        "experiment",
        help="experiment to regenerate, or 'list' for the menu",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced problem sizes for a fast look",
    )
    parser.add_argument(
        "--app", default=None,
        help="(apps/fig11 only) run a single application",
    )
    parser.add_argument(
        "--out", default=None,
        help="(export only) output directory for CSV files",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="(lint only) files or directories to lint",
    )
    parser.add_argument(
        "--exclude", action="append", default=None,
        help="(lint only) path suffix to skip; repeatable",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="(lint only) emit findings as JSON",
    )
    return parser


def list_experiments() -> List[str]:
    """The menu rows: command name + docstring summary."""
    rows = []
    for name, fn in COMMANDS.items():
        if name == "fig11":
            continue  # alias of apps
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        rows.append(f"  {name:10s} {doc}")
    return rows


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    # intermixed: "lint --json examples" has flags between positionals
    args = parser.parse_intermixed_args(argv)
    if args.experiment == "list":
        print("Available experiments:")
        for row in list_experiments():
            print(row)
        return 0
    command = COMMANDS.get(args.experiment)
    if command is None:
        print(f"unknown experiment {args.experiment!r}; try 'list'",
              file=sys.stderr)
        return 2
    return command(args) or 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
