"""Command-line interface: regenerate any of the paper's experiments.

Every experiment lives in the :mod:`repro.exp` registry; the CLI is a
thin shell over the engine:

    python -m repro list                       # the experiment registry
    python -m repro run fig2 --quick           # one experiment
    python -m repro run --all --workers 4      # the whole paper, parallel
    python -m repro run --all --quick --out out/   # + BENCH artifacts
    python -m repro fig9                       # legacy alias for `run fig9`
    python -m repro apps --app hotspot         # one application comparison
    python -m repro export --out results       # CSV export of the results
    python -m repro verify-bench out/BENCH_results.json
    python -m repro lint examples              # static HIP API-misuse linter
    python -m repro analyze --quick            # hipsan sweep over the apps
    python -m repro advise --apps              # static UPM performance advisor
    python -m repro advise examples --format sarif --out advise.sarif
    python -m repro verify-sarif advise.sarif  # structural SARIF 2.1.0 check
    python -m repro chaos --campaign standard --quick   # fault injection

``run`` executes each grid point on a freshly built simulated node,
caches point results on disk (``--no-cache`` / ``--refresh`` control
this), fans points out over ``--workers`` processes, and exits non-zero
— after printing the failed point's parameters and traceback — when any
point raises.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, Iterable, List, Optional, Sequence


def _print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), 14) for h in header]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def _fmt_cell(value: object) -> object:
    if isinstance(value, float):
        return f"{value:.6g}"
    return value


# ----------------------------------------------------------------------
# Engine-backed commands
# ----------------------------------------------------------------------


def _make_engine(args: argparse.Namespace):
    from .exp import Engine, ResultCache, default_cache_dir

    cache = None
    if not getattr(args, "no_cache", False):
        cache_dir = getattr(args, "cache_dir", None) or default_cache_dir()
        cache = ResultCache(cache_dir)
    return Engine(
        workers=getattr(args, "workers", 1),
        cache=cache,
        refresh=getattr(args, "refresh", False),
        point_timeout_s=getattr(args, "timeout", None),
    )


def _report_failures(results) -> int:
    """Print every failed point's params + traceback; non-zero if any."""
    failed = 0
    for result in results.values():
        for point in result.failures:
            failed += 1
            print(
                f"\nFAILED point {point.point.describe()}:", file=sys.stderr
            )
            print(point.error, file=sys.stderr)
    if failed:
        print(f"\n{failed} point(s) failed", file=sys.stderr)
    return 1 if failed else 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run experiments through the engine; write artifacts with --out."""
    from .exp import experiment_names, write_artifacts

    if args.all:
        names = experiment_names()
    elif args.experiments:
        names = list(dict.fromkeys(args.experiments))
    else:
        print("run: name at least one experiment, or use --all",
              file=sys.stderr)
        return 2

    engine = _make_engine(args)
    started = time.perf_counter()
    results = engine.run_many(names, quick=args.quick)
    wall_s = time.perf_counter() - started

    for name in names:
        result = results[name]
        _print_table(
            f"{result.spec.title} ({result.spec.source})",
            result.columns,
            [[_fmt_cell(v) for v in row] for row in result.rows],
        )
    print(
        f"\n{len(names)} experiment(s), "
        f"{engine.executed_points} point(s) executed, "
        f"{engine.cached_points} served from cache, "
        f"{wall_s:.2f}s wall-clock"
    )
    if args.out:
        bench = write_artifacts(
            results, args.out, workers=engine.workers, wall_s=wall_s,
            quick=args.quick,
        )
        print(f"wrote artifacts to {args.out}/ (bench: {bench})")
    return _report_failures(results)


def cmd_alias(args: argparse.Namespace) -> int:
    """Legacy per-experiment subcommand: `repro fig9` == `repro run fig9`."""
    engine = _make_engine(args)
    only = {"app": args.app} if getattr(args, "app", None) else None
    if only:
        from .exp import get_spec

        valid = dict(get_spec(args.experiment).active_grid()).get("app", ())
        if args.app not in valid:
            raise SystemExit(
                f"unknown app {args.app!r}; choose from {sorted(valid)}"
            )
    result = engine.run(args.experiment, quick=args.quick, only=only)
    _print_table(
        f"{result.spec.title} ({result.spec.source})",
        result.columns,
        [[_fmt_cell(v) for v in row] for row in result.rows],
    )
    return _report_failures({args.experiment: result})


def cmd_list(args: argparse.Namespace) -> int:
    """Print the experiment registry (what `run --all` will execute)."""
    from .exp import all_specs

    rows = []
    for spec in all_specs():
        axes = ", ".join(
            f"{axis}[{len(values)}]" for axis, values in spec.active_grid()
        ) or "-"
        rows.append((
            spec.name, spec.source, spec.point_count(),
            spec.point_count(quick=True), axes, spec.title,
        ))
    _print_table(
        "Registered experiments",
        ["experiment", "source", "points", "quick", "grid", "title"],
        rows,
    )
    print("\nAlso available: export, lint, analyze, advise, verify-bench, "
          "verify-sarif; 'repro run --all' executes every experiment above.")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Export experiment results as CSV (to --out, default ./results)."""
    from .report import export_all

    out_dir = args.out or "results"
    paths = export_all(out_dir, quick=args.quick)
    print(f"wrote {len(paths)} CSV files to {out_dir}/:")
    for path in paths:
        print(f"  {path}")
    return 0


def cmd_verify_bench(args: argparse.Namespace) -> int:
    """Validate a BENCH_results.json artifact against the registry."""
    from .exp import verify_bench

    problems = verify_bench(args.path)
    if problems:
        for problem in problems:
            print(f"BENCH: {problem}", file=sys.stderr)
        return 1
    print(f"{args.path}: ok")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run apps under a named fault-injection campaign (repro.inject)."""
    from .inject import run_campaign, report_bytes

    try:
        report = run_campaign(
            args.campaign,
            seed=args.seed,
            apps=args.apps or None,
            quick=args.quick,
            memory_gib=args.memory_gib,
        )
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"chaos: {message}", file=sys.stderr)
        return 2
    rendered = report_bytes(report)
    if args.out:
        with open(args.out, "wb") as fh:
            fh.write(rendered)
        print(f"wrote chaos report to {args.out}")
    else:
        sys.stdout.write(rendered.decode("utf-8"))

    for run in report["runs"]:
        status = "ok" if run["ok"] else "FAIL"
        detail = ""
        if run["error"] is not None:
            code = run["error"].get("code", run["error"]["type"])
            detail = f" ({code})"
        print(
            f"chaos {report['campaign']:16s} {run['app']:10s} "
            f"{run['variant']:16s} {status}{detail}",
            file=sys.stderr,
        )
    if not report["ok"]:
        bad = sum(1 for run in report["runs"] if not run["ok"])
        print(f"{bad} chaos run(s) violated the campaign contract",
              file=sys.stderr)
    return 0 if report["ok"] else 1


# ----------------------------------------------------------------------
# Analysis commands (unchanged semantics)
# ----------------------------------------------------------------------


def cmd_lint(args: argparse.Namespace) -> int:
    """Static HIP API-misuse linter over Python sources."""
    from .analyze import (
        has_errors,
        lint_paths,
        render_json,
        render_sarif,
        render_text,
    )

    paths = args.paths or ["examples", "src/repro/apps"]
    findings = lint_paths(paths, exclude=tuple(args.exclude or ()))
    fmt = "json" if args.json else (args.format or "text")
    if fmt == "json":
        print(render_json(findings))
    elif fmt == "sarif":
        print(render_sarif(findings, tool="repro-lint"))
    else:
        print(render_text(findings))
    return 1 if has_errors(findings) else 0


def cmd_advise(args: argparse.Namespace) -> int:
    """Static UPM performance advisor (CFG + dataflow) with SARIF."""
    from .analyze import (
        Severity,
        advise_apps,
        advise_paths,
        load_baseline,
        new_findings,
        render_json,
        render_sarif,
        render_text,
        save_baseline,
    )

    if args.apps:
        buckets = advise_apps()
        findings, seen = [], set()
        for name in sorted(buckets):
            for port in sorted(buckets[name]):
                port_findings = buckets[name][port]
                if args.format == "text":
                    worst = [
                        f for f in port_findings if f.severity > Severity.INFO
                    ]
                    status = (
                        "clean" if not worst else f"{len(worst)} advisory(ies)"
                    )
                    print(f"{name:10s} {port:9s} {status}")
                for f in port_findings:
                    key = (f.rule, f.file, f.line, f.message)
                    if key not in seen:
                        seen.add(key)
                        findings.append(f)
    elif args.paths:
        findings = advise_paths(
            args.paths, exclude=tuple(args.exclude or ())
        )
    else:
        print("advise: name at least one path, or use --apps",
              file=sys.stderr)
        return 2

    if args.write_baseline:
        prints = save_baseline(findings, args.write_baseline)
        print(f"wrote {len(prints)} fingerprint(s) to {args.write_baseline}")
        return 0

    if args.format == "sarif":
        rendered = render_sarif(findings)
    elif args.format == "json":
        rendered = render_json(findings)
    else:
        rendered = render_text(findings)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(rendered + "\n")
        print(f"wrote {args.format} report to {args.out}")
    else:
        print(rendered)

    gate = [f for f in findings if f.severity >= Severity.WARNING]
    if args.baseline:
        gate = new_findings(gate, load_baseline(args.baseline))
        if gate:
            print(
                f"{len(gate)} finding(s) not in baseline {args.baseline}",
                file=sys.stderr,
            )
    return 1 if gate else 0


def cmd_verify_sarif(args: argparse.Namespace) -> int:
    """Validate a SARIF file against the 2.1.0 structural invariants."""
    import json

    from .analyze import validate_sarif

    with open(args.path) as fh:
        doc = json.load(fh)
    problems = validate_sarif(doc)
    if problems:
        for problem in problems:
            print(f"SARIF: {problem}", file=sys.stderr)
        return 1
    print(f"{args.path}: ok")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """hipsan: happens-before sanitizer over the ported applications."""
    from .analyze import SMALL_PARAMS, Severity, analyze_app, render_text
    from .apps import ALL_APPS

    names = [args.app] if args.app else sorted(ALL_APPS)
    failed = False
    for name in names:
        if name not in ALL_APPS:
            raise SystemExit(
                f"unknown app {name!r}; choose from {sorted(ALL_APPS)}"
            )
        app = ALL_APPS[name]()
        params = SMALL_PARAMS.get(name) if args.quick else None
        for variant in app.variants:
            findings = analyze_app(name, variant, params=params)
            reported = [f for f in findings if f.severity > Severity.INFO]
            status = "clean" if not reported else f"{len(reported)} finding(s)"
            print(f"{name:10s} {variant:16s} {status}")
            if reported:
                failed = True
                print(render_text(reported))
    return 1 if failed else 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def _alias_names() -> List[str]:
    from .exp import experiment_names

    names = experiment_names()
    names.append("fig11")  # alias of apps, kept for familiarity
    return names


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced problem sizes for a fast look",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro/exp)",
    )
    parser.add_argument(
        "--refresh", action="store_true",
        help="recompute every point, overwriting cache entries",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from the MI300A UPM paper "
        "on the simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run experiments through the unified engine"
    )
    run.add_argument(
        "experiments", nargs="*",
        help="experiment names (see 'repro list')",
    )
    run.add_argument(
        "--all", action="store_true", help="run every registered experiment"
    )
    run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for point execution (default 1)",
    )
    run.add_argument(
        "--out", default=None,
        help="write per-experiment JSON + BENCH_results.json here",
    )
    run.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock budget; an overrunning point is "
             "recorded as a failure instead of hanging the sweep",
    )
    _add_engine_options(run)
    run.set_defaults(func=cmd_run)

    lst = sub.add_parser("list", help="print the experiment registry")
    lst.set_defaults(func=cmd_list)

    export = sub.add_parser("export", help="CSV export of the results")
    export.add_argument("--out", default=None, help="output directory")
    export.add_argument("--quick", action="store_true",
                        help="reduced problem sizes")
    export.set_defaults(func=cmd_export)

    verify = sub.add_parser(
        "verify-bench", help="validate a BENCH_results.json artifact"
    )
    verify.add_argument("path", help="path to BENCH_results.json")
    verify.set_defaults(func=cmd_verify_bench)

    lint = sub.add_parser("lint", help="static HIP API-misuse linter")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint")
    lint.add_argument("--exclude", action="append", default=None,
                      help="path suffix to skip; repeatable")
    lint.add_argument("--json", action="store_true",
                      help="emit findings as JSON (same as --format json)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default=None, help="report format (default text)")
    lint.set_defaults(func=cmd_lint)

    advise = sub.add_parser(
        "advise", help="static UPM performance advisor (CFG + dataflow)"
    )
    advise.add_argument("paths", nargs="*",
                        help="files or directories to advise")
    advise.add_argument("--apps", action="store_true",
                        help="advise the six Rodinia ports, per port model")
    advise.add_argument("--exclude", action="append", default=None,
                        help="path suffix to skip; repeatable")
    advise.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format (default text)")
    advise.add_argument("--out", default=None,
                        help="write the report to this file")
    advise.add_argument("--baseline", default=None,
                        help="suppression file: fail only on findings "
                             "missing from it")
    advise.add_argument("--write-baseline", default=None,
                        help="write the current findings as the baseline "
                             "and exit")
    advise.set_defaults(func=cmd_advise)

    verify_sarif = sub.add_parser(
        "verify-sarif", help="validate a SARIF 2.1.0 report file"
    )
    verify_sarif.add_argument("path", help="path to the .sarif file")
    verify_sarif.set_defaults(func=cmd_verify_sarif)

    chaos = sub.add_parser(
        "chaos", help="run apps under a named fault-injection campaign"
    )
    chaos.add_argument(
        "--campaign", default="standard",
        help="campaign name (see repro.inject.CAMPAIGNS; default standard)",
    )
    chaos.add_argument(
        "--seed", type=int, default=7,
        help="base seed; the same seed yields a byte-identical report",
    )
    chaos.add_argument(
        "--apps", nargs="*", default=None,
        help="restrict to these applications (default: all six ports)",
    )
    chaos.add_argument(
        "--quick", action="store_true",
        help="only the nn + hotspot subset",
    )
    chaos.add_argument(
        "--memory-gib", type=int, default=8,
        help="simulated pool size in GiB (small enough that pressure "
             "faults bite; default 8)",
    )
    chaos.add_argument(
        "--out", default=None,
        help="write the JSON report here instead of stdout",
    )
    chaos.set_defaults(func=cmd_chaos)

    analyze = sub.add_parser(
        "analyze", help="hipsan happens-before sanitizer over the apps"
    )
    analyze.add_argument("--app", default=None,
                         help="analyze a single application")
    analyze.add_argument("--quick", action="store_true",
                         help="reduced problem sizes")
    analyze.set_defaults(func=cmd_analyze)

    for name in _alias_names():
        experiment = "apps" if name == "fig11" else name
        alias = sub.add_parser(
            name, help=f"alias for 'run {experiment}'"
        )
        alias.set_defaults(func=cmd_alias, experiment=experiment, workers=1)
        _add_engine_options(alias)
        if experiment == "apps":
            alias.add_argument(
                "--app", default=None, help="run a single application"
            )
    return parser


def list_experiments() -> List[str]:
    """The registry menu rows (name + title), exposed for tests."""
    from .exp import all_specs

    return [f"  {spec.name:10s} {spec.title}" for spec in all_specs()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    from .exp import UnknownExperimentError

    try:
        return args.func(args) or 0
    except UnknownExperimentError as exc:
        print(f"unknown experiment {exc.experiment!r}; try 'repro list'",
              file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
