"""Page-fault throughput and latency model (paper Figs. 7-8).

The paper measures, for four scenarios (GPU major, GPU minor, one CPU
core, twelve CPU cores), how many page faults per second the system can
resolve as a function of how many pages are touched, and the latency
distribution of a single isolated fault.

Throughput follows a classic ramp-and-plateau: for small page counts the
fixed handler latency dominates (throughput grows ~linearly with the
number of in-flight faults); past the saturation point the handler
pipeline is full and throughput settles at ``1 / per_page_service_time``.
We model the curve as

    T(n) = n / (L + n * s)

with L the single-fault latency and s the saturated per-page service
time, which reproduces both the initial slope and the measured plateaus:

=========  ==========  =====================
scenario   plateau     saturation page count
=========  ==========  =====================
GPU major  1.1 M/s     ~10 K pages
GPU minor  9.0 M/s     ~10 M pages
1 CPU      872 K/s     ~1 K pages
12 CPU     3.7 M/s     ~10 K pages
=========  ==========  =====================

GPU minor additionally ramps slowly (driver batches grow with fault
pressure), modelled by a batch-efficiency term that reaches 1 at the
saturation count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..hw.config import MI300AConfig
from ..core.faults import CPU_FAULT_SCALING_EXPONENT

Scenario = Literal["gpu_major", "gpu_minor", "cpu", "cpu12"]


@dataclass(frozen=True)
class ScenarioParams:
    """Latency/service parameters of one fault scenario."""

    single_latency_ns: float
    saturated_page_ns: float
    saturation_pages: int


def scenario_params(config: MI300AConfig, scenario: Scenario) -> ScenarioParams:
    """Look up the calibrated parameters for a scenario."""
    c = config.fault_costs
    if scenario == "gpu_major":
        return ScenarioParams(
            c.gpu_major_single_latency_ns,
            c.gpu_major_batched_page_ns,
            c.gpu_major_saturation_pages,
        )
    if scenario == "gpu_minor":
        return ScenarioParams(
            c.gpu_minor_single_latency_ns,
            c.gpu_minor_batched_page_ns,
            c.gpu_minor_saturation_pages,
        )
    if scenario == "cpu":
        return ScenarioParams(
            c.cpu_single_latency_ns,
            c.cpu_batched_page_ns,
            c.cpu_saturation_pages,
        )
    if scenario == "cpu12":
        factor = 12.0**-CPU_FAULT_SCALING_EXPONENT
        return ScenarioParams(
            c.cpu_single_latency_ns,
            c.cpu_batched_page_ns * factor,
            c.cpu12_saturation_pages,
        )
    raise ValueError(f"unknown fault scenario {scenario!r}")


def fault_throughput_pages_per_s(
    config: MI300AConfig, scenario: Scenario, pages: int
) -> float:
    """Fault-resolution throughput when *pages* pages fault together."""
    if pages <= 0:
        raise ValueError(f"pages must be positive, got {pages}")
    p = scenario_params(config, scenario)
    service_ns = p.saturated_page_ns / _batch_efficiency(
        pages, p.saturation_pages
    )
    total_ns = p.single_latency_ns + pages * service_ns
    return pages / total_ns * 1e9


def fault_burst_time_ns(
    config: MI300AConfig, scenario: Scenario, pages: int
) -> float:
    """Time to resolve a burst of *pages* faults in one scenario."""
    if pages <= 0:
        return 0.0
    return pages / fault_throughput_pages_per_s(config, scenario, pages) * 1e9


def _batch_efficiency(pages: int, saturation_pages: int) -> float:
    """How much of the saturated batching the handler achieves.

    Reaches 1.0 at the scenario's saturation page count; below it the
    driver's fault batches are smaller and the per-page service time is
    proportionally worse.  The log-shaped ramp matches the measured
    gradual climb of the GPU-minor curve up to 10 M pages.
    """
    if pages >= saturation_pages:
        return 1.0
    # Between 1 page and saturation, efficiency climbs log-linearly from
    # ~0.5 to 1.0 — mild enough to keep the early curve latency-bound.
    frac = math.log(pages + 1) / math.log(saturation_pages + 1)
    return 0.5 + 0.5 * frac


def prefault_speedup(
    config: MI300AConfig, pages: int, cpu_cores: int = 12
) -> float:
    """Speedup of CPU pre-faulting + GPU minor faults over GPU major.

    The paper's recommended strategy (Section 5.2): touch pages with 12
    CPU cores first, turning the GPU's major faults into minor faults.
    At 10 M pages (40 GiB) the combined pipeline achieves ~2.2x the
    GPU-major throughput.
    """
    if cpu_cores != 12:
        raise ValueError("calibrated for the paper's 12-core scenario")
    major_t = fault_burst_time_ns(config, "gpu_major", pages)
    staged_t = fault_burst_time_ns(config, "cpu12", pages) + fault_burst_time_ns(
        config, "gpu_minor", pages
    )
    return major_t / staged_t


def sample_latency_distribution(
    config: MI300AConfig,
    scenario: Literal["cpu", "gpu_minor", "gpu_major"],
    samples: int,
    seed: int = 0xD157,
) -> np.ndarray:
    """Draw single-fault latencies (ns) for Fig. 8's distributions."""
    c = config.fault_costs
    if scenario == "cpu":
        mean, sigma = c.cpu_single_latency_ns, c.cpu_latency_sigma
    elif scenario == "gpu_minor":
        mean, sigma = c.gpu_minor_single_latency_ns, c.gpu_latency_sigma
    elif scenario == "gpu_major":
        mean, sigma = c.gpu_major_single_latency_ns, c.gpu_latency_sigma
    else:
        raise ValueError(f"unknown fault scenario {scenario!r}")
    rng = np.random.default_rng(seed)
    mu = math.log(mean) - sigma * sigma / 2.0
    return rng.lognormal(mu, sigma, size=samples)
