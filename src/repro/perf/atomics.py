"""Atomics throughput and CPU-GPU coherence contention model (Figs. 4-5).

The paper's histogram benchmark updates random elements of an array of
2^0, 2^10, 2^20, or 2^30 elements with atomic adds, from CPU threads, GPU
threads, or both.  The governing mechanisms, all represented here:

* **Implementation.** The compiler emits ``lock incq`` for CPU integer
  adds but a CAS loop (``lock cmpxchgq``) for CPU FP64 — x86 has no
  native FP atomics — so FP64 pays a fixed overhead plus retries under
  contention.  The GPU has native atomic-add units in the shared L2 for
  both types, hence identical UINT64/FP64 performance (Section 4.4).

* **Residency.** The per-update base cost depends on which cache level
  the array fits in; 1M elements (8 MiB) fits in L2 and is the sweet
  spot on both devices.

* **Line contention.** CPU atomics take exclusive ownership of the cache
  line; when another thread wrote the line recently the update pays a
  ping-pong transfer.  The dirty-elsewhere probability falls with array
  size and rises with thread count.

* **Cross-device contention.** When CPU and GPU hammer the same array,
  lines bounce over Infinity Fabric.  The CPU is hurt far more than the
  GPU (GPU atomics execute at the memory side and don't need ownership);
  at moderate GPU rates on an L2-resident array the GPU's updates even
  *warm* the shared levels for the CPU, the paper's counter-intuitive
  1.14x co-run speedup.

All constants live in :class:`repro.hw.config.AtomicsCostModel` and were
fitted to the paper's reported points; the shape assertions in the Fig. 4
and Fig. 5 benches are the acceptance tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

from ..hw.config import MI300AConfig

DType = Literal["uint64", "fp64"]

_ELEMENT_BYTES = 8
_CPU_LINE_BYTES = 64
_GPU_LINE_BYTES = 128

#: Aggregate capacities used for residency decisions (bytes).
_CPU_L1_AGG = 32 * 1024  # single core's L1: contended arrays live here
_CPU_L2_AGG = 24 * 1024 * 1024  # 24 cores x 1 MiB
_CPU_L3_AGG = 96 * 1024 * 1024
_GPU_L2_AGG = 24 * 1024 * 1024  # 6 XCDs x 4 MiB

#: Fitted dirty-elsewhere floor while the array fits in on-chip caches
#: (set so the 1M array overtakes the 1-thread case at 6 threads, Fig. 4).
_CACHED_CONTENTION_FLOOR = 0.12
_MEMORY_CONTENTION_FLOOR = 0.01
#: Fitted line-reuse constant: g ~ K / lines.
_LINE_REUSE_K = 25.0
#: CAS critical-section widening for FP64 (longer load-compute-CAS hold).
_FP64_WINDOW_FACTOR = 3.5
#: Per-thread issue period of the GPU update loop (latency-bound: XORWOW
#: generation + L2 round trip), fitted to the few-thread regime.
_GPU_THREAD_PERIOD_NS = 300.0
#: Effective window (ns) in which a GPU write dirties a line against the
#: next CPU access; fitted to Fig. 5's 1K-array relative-performance band
#: (0.87 at 64 GPU threads down to 0.11-0.25 past 3328 GPU threads).
_CROSS_DEVICE_WINDOW_NS = 25.0
#: Fitted GPU-side loss when both devices saturate a small array
#: (Fig. 5: GPU drops to 0.79 at maximal CPU+GPU thread counts on 1K).
_GPU_CONTENTION_K = 0.27


def _cpu_base_cost_ns(config: MI300AConfig, elements: int, dtype: DType) -> float:
    size = elements * _ELEMENT_BYTES
    costs = config.atomics
    if size <= _CPU_L1_AGG:
        base = costs.cpu_l1_update_ns
    elif size <= _CPU_L2_AGG:
        base = costs.cpu_l2_update_ns
    elif size <= _CPU_L3_AGG:
        base = costs.cpu_l2_update_ns * 1.6
    else:
        base = costs.cpu_mem_update_ns
    if dtype == "fp64":
        base *= costs.cpu_fp64_overhead
    return base


def _dirty_elsewhere_probability(elements: int, dtype: DType) -> float:
    """Probability the target line was last written by another thread."""
    size = elements * _ELEMENT_BYTES
    lines = max(1, size // _CPU_LINE_BYTES)
    if elements * _ELEMENT_BYTES <= _CPU_LINE_BYTES:
        g = 1.0
    else:
        floor = (
            _CACHED_CONTENTION_FLOOR
            if size <= _CPU_L3_AGG
            else _MEMORY_CONTENTION_FLOOR
        )
        g = min(1.0, _LINE_REUSE_K / lines + floor)
    if dtype == "fp64":
        g = min(1.0, g * _FP64_WINDOW_FACTOR)
    return g


def cpu_atomic_update_cost_ns(
    config: MI300AConfig, elements: int, threads: int, dtype: DType
) -> float:
    """Average cost of one CPU atomic update under contention."""
    if elements <= 0 or threads <= 0:
        raise ValueError("elements and threads must be positive")
    costs = config.atomics
    cost = _cpu_base_cost_ns(config, elements, dtype)
    if threads > 1:
        g = _dirty_elsewhere_probability(elements, dtype)
        contend = (threads - 1) / threads * g
        cost += contend * costs.cpu_pingpong_ns
        if dtype == "fp64":
            # Failed CAS iterations: pay another ownership round trip.
            retry_p = min(1.0, (threads - 1) / elements)
            cost += retry_p * (costs.cpu_pingpong_ns + costs.cpu_cas_retry_ns)
    return cost


def cpu_atomic_throughput(
    config: MI300AConfig, elements: int, threads: int, dtype: DType
) -> float:
    """Isolated CPU atomic-update throughput (updates/s), Fig. 4 row 1."""
    cost = cpu_atomic_update_cost_ns(config, elements, threads, dtype)
    return threads / cost * 1e9


def gpu_atomic_throughput(
    config: MI300AConfig, elements: int, threads: int, dtype: DType
) -> float:
    """Isolated GPU atomic-update throughput (updates/s), Fig. 4 row 2.

    Throughput is the minimum of three capacities:

    * issue: each GPU thread is a latency-bound update loop;
    * atomic units: the L2-side units process one update per bank cycle
      when the array is L2-resident, slower past L2;
    * line serialisation: same-line updates serialise at one unit, which
      caps small arrays (and makes 1-element flat in the thread count).

    FP64 and UINT64 are identical by construction (native units).
    """
    if elements <= 0 or threads <= 0:
        raise ValueError("elements and threads must be positive")
    del dtype  # native atomic units: no FP penalty
    costs = config.atomics
    size = elements * _ELEMENT_BYTES
    issue = threads / _GPU_THREAD_PERIOD_NS
    if size <= _GPU_L2_AGG:
        unit_capacity = costs.gpu_l2_banks / costs.gpu_l2_update_ns
    else:
        unit_capacity = costs.gpu_l2_banks / costs.gpu_mem_update_ns
    lines = max(1, size // _GPU_LINE_BYTES)
    line_capacity = lines / costs.gpu_serialization_ns
    return min(issue, unit_capacity, line_capacity) * 1e9


@dataclass(frozen=True)
class HybridThroughput:
    """Co-running throughputs and their ratios to the isolated baselines."""

    cpu_updates_per_s: float
    gpu_updates_per_s: float
    cpu_relative: float
    gpu_relative: float


def hybrid_atomic_throughput(
    config: MI300AConfig,
    elements: int,
    cpu_threads: int,
    gpu_threads: int,
    dtype: DType,
) -> HybridThroughput:
    """Co-running CPU+GPU atomics (Fig. 5).

    The GPU's update stream invalidates CPU-owned lines; every CPU update
    then has a probability of paying a cross-device transfer over
    Infinity Fabric.  That probability saturates with the GPU's aggregate
    rate and shrinks with the number of lines.  The GPU only suffers when
    the *total* pressure approaches the atomic units' capacity.  On an
    L2-resident array (1M) a moderate GPU rate instead warms the shared
    levels for the CPU — a net speedup, as the paper measures.
    """
    cpu_iso = cpu_atomic_throughput(config, elements, cpu_threads, dtype)
    gpu_iso = gpu_atomic_throughput(config, elements, gpu_threads, dtype)
    costs = config.atomics
    size = elements * _ELEMENT_BYTES
    lines = max(1, size // _CPU_LINE_BYTES)

    # Probability a CPU update's line was dirtied by the GPU within the
    # cross-device window: GPU line-write rate times the window length.
    cpu_cost_ns = cpu_atomic_update_cost_ns(config, elements, cpu_threads, dtype)
    gpu_rate_per_ns = gpu_iso / 1e9
    gpu_hits_per_line = gpu_rate_per_ns * _CROSS_DEVICE_WINDOW_NS / lines
    p_cross = 1.0 - math.exp(-gpu_hits_per_line)
    cpu_cost_hybrid = cpu_cost_ns + p_cross * costs.hybrid_transfer_ns

    # Warm-cache benefit: only for arrays resident in the shared levels
    # and only while the cross-device collision rate is low.
    if _CPU_L1_AGG < size <= _GPU_L2_AGG:
        sweet = math.exp(-((math.log10(max(gpu_iso, 1.0)) - 9.5) ** 2))
        bonus = costs.hybrid_warm_cache_bonus * sweet * (1.0 - p_cross)
        cpu_cost_hybrid /= 1.0 + bonus
    cpu_hybrid = cpu_threads / cpu_cost_hybrid * 1e9

    # GPU degradation: CPU exclusive-ownership stalls at the atomic
    # units.  Scales with both devices' thread pressure, and only bites
    # on small (few-line) arrays.
    max_gpu_threads = config.gpu_compute_units * costs.gpu_threads_per_cu
    contested = min(1.0, 256.0 / lines)
    loss = (
        _GPU_CONTENTION_K
        * contested
        * (cpu_threads / config.cpu_cores)
        * min(1.0, gpu_threads / max_gpu_threads)
    )
    gpu_factor = 1.0 / (1.0 + loss)
    if _CPU_L1_AGG < size <= _GPU_L2_AGG:
        gpu_factor *= 1.0 + 0.02 * (1.0 - p_cross)
    gpu_hybrid = gpu_iso * gpu_factor

    return HybridThroughput(
        cpu_updates_per_s=cpu_hybrid,
        gpu_updates_per_s=gpu_hybrid,
        cpu_relative=cpu_hybrid / cpu_iso if cpu_iso else 0.0,
        gpu_relative=gpu_hybrid / gpu_iso if gpu_iso else 0.0,
    )

