"""Memory-latency model (paper Fig. 2).

The pointer-chase latency of a buffer is the capacity-weighted average of
the cache levels its working set straddles (see
:mod:`repro.hw.caches`), with one system-software twist the paper
highlights: on the CPU side, the *allocator* determines how well the
buffer's physical pages map onto the Infinity Cache's per-channel slices.
A biased mapping (malloc first-touch) shrinks the effective IC and pushes
the latency curve to its HBM plateau hundreds of MiB early (Sections 4.1
and 5.4).

GPU latency is modelled as allocator-insensitive, as measured in the
paper: the GPU's memory path re-orders and coalesces across enough
in-flight requests that IC slice imbalance is not visible in the chase.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..hw.caches import gpu_hierarchy
from ..hw.config import MI300AConfig
from ..hw.infinity_cache import InfinityCache


def ic_hit_fraction_for_frames(
    ic: InfinityCache, frames: Sequence[int], working_set_bytes: int
) -> float:
    """IC hit fraction of the first *working_set_bytes* of a buffer.

    The chase touches a prefix of the buffer; only those frames compete
    for Infinity Cache slices.
    """
    frames = np.asarray(frames)
    pages = max(1, min(len(frames), working_set_bytes // 4096))
    return ic.hit_fraction(frames[:pages])


def cpu_chase_latency_ns(
    config: MI300AConfig,
    working_set_bytes: int,
    ic: InfinityCache | None = None,
    frames: Sequence[int] | None = None,
    uncached: bool = False,
) -> float:
    """CPU pointer-chase latency for a working set on given frames.

    On-chip levels (L1/L2/L3) serve their capacity share; accesses that
    spill past L3 hit the memory-side Infinity Cache with the buffer's
    channel-balance-determined hit fraction and go to HBM otherwise —
    the mechanism behind malloc's early latency plateau (Section 5.4).
    Without frame information the physical mapping is assumed perfectly
    balanced (the HIP-allocator case).
    """
    if uncached:
        return config.cpu_hbm_latency_ns
    if ic is not None and frames is not None and len(frames):
        ic_fraction = ic_hit_fraction_for_frames(ic, frames, working_set_bytes)
    else:
        # Perfectly balanced mapping: the IC covers its capacity's share.
        ic_fraction = min(
            1.0, config.infinity_cache.capacity_bytes / max(1, working_set_bytes)
        )
    total = 0.0
    for (name, fraction), level in _cpu_level_fractions(config, working_set_bytes):
        if name == "memory_side":
            memory_latency = (
                ic_fraction * config.cpu_ic_latency_ns
                + (1.0 - ic_fraction) * config.cpu_hbm_latency_ns
            )
            total += fraction * memory_latency
        else:
            total += fraction * level
    return total


def _cpu_level_fractions(config: MI300AConfig, working_set_bytes: int):
    """(name, fraction) per level with the IC+HBM region merged."""
    on_chip = [
        (config.cpu_l1.name, config.cpu_l1.capacity_bytes, config.cpu_l1.latency_ns),
        (config.cpu_l2.name, config.cpu_l2.capacity_bytes, config.cpu_l2.latency_ns),
        (config.cpu_l3.name, config.cpu_l3.capacity_bytes, config.cpu_l3.latency_ns),
    ]
    ws = max(1, working_set_bytes)
    covered = 0
    out = []
    for name, capacity, latency in on_chip:
        reach = min(ws, capacity)
        served = max(0, reach - covered)
        covered = max(covered, reach)
        out.append(((name, served / ws), latency))
    out.append((("memory_side", (ws - covered) / ws), 0.0))
    return out


def gpu_chase_latency_ns(
    config: MI300AConfig,
    working_set_bytes: int,
    uncached: bool = False,
) -> float:
    """GPU pointer-chase latency for a working set.

    Matches the paper's observation that GPU latency on MI300A is
    insensitive to the allocator in use (Section 4.1).
    """
    if uncached:
        return config.gpu_hbm_latency_ns
    hierarchy = gpu_hierarchy(config)
    return hierarchy.average_latency_ns(working_set_bytes)


def chase_latency_ns(
    config: MI300AConfig,
    device: str,
    working_set_bytes: int,
    ic: InfinityCache | None = None,
    frames: Sequence[int] | None = None,
    uncached: bool = False,
) -> float:
    """Dispatch :func:`cpu_chase_latency_ns` / :func:`gpu_chase_latency_ns`."""
    if device == "cpu":
        return cpu_chase_latency_ns(config, working_set_bytes, ic, frames, uncached)
    if device == "gpu":
        return gpu_chase_latency_ns(config, working_set_bytes, uncached)
    raise ValueError(f"unknown device {device!r}")
