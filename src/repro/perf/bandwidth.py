"""Achievable-bandwidth model (paper Fig. 3 and Section 4.3).

GPU STREAM bandwidth on MI300A separates into four tiers, and each tier
has a *mechanism* this model reads off the simulated buffer state:

1. ``hipMalloc`` (3.5-3.6 TB/s) — large fragments keep the GPU L1 TLB's
   reach ahead of the stream (Fig. 9), so translation never throttles the
   memory pipeline.
2. Pinned small-fragment allocators (2.1-2.2 TB/s) — page-granularity
   fragments make the stream TLB-miss-bound.
3. On-demand allocators (1.8-1.9 TB/s) — additionally run with
   XNACK-replayable translations, which cost the TLB pipeline its
   fire-and-forget behaviour.
4. ``__managed__`` statics (103 GB/s) — served from a nominally
   uncacheable aperture.

CPU STREAM splits into the paper's case A (208 GB/s, balanced physical
mapping, peak at 24 threads) and case B (~181 GB/s, biased mapping, peak
at 9 threads and degrading with more cores).
"""

from __future__ import annotations

from dataclasses import dataclass


from ..hw.config import KiB, MI300AConfig

#: Average fragment size above which the GPU TLB stops being the STREAM
#: bottleneck (one L1 TLB entry then covers >= 8 cache lines in flight).
LARGE_FRAGMENT_BYTES = 32 * KiB

#: Channel-balance score below which a buffer behaves as the paper's
#: "case B" for CPU streaming (biased Infinity Cache slice usage).
BALANCED_THRESHOLD = 0.8


@dataclass(frozen=True)
class BufferTraits:
    """The allocator-determined properties the bandwidth model reads."""

    on_demand: bool
    uncached: bool
    average_fragment_bytes: float
    channel_balance: float

    @property
    def balanced(self) -> bool:
        """True when the physical mapping spreads evenly over channels."""
        return self.channel_balance >= BALANCED_THRESHOLD


def gpu_stream_bandwidth(config: MI300AConfig, traits: BufferTraits) -> float:
    """Achievable GPU TRIAD bandwidth (bytes/s) for a buffer."""
    model = config.bandwidth
    if traits.uncached:
        return model.gpu_managed_static_bytes_per_s
    if traits.on_demand:
        return model.gpu_peak_stream_bytes_per_s * model.gpu_on_demand_factor
    if traits.average_fragment_bytes >= LARGE_FRAGMENT_BYTES:
        return model.gpu_peak_stream_bytes_per_s
    return model.gpu_peak_stream_bytes_per_s * model.gpu_small_fragment_factor


def cpu_stream_bandwidth(
    config: MI300AConfig, traits: BufferTraits, threads: int
) -> float:
    """Achievable CPU TRIAD bandwidth (bytes/s) at a thread count.

    Case A (balanced mapping): bandwidth ramps roughly linearly and peaks
    with all 24 cores at 208 GB/s.  Case B (biased mapping): the hot
    Infinity Cache slices saturate at 9 threads (~181 GB/s) and adding
    cores *degrades* slightly to ~174 GB/s (Section 4.2).
    """
    if threads < 1:
        raise ValueError(f"need at least one thread, got {threads}")
    model = config.bandwidth
    threads = min(threads, config.cpu_cores)
    knee = model.cpu_case_b_best_threads
    if threads <= knee:
        # Below the knee both cases ramp at the single-thread rate.
        bandwidth = threads * model.cpu_single_thread_bytes_per_s
    elif traits.balanced and not traits.uncached:
        # Case A: slow climb from the knee to the 24-core peak — the
        # Infinity Cache slices keep absorbing traffic as cores join.
        span = config.cpu_cores - knee
        frac = (threads - knee) / span
        low = knee * model.cpu_single_thread_bytes_per_s
        bandwidth = low + frac * (model.cpu_peak_stream_bytes_per_s - low)
    else:
        # Case B: the hot slices are saturated at the knee; extra cores
        # only add contention and bandwidth degrades slightly.
        span = config.cpu_cores - knee
        frac = (threads - knee) / span
        bandwidth = model.cpu_biased_stream_bytes_per_s - frac * (
            model.cpu_biased_stream_bytes_per_s
            - model.cpu_case_b_allcore_bytes_per_s
        )
    if traits.uncached:
        # Managed statics: no cache reuse on the CPU side either.
        bandwidth = min(bandwidth, model.cpu_uncached_bytes_per_s)
    return bandwidth


def best_cpu_stream_bandwidth(
    config: MI300AConfig, traits: BufferTraits
) -> tuple[float, int]:
    """Best bandwidth over 1..cores threads and the thread count achieving it.

    Reproduces the paper's methodology of sweeping OMP thread counts and
    selecting the best result.
    """
    best_bw, best_threads = 0.0, 1
    for threads in range(1, config.cpu_cores + 1):
        bw = cpu_stream_bandwidth(config, traits, threads)
        if bw > best_bw:
            best_bw, best_threads = bw, threads
    return best_bw, best_threads


def stream_time_ns(bytes_moved: int, bandwidth_bytes_per_s: float) -> float:
    """Simulated nanoseconds to stream *bytes_moved* at a bandwidth."""
    if bytes_moved < 0:
        raise ValueError(f"negative byte count {bytes_moved}")
    if bandwidth_bytes_per_s <= 0:
        raise ValueError(f"non-positive bandwidth {bandwidth_bytes_per_s}")
    return bytes_moved / bandwidth_bytes_per_s * 1e9
