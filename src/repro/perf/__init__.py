"""Calibrated performance models for the simulated MI300A.

Each module turns simulated memory-system *state* (fragment sizes,
channel balance, allocation mode, contention level) into time:

* :mod:`~repro.perf.latency` — pointer-chase latency (Fig. 2),
* :mod:`~repro.perf.bandwidth` — STREAM bandwidth (Fig. 3),
* :mod:`~repro.perf.atomics` — atomics/coherence throughput (Figs. 4-5),
* :mod:`~repro.perf.faultmodel` — fault throughput/latency (Figs. 7-8).
"""

from .atomics import (
    HybridThroughput,
    cpu_atomic_throughput,
    cpu_atomic_update_cost_ns,
    gpu_atomic_throughput,
    hybrid_atomic_throughput,
)
from .bandwidth import (
    BufferTraits,
    best_cpu_stream_bandwidth,
    cpu_stream_bandwidth,
    gpu_stream_bandwidth,
    stream_time_ns,
)
from .faultmodel import (
    ScenarioParams,
    fault_burst_time_ns,
    fault_throughput_pages_per_s,
    prefault_speedup,
    sample_latency_distribution,
    scenario_params,
)
from .latency import (
    chase_latency_ns,
    cpu_chase_latency_ns,
    gpu_chase_latency_ns,
    ic_hit_fraction_for_frames,
)

__all__ = [
    "BufferTraits",
    "HybridThroughput",
    "ScenarioParams",
    "best_cpu_stream_bandwidth",
    "chase_latency_ns",
    "cpu_atomic_throughput",
    "cpu_atomic_update_cost_ns",
    "cpu_chase_latency_ns",
    "cpu_stream_bandwidth",
    "fault_burst_time_ns",
    "fault_throughput_pages_per_s",
    "gpu_atomic_throughput",
    "gpu_chase_latency_ns",
    "gpu_stream_bandwidth",
    "hybrid_atomic_throughput",
    "ic_hit_fraction_for_frames",
    "prefault_speedup",
    "sample_latency_distribution",
    "scenario_params",
    "stream_time_ns",
]
