"""repro — a simulated-MI300A reproduction of
"Dissecting CPU-GPU Unified Physical Memory on AMD MI300A APUs"
(Wahlgren et al., IISWC 2025).

The package models the MI300A's unified physical memory system — the
chiplet/HBM/Infinity Cache hardware, the two page tables with their HMM
mirror, fragment-aware TLBs, the XNACK page-fault machinery, and the
seven memory allocators of the paper's Table 1 — plus a HIP-like runtime,
the paper's microbenchmarks, and its six Rodinia workloads in both the
explicit and unified memory models.

Quick start::

    from repro import make_runtime, KernelSpec, BufferAccess

    hip = make_runtime(memory_gib=8, xnack=True)
    buf = hip.hipMalloc(256 << 20)
    hip.launchKernel(KernelSpec("sweep", [BufferAccess(buf, "read")]))
    hip.hipDeviceSynchronize()

Subpackages:

* :mod:`repro.hw` — hardware substrate (config, clock, HBM, caches).
* :mod:`repro.core` — OS/driver memory management (the paper's subject).
* :mod:`repro.partition` — SPX/TPX/CPX and NPS1/NPS4 partition modes.
* :mod:`repro.runtime` — the HIP-like runtime and kernel engine.
* :mod:`repro.perf` — calibrated performance models.
* :mod:`repro.bench` — the paper's benchmarks as library functions.
* :mod:`repro.profiling` — rocprof / perf-stat / libnuma analogues.
* :mod:`repro.porting` — Section 3.3's porting strategies.
* :mod:`repro.apps` — the six Rodinia workloads.
"""

from .hw import MI300AConfig, default_config, small_config
from .partition import ComputePartition, MemoryPartition, PartitionConfig
from .runtime import (
    APU,
    BufferAccess,
    DeviceArray,
    HipRuntime,
    KernelSpec,
    make_apu,
    make_runtime,
)

__version__ = "1.0.0"

__all__ = [
    "APU",
    "BufferAccess",
    "ComputePartition",
    "DeviceArray",
    "HipRuntime",
    "KernelSpec",
    "MI300AConfig",
    "MemoryPartition",
    "PartitionConfig",
    "__version__",
    "default_config",
    "make_apu",
    "make_runtime",
    "small_config",
]
