"""Correctness tooling for the simulated HIP runtime.

Two cooperating passes over programs written against
:mod:`repro.runtime`:

* **hipsan**, a dynamic happens-before sanitizer
  (:mod:`repro.analyze.sanitizer`): build the runtime with
  ``make_runtime(..., trace=True)``, run the program, then call
  :func:`analyze_runtime` (or ``python -m repro analyze``) to check the
  event log for CPU↔GPU races on unified pages, unsynchronized D2H
  reads, races with in-flight ``hipMemcpyAsync``, lifetime violations
  through ``hipFree``, and XNACK-off fatal accesses.

* a **static linter** (:mod:`repro.analyze.linter`):
  ``python -m repro lint <paths>`` flags missing synchronization,
  leaked allocations, free-before-sync, mixed explicit/managed usage
  and deprecated/unknown API names without running anything.

Both report :class:`~repro.analyze.findings.Finding` records rendered
by the shared text/JSON reporters.
"""

from .events import EventLog, RuntimeEvent
from .findings import (
    Finding,
    Severity,
    has_errors,
    max_severity,
    render_json,
    render_text,
)
from .hb import VectorClock, ordered_before
from .linter import lint_file, lint_paths, lint_source
from .sanitizer import (
    GPU_FAULT_STORM_PAGES,
    SMALL_PARAMS,
    Sanitizer,
    analyze_app,
    analyze_log,
    analyze_runtime,
)

__all__ = [
    "EventLog",
    "Finding",
    "GPU_FAULT_STORM_PAGES",
    "RuntimeEvent",
    "SMALL_PARAMS",
    "Sanitizer",
    "Severity",
    "VectorClock",
    "analyze_app",
    "analyze_log",
    "analyze_runtime",
    "has_errors",
    "lint_file",
    "lint_paths",
    "lint_source",
    "max_severity",
    "ordered_before",
    "render_json",
    "render_text",
]
