"""Correctness and performance tooling for the simulated HIP runtime.

Three cooperating passes over programs written against
:mod:`repro.runtime`:

* **hipsan**, a dynamic happens-before sanitizer
  (:mod:`repro.analyze.sanitizer`): build the runtime with
  ``make_runtime(..., trace=True)``, run the program, then call
  :func:`analyze_runtime` (or ``python -m repro analyze``) to check the
  event log for CPU↔GPU races on unified pages, unsynchronized D2H
  reads, races with in-flight ``hipMemcpyAsync``, lifetime violations
  through ``hipFree``, and XNACK-off fatal accesses.

* a **static linter** (:mod:`repro.analyze.linter`):
  ``python -m repro lint <paths>`` flags missing synchronization,
  leaked allocations, free-before-sync, mixed explicit/managed usage
  and deprecated/unknown API names without running anything.

* a **static performance advisor** (:mod:`repro.analyze.advise`):
  ``python -m repro advise <paths|--apps>`` runs a CFG + dataflow
  analysis that prices the paper's UPM anti-patterns — redundant
  copies, first-touch placement, predicted fault storms, TLB reach,
  mixed allocation models, device syncs in loops — with SARIF 2.1.0
  output and a CI baseline.

All passes report :class:`~repro.analyze.findings.Finding` records
whose severities come from the shared rule registry
(:data:`~repro.analyze.findings.RULES`), rendered by the common
text/JSON/SARIF reporters.
"""

from .advise import (
    advise_apps,
    advise_file,
    advise_paths,
    advise_source,
    fingerprint,
    load_baseline,
    new_findings,
    port_is_clean,
    render_sarif,
    save_baseline,
    to_sarif,
    validate_sarif,
)
from .events import EventLog, RuntimeEvent
from .findings import (
    RULES,
    Finding,
    RuleSpec,
    Severity,
    all_rules,
    has_errors,
    make_finding,
    max_severity,
    render_json,
    render_text,
    rule_spec,
)
from .hb import VectorClock, ordered_before
from .linter import lint_file, lint_paths, lint_source
from .sanitizer import (
    GPU_FAULT_STORM_PAGES,
    SMALL_PARAMS,
    Sanitizer,
    analyze_app,
    analyze_log,
    analyze_runtime,
)

__all__ = [
    "EventLog",
    "Finding",
    "GPU_FAULT_STORM_PAGES",
    "RULES",
    "RuleSpec",
    "RuntimeEvent",
    "SMALL_PARAMS",
    "Sanitizer",
    "Severity",
    "VectorClock",
    "advise_apps",
    "advise_file",
    "advise_paths",
    "advise_source",
    "all_rules",
    "analyze_app",
    "analyze_log",
    "analyze_runtime",
    "fingerprint",
    "has_errors",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "make_finding",
    "max_severity",
    "new_findings",
    "ordered_before",
    "port_is_clean",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_spec",
    "save_baseline",
    "to_sarif",
    "validate_sarif",
]
