"""``repro.advise`` — static UPM performance advisor.

A CFG + dataflow analysis over the simulator's Python/HIP-API surface
that finds the *performance* anti-patterns the paper measures — the
ones :mod:`repro.analyze.linter`'s flat AST walk cannot see because
they depend on what reaches a program point, on which path, and in
what allocation state:

* :mod:`.cfg` — per-function control-flow graphs (branches, loops,
  try/finally, with) with dominators and loop regions;
* :mod:`.values` — the points-to lattice for buffer handles
  (allocator-family origins, symbolic sizes, symbolic parameters);
* :mod:`.dataflow` — the worklist fixpoint and event emission;
* :mod:`.summaries` — bottom-up interprocedural summaries, so a
  finding survives ``apps/common.py``-style helper refactors;
* :mod:`.checks` — the six paper-grounded checks;
* :mod:`.sarif` / :mod:`.baseline` — SARIF 2.1.0 output and the CI
  suppression baseline.

``advise_apps`` analyzes the six Rodinia ports and buckets findings by
port model (explicit vs managed) using each app class's
``advise_ports`` map, which is how the golden tests assert "explicit
ports flag their copies, managed ports advise clean".
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ...hw.config import MI300AConfig
from ..findings import Finding, Severity
from ..linter import _excluded
from .baseline import (
    fingerprint,
    load_baseline,
    new_findings,
    save_baseline,
)
from .checks import run_checks
from .sarif import render_sarif, to_sarif, validate_sarif
from .summaries import ModuleAnalysis, analyze_module

__all__ = [
    "ModuleAnalysis",
    "advise_apps",
    "advise_file",
    "advise_paths",
    "advise_source",
    "analyze_module",
    "fingerprint",
    "load_baseline",
    "new_findings",
    "port_is_clean",
    "render_sarif",
    "run_checks",
    "save_baseline",
    "to_sarif",
    "validate_sarif",
]


def advise_source(
    source: str,
    file: str = "<string>",
    config: Optional[MI300AConfig] = None,
) -> List[Finding]:
    """Advise one source string."""
    return run_checks(analyze_module(source, file), config)


def advise_file(
    path: Union[Path, str], config: Optional[MI300AConfig] = None
) -> List[Finding]:
    """Advise one file."""
    path = Path(path)
    return advise_source(path.read_text(), str(path), config)


def advise_paths(
    paths: Sequence[Union[Path, str]],
    exclude: Iterable[str] = (),
    config: Optional[MI300AConfig] = None,
) -> List[Finding]:
    """Advise every ``.py`` file under the given files/directories."""
    findings: List[Finding] = []
    seen = set()
    for root in paths:
        root = Path(root)
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for file in files:
            if file in seen or _excluded(file, exclude):
                continue
            seen.add(file)
            findings.extend(advise_file(file, config))
    return findings


def advise_apps(
    config: Optional[MI300AConfig] = None,
) -> Dict[str, Dict[str, List[Finding]]]:
    """Advise the six Rodinia ports, bucketed by port model.

    Returns ``{app_name: {"explicit": [...], "managed": [...]}}``.
    A finding lands in a bucket when its enclosing function is one of
    the bucket's ``advise_ports`` methods; findings in shared helpers
    land in every bucket.
    """
    from ...apps import ALL_APPS

    out: Dict[str, Dict[str, List[Finding]]] = {}
    for name, app_cls in sorted(ALL_APPS.items()):
        file = Path(inspect.getfile(app_cls))
        try:
            file = file.resolve().relative_to(Path.cwd().resolve())
        except ValueError:
            pass  # running from outside the repo: keep the absolute path
        findings = advise_file(file, config)
        ports: Dict[str, tuple] = dict(app_cls.advise_ports)
        buckets: Dict[str, List[Finding]] = {p: [] for p in ports}
        for finding in findings:
            method = (finding.function or "").rsplit(".", 1)[-1]
            matched = [p for p, ms in ports.items() if method in ms]
            for port in matched or list(ports):
                buckets[port].append(finding)
        out[name] = buckets
    return out


def port_is_clean(findings: Iterable[Finding]) -> bool:
    """The paper's porting bar: nothing above INFO."""
    return all(f.severity <= Severity.INFO for f in findings)
