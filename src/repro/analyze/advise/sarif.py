"""SARIF 2.1.0 writer and structural validator.

One writer serves both static tools (``repro advise`` and
``repro lint --format sarif``) so CI uploads a single code-scanning
artifact format.  The rule table comes straight from the registry in
:mod:`repro.analyze.findings` — every rule of every tool that appears
in the report, with its paper anchor in ``properties.paper`` — and
each result carries the baseline fingerprint as a
``partialFingerprints`` entry so code-scanning UIs and the CI gate
agree on finding identity.

``validate_sarif`` is a self-contained structural check of the
invariants the 2.1.0 schema mandates (no network, no jsonschema
dependency); CI runs it via ``repro verify-sarif``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from ..findings import Finding, all_rules
from .baseline import _relative, fingerprint

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: ``level`` strings the 2.1.0 schema allows on a result.
_LEVELS = {"none", "note", "warning", "error"}


def to_sarif(
    findings: Iterable[Finding], *, tool: str = "repro-advise"
) -> Dict[str, object]:
    """Build the SARIF log object for one run."""
    findings = list(findings)
    present_tools = {f.rule.split(".", 1)[0] for f in findings}
    if not present_tools:
        present_tools = {tool.rsplit("-", 1)[-1]}
    rules = [r for r in all_rules() if r.tool in present_tools]
    rule_index = {r.code: i for i, r in enumerate(rules)}

    results: List[Dict[str, object]] = []
    for f in findings:
        properties: Dict[str, object] = {}
        spec = None
        if f.rule in rule_index:
            spec = rules[rule_index[f.rule]]
            properties["paper"] = spec.paper
        if f.cost_ns is not None:
            properties["cost_ns"] = f.cost_ns
        if f.function:
            properties["function"] = f.function
        if f.hint:
            properties["hint"] = f.hint
        result: Dict[str, object] = {
            "ruleId": f.rule,
            "level": f.severity.sarif_level,
            "message": {"text": f.message},
            "partialFingerprints": {"reproAdvise/v1": fingerprint(f)},
        }
        if f.rule in rule_index:
            result["ruleIndex"] = rule_index[f.rule]
        if f.file:
            region: Dict[str, object] = {}
            if f.line:
                region["startLine"] = int(f.line)
            location: Dict[str, object] = {
                "physicalLocation": {
                    "artifactLocation": {"uri": _relative(f.file)},
                }
            }
            if region:
                location["physicalLocation"]["region"] = region
            result["locations"] = [location]
        if properties:
            result["properties"] = properties
        results.append(result)

    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool,
                        "informationUri":
                            "https://github.com/ROCm/HIP",
                        "rules": [
                            {
                                "id": r.code,
                                "shortDescription": {"text": r.doc},
                                "defaultConfiguration": {
                                    "level": r.severity.sarif_level
                                },
                                "properties": {"paper": r.paper},
                            }
                            for r in rules
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Iterable[Finding], *, tool: str = "repro-advise"
) -> str:
    """The SARIF log as a JSON string."""
    return json.dumps(to_sarif(findings, tool=tool), indent=2)


def validate_sarif(doc: object) -> List[str]:
    """Structural 2.1.0 validation; returns problems (empty = valid)."""
    problems: List[str] = []

    def check(cond: bool, message: str) -> bool:
        if not cond:
            problems.append(message)
        return cond

    if not check(isinstance(doc, dict), "log must be a JSON object"):
        return problems
    check(doc.get("version") == SARIF_VERSION,
          f"version must be {SARIF_VERSION!r}")
    check(isinstance(doc.get("$schema"), str), "$schema must be a string")
    runs = doc.get("runs")
    if not check(isinstance(runs, list) and len(runs) >= 1,
                 "runs must be a non-empty array"):
        return problems
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not check(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(
            run.get("tool"), dict
        ) else None
        if not check(isinstance(driver, dict),
                     f"{where}.tool.driver is required"):
            continue
        check(
            isinstance(driver.get("name"), str) and driver["name"],
            f"{where}.tool.driver.name must be a non-empty string",
        )
        rule_ids = set()
        rules = driver.get("rules", [])
        if check(isinstance(rules, list),
                 f"{where}.tool.driver.rules must be an array"):
            for j, rule in enumerate(rules):
                rwhere = f"{where}.tool.driver.rules[{j}]"
                if not check(
                    isinstance(rule, dict) and isinstance(
                        rule.get("id"), str
                    ),
                    f"{rwhere}.id must be a string",
                ):
                    continue
                check(rule["id"] not in rule_ids,
                      f"{rwhere}.id {rule['id']!r} is duplicated")
                rule_ids.add(rule["id"])
        results = run.get("results")
        if not check(isinstance(results, list),
                     f"{where}.results must be an array"):
            continue
        for j, result in enumerate(results):
            rwhere = f"{where}.results[{j}]"
            if not check(isinstance(result, dict),
                         f"{rwhere} must be an object"):
                continue
            message = result.get("message")
            check(
                isinstance(message, dict)
                and isinstance(message.get("text"), str),
                f"{rwhere}.message.text is required",
            )
            rule_id = result.get("ruleId")
            if rule_id is not None:
                check(isinstance(rule_id, str),
                      f"{rwhere}.ruleId must be a string")
                if rule_ids:
                    check(
                        rule_id in rule_ids,
                        f"{rwhere}.ruleId {rule_id!r} not in the driver's "
                        "rules table",
                    )
            level = result.get("level")
            if level is not None:
                check(level in _LEVELS,
                      f"{rwhere}.level {level!r} is not a SARIF level")
            for k, location in enumerate(result.get("locations", [])):
                lwhere = f"{rwhere}.locations[{k}]"
                physical = location.get("physicalLocation") if isinstance(
                    location, dict
                ) else None
                if physical is None:
                    continue
                if not check(isinstance(physical, dict),
                             f"{lwhere}.physicalLocation must be an object"):
                    continue
                artifact = physical.get("artifactLocation")
                if artifact is not None:
                    check(
                        isinstance(artifact, dict)
                        and isinstance(artifact.get("uri"), str),
                        f"{lwhere}...artifactLocation.uri must be a string",
                    )
                region = physical.get("region")
                if region is not None:
                    start = region.get("startLine") if isinstance(
                        region, dict
                    ) else None
                    check(
                        start is None
                        or (isinstance(start, int) and start >= 1),
                        f"{lwhere}...region.startLine must be a positive "
                        "integer",
                    )
    return problems
