"""Forward dataflow over one function's CFG.

The interpreter runs a classic worklist fixpoint with three state
components:

* ``env`` — reaching definitions joined into one abstract value per
  name (a points-to map for buffer handles and the helper values the
  HIP surface threads around them);
* ``cpu_written`` — *may* have been written by the CPU (union join):
  origins touched through ``.np[...] = ``, ``runCpuKernel`` write
  accesses, ``touch(..., "cpu")``, or container mutation;
* ``gpu_warm`` — *must* already be mapped into the GPU page table on
  every path (intersection join): origins a GPU kernel or an SDMA copy
  has definitely touched.  First-touch hazards and predicted fault
  storms key off "not definitely warm".

After the fixpoint converges, one emit pass walks the statement nodes
in program order and records :class:`Event` records — allocations,
CPU writes, kernel launches (with each access's warm/written status at
that point), copies, and synchronizations — which
:mod:`repro.analyze.advise.checks` consumes and
:mod:`repro.analyze.advise.summaries` replays at call sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .cfg import CFG, Node, build_cfg
from .values import (
    TOP,
    AccessVal,
    BufVal,
    ListVal,
    NumVal,
    Origin,
    ParamVal,
    SpecVal,
    StrVal,
    StreamVal,
    TupleVal,
    join,
    origins_of,
    substitute,
)

#: numpy dtype attribute -> element size in bytes (for size folding).
DTYPE_SIZES: Dict[str, int] = {
    "uint8": 1, "int8": 1, "float16": 2, "int16": 2, "uint16": 2,
    "float32": 4, "int32": 4, "uint32": 4,
    "float64": 8, "int64": 8, "uint64": 8,
}

#: Direct memory-manager methods -> allocator family.
DIRECT_ALLOCATORS: Dict[str, str] = {
    "hip_malloc": "hipMalloc",
    "hipMalloc": "hipMalloc",
    "hip_host_malloc": "hipHostMalloc",
    "hipHostMalloc": "hipHostMalloc",
    "hip_malloc_managed": "hipMallocManaged",
    "hipMallocManaged": "hipMallocManaged",
    "malloc": "malloc",
    "managed_static": "managed_static",
}

#: Container methods that imply a CPU write to the receiving buffer.
CPU_WRITE_METHODS = frozenset({"extend", "append", "push_back", "fill"})


@dataclass(frozen=True)
class LaunchAccess:
    """One kernel argument at a launch, with its state at that point."""

    value: object  #: BufVal / ParamVal / TOP
    mode: str
    warm: bool  #: definitely GPU-mapped before this launch
    cpu_written: bool  #: may have been CPU-written before this launch


@dataclass(frozen=True)
class Event:
    """One dataflow fact, attributed to the function that executed it."""

    kind: str  #: "alloc" | "cpu_write" | "launch" | "copy" | "sync"
    line: int
    function: str
    loops: Tuple[int, ...] = ()  #: enclosing loop ids, function-local
    via_summary: bool = False  #: replayed out of a callee's summary
    buf: object = None  #: alloc / cpu_write payload
    kernel: str = ""  #: launch: kernel name
    accesses: Tuple[LaunchAccess, ...] = ()
    #: launch: True/False when the stream is known, None when it is not.
    stream_default: Optional[bool] = True
    dst: object = None  #: copy endpoints
    src: object = None
    size_bytes: Optional[int] = None
    is_async: bool = False
    sync_kind: str = ""  #: sync: "device" | "stream" | "event"

    @property
    def in_loop(self) -> bool:
        return bool(self.loops)


@dataclass
class FunctionResult:
    """One function's summary: its events, return value, and formals."""

    qualname: str
    file: str
    events: List[Event] = field(default_factory=list)
    ret: object = None
    param_names: List[str] = field(default_factory=list)
    param_defaults: Dict[int, object] = field(default_factory=dict)
    xnack_off: bool = False


class AbsState:
    """The product state flowing along CFG edges."""

    __slots__ = ("env", "cpu_written", "gpu_warm")

    def __init__(
        self,
        env: Optional[Dict[str, object]] = None,
        cpu_written: FrozenSet[Origin] = frozenset(),
        gpu_warm: FrozenSet[Origin] = frozenset(),
    ) -> None:
        self.env: Dict[str, object] = dict(env or {})
        self.cpu_written: FrozenSet[Origin] = cpu_written
        self.gpu_warm: FrozenSet[Origin] = gpu_warm

    def copy(self) -> "AbsState":
        return AbsState(self.env, self.cpu_written, self.gpu_warm)

    def merge(self, other: "AbsState") -> bool:
        """Join *other* into self; True when anything changed."""
        changed = False
        for name, value in other.env.items():
            joined = join(self.env.get(name), value)
            if joined != self.env.get(name):
                self.env[name] = joined
                changed = True
        cpu = self.cpu_written | other.cpu_written
        if cpu != self.cpu_written:
            self.cpu_written = cpu
            changed = True
        warm = self.gpu_warm & other.gpu_warm
        if warm != self.gpu_warm:
            self.gpu_warm = warm
            changed = True
        return changed


class _Interp:
    """Abstract interpreter for one function body."""

    def __init__(
        self,
        result: FunctionResult,
        cfg: CFG,
        summaries: Dict[str, FunctionResult],
    ) -> None:
        self.result = result
        self.cfg = cfg
        self.summaries = summaries
        self._node: Optional[Node] = None  # node being transferred
        self._emit = False

    # -- event plumbing -------------------------------------------------

    def _loops(self) -> Tuple[int, ...]:
        assert self._node is not None
        return self.cfg.loops_of.get(self._node.id, ())

    def _record(self, event: Event) -> None:
        if self._emit:
            self.result.events.append(event)

    def _line(self, expr: ast.AST) -> int:
        line = getattr(expr, "lineno", None)
        if line is None and self._node is not None:
            line = self._node.line
        return line or 0

    # -- transfer -------------------------------------------------------

    def transfer(self, node: Node, state: AbsState, emit: bool) -> AbsState:
        self._node, self._emit = node, emit
        if node.kind == "header":
            if node.expr is not None:
                value = self.eval(node.expr, state)
                if node.bind is not None:
                    bound = value
                    if node.bind_mode == "iter":
                        bound = self._element_of(value)
                    self._bind_target(node.bind, bound, state)
            return state
        if node.kind != "stmt" or node.stmt is None:
            return state
        stmt = node.stmt
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, state)
            for target in stmt.targets:
                self._assign(target, value, stmt.value, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = self.eval(stmt.value, state)
            self._assign(stmt.target, value, stmt.value, state)
        elif isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value, state)
            self._augmented(stmt, state)
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value, state) if stmt.value else None
            self.result.ret = join(self.result.ret, value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, state)
        elif isinstance(stmt, (ast.Assert, ast.Raise, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child, state)
        return state

    @staticmethod
    def _element_of(value: object) -> object:
        """The element value of an iterated abstract value."""
        if isinstance(value, ListVal):
            return value.elem if value.elem is not None else TOP
        if isinstance(value, TupleVal):
            elem: object = None
            for e in value.elems:
                elem = join(elem, e)
            return elem if elem is not None else TOP
        return TOP

    def _bind_target(
        self, target: ast.expr, value: object, state: AbsState
    ) -> None:
        if isinstance(target, ast.Name):
            state.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elems: Sequence[object]
            if isinstance(value, TupleVal) and len(value.elems) == len(
                target.elts
            ):
                elems = value.elems
            else:
                elems = [self._element_of(value)] * len(target.elts)
            for t, v in zip(target.elts, elems):
                self._bind_target(t, v, state)
        # attribute/subscript targets are writes, handled by _assign

    def _assign(
        self,
        target: ast.expr,
        value: object,
        value_expr: ast.expr,
        state: AbsState,
    ) -> None:
        if isinstance(target, (ast.Name, ast.Tuple, ast.List)):
            # Tuple targets unpack a tuple-valued right-hand side.
            if isinstance(target, (ast.Tuple, ast.List)) and isinstance(
                value_expr, ast.Tuple
            ) and len(target.elts) == len(value_expr.elts):
                for t, e in zip(target.elts, value_expr.elts):
                    self._assign(t, self.eval(e, state), e, state)
                return
            self._bind_target(target, value, state)
            return
        if isinstance(target, ast.Subscript):
            # `buf.np[...] = v` / `buf[...] = v`: a CPU store.
            self._cpu_write(
                self.eval(target.value, state), self._line(target), state
            )

    def _augmented(self, stmt: ast.AugAssign, state: AbsState) -> None:
        if isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            current = state.env.get(name)
            value = self.eval(stmt.value, state)
            folded = self._fold_binop(type(stmt.op), current, value)
            state.env[name] = folded
        elif isinstance(stmt.target, ast.Subscript):
            self._cpu_write(
                self.eval(stmt.target.value, state),
                self._line(stmt.target),
                state,
            )

    def _cpu_write(self, value: object, line: int, state: AbsState) -> None:
        origins = origins_of(value)
        if origins or isinstance(value, ParamVal):
            state.cpu_written = state.cpu_written | origins
            self._record(
                Event(
                    kind="cpu_write",
                    line=line,
                    function=self.result.qualname,
                    loops=self._loops(),
                    buf=value,
                )
            )

    # -- expression evaluation ------------------------------------------

    def eval(self, expr: ast.expr, state: AbsState) -> object:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, str):
                return StrVal.of(expr.value)
            if isinstance(expr.value, bool):
                return TOP
            if isinstance(expr.value, (int, float)):
                return NumVal(expr.value)
            return TOP
        if isinstance(expr, ast.Name):
            return state.env.get(expr.id, TOP)
        if isinstance(expr, ast.Attribute):
            return self._attribute(expr, state)
        if isinstance(expr, ast.Call):
            return self._call(expr, state)
        if isinstance(expr, ast.BinOp):
            left = self.eval(expr.left, state)
            right = self.eval(expr.right, state)
            return self._fold_binop(type(expr.op), left, right)
        if isinstance(expr, ast.UnaryOp):
            value = self.eval(expr.operand, state)
            if isinstance(expr.op, ast.USub) and isinstance(value, NumVal):
                return NumVal(-value.value)
            return TOP
        if isinstance(expr, ast.Tuple):
            return TupleVal(tuple(self.eval(e, state) for e in expr.elts))
        if isinstance(expr, ast.List):
            elem: object = None
            for e in expr.elts:
                elem = join(elem, self.eval(e, state))
            return ListVal(elem)
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            return ListVal(self.eval(expr.elt, state))
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test, state)
            return join(
                self.eval(expr.body, state), self.eval(expr.orelse, state)
            )
        if isinstance(expr, ast.Subscript):
            return self._subscript(expr, state)
        if isinstance(expr, ast.BoolOp):
            value: object = None
            for e in expr.values:
                value = join(value, self.eval(e, state))
            return value if value is not None else TOP
        if isinstance(expr, ast.Compare):
            self.eval(expr.left, state)
            for comp in expr.comparators:
                self.eval(comp, state)
            return TOP
        if isinstance(expr, ast.JoinedStr):
            return TOP
        # Anything else: evaluate children for their effects, yield TOP.
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.eval(child, state)
        return TOP

    @staticmethod
    def _fold_binop(op: type, left: object, right: object) -> object:
        if not (isinstance(left, NumVal) and isinstance(right, NumVal)):
            return TOP
        a, b = left.value, right.value
        try:
            if op is ast.Add:
                return NumVal(a + b)
            if op is ast.Sub:
                return NumVal(a - b)
            if op is ast.Mult:
                return NumVal(a * b)
            if op is ast.FloorDiv:
                return NumVal(a // b)
            if op is ast.Div:
                return NumVal(a / b)
            if op is ast.Mod:
                return NumVal(a % b)
            if op is ast.Pow:
                return NumVal(a ** b)
            if op is ast.LShift:
                return NumVal(int(a) << int(b))
            if op is ast.RShift:
                return NumVal(int(a) >> int(b))
        except (ZeroDivisionError, OverflowError, ValueError, TypeError):
            return TOP
        return TOP

    def _attribute(self, expr: ast.Attribute, state: AbsState) -> object:
        base = self.eval(expr.value, state)
        if isinstance(base, BufVal):
            if expr.attr in ("allocation", "np", "data"):
                return base  # views of the same buffer
            if expr.attr == "nbytes":
                sizes = {o.size_bytes for o in base.origins}
                if len(sizes) == 1 and None not in sizes:
                    return NumVal(next(iter(sizes)))
                return TOP
        if isinstance(base, ParamVal) and expr.attr in (
            "allocation", "np", "data"
        ):
            return base  # still the same opaque buffer
        return TOP

    def _subscript(self, expr: ast.Subscript, state: AbsState) -> object:
        base = self.eval(expr.value, state)
        index = self.eval(expr.slice, state)
        if isinstance(base, TupleVal) and isinstance(index, NumVal):
            i = index.as_int
            if 0 <= i < len(base.elems):
                return base.elems[i]
        if isinstance(base, ListVal):
            return base.elem if base.elem is not None else TOP
        return TOP

    # -- calls ----------------------------------------------------------

    @staticmethod
    def _call_name(expr: ast.Call) -> Optional[str]:
        if isinstance(expr.func, ast.Attribute):
            return expr.func.attr
        if isinstance(expr.func, ast.Name):
            return expr.func.id
        return None

    def _arg(self, expr: ast.Call, index: int, kw: Optional[str] = None):
        if index < len(expr.args):
            return expr.args[index]
        if kw is not None:
            for keyword in expr.keywords:
                if keyword.arg == kw:
                    return keyword.value
        return None

    def _kwarg(self, expr: ast.Call, name: str):
        for keyword in expr.keywords:
            if keyword.arg == name:
                return keyword.value
        return None

    def _call(self, expr: ast.Call, state: AbsState) -> object:
        name = self._call_name(expr)
        receiver = (
            self.eval(expr.func.value, state)
            if isinstance(expr.func, ast.Attribute)
            else None
        )

        if name == "array" and not self._is_numpy_receiver(expr):
            return self._alloc_array(expr, state)
        if name in DIRECT_ALLOCATORS and isinstance(expr.func, ast.Attribute):
            return self._alloc_direct(expr, name, state)
        if name == "UnifiedVector":
            return self._alloc_vector(expr, state)
        if name == "BufferAccess":
            return self._buffer_access(expr, state)
        if name == "KernelSpec":
            return self._kernel_spec(expr, state)
        if name == "launchKernel":
            return self._launch(expr, state, gpu=True)
        if name == "runCpuKernel":
            return self._launch(expr, state, gpu=False)
        if name in ("hipMemcpy", "hipMemcpyAsync"):
            return self._memcpy(expr, state, name == "hipMemcpyAsync")
        if name == "touch":
            return self._touch(expr, state)
        if name in (
            "hipDeviceSynchronize", "hipStreamSynchronize",
            "hipEventSynchronize",
        ):
            self._eval_args(expr, state)
            kind = {
                "hipDeviceSynchronize": "device",
                "hipStreamSynchronize": "stream",
                "hipEventSynchronize": "event",
            }[name]
            self._record(
                Event(
                    kind="sync",
                    line=self._line(expr),
                    function=self.result.qualname,
                    loops=self._loops(),
                    sync_kind=kind,
                )
            )
            return TOP
        if name == "hipStreamCreate":
            self._eval_args(expr, state)
            return StreamVal(default=False)
        if name == "make_runtime":
            self._eval_args(expr, state)
            xnack = self._kwarg(expr, "xnack")
            if isinstance(xnack, ast.Constant) and xnack.value is False:
                self.result.xnack_off = True
            return TOP
        if name in ("min", "max") and expr.args:
            values = [self.eval(a, state) for a in expr.args]
            if all(isinstance(v, NumVal) for v in values):
                pick = min if name == "min" else max
                return NumVal(pick(v.value for v in values))
            return TOP
        if (
            name in CPU_WRITE_METHODS
            and receiver is not None
            and isinstance(receiver, (BufVal, ParamVal))
        ):
            self._eval_args(expr, state)
            self._cpu_write(receiver, self._line(expr), state)
            return TOP
        if (
            name == "append"
            and isinstance(expr.func, ast.Attribute)
            and isinstance(expr.func.value, ast.Name)
            and isinstance(state.env.get(expr.func.value.id), ListVal)
        ):
            item = self.eval(expr.args[0], state) if expr.args else TOP
            current = state.env[expr.func.value.id]
            state.env[expr.func.value.id] = ListVal(join(current.elem, item))
            return TOP
        if name in self.summaries:
            return self._user_call(expr, self.summaries[name], state)
        self._eval_args(expr, state)
        return TOP

    @staticmethod
    def _is_numpy_receiver(expr: ast.Call) -> bool:
        return (
            isinstance(expr.func, ast.Attribute)
            and isinstance(expr.func.value, ast.Name)
            and expr.func.value.id in ("np", "numpy")
        )

    def _eval_args(self, expr: ast.Call, state: AbsState) -> List[object]:
        values = [self.eval(a, state) for a in expr.args]
        values.extend(self.eval(k.value, state) for k in expr.keywords)
        return values

    # -- allocation -----------------------------------------------------

    def _literal_name(self, expr: ast.Call) -> str:
        kw = self._kwarg(expr, "name")
        if isinstance(kw, ast.Constant) and isinstance(kw.value, str):
            return kw.value
        return ""

    def _families_of(self, value: object) -> Set[str]:
        if isinstance(value, StrVal):
            return set(value.options)
        if isinstance(value, ParamVal):
            return {f"@param{value.index}"}
        return {"?"}

    def _make_buffer(
        self,
        expr: ast.Call,
        families: Set[str],
        size: Optional[int],
        state: AbsState,
    ) -> BufVal:
        line = self._line(expr)
        origins = frozenset(
            Origin(
                line=line,
                family=family,
                size_bytes=size,
                name=self._literal_name(expr),
            )
            for family in families
        )
        buf = BufVal(origins)
        self._record(
            Event(
                kind="alloc",
                line=line,
                function=self.result.qualname,
                loops=self._loops(),
                buf=buf,
                size_bytes=size,
            )
        )
        return buf

    def _alloc_array(self, expr: ast.Call, state: AbsState) -> BufVal:
        shape = self.eval(expr.args[0], state) if expr.args else TOP
        dtype_size = self._dtype_size(self._arg(expr, 1, "dtype"))
        alloc_expr = self._arg(expr, 2, "allocator")
        if alloc_expr is None:
            families = {"hipMalloc"}  # array() defaults to hipMalloc
        else:
            families = self._families_of(self.eval(alloc_expr, state))
        size = self._shape_size(shape, dtype_size)
        for keyword in expr.keywords:
            self.eval(keyword.value, state)
        return self._make_buffer(expr, families, size, state)

    @staticmethod
    def _shape_size(shape: object, dtype_size: Optional[int]) -> Optional[int]:
        if dtype_size is None:
            return None
        if isinstance(shape, NumVal):
            return shape.as_int * dtype_size
        if isinstance(shape, TupleVal) and all(
            isinstance(e, NumVal) for e in shape.elems
        ):
            count = 1
            for e in shape.elems:
                count *= e.as_int
            return count * dtype_size
        return None

    @staticmethod
    def _dtype_size(dtype_expr: Optional[ast.expr]) -> Optional[int]:
        if dtype_expr is None:
            return 4  # runtime.array defaults to np.float32
        if isinstance(dtype_expr, ast.Attribute):
            return DTYPE_SIZES.get(dtype_expr.attr)
        if isinstance(dtype_expr, ast.Name):
            return DTYPE_SIZES.get(dtype_expr.id)
        return None

    def _alloc_direct(
        self, expr: ast.Call, name: str, state: AbsState
    ) -> BufVal:
        size_value = self.eval(expr.args[0], state) if expr.args else TOP
        size = size_value.as_int if isinstance(size_value, NumVal) else None
        for keyword in expr.keywords:
            self.eval(keyword.value, state)
        return self._make_buffer(expr, {DIRECT_ALLOCATORS[name]}, size, state)

    def _alloc_vector(self, expr: ast.Call, state: AbsState) -> BufVal:
        self._eval_args(expr, state)
        alloc_expr = self._arg(expr, 2, "allocator")
        if alloc_expr is None:
            families = {"malloc"}  # UnifiedVector defaults to malloc
        else:
            families = self._families_of(self.eval(alloc_expr, state))
        line = self._line(expr)
        origins = frozenset(
            Origin(line=line, family=f, size_bytes=None, name="std::vector")
            for f in families
        )
        buf = BufVal(origins)
        self._record(
            Event(
                kind="alloc",
                line=line,
                function=self.result.qualname,
                loops=self._loops(),
                buf=buf,
            )
        )
        return buf

    # -- kernels --------------------------------------------------------

    def _buffer_access(self, expr: ast.Call, state: AbsState) -> AccessVal:
        buf = self.eval(expr.args[0], state) if expr.args else TOP
        mode_expr = self._arg(expr, 1, "mode")
        mode = "read"
        if isinstance(mode_expr, ast.Constant):
            mode = str(mode_expr.value)
        for keyword in expr.keywords:
            self.eval(keyword.value, state)
        return AccessVal(buf, mode)

    def _kernel_spec(self, expr: ast.Call, state: AbsState) -> SpecVal:
        name = "?"
        if expr.args and isinstance(expr.args[0], ast.Constant):
            name = str(expr.args[0].value)
        accesses: List[AccessVal] = []
        acc_expr = self._arg(expr, 1, "accesses")
        if isinstance(acc_expr, (ast.List, ast.Tuple)):
            for elt in acc_expr.elts:
                value = self.eval(elt, state)
                accesses.append(
                    value
                    if isinstance(value, AccessVal)
                    else AccessVal(TOP, "?")
                )
        elif acc_expr is not None:
            value = self.eval(acc_expr, state)
            if isinstance(value, ListVal) and isinstance(
                value.elem, AccessVal
            ):
                accesses.append(value.elem)
            elif isinstance(value, AccessVal):
                accesses.append(value)
        for keyword in expr.keywords:
            self.eval(keyword.value, state)
        return SpecVal(name, tuple(accesses))

    def _launch(
        self, expr: ast.Call, state: AbsState, gpu: bool
    ) -> object:
        spec = self.eval(expr.args[0], state) if expr.args else TOP
        stream_default: Optional[bool] = True
        stream_expr = self._arg(expr, 1, "stream")
        if stream_expr is not None:
            stream = self.eval(stream_expr, state)
            if isinstance(stream, StreamVal):
                stream_default = stream.default
            elif isinstance(stream, ast.expr) or stream is TOP or isinstance(
                stream, ParamVal
            ):
                stream_default = None
            if isinstance(stream_expr, ast.Constant) and (
                stream_expr.value is None
            ):
                stream_default = True
        for keyword in expr.keywords:
            if keyword.arg != "stream":
                self.eval(keyword.value, state)
        if not isinstance(spec, SpecVal):
            return TOP
        if not gpu:
            # CPU kernels write buffers on the host timeline.
            for access in spec.accesses:
                if access.mode in ("write", "readwrite", "?"):
                    self._cpu_write(access.buf, self._line(expr), state)
            return TOP
        accesses: List[LaunchAccess] = []
        touched: Set[Origin] = set()
        for access in spec.accesses:
            origins = origins_of(access.buf)
            warm = bool(origins) and origins <= state.gpu_warm
            written = bool(origins & state.cpu_written)
            accesses.append(
                LaunchAccess(access.buf, access.mode, warm, written)
            )
            touched |= origins
        self._record(
            Event(
                kind="launch",
                line=self._line(expr),
                function=self.result.qualname,
                loops=self._loops(),
                kernel=spec.name,
                accesses=tuple(accesses),
                stream_default=stream_default,
            )
        )
        state.gpu_warm = state.gpu_warm | frozenset(touched)
        return TOP

    def _memcpy(
        self, expr: ast.Call, state: AbsState, is_async: bool
    ) -> object:
        dst = self.eval(expr.args[0], state) if len(expr.args) > 0 else TOP
        src = self.eval(expr.args[1], state) if len(expr.args) > 1 else TOP
        size_expr = self._arg(expr, 2, "nbytes")
        size: Optional[int] = None
        if size_expr is not None:
            value = self.eval(size_expr, state)
            if isinstance(value, NumVal):
                size = value.as_int
        if size is None:
            sizes = {
                o.size_bytes
                for o in origins_of(dst) | origins_of(src)
                if o.size_bytes is not None
            }
            if len(sizes) == 1:
                size = next(iter(sizes))
        for keyword in expr.keywords:
            self.eval(keyword.value, state)
        self._record(
            Event(
                kind="copy",
                line=self._line(expr),
                function=self.result.qualname,
                loops=self._loops(),
                dst=dst,
                src=src,
                size_bytes=size,
                is_async=is_async,
            )
        )
        # SDMA touches both endpoints' pages: they are mapped afterwards.
        state.gpu_warm = (
            state.gpu_warm | origins_of(dst) | origins_of(src)
        )
        return TOP

    def _touch(self, expr: ast.Call, state: AbsState) -> object:
        buf = self.eval(expr.args[0], state) if expr.args else TOP
        device = None
        device_expr = self._arg(expr, 1, "device")
        if isinstance(device_expr, ast.Constant):
            device = str(device_expr.value)
        if device == "cpu":
            self._cpu_write(buf, self._line(expr), state)
        elif device == "gpu":
            state.gpu_warm = state.gpu_warm | origins_of(buf)
        return TOP

    # -- interprocedural ------------------------------------------------

    def _user_call(
        self, expr: ast.Call, summary: FunctionResult, state: AbsState
    ) -> object:
        bindings: Dict[int, object] = dict(summary.param_defaults)
        for i, arg in enumerate(expr.args):
            if not isinstance(arg, ast.Starred):
                bindings[i] = self.eval(arg, state)
        for keyword in expr.keywords:
            value = self.eval(keyword.value, state)
            if keyword.arg in summary.param_names:
                bindings[summary.param_names.index(keyword.arg)] = value
        return self.apply_summary(summary, bindings, state, expr)

    def apply_summary(
        self,
        summary: FunctionResult,
        bindings: Dict[int, object],
        state: AbsState,
        expr: ast.Call,
    ) -> object:
        """Replay a callee's events against the caller's state."""
        for event in summary.events:
            if event.kind == "alloc":
                buf = substitute(event.buf, bindings)
                self._record(
                    Event(
                        kind="alloc",
                        line=event.line,
                        function=event.function,
                        via_summary=True,
                        buf=buf,
                        size_bytes=event.size_bytes,
                    )
                )
            elif event.kind == "cpu_write":
                buf = substitute(event.buf, bindings)
                state.cpu_written = state.cpu_written | origins_of(buf)
                self._record(
                    Event(
                        kind="cpu_write",
                        line=event.line,
                        function=event.function,
                        via_summary=True,
                        buf=buf,
                    )
                )
            elif event.kind == "launch":
                accesses: List[LaunchAccess] = []
                touched: Set[Origin] = set()
                for access in event.accesses:
                    value = substitute(access.value, bindings)
                    origins = origins_of(value)
                    warm = access.warm or (
                        bool(origins) and origins <= state.gpu_warm
                    )
                    written = access.cpu_written or bool(
                        origins & state.cpu_written
                    )
                    accesses.append(
                        LaunchAccess(value, access.mode, warm, written)
                    )
                    touched |= origins
                self._record(
                    Event(
                        kind="launch",
                        line=event.line,
                        function=event.function,
                        via_summary=True,
                        kernel=event.kernel,
                        accesses=tuple(accesses),
                        stream_default=event.stream_default,
                    )
                )
                state.gpu_warm = state.gpu_warm | frozenset(touched)
            elif event.kind == "copy":
                dst = substitute(event.dst, bindings)
                src = substitute(event.src, bindings)
                self._record(
                    Event(
                        kind="copy",
                        line=event.line,
                        function=event.function,
                        loops=self._loops(),
                        via_summary=True,
                        dst=dst,
                        src=src,
                        size_bytes=event.size_bytes,
                        is_async=event.is_async,
                    )
                )
                state.gpu_warm = (
                    state.gpu_warm | origins_of(dst) | origins_of(src)
                )
            # sync events are intra-function facts; not replayed.
        return substitute(summary.ret, bindings)


def compute_in_states(
    interp: _Interp, cfg: CFG, entry: AbsState
) -> Dict[int, AbsState]:
    """Worklist fixpoint: converged in-state per reached node.

    The iteration cap is a belt-and-braces guard; the lattice has
    finite height (origin sets bounded by allocation sites, numbers
    collapse to TOP on disagreement) and every transfer is monotone,
    so the worklist always drains — the property test in
    ``tests/test_advise_properties.py`` checks stability directly.
    """
    in_states: Dict[int, AbsState] = {cfg.entry: entry}
    worklist: List[int] = [cfg.entry]
    iterations = 0
    limit = 50 * (len(cfg.nodes) + 1)
    while worklist and iterations < limit:
        iterations += 1
        node_id = worklist.pop()
        out = interp.transfer(
            cfg.nodes[node_id], in_states[node_id].copy(), emit=False
        )
        for succ in cfg.succ[node_id]:
            if succ not in in_states:
                in_states[succ] = out.copy()
                worklist.append(succ)
            elif in_states[succ].merge(out):
                worklist.append(succ)
    return in_states


def analyze_function(
    qualname: str,
    body: Sequence[ast.stmt],
    params: Sequence[ast.arg],
    defaults: Dict[int, object],
    file: str,
    summaries: Dict[str, FunctionResult],
    globals_env: Optional[Dict[str, object]] = None,
) -> FunctionResult:
    """Run the fixpoint + emit passes over one function body."""
    result = FunctionResult(
        qualname=qualname,
        file=file,
        param_names=[p.arg for p in params],
        param_defaults=dict(defaults),
    )
    cfg = build_cfg(body)
    interp = _Interp(result, cfg, summaries)

    entry_env: Dict[str, object] = dict(globals_env or {})
    for i, p in enumerate(params):
        entry_env[p.arg] = ParamVal(i)

    in_states = compute_in_states(interp, cfg, AbsState(env=entry_env))

    # Emit pass: node ids are creation order, i.e. program order.
    result.ret = None  # recompute cleanly during emission
    for node_id in sorted(in_states):
        node = cfg.nodes[node_id]
        if node.kind in ("stmt", "header"):
            interp.transfer(node, in_states[node_id].copy(), emit=True)
    return result
