"""Control-flow graph construction over Python AST function bodies.

The advisor's dataflow passes run over a real CFG, not a flat AST walk:
branches, loops, ``try``/``except``/``finally``, and ``with`` blocks
all produce the edges you would expect, so a synchronization on one
arm of an ``if`` does not excuse the other arm, and a warm-up kernel
inside a loop is distinguished from one dominating the loop.

Granularity is one *simple statement per node*: every assignment,
expression statement, return, and compound-statement header (the
``if``/``while`` test, the ``for`` iterable, each ``with`` item)
becomes its own :class:`Node`.  This keeps the builder free of
block-splitting logic and gives the reaching-definitions pass natural
def sites.  Synthetic ``entry``/``exit``/``join`` nodes carry no AST.

Loops are recorded as :class:`Loop` regions (head node + body nodes),
which the sync-in-loop check consumes; dominators and postdominators
are computed on demand with the standard iterative dataflow.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Statement classes that terminate a scope's straight-line flow.
_JUMPS = (ast.Return, ast.Break, ast.Continue, ast.Raise)


@dataclass
class Node:
    """One CFG node: a simple statement, a header expression, or a
    synthetic marker."""

    id: int
    kind: str  # "entry" | "exit" | "join" | "stmt" | "header"
    stmt: Optional[ast.stmt] = None
    expr: Optional[ast.expr] = None
    line: Optional[int] = None
    #: Target bound from the header's value (`for bind in expr`,
    #: `with expr as bind`); consumed by the dataflow transfer.
    bind: Optional[ast.expr] = None
    #: How the bind target relates to the header expression: "iter"
    #: binds the iterable's *element* (for-loops), "value" binds the
    #: expression itself (with-as).
    bind_mode: str = ""

    def describe(self) -> str:  # pragma: no cover - debugging aid
        label = self.kind
        if self.line is not None:
            label += f"@{self.line}"
        return label


@dataclass
class Loop:
    """One loop region: the head (test/iter node) and its body nodes."""

    head: int
    body: Set[int] = field(default_factory=set)


class CFG:
    """A function body's control-flow graph."""

    def __init__(self) -> None:
        self.nodes: Dict[int, Node] = {}
        self.succ: Dict[int, Set[int]] = {}
        self.pred: Dict[int, Set[int]] = {}
        self.entry = self._new("entry").id
        self.exit = self._new("exit").id
        self.loops: List[Loop] = []
        #: node id -> ids of every loop whose body contains it (innermost
        #: last), filled by the builder.
        self.loops_of: Dict[int, Tuple[int, ...]] = {}

    # -- construction ---------------------------------------------------

    def _new(
        self,
        kind: str,
        stmt: Optional[ast.stmt] = None,
        expr: Optional[ast.expr] = None,
    ) -> Node:
        node = Node(
            id=len(self.nodes),
            kind=kind,
            stmt=stmt,
            expr=expr,
            line=getattr(stmt if stmt is not None else expr, "lineno", None),
        )
        self.nodes[node.id] = node
        self.succ[node.id] = set()
        self.pred[node.id] = set()
        return node

    def add_edge(self, src: int, dst: int) -> None:
        self.succ[src].add(dst)
        self.pred[dst].add(src)

    # -- queries --------------------------------------------------------

    def statement_nodes(self) -> List[Node]:
        """Every node carrying real source (stmt or header)."""
        return [n for n in self.nodes.values() if n.kind in ("stmt", "header")]

    def reachable(self, start: Optional[int] = None) -> Set[int]:
        """Node ids reachable from *start* (default: entry)."""
        stack = [self.entry if start is None else start]
        seen: Set[int] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.succ[node] - seen)
        return seen

    def _dominators(
        self, root: int, edges: Dict[int, Set[int]]
    ) -> Dict[int, Set[int]]:
        """Iterative dominator sets over *edges* (pred for dom, succ for
        postdom on the reversed graph)."""
        ids = set(self.nodes)
        dom: Dict[int, Set[int]] = {n: set(ids) for n in ids}
        dom[root] = {root}
        changed = True
        while changed:
            changed = False
            for n in ids:
                if n == root:
                    continue
                preds = [dom[p] for p in edges[n]]
                new = set.intersection(*preds) if preds else set()
                new = new | {n}
                if new != dom[n]:
                    dom[n] = new
                    changed = True
        return dom

    def dominators(self) -> Dict[int, Set[int]]:
        """node -> set of nodes dominating it (from entry)."""
        return self._dominators(self.entry, self.pred)

    def postdominators(self) -> Dict[int, Set[int]]:
        """node -> set of nodes postdominating it (toward exit)."""
        return self._dominators(self.exit, self.succ)

    def innermost_loop(self, node: int) -> Optional[int]:
        """Index into :attr:`loops` of the node's innermost loop."""
        stack = self.loops_of.get(node, ())
        return stack[-1] if stack else None


class _Builder:
    """Recursive-descent CFG builder for one statement list."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        #: (break_target, continue_target) per open loop.
        self.loop_targets: List[Tuple[int, int]] = []
        #: Open loop indices (into cfg.loops), innermost last.
        self.loop_stack: List[int] = []
        #: Handler-entry node ids of every open ``try``; any node built
        #: inside the try body may transfer there.
        self.handler_stack: List[List[int]] = []

    # Each build method takes the set of "dangling" predecessor node
    # ids (frontier) and returns the new frontier.  An empty frontier
    # means flow cannot fall through (all paths jumped).

    def build(self, body: Sequence[ast.stmt], frontier: Set[int]) -> Set[int]:
        for stmt in body:
            frontier = self.statement(stmt, frontier)
        return frontier

    def _attach(self, node: Node, frontier: Set[int]) -> None:
        for src in frontier:
            self.cfg.add_edge(src, node.id)
        for loop_index in self.loop_stack:
            self.cfg.loops[loop_index].body.add(node.id)
        self.cfg.loops_of[node.id] = tuple(self.loop_stack)
        # Conservative exceptional edges: any statement inside a try
        # body may transfer control to each of its handlers.
        for handlers in self.handler_stack:
            for handler in handlers:
                self.cfg.add_edge(node.id, handler)

    def statement(self, stmt: ast.stmt, frontier: Set[int]) -> Set[int]:
        if not frontier:
            frontier = set()  # unreachable code still gets nodes
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return frontier  # nested scopes are separate CFGs
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        node = self.cfg._new("stmt", stmt=stmt)
        self._attach(node, frontier)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.cfg.add_edge(node.id, self.cfg.exit)
            return set()
        if isinstance(stmt, ast.Break):
            self.cfg.add_edge(node.id, self.loop_targets[-1][0])
            return set()
        if isinstance(stmt, ast.Continue):
            self.cfg.add_edge(node.id, self.loop_targets[-1][1])
            return set()
        return {node.id}

    def _header(
        self,
        expr: ast.expr,
        frontier: Set[int],
        bind: Optional[ast.expr] = None,
        bind_mode: str = "",
    ) -> Node:
        node = self.cfg._new("header", expr=expr)
        node.bind = bind
        node.bind_mode = bind_mode
        self._attach(node, frontier)
        return node

    def _if(self, stmt: ast.If, frontier: Set[int]) -> Set[int]:
        test = self._header(stmt.test, frontier)
        then_out = self.build(stmt.body, {test.id})
        if stmt.orelse:
            else_out = self.build(stmt.orelse, {test.id})
        else:
            else_out = {test.id}
        return then_out | else_out

    def _loop_region(self) -> int:
        index = len(self.cfg.loops)
        self.cfg.loops.append(Loop(head=-1))
        return index

    def _while(self, stmt: ast.While, frontier: Set[int]) -> Set[int]:
        index = self._loop_region()
        test = self._header(stmt.test, frontier)
        self.cfg.loops[index].head = test.id
        after = self.cfg._new("join")
        self.loop_targets.append((after.id, test.id))
        self.loop_stack.append(index)
        body_out = self.build(stmt.body, {test.id})
        self.loop_stack.pop()
        self.loop_targets.pop()
        for src in body_out:
            self.cfg.add_edge(src, test.id)  # back edge
        # Loop exit: the test fails (always possible statically), plus
        # any `else` clause runs on normal exit.
        exit_frontier = {test.id}
        if stmt.orelse:
            exit_frontier = self.build(stmt.orelse, exit_frontier)
        self._attach(after, exit_frontier)
        return {after.id}

    def _for(self, stmt: ast.For | ast.AsyncFor, frontier: Set[int]) -> Set[int]:
        index = self._loop_region()
        head = self._header(
            stmt.iter, frontier, bind=stmt.target, bind_mode="iter"
        )
        self.cfg.loops[index].head = head.id
        after = self.cfg._new("join")
        self.loop_targets.append((after.id, head.id))
        self.loop_stack.append(index)
        body_out = self.build(stmt.body, {head.id})
        self.loop_stack.pop()
        self.loop_targets.pop()
        for src in body_out:
            self.cfg.add_edge(src, head.id)  # back edge
        exit_frontier = {head.id}
        if stmt.orelse:
            exit_frontier = self.build(stmt.orelse, exit_frontier)
        self._attach(after, exit_frontier)
        return {after.id}

    def _try(self, stmt: ast.Try, frontier: Set[int]) -> Set[int]:
        handler_entries: List[int] = []
        handler_joins: List[Node] = []
        for handler in stmt.handlers:
            entry = self.cfg._new("join")
            handler_entries.append(entry.id)
            handler_joins.append(entry)
        self.handler_stack.append(handler_entries)
        body_out = self.build(stmt.body, frontier)
        self.handler_stack.pop()
        if stmt.orelse:
            body_out = self.build(stmt.orelse, body_out)
        outs: Set[int] = set(body_out)
        for handler, entry in zip(stmt.handlers, handler_joins):
            outs |= self.build(handler.body, {entry.id})
        if stmt.finalbody:
            outs = self.build(stmt.finalbody, outs)
        return outs

    def _with(self, stmt: ast.With | ast.AsyncWith, frontier: Set[int]) -> Set[int]:
        for item in stmt.items:
            node = self._header(
                item.context_expr, frontier, bind=item.optional_vars,
                bind_mode="value",
            )
            frontier = {node.id}
        return self.build(stmt.body, frontier)


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """Build the CFG of one function (or module) body."""
    cfg = CFG()
    frontier = _Builder(cfg).build(list(body), {cfg.entry})
    for src in frontier:
        cfg.add_edge(src, cfg.exit)
    if not frontier and not cfg.pred[cfg.exit]:
        # Degenerate bodies (e.g. `while True: pass`): keep exit linked
        # so postdominator computation stays well-defined.
        cfg.add_edge(cfg.entry, cfg.exit)
    return cfg
