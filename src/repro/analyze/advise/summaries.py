"""Bottom-up interprocedural summarization of one module.

The advisor analyzes whole files: every top-level function and every
method of every top-level class gets its own CFG + dataflow pass (see
:mod:`repro.analyze.advise.dataflow`), in bottom-up call-graph order so
a helper's :class:`~repro.analyze.advise.dataflow.FunctionResult` is
available as a summary when its callers are analyzed.  This is what
lets a finding survive the ``apps/common.py``-style refactor where the
allocation happens in a wrapper: the wrapper's summary carries symbolic
``@param<N>`` origins that the call site resolves.

Calls are resolved by *bare name* within the module (``self._kernel``
and ``_kernel`` both hit ``Class._kernel``); recursion is broken by
simply analyzing a cycle member without its unresolved callee, which
degrades that call to TOP — sound for every check we run.  The module
body itself is analyzed last (qualname ``<module>``) so script-style
files like ``examples/slow_port.py`` work unchanged, and simple
module-level constants (``CHUNK_BYTES = 16 << 20``) are folded and
pre-seeded into every function's entry environment.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .dataflow import FunctionResult, analyze_function
from .values import NumVal, StrVal


@dataclass
class ModuleAnalysis:
    """Every function's dataflow result for one source file."""

    file: str
    #: qualname ("Class.method", "helper", "<module>") -> result.
    functions: Dict[str, FunctionResult] = field(default_factory=dict)
    #: (line, message) when the file did not parse.
    syntax_error: Optional[Tuple[int, str]] = None


def _fold_expr(expr: ast.expr):
    """Constant-fold a module-level expression to an abstract value."""
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, str):
            return StrVal.of(expr.value)
        if isinstance(expr.value, bool):
            return None
        if isinstance(expr.value, (int, float)):
            return NumVal(expr.value)
        return None
    if isinstance(expr, ast.BinOp):
        left, right = _fold_expr(expr.left), _fold_expr(expr.right)
        if isinstance(left, NumVal) and isinstance(right, NumVal):
            from .dataflow import _Interp

            folded = _Interp._fold_binop(type(expr.op), left, right)
            return folded if isinstance(folded, NumVal) else None
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        value = _fold_expr(expr.operand)
        if isinstance(value, NumVal):
            return NumVal(-value.value)
    return None


def _module_constants(module: ast.Module) -> Dict[str, object]:
    """Fold simple ``NAME = <const>`` module assignments."""
    constants: Dict[str, object] = {}
    for stmt in module.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        if len(targets) == 1 and isinstance(targets[0], ast.Tuple) and (
            isinstance(value, ast.Tuple)
        ) and len(targets[0].elts) == len(value.elts):
            # CAP, RX, RY, RZ = 0.5, 1.0, 1.0, 4.75
            for t, v in zip(targets[0].elts, value.elts):
                if isinstance(t, ast.Name):
                    folded = _fold_expr(v)
                    if folded is not None:
                        constants[t.id] = folded
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                folded = _fold_expr(value)
                if folded is not None:
                    constants[target.id] = folded
    return constants


_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _collect_functions(
    module: ast.Module,
) -> List[Tuple[str, ast.FunctionDef]]:
    """(qualname, def) for every top-level function and class method."""
    out: List[Tuple[str, ast.FunctionDef]] = []
    for stmt in module.body:
        if isinstance(stmt, _FuncDef):
            out.append((stmt.name, stmt))
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, _FuncDef):
                    out.append((f"{stmt.name}.{item.name}", item))
    return out


def _non_self_params(fn: ast.FunctionDef) -> List[ast.arg]:
    args = list(fn.args.posonlyargs) + list(fn.args.args)
    return [a for a in args if a.arg not in ("self", "cls")]


def _param_defaults(fn: ast.FunctionDef) -> Dict[int, object]:
    """index (into non-self params) -> folded default value."""
    all_args = list(fn.args.posonlyargs) + list(fn.args.args)
    defaults = fn.args.defaults
    by_name: Dict[str, object] = {}
    for arg, default in zip(all_args[len(all_args) - len(defaults):],
                            defaults):
        folded = _fold_expr(default)
        if folded is not None:
            by_name[arg.arg] = folded
    for arg, default in zip(fn.args.kwonlyargs, fn.args.kw_defaults):
        if default is not None:
            folded = _fold_expr(default)
            if folded is not None:
                by_name[arg.arg] = folded
    params = _non_self_params(fn)
    return {
        i: by_name[p.arg] for i, p in enumerate(params) if p.arg in by_name
    }


def _called_names(fn_body: Sequence[ast.stmt]) -> List[str]:
    names: List[str] = []
    for stmt in fn_body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name):
                    names.append(node.func.id)
                elif isinstance(node.func, ast.Attribute):
                    names.append(node.func.attr)
    return names


def analyze_module(source: str, file: str) -> ModuleAnalysis:
    """Parse *source* and run the dataflow over every function in it."""
    analysis = ModuleAnalysis(file=file)
    try:
        module = ast.parse(source, filename=file)
    except SyntaxError as exc:
        analysis.syntax_error = (exc.lineno or 1, exc.msg or "syntax error")
        return analysis

    constants = _module_constants(module)
    functions = _collect_functions(module)
    by_bare: Dict[str, str] = {}
    for qualname, fn in functions:
        by_bare[qualname.rsplit(".", 1)[-1]] = qualname
    defs = dict(functions)

    #: bare name -> FunctionResult, the summary table callers consult.
    summaries: Dict[str, FunctionResult] = {}

    visiting: List[str] = []

    def visit(qualname: str) -> None:
        if qualname in analysis.functions or qualname in visiting:
            return  # done, or a recursion cycle (degrade to TOP)
        fn = defs[qualname]
        visiting.append(qualname)
        for callee_bare in _called_names(fn.body):
            callee = by_bare.get(callee_bare)
            if callee is not None and callee != qualname:
                visit(callee)
        visiting.pop()
        result = analyze_function(
            qualname=qualname,
            body=fn.body,
            params=_non_self_params(fn),
            defaults=_param_defaults(fn),
            file=file,
            summaries=summaries,
            globals_env=constants,
        )
        analysis.functions[qualname] = result
        summaries[qualname.rsplit(".", 1)[-1]] = result

    for qualname, _ in functions:
        visit(qualname)

    # The module body last, seeing every function's summary.
    body = [
        stmt
        for stmt in module.body
        if not isinstance(stmt, (ast.ClassDef,) + _FuncDef)
    ]
    analysis.functions["<module>"] = analyze_function(
        qualname="<module>",
        body=body,
        params=[],
        defaults={},
        file=file,
        summaries=summaries,
        globals_env=constants,
    )
    return analysis
