"""Baseline / suppression file for the advisor's CI gate.

The gate fails only on findings *not* in the checked-in baseline, so
pre-existing advisories (the explicit Rodinia ports' redundant copies
are intentional — they are the ported-as-is code the paper measures)
do not block CI while new regressions do.

Fingerprints must survive unrelated edits: they hash the rule id, the
repo-relative file, the enclosing function, and the message — never
the line number, which is why check messages are line-free (the line
lives only in :attr:`Finding.line`).  The same value is exported as
the SARIF ``partialFingerprints`` entry so code-scanning UIs track the
same identity.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Union

from ..findings import Finding

#: Format marker for the baseline JSON file.
BASELINE_VERSION = 1


def _relative(file: str) -> str:
    """Repo-relative posix path when possible (stable fingerprints)."""
    if not file:
        return ""
    path = Path(file)
    try:
        path = path.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return path.as_posix()


def fingerprint(finding: Finding) -> str:
    """Stable identity of one finding across line-number drift."""
    key = "|".join(
        [
            finding.rule,
            _relative(finding.file or ""),
            finding.function or "",
            finding.message,
        ]
    )
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:20]


def save_baseline(
    findings: Iterable[Finding], path: Union[str, os.PathLike]
) -> Dict[str, str]:
    """Write the baseline file; returns fingerprint -> summary map."""
    prints: Dict[str, str] = {}
    for f in sorted(findings, key=lambda f: (f.file or "", f.line or 0,
                                             f.rule)):
        prints[fingerprint(f)] = f"{f.rule} @ {_relative(f.file or '')} " \
                                 f"in {f.function or '<module>'}"
    doc = {"version": BASELINE_VERSION, "fingerprints": prints}
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    return prints


def load_baseline(path: Union[str, os.PathLike]) -> Dict[str, str]:
    """Read a baseline file back to its fingerprint map."""
    doc = json.loads(Path(path).read_text())
    if doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {doc.get('version')!r} in {path}"
        )
    prints = doc.get("fingerprints", {})
    if not isinstance(prints, dict):
        raise ValueError(f"malformed baseline file {path}")
    return dict(prints)


def new_findings(
    findings: Iterable[Finding], baseline: Dict[str, str]
) -> List[Finding]:
    """The findings whose fingerprint the baseline does not cover."""
    return [f for f in findings if fingerprint(f) not in baseline]
