"""The six paper-grounded advisor checks over dataflow events.

Each check encodes one performance lesson from the paper, prices the
anti-pattern with the calibrated constants in :mod:`repro.hw.config`,
and cites the figure it derives from via the rule registry
(:mod:`repro.analyze.findings`):

==================== ===================== ==========================
rule                 paper anchor          what it costs
==================== ===================== ==========================
advise.redundant-copy §4.3 / Fig. 3        bytes / SDMA bandwidth
advise.first-touch    Fig. 10              pages x GPU minor fault
advise.fault-storm    Figs. 7-8 / §5.2     pages x GPU major fault
advise.tlb-reach      Fig. 9 / §5.3        fragments x L2-TLB miss
advise.mixed-alloc    §3.4 / Table 1       (structural)
advise.sync-in-loop   §3.3                 (structural)
==================== ===================== ==========================

Finding messages deliberately carry **no line numbers** — the line
lives in :attr:`Finding.line` only — so baseline fingerprints (rule,
file, function, message) survive unrelated edits that shift code.

The same program point is often seen twice: once in its function's own
summary pass (allocator families still symbolic) and once replayed at a
call site (families resolved).  Duplicates collide on (rule, file,
line) and the occurrence that resolved *more* origins wins.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ...hw.config import PAGE_SIZE, MI300AConfig, default_config
from ..findings import Finding, make_finding
from ..sanitizer import GPU_FAULT_STORM_PAGES
from .dataflow import Event, FunctionResult
from .summaries import ModuleAnalysis
from .values import (
    EXPLICIT_FAMILIES,
    MANAGED_FAMILIES,
    Origin,
    origins_of,
    resolved_origins,
)

#: dedup key -> (resolution score, finding); higher score wins.
_FindingMap = Dict[Tuple[str, str, int], Tuple[int, Finding]]


def _origin_label(origin: Origin) -> str:
    """A line-free human label for one allocation site."""
    if origin.name:
        return f"'{origin.name}' ({origin.family})"
    return origin.family


def _buf_label(origins: Iterable[Origin]) -> str:
    labels = sorted({_origin_label(o) for o in origins})
    return ", ".join(labels) if labels else "an unresolved buffer"


def _known_size(origins: Iterable[Origin]) -> Optional[int]:
    sizes = {o.size_bytes for o in origins if o.size_bytes is not None}
    if len(sizes) == 1:
        return next(iter(sizes))
    return None


def _add(
    out: _FindingMap, score: int, finding: Finding
) -> None:
    key = (finding.rule, finding.file or "", finding.line or 0)
    existing = out.get(key)
    if existing is None or score > existing[0]:
        out[key] = (score, finding)


# ----------------------------------------------------------------------
# Per-event checks.
# ----------------------------------------------------------------------


def _check_redundant_copy(
    ev: Event, file: str, cfg: MI300AConfig, out: _FindingMap
) -> None:
    """§4.3 / Fig. 3: every pool is the same coherent HBM3 — an
    explicit hipMemcpy between UPM buffers is pure overhead."""
    dst, src = resolved_origins(ev.dst), resolved_origins(ev.src)
    if not dst and not src:
        return
    size = ev.size_bytes
    if size is None:
        size = _known_size(origins_of(ev.dst) | origins_of(ev.src))
    cost = None
    if size:
        cost = size / cfg.bandwidth.memcpy_sdma_bytes_per_s * 1e9
    verb = "hipMemcpyAsync" if ev.is_async else "hipMemcpy"
    message = (
        f"{verb} from {_buf_label(origins_of(ev.src))} to "
        f"{_buf_label(origins_of(ev.dst))}: both endpoints live in the "
        "same coherent HBM3 pool on MI300A, so the copy is pure overhead"
    )
    _add(
        out,
        len(dst | src),
        make_finding(
            "advise.redundant-copy",
            message,
            file=file,
            line=ev.line,
            function=ev.function,
            cost_ns=cost,
            hint="pass the source buffer to the kernel directly; CPU and "
                 "GPU share one physical memory, no staging copy is needed",
        ),
    )


def _check_launch(
    ev: Event,
    file: str,
    cfg: MI300AConfig,
    xnack_off: bool,
    out: _FindingMap,
) -> None:
    """Fig. 10 (first-touch), Figs. 7-8 (fault storm), §3.4
    (mixed-alloc) — all keyed on one kernel launch's accesses."""
    first_touch: Set[Origin] = set()
    storm: Set[Origin] = set()
    mixed: Set[Origin] = set()
    for access in ev.accesses:
        origins = resolved_origins(access.value)
        if not origins:
            continue
        families = {o.family for o in origins}
        if families & EXPLICIT_FAMILIES and families & MANAGED_FAMILIES:
            mixed |= origins
        if access.warm:
            continue
        on_demand = {o for o in origins if o.on_demand}
        if on_demand and access.cpu_written and all(
            o.on_demand for o in origins
        ):
            first_touch |= origins
        if on_demand and not xnack_off:
            big = {
                o for o in on_demand
                if o.size_bytes is None
                or o.size_bytes >= GPU_FAULT_STORM_PAGES * PAGE_SIZE
            }
            storm |= big

    kernel = f"kernel '{ev.kernel}'" if ev.kernel not in ("", "?") else (
        "a kernel"
    )
    if first_touch:
        size = sum(o.size_bytes for o in first_touch if o.size_bytes) or None
        cost = None
        if size:
            pages = size / PAGE_SIZE
            cost = pages * cfg.fault_costs.gpu_minor_batched_page_ns
        _add(
            out,
            len(first_touch),
            make_finding(
                "advise.first-touch",
                f"{kernel} streams {_buf_label(first_touch)} whose pages "
                "the CPU first-touched: on-demand placement routes them "
                "through the CPU fault path before the GPU can stream them",
                file=file,
                line=ev.line,
                function=ev.function,
                cost_ns=cost,
                hint="allocate up-front (hipMalloc) or prefetch with "
                     "hipMemPrefetchAsync before the launch",
            ),
        )
    if storm:
        size = sum(o.size_bytes for o in storm if o.size_bytes) or None
        cost = None
        if size:
            pages = size / PAGE_SIZE
            cost = pages * cfg.fault_costs.gpu_major_batched_page_ns
        _add(
            out,
            len(storm),
            make_finding(
                "advise.fault-storm",
                f"{kernel} may first-touch on-demand allocation "
                f"{_buf_label(storm)} under XNACK with no warm-up or "
                "prefetch on some path: predicted GPU page-fault storm",
                file=file,
                line=ev.line,
                function=ev.function,
                cost_ns=cost,
                hint="warm the buffer with a GPU touch/prefetch, or "
                     "allocate it up-front",
            ),
        )
    if mixed:
        _add(
            out,
            len(mixed),
            make_finding(
                "advise.mixed-alloc",
                f"{kernel} receives {_buf_label(mixed)}, which mixes "
                "explicit-model and managed-model allocations on "
                "different paths; the two models have different paging "
                "and allocator costs",
                file=file,
                line=ev.line,
                function=ev.function,
                hint="pick one allocation model for the buffer on every "
                     "path reaching this launch",
            ),
        )


def _check_tlb_reach(
    ev: Event, file: str, cfg: MI300AConfig, out: _FindingMap
) -> None:
    """Fig. 9 / §5.3: an allocation larger than the L2 TLB's reach for
    its allocator's fragment size thrashes the TLB when streamed."""
    for origin in resolved_origins(ev.buf):
        if origin.size_bytes is None:
            return
        if origin.up_front:
            contiguity = cfg.policy.up_front_contiguity_bytes
        elif origin.on_demand:
            contiguity = cfg.policy.on_demand_contiguity_bytes
        else:
            continue
        reach = cfg.gpu_l2_tlb.entries * contiguity
        if origin.size_bytes <= reach:
            continue
        fragments = origin.size_bytes / contiguity
        _add(
            out,
            1,
            make_finding(
                "advise.tlb-reach",
                f"allocation {_buf_label([origin])} of "
                f"{origin.size_bytes} bytes exceeds the GPU L2 TLB reach "
                f"of {reach} bytes at this allocator's "
                f"{contiguity}-byte fragment size",
                file=file,
                line=ev.line,
                function=ev.function,
                cost_ns=fragments * cfg.gpu_l2_tlb.miss_penalty_ns,
                hint="use an up-front allocator for large streamed "
                     "buffers (64 KiB fragments) or split the working set",
            ),
        )


def _check_sync_in_loop(
    fn: FunctionResult, file: str, out: _FindingMap
) -> None:
    """§3.3: hipDeviceSynchronize inside a loop that launches on a
    non-default stream — a stream/event wait would not stall the whole
    device every iteration."""
    launches = [
        ev
        for ev in fn.events
        if ev.kind == "launch"
        and not ev.via_summary
        and ev.loops
        and ev.stream_default is False
    ]
    for ev in fn.events:
        if ev.kind != "sync" or ev.sync_kind != "device":
            continue
        if ev.via_summary or not ev.loops:
            continue
        innermost = ev.loops[-1]
        if not any(innermost in launch.loops for launch in launches):
            continue
        _add(
            out,
            1,
            make_finding(
                "advise.sync-in-loop",
                "hipDeviceSynchronize inside a loop that launches work "
                "on a non-default stream: the device-wide barrier stalls "
                "every queue each iteration",
                file=file,
                line=ev.line,
                function=ev.function,
                hint="wait on a hipEvent or hipStreamSynchronize for the "
                     "stream that carries the dependency",
            ),
        )


# ----------------------------------------------------------------------
# Driver.
# ----------------------------------------------------------------------


def run_checks(
    analysis: ModuleAnalysis, config: Optional[MI300AConfig] = None
) -> List[Finding]:
    """All six checks over one module's dataflow results."""
    cfg = config or default_config()
    file = analysis.file
    if analysis.syntax_error is not None:
        line, msg = analysis.syntax_error
        return [
            make_finding(
                "advise.syntax-error", msg, file=file, line=line
            )
        ]
    out: _FindingMap = {}
    for fn in analysis.functions.values():
        for ev in fn.events:
            if ev.kind == "copy":
                _check_redundant_copy(ev, file, cfg, out)
            elif ev.kind == "launch":
                callee = analysis.functions.get(ev.function, fn)
                xnack_off = fn.xnack_off or callee.xnack_off
                _check_launch(ev, file, cfg, xnack_off, out)
            elif ev.kind == "alloc":
                _check_tlb_reach(ev, file, cfg, out)
        _check_sync_in_loop(fn, file, out)
    findings = [f for _, f in out.values()]
    findings.sort(key=lambda f: (f.file or "", f.line or 0, f.rule))
    return findings
