"""Abstract value domain for the advisor's points-to analysis.

Buffer handles are tracked as sets of :class:`Origin` records — where a
buffer *may* have been allocated — forming a join-semilattice under set
union with :data:`TOP` (unknown) absorbing everything.  Alongside
buffers the domain models exactly the helper values the HIP surface
threads between allocation and kernel launch: literal strings (the
allocator names), constant numbers (sizes), ``BufferAccess`` /
``KernelSpec`` aggregates, streams, tuples, lists, and opaque formal
parameters (:class:`ParamVal`) used while summarizing helper functions.

Allocator families mirror ``HipRuntime.array``'s allocator argument.
A family may also be symbolic — ``"@param<N>"`` — meaning "whatever
allocator string parameter N carries"; call-site substitution resolves
it (see :mod:`repro.analyze.advise.summaries`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

#: Families in which pages are physically mapped at allocation time.
UP_FRONT_FAMILIES = frozenset(
    {"hipMalloc", "hipHostMalloc", "malloc+register", "managed_static"}
)

#: Families whose pages are mapped on first touch (fault path).  Managed
#: memory is on-demand under XNACK, which is how the paper's unified
#: configurations run; the advisor assumes XNACK unless it sees a
#: literal ``make_runtime(..., xnack=False)``.
ON_DEMAND_FAMILIES = frozenset({"malloc", "hipMallocManaged"})

#: Explicit-model vs managed-model split for the mixed-alloc check.
EXPLICIT_FAMILIES = frozenset({"hipMalloc", "hipHostMalloc", "malloc+register"})
MANAGED_FAMILIES = frozenset({"hipMallocManaged", "managed_static"})


class _Top:
    """The unknown value (absorbing element of every join)."""

    _instance: Optional["_Top"] = None

    def __new__(cls) -> "_Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TOP"


TOP = _Top()


@dataclass(frozen=True)
class Origin:
    """One allocation site a buffer handle may point to."""

    line: int  #: allocation-site line in the analyzed file
    family: str  #: allocator family, or symbolic ``@param<N>``
    size_bytes: Optional[int] = None  #: constant-folded size, if known
    name: str = ""  #: buffer label when the call passed a literal name

    @property
    def resolved(self) -> bool:
        """Whether the allocator family is a concrete one."""
        return not self.family.startswith("@") and self.family != "?"

    @property
    def on_demand(self) -> bool:
        return self.family in ON_DEMAND_FAMILIES

    @property
    def up_front(self) -> bool:
        return self.family in UP_FRONT_FAMILIES

    def describe(self) -> str:
        label = self.name or self.family
        size = f", {self.size_bytes} B" if self.size_bytes else ""
        return f"{label!r} ({self.family}, line {self.line}{size})"


@dataclass(frozen=True)
class BufVal:
    """A buffer handle: the set of allocation sites it may alias."""

    origins: FrozenSet[Origin]

    @staticmethod
    def single(origin: Origin) -> "BufVal":
        return BufVal(frozenset({origin}))


@dataclass(frozen=True)
class StrVal:
    """A string constant (or a join of several)."""

    options: FrozenSet[str]

    @staticmethod
    def of(value: str) -> "StrVal":
        return StrVal(frozenset({value}))


@dataclass(frozen=True)
class NumVal:
    """A constant-folded number."""

    value: float

    @property
    def as_int(self) -> int:
        return int(self.value)


@dataclass(frozen=True)
class AccessVal:
    """An abstract ``BufferAccess(buffer, mode)``."""

    buf: object  # BufVal | ParamVal | TOP
    mode: str  # "read" | "write" | "readwrite" | "?"


@dataclass(frozen=True)
class SpecVal:
    """An abstract ``KernelSpec`` (name + buffer accesses)."""

    name: str
    accesses: Tuple[AccessVal, ...]


@dataclass(frozen=True)
class StreamVal:
    """A stream handle; anything from ``hipStreamCreate`` is
    non-default."""

    default: bool


@dataclass(frozen=True)
class TupleVal:
    elems: Tuple[object, ...]


@dataclass(frozen=True)
class ListVal:
    """A homogeneous list abstraction (joined element value)."""

    elem: object  # may be None for the empty list


@dataclass(frozen=True)
class ParamVal:
    """Opaque formal parameter placeholder used during summarization."""

    index: int


def join(a: object, b: object) -> object:
    """Least upper bound of two abstract values."""
    if a is None:
        return b
    if b is None:
        return a
    if a == b:
        return a
    if a is TOP or b is TOP:
        return TOP
    if isinstance(a, BufVal) and isinstance(b, BufVal):
        return BufVal(a.origins | b.origins)
    if isinstance(a, StrVal) and isinstance(b, StrVal):
        return StrVal(a.options | b.options)
    if isinstance(a, ListVal) and isinstance(b, ListVal):
        return ListVal(join(a.elem, b.elem))
    if isinstance(a, TupleVal) and isinstance(b, TupleVal) and len(
        a.elems
    ) == len(b.elems):
        return TupleVal(tuple(join(x, y) for x, y in zip(a.elems, b.elems)))
    if isinstance(a, AccessVal) and isinstance(b, AccessVal):
        mode = a.mode if a.mode == b.mode else "?"
        return AccessVal(join(a.buf, b.buf), mode)
    if isinstance(a, SpecVal) and isinstance(b, SpecVal) and len(
        a.accesses
    ) == len(b.accesses):
        name = a.name if a.name == b.name else "?"
        return SpecVal(
            name,
            tuple(join(x, y) for x, y in zip(a.accesses, b.accesses)),
        )
    if isinstance(a, StreamVal) and isinstance(b, StreamVal):
        return StreamVal(a.default and b.default)
    return TOP


def origins_of(value: object) -> FrozenSet[Origin]:
    """The origin set of a value, empty when it is not a buffer."""
    if isinstance(value, BufVal):
        return value.origins
    return frozenset()


def resolved_origins(value: object) -> FrozenSet[Origin]:
    """Only the origins whose allocator family is concrete."""
    return frozenset(o for o in origins_of(value) if o.resolved)


def substitute(value: object, bindings) -> object:
    """Bind a summary's formal-parameter placeholders to call-site values.

    *bindings* maps parameter index -> abstract value.  ``ParamVal``
    nodes are replaced outright; symbolic ``@param<N>`` allocator
    families inside :class:`Origin` are expanded against the bound
    string's options (or re-pointed at the caller's own parameter when
    the binding is itself a :class:`ParamVal`, so summaries compose
    through multiple call levels)."""
    from dataclasses import replace

    if isinstance(value, ParamVal):
        return bindings.get(value.index, TOP)
    if isinstance(value, BufVal):
        origins = set()
        for origin in value.origins:
            if not origin.family.startswith("@param"):
                origins.add(origin)
                continue
            bound = bindings.get(int(origin.family[len("@param"):]))
            if isinstance(bound, StrVal):
                for family in bound.options:
                    origins.add(replace(origin, family=family))
            elif isinstance(bound, ParamVal):
                origins.add(replace(origin, family=f"@param{bound.index}"))
            else:
                origins.add(replace(origin, family="?"))
        return BufVal(frozenset(origins))
    if isinstance(value, AccessVal):
        return AccessVal(substitute(value.buf, bindings), value.mode)
    if isinstance(value, SpecVal):
        return SpecVal(
            value.name,
            tuple(substitute(a, bindings) for a in value.accesses),
        )
    if isinstance(value, TupleVal):
        return TupleVal(tuple(substitute(e, bindings) for e in value.elems))
    if isinstance(value, ListVal):
        return ListVal(substitute(value.elem, bindings))
    return value
