"""Static API-misuse linter over code using the ``repro.runtime`` HIP API.

A single-pass AST walk per scope (the module body and each function
body) tracking, per scope:

* which names were bound by an allocator call (``hipMalloc``,
  ``hipHostMalloc``, ``hipMallocManaged``, ``malloc``, ``array(...)``),
* which names were released through ``hipFree`` (or the memory
  manager's ``free``),
* whether asynchronous work (``launchKernel`` / ``hipMemcpyAsync``) is
  pending without an intervening synchronization.

Rules (ERROR severity gates CI):

* ``lint.unknown-api`` (error) — a ``hipXxx`` call or constant the
  runtime does not expose;
* ``lint.deprecated-api`` (error) — CUDA-era spellings
  (``hipMallocHost``, ``hipMemcpyDtoH``, ...) with their replacements;
* ``lint.double-free`` (error) — the same name passed to ``hipFree``
  twice with no rebinding in between;
* ``lint.use-after-free`` (error) — a freed name used afterwards;
* ``lint.free-before-sync`` (error) — ``hipFree`` while asynchronous
  work may still be in flight;
* ``lint.missing-sync`` (warning) — host access (``.np`` /
  ``runCpuKernel``) while asynchronous work is pending;
* ``lint.leaked-alloc`` (warning) — an allocation neither freed nor
  returned, in a scope that creates its own runtime (calls
  ``make_runtime`` / ``make_apu``).  A scope that merely receives a
  runtime as a parameter *borrows* its memory arena — the creator owns
  teardown (the app harness frees everything after the timed window) —
  so borrower scopes are exempt;
* ``lint.mixed-model`` (warning) — one logical buffer name rebound
  across the explicit and managed allocator families.

The walk is linear: loop bodies are visited once, so a sync at the
bottom of a loop clears pending work for the statements after the loop
(and, conservatively, for the textually later part of the body only).
"""

from __future__ import annotations

import ast
import functools
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding, make_finding

#: CUDA-era / removed spellings and their modern replacements.
DEPRECATED_APIS: Dict[str, str] = {
    "hipMallocHost": "hipHostMalloc",
    "hipHostAlloc": "hipHostMalloc",
    "hipFreeHost": "hipFree",
    "hipMemcpyDtoH": "hipMemcpy",
    "hipMemcpyHtoD": "hipMemcpy",
    "hipMemcpyDtoD": "hipMemcpy",
    "hipStreamWaitEvent_spin": "hipStreamWaitEvent",
}

#: Allocator call -> allocator family (for lint.mixed-model).
ALLOC_FAMILIES: Dict[str, str] = {
    "hipMalloc": "explicit",
    "hipHostMalloc": "explicit",
    "hipMallocManaged": "managed",
    "malloc": "host",
}

#: ``array(..., allocator="X")`` strings -> allocator family.  Static
#: allocators (``managed_static``) are absent on purpose: statics cannot
#: be freed, so they are exempt from lifetime tracking.
ARRAY_ALLOC_FAMILIES: Dict[str, str] = {
    "hipMalloc": "explicit",
    "hipHostMalloc": "explicit",
    "malloc+register": "explicit",
    "hipMallocManaged": "managed",
    "malloc": "host",
}

#: Deallocation spellings: the HIP call and the memory-manager method.
FREE_CALLS = frozenset({"hipFree", "free"})

#: Calls that create a runtime/APU.  A scope containing one *owns* the
#: memory arena and is accountable for leaks; every other scope borrows.
RUNTIME_FACTORIES = frozenset({"make_runtime", "make_apu"})

#: Calls that enqueue asynchronous work.
ASYNC_CALLS = frozenset({"launchKernel", "hipMemcpyAsync", "run_gpu"})

#: Calls that drain it (hipMemcpy is synchronous on the default stream).
SYNC_CALLS = frozenset(
    {
        "hipDeviceSynchronize",
        "hipStreamSynchronize",
        "hipEventSynchronize",
        "synchronize",
        "device_synchronize",
        "hipMemcpy",
    }
)

#: Host-side compute that reads buffers on the host timeline.
HOST_COMPUTE_CALLS = frozenset({"runCpuKernel", "run_cpu"})

_HIP_NAME = re.compile(r"^hip[A-Z]\w*$")


@functools.lru_cache(maxsize=1)
def known_hip_api() -> frozenset:
    """Every ``hipXxx`` name the simulated runtime exposes.

    Computed lazily so this module never imports the runtime at import
    time (the runtime imports :mod:`repro.analyze.events` for tracing).
    """
    from ..runtime import hip as hip_module
    from ..runtime.hip import HipRuntime

    names = {n for n in dir(HipRuntime) if n.startswith("hip")}
    names |= {n for n in dir(hip_module) if n.startswith("hip")}
    return frozenset(names)


def _call_name(node: ast.Call) -> Optional[str]:
    """The terminal attribute/identifier a call targets."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _first_arg_name(node: ast.Call) -> Optional[str]:
    if node.args and isinstance(node.args[0], ast.Name):
        return node.args[0].id
    return None


def _array_family(node: ast.Call) -> Optional[str]:
    """The allocator family of an ``array(...)`` call, when literal."""
    for kw in node.keywords:
        if kw.arg == "allocator":
            if isinstance(kw.value, ast.Constant):
                return ARRAY_ALLOC_FAMILIES.get(str(kw.value.value))
            return None  # dynamic allocator: family unknown, untracked
    for arg in node.args[2:3]:  # array(shape, dtype, allocator)
        if isinstance(arg, ast.Constant):
            return ARRAY_ALLOC_FAMILIES.get(str(arg.value))
        return None
    return "explicit"  # array() defaults to hipMalloc


class _ScopeLinter:
    """Lints one scope's statement list with a linear walk."""

    def __init__(
        self,
        file: str,
        defined: Set[str],
        findings: List[Finding],
    ) -> None:
        self.file = file
        self.defined = defined
        self.findings = findings
        self.allocs: Dict[str, Tuple[int, str]] = {}  # name -> (line, family)
        self.families: Dict[str, str] = {}  # name -> last family
        self.freed: Dict[str, int] = {}  # name -> hipFree line
        self.pending_async: Optional[int] = None  # line of pending work
        self.returned: Set[str] = set()
        self.owns_runtime = False  # scope called make_runtime/make_apu

    # -- reporting -----------------------------------------------------

    def _add(
        self,
        rule: str,
        message: str,
        line: int,
        hint: Optional[str] = None,
    ) -> None:
        """Report one finding; its severity comes from the rule
        registry in :mod:`repro.analyze.findings`."""
        self.findings.append(
            make_finding(rule, message, file=self.file, line=line, hint=hint)
        )

    # -- statement walk ------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        self._walk(body)
        if not self.owns_runtime:
            return  # borrowed arena: the runtime's creator owns teardown
        for name, (line, _family) in self.allocs.items():
            if name in self.returned or name in self.freed:
                continue
            self._add(
                "lint.leaked-alloc",
                f"allocation {name!r} is never freed in this scope",
                line,
                hint=f"add hipFree({name}) (or return the buffer to the "
                "caller)",
            )

    def _walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested scopes are linted separately
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returned.update(
                    n.id for n in ast.walk(stmt.value) if isinstance(n, ast.Name)
                )
                self._expression(stmt.value)
            return
        if isinstance(stmt, ast.Assign):
            self._expression(stmt.value)
            self._assignment(stmt.targets, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._expression(stmt.value)
            self._assignment([stmt.target], stmt.value)
            return
        # Compound statements: walk headers, then bodies in order.
        for expr in self._header_expressions(stmt):
            self._expression(expr)
        for field in ("body", "orelse", "finalbody"):
            self._walk(getattr(stmt, field, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            self._walk(handler.body)

    @staticmethod
    def _header_expressions(stmt: ast.stmt) -> List[ast.expr]:
        exprs: List[ast.expr] = []
        for field in ("value", "test", "iter", "exc", "msg"):
            node = getattr(stmt, field, None)
            if isinstance(node, ast.expr):
                exprs.append(node)
        for item in getattr(stmt, "items", []) or []:
            exprs.append(item.context_expr)
        return exprs

    # -- assignments ---------------------------------------------------

    def _assignment(
        self, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        pairs: List[Tuple[ast.expr, ast.expr]] = []
        for target in targets:
            if (
                isinstance(target, ast.Tuple)
                and isinstance(value, ast.Tuple)
                and len(target.elts) == len(value.elts)
            ):
                pairs.extend(zip(target.elts, value.elts))
            else:
                pairs.append((target, value))
        for target, val in pairs:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            family = self._alloc_family(val)
            if family is None:
                # Rebinding to something else ends the old buffer's story.
                self.allocs.pop(name, None)
                self.freed.pop(name, None)
                continue
            previous = self.families.get(name)
            if (
                previous is not None
                and previous != family
                and {previous, family} == {"explicit", "managed"}
            ):
                self._add(
                    "lint.mixed-model",
                    f"buffer {name!r} is allocated through both the "
                    f"{previous} and {family} memory models",
                    val.lineno,
                    hint="pick one model per logical buffer; mixing them "
                    "hides copies and defeats the unified-memory port",
                )
            self.families[name] = family
            self.allocs[name] = (val.lineno, family)
            self.freed.pop(name, None)

    @staticmethod
    def _alloc_family(value: ast.expr) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        name = _call_name(value)
        if name in ALLOC_FAMILIES:
            return ALLOC_FAMILIES[name]
        if name == "array":
            return _array_family(value)
        if name == "hipHostRegister":
            return "explicit"
        return None

    # -- expressions ---------------------------------------------------

    def _expression(self, expr: ast.expr) -> None:
        # Call targets are reported by _call; skip them in the
        # name/attribute passes so one misuse yields one finding.
        func_nodes = {
            id(node.func)
            for node in ast.walk(expr)
            if isinstance(node, ast.Call)
        }
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._call(node)
            elif isinstance(node, ast.Attribute):
                self._attribute(node, is_call_target=id(node) in func_nodes)
            elif isinstance(node, ast.Name) and id(node) not in func_nodes:
                self._name(node)

    def _call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name is None:
            return
        if name in DEPRECATED_APIS:
            self._add(
                "lint.deprecated-api",
                f"{name} is a deprecated API name",
                node.lineno,
                hint=f"use {DEPRECATED_APIS[name]} instead",
            )
        elif (
            _HIP_NAME.match(name)
            and name not in known_hip_api()
            and name not in self.defined
        ):
            self._add(
                "lint.unknown-api",
                f"{name} is not a HIP API this runtime provides",
                node.lineno,
                hint="see dir(repro.runtime.HipRuntime) for the supported "
                "surface",
            )
        if name not in FREE_CALLS:  # double frees reported as double-free
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id in self.freed:
                    self._add(
                        "lint.use-after-free",
                        f"{arg.id!r} is used after hipFree "
                        f"(freed at line {self.freed[arg.id]})",
                        node.lineno,
                        hint="free after the last use, or reallocate",
                    )
        if name in RUNTIME_FACTORIES:
            self.owns_runtime = True
        if name in FREE_CALLS:
            self._free(node)
        elif name in ASYNC_CALLS:
            if self.pending_async is None:
                self.pending_async = node.lineno
        elif name in SYNC_CALLS:
            self.pending_async = None
        elif name in HOST_COMPUTE_CALLS and self.pending_async is not None:
            self._add(
                "lint.missing-sync",
                f"host compute while asynchronous work from line "
                f"{self.pending_async} may still be in flight",
                node.lineno,
                hint="call hipDeviceSynchronize / hipStreamSynchronize "
                "before touching shared buffers on the host",
            )

    def _free(self, node: ast.Call) -> None:
        arg = _first_arg_name(node)
        if arg is not None and arg in self.freed:
            self._add(
                "lint.double-free",
                f"{arg!r} is freed twice (first at line {self.freed[arg]})",
                node.lineno,
                hint="remove the second hipFree or rebind the name first",
            )
            return
        if self.pending_async is not None:
            self._add(
                "lint.free-before-sync",
                "hipFree while asynchronous work from line "
                f"{self.pending_async} may still be in flight",
                node.lineno,
                hint="synchronize before freeing buffers kernels or async "
                "copies may still touch",
            )
        if arg is not None:
            self.freed[arg] = node.lineno

    def _attribute(
        self, node: ast.Attribute, is_call_target: bool = False
    ) -> None:
        if (
            not is_call_target
            and _HIP_NAME.match(node.attr)
            and node.attr not in known_hip_api()
            and node.attr not in DEPRECATED_APIS
            and node.attr not in self.defined
        ):
            self._add(
                "lint.unknown-api",
                f"{node.attr} is not a HIP name this runtime provides",
                node.lineno,
            )
        if not isinstance(node.value, ast.Name):
            return
        base = node.value.id
        if base in self.freed:
            self._add(
                "lint.use-after-free",
                f"{base!r} is used after hipFree "
                f"(freed at line {self.freed[base]})",
                node.lineno,
                hint="free after the last use, or reallocate",
            )
        elif (
            node.attr == "np"
            and base in self.allocs
            and self.pending_async is not None
        ):
            self._add(
                "lint.missing-sync",
                f"host access to {base!r}.np while asynchronous work from "
                f"line {self.pending_async} may still be in flight",
                node.lineno,
                hint="synchronize before reading or writing the buffer on "
                "the host",
            )

    def _name(self, node: ast.Name) -> None:
        if (
            _HIP_NAME.match(node.id)
            and node.id not in known_hip_api()
            and node.id not in DEPRECATED_APIS
            and node.id not in self.defined
            and isinstance(node.ctx, ast.Load)
        ):
            self._add(
                "lint.unknown-api",
                f"{node.id} is not a HIP name this runtime provides",
                node.lineno,
            )


# ----------------------------------------------------------------------
# File / path drivers
# ----------------------------------------------------------------------


def _defined_names(tree: ast.Module) -> Set[str]:
    """Names the file itself defines, imports, or binds."""
    defined: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
        elif isinstance(node, ast.alias):
            defined.add((node.asname or node.name).split(".")[0])
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            defined.add(node.id)
        elif isinstance(node, ast.arg):
            defined.add(node.arg)
    return defined


def lint_source(source: str, file: str = "<string>") -> List[Finding]:
    """Lint one source string."""
    try:
        tree = ast.parse(source, filename=file)
    except SyntaxError as exc:
        return [
            make_finding(
                "lint.syntax-error",
                f"cannot parse: {exc.msg}",
                file=file,
                line=exc.lineno,
            )
        ]
    defined = _defined_names(tree)
    findings: List[Finding] = []
    _ScopeLinter(file, defined, findings).run(tree.body)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _ScopeLinter(file, defined, findings).run(node.body)
    return findings


def lint_file(path: Path | str) -> List[Finding]:
    """Lint one Python file."""
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), file=str(path))


def _excluded(path: Path, excludes: Iterable[str]) -> bool:
    resolved = path.resolve().as_posix()
    for entry in excludes:
        cleaned = entry.strip().lstrip("./")
        if not cleaned:
            continue
        if resolved.endswith("/" + cleaned) or path.name == cleaned:
            return True
    return False


def lint_paths(
    paths: Iterable[Path | str], exclude: Iterable[str] = ()
) -> List[Finding]:
    """Lint every ``.py`` file under *paths* (files or directories)."""
    excludes = list(exclude)
    findings: List[Finding] = []
    for entry in paths:
        entry = Path(entry)
        files = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        for file in files:
            if _excluded(file, excludes):
                continue
            findings.extend(lint_file(file))
    return findings
