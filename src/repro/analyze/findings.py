"""Shared finding model and reporters for the analysis passes.

Both the dynamic sanitizer (:mod:`repro.analyze.sanitizer`) and the
static linter (:mod:`repro.analyze.linter`) report through the same
:class:`Finding` record, so the CLI, the CI gate, and the tests can
treat their output uniformly: a rule id, a severity, a message, an
optional source location, and an optional fix hint.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Iterable, List, Optional


class Severity(enum.IntEnum):
    """How bad a finding is; the CI gate fails on ERROR only."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnostic from either analysis pass."""

    rule: str
    severity: Severity
    message: str
    file: Optional[str] = None
    line: Optional[int] = None
    hint: Optional[str] = None

    @property
    def location(self) -> str:
        """``file:line`` when known, else an empty string."""
        if self.file is None:
            return ""
        if self.line is None:
            return self.file
        return f"{self.file}:{self.line}"


def render_text(findings: Iterable[Finding]) -> str:
    """Human-readable report, one finding per paragraph."""
    lines: List[str] = []
    count = 0
    for f in sorted(findings, key=lambda f: (-int(f.severity), f.rule)):
        count += 1
        loc = f" [{f.location}]" if f.location else ""
        lines.append(f"{f.severity}: {f.rule}{loc}: {f.message}")
        if f.hint:
            lines.append(f"    hint: {f.hint}")
    lines.append(f"{count} finding(s)")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report (a JSON array)."""
    return json.dumps(
        [
            {
                "rule": f.rule,
                "severity": str(f.severity),
                "message": f.message,
                "file": f.file,
                "line": f.line,
                "hint": f.hint,
            }
            for f in findings
        ],
        indent=2,
    )


def has_errors(findings: Iterable[Finding]) -> bool:
    """True when at least one finding is ERROR severity (the CI gate)."""
    return any(f.severity >= Severity.ERROR for f in findings)


def max_severity(findings: Iterable[Finding]) -> Optional[Severity]:
    """The worst severity present, or None for an empty report."""
    worst: Optional[Severity] = None
    for f in findings:
        if worst is None or f.severity > worst:
            worst = f.severity
    return worst
