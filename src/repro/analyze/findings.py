"""Shared finding model, rule registry, and reporters for the analyzers.

All three analysis passes — the dynamic sanitizer
(:mod:`repro.analyze.sanitizer`), the static linter
(:mod:`repro.analyze.linter`), and the static performance advisor
(:mod:`repro.analyze.advise`) — report through the same
:class:`Finding` record, so the CLI, the CI gates, and the tests can
treat their output uniformly: a rule id, a severity, a message, an
optional source location, and an optional fix hint.

Every rule id any pass may emit is declared up front in one
:data:`RULES` registry entry carrying the rule's severity, the paper
section it derives from, and a one-line doc.  The registry is the
single source of truth for severities (``make_finding`` refuses unknown
codes), keeps codes collision-free across the three tools, and feeds
the SARIF writer's ``tool.driver.rules`` table.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


class Severity(enum.IntEnum):
    """How bad a finding is; the CI gate fails on ERROR only."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` string for this severity."""
        return {"INFO": "note", "WARNING": "warning", "ERROR": "error"}[
            self.name
        ]


@dataclass(frozen=True)
class RuleSpec:
    """Registry entry for one rule a pass may emit."""

    code: str  #: full id, e.g. ``advise.redundant-copy``
    severity: Severity
    paper: str  #: paper anchor the rule encodes, e.g. ``Fig. 9``
    doc: str  #: one-line description (SARIF shortDescription)

    @property
    def tool(self) -> str:
        """The emitting pass (``lint`` / ``hipsan`` / ``advise``)."""
        return self.code.split(".", 1)[0]

    @property
    def base(self) -> str:
        """The code without the tool prefix (``redundant-copy``)."""
        return self.code.split(".", 1)[1]


#: Every rule any pass may emit, keyed by full code.
RULES: Dict[str, RuleSpec] = {}


def register_rule(
    code: str, severity: Severity, paper: str, doc: str
) -> RuleSpec:
    """Declare one rule.  Duplicate codes are rejected, and a base code
    shared between tools (``lint.double-free`` / ``hipsan.double-free``)
    must carry one severity everywhere — the collisions the ad-hoc
    per-tool tables used to allow."""
    if code in RULES:
        raise ValueError(f"duplicate rule code {code!r}")
    spec = RuleSpec(code, severity, paper, doc)
    for other in RULES.values():
        if other.base == spec.base and other.severity != severity:
            raise ValueError(
                f"severity collision on base code {spec.base!r}: "
                f"{other.code}={other.severity} vs {code}={severity}"
            )
    RULES[code] = spec
    return spec


def rule_spec(code: str) -> RuleSpec:
    """Look up one rule; unknown codes are a programming error."""
    try:
        return RULES[code]
    except KeyError:
        raise KeyError(
            f"rule {code!r} is not registered in repro.analyze.findings"
        ) from None


def all_rules() -> List[RuleSpec]:
    """Every registered rule, sorted by code (for SARIF rule tables)."""
    return sorted(RULES.values(), key=lambda r: r.code)


# ----------------------------------------------------------------------
# The registry: linter, sanitizer, and advisor rules in one place.
# ----------------------------------------------------------------------

_E, _W, _I = Severity.ERROR, Severity.WARNING, Severity.INFO

# Static linter (repro.analyze.linter).
register_rule("lint.syntax-error", _E, "-", "source file does not parse")
register_rule("lint.unknown-api", _E, "Table 1",
              "hipXxx name the simulated runtime does not provide")
register_rule("lint.deprecated-api", _E, "Table 1",
              "CUDA-era spelling with a modern replacement")
register_rule("lint.double-free", _E, "Section 5.1",
              "the same handle passed to hipFree twice")
register_rule("lint.use-after-free", _E, "Section 5.1",
              "a freed handle used afterwards")
register_rule("lint.free-before-sync", _E, "Section 3.3",
              "hipFree while asynchronous work may still be in flight")
register_rule("lint.missing-sync", _W, "Section 3.3",
              "host access while asynchronous work is pending")
register_rule("lint.leaked-alloc", _W, "Section 5.1",
              "allocation neither freed nor returned by its owner")
register_rule("lint.mixed-model", _W, "Section 3.4",
              "one buffer name rebound across explicit and managed "
              "allocators")

# Dynamic sanitizer (repro.analyze.sanitizer).
register_rule("hipsan.cpu-gpu-race", _E, "Section 3.3",
              "host and GPU touch the same unified bytes unordered")
register_rule("hipsan.unsync-d2h-read", _E, "Section 3.3",
              "host reads bytes a still-pending GPU kernel writes")
register_rule("hipsan.stream-race", _E, "Section 3.3",
              "two streams touch the same bytes unordered")
register_rule("hipsan.memcpy-race", _E, "Section 3.3",
              "an access races an in-flight hipMemcpyAsync")
register_rule("hipsan.use-after-free", _E, "Section 5.1",
              "a buffer touched after hipFree")
register_rule("hipsan.free-in-flight", _E, "Section 5.1",
              "hipFree while work on the buffer may still be executing")
register_rule("hipsan.double-free", _E, "Section 5.1",
              "the same buffer freed twice through hipFree")
register_rule("hipsan.xnack-fatal", _E, "Table 1",
              "GPU access that faults with XNACK disabled")
register_rule("hipsan.fault-storm", _I, "Figs. 7-8 / Section 5.2",
              "a buffer served a large number of GPU page faults")

# Static performance advisor (repro.analyze.advise).
register_rule("advise.syntax-error", _E, "-",
              "source file does not parse")
register_rule("advise.redundant-copy", _W, "Section 4.3 / Fig. 3",
              "hipMemcpy between coherent UPM buffers is pure overhead "
              "on MI300A")
register_rule("advise.first-touch", _W, "Fig. 10",
              "CPU first-touch places pages the GPU later streams "
              "through the CPU fault path")
register_rule("advise.fault-storm", _I, "Figs. 7-8 / Section 5.2",
              "a kernel's first touch of an on-demand allocation "
              "predicts a GPU page-fault storm under XNACK")
register_rule("advise.tlb-reach", _W, "Fig. 9 / Section 5.3",
              "allocation exceeds the modeled GPU TLB reach for its "
              "allocator's fragment size")
register_rule("advise.mixed-alloc", _W, "Section 3.4 / Table 1",
              "explicit and managed allocations flow into one kernel "
              "argument on different paths")
register_rule("advise.sync-in-loop", _W, "Section 3.3",
              "device-wide synchronization inside a loop where a "
              "stream event suffices")


@dataclass(frozen=True)
class Finding:
    """One diagnostic from any analysis pass."""

    rule: str
    severity: Severity
    message: str
    file: Optional[str] = None
    line: Optional[int] = None
    hint: Optional[str] = None
    #: Enclosing function (``Class.method``) for static findings; used
    #: by the per-port bucketing of ``repro advise --apps`` and by the
    #: baseline fingerprints, which must survive line-number drift.
    function: Optional[str] = None
    #: Estimated simulated cost of the anti-pattern (ns), when the
    #: advisor could price it from the calibrated ``repro.hw`` model.
    cost_ns: Optional[float] = None

    @property
    def location(self) -> str:
        """``file:line`` when known, else an empty string."""
        if self.file is None:
            return ""
        if self.line is None:
            return self.file
        return f"{self.file}:{self.line}"


def make_finding(
    code: str,
    message: str,
    *,
    file: Optional[str] = None,
    line: Optional[int] = None,
    hint: Optional[str] = None,
    function: Optional[str] = None,
    cost_ns: Optional[float] = None,
) -> Finding:
    """Build a finding whose severity comes from the rule registry."""
    spec = rule_spec(code)
    return Finding(
        rule=code,
        severity=spec.severity,
        message=message,
        file=file,
        line=line,
        hint=hint,
        function=function,
        cost_ns=cost_ns,
    )


def render_text(findings: Iterable[Finding]) -> str:
    """Human-readable report, one finding per paragraph."""
    lines: List[str] = []
    count = 0
    for f in sorted(findings, key=lambda f: (-int(f.severity), f.rule)):
        count += 1
        loc = f" [{f.location}]" if f.location else ""
        lines.append(f"{f.severity}: {f.rule}{loc}: {f.message}")
        if f.cost_ns:
            lines.append(f"    estimated cost: {f.cost_ns / 1e6:.3g} ms "
                         "(simulated)")
        if f.hint:
            lines.append(f"    hint: {f.hint}")
    lines.append(f"{count} finding(s)")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report (a JSON array)."""
    return json.dumps(
        [
            {
                "rule": f.rule,
                "severity": str(f.severity),
                "message": f.message,
                "file": f.file,
                "line": f.line,
                "hint": f.hint,
                "function": f.function,
                "cost_ns": f.cost_ns,
            }
            for f in findings
        ],
        indent=2,
    )


def has_errors(findings: Iterable[Finding]) -> bool:
    """True when at least one finding is ERROR severity (the CI gate)."""
    return any(f.severity >= Severity.ERROR for f in findings)


def max_severity(findings: Iterable[Finding]) -> Optional[Severity]:
    """The worst severity present, or None for an empty report."""
    worst: Optional[Severity] = None
    for f in findings:
        if worst is None or f.severity > worst:
            worst = f.severity
    return worst
