"""Vector clocks — the happens-before algebra of the sanitizer.

Timelines are the host thread (``"host"``) plus one per HIP stream
(``"s0"``, ``"s1"``, ...).  Asynchronous copies ride their stream's
timeline, so SDMA queues need no separate component: the simulator's
streams *are* its copy queues.

The ordering edges the replay establishes (see
:mod:`repro.analyze.sanitizer`):

* **submission** — any operation enqueued on a stream happens-after
  everything the host did before submitting it;
* **program order** — operations on one timeline are totally ordered;
* **event record/wait** — ``hipEventRecord`` snapshots the recording
  stream's clock; ``hipStreamWaitEvent`` / ``hipEventSynchronize`` join
  that snapshot into the waiter;
* **synchronisation** — ``hipStreamSynchronize`` joins the stream into
  the host; ``hipDeviceSynchronize`` joins every stream.

Two accesses race iff neither's clock is ≤ the other's — with the
standard optimisation that an access A on timeline *t* happens-before a
later access B iff ``A.clock[t] <= B.clock[t]``.
"""

from __future__ import annotations

from typing import Dict


class VectorClock:
    """A sparse vector clock over timeline names."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Dict[str, int] | None = None) -> None:
        self._counts: Dict[str, int] = dict(counts) if counts else {}

    def tick(self, timeline: str) -> None:
        """Advance this clock's own component."""
        self._counts[timeline] = self._counts.get(timeline, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Component-wise maximum (merge knowledge from *other*)."""
        for timeline, count in other._counts.items():
            if count > self._counts.get(timeline, 0):
                self._counts[timeline] = count

    def copy(self) -> "VectorClock":
        """An independent snapshot."""
        return VectorClock(self._counts)

    def get(self, timeline: str) -> int:
        """This clock's knowledge of *timeline* (0 when never seen)."""
        return self._counts.get(timeline, 0)

    def __le__(self, other: "VectorClock") -> bool:
        """Componentwise ≤: self happens-before-or-equals other."""
        return all(
            count <= other._counts.get(timeline, 0)
            for timeline, count in self._counts.items()
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}:{c}" for t, c in sorted(self._counts.items()))
        return f"VC({inner})"


def ordered_before(
    clock: VectorClock, timeline: str, later: VectorClock
) -> bool:
    """Did an access stamped (*clock*, on *timeline*) happen-before an
    access stamped *later*?

    Uses the own-component shortcut: the earlier access's tick on its
    own timeline must be visible to the later clock.  Every access ticks
    its timeline before being stamped, so ``clock.get(timeline) >= 1``.
    """
    own = clock.get(timeline)
    if own > 0:
        return own <= later.get(timeline)
    return clock <= later
