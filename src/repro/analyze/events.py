"""Structured runtime event log — the sanitizer's instrumentation layer.

When an :class:`~repro.runtime.apu.APU` is built with ``trace=True`` it
owns one :class:`EventLog`; the memory manager, the fault handler, the
stream registry, the kernel engine, and the HIP copy/sync entry points
all emit :class:`RuntimeEvent` records into it.  The log is an append-
only list ordered by *host issue order* — exactly the order the program
submitted work in — which is what the happens-before replay in
:mod:`repro.analyze.sanitizer` consumes.

Buffers and events are identified by small stable uids (``b0``,
``b1``, ... / ``e0``, ...) assigned at first sight, so the log never
holds references to live runtime objects and survives frees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class RuntimeEvent:
    """One instrumented runtime action."""

    seq: int
    kind: str
    t_ns: float
    data: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        payload = ", ".join(f"{k}={v!r}" for k, v in self.data.items())
        return f"RuntimeEvent({self.seq}, {self.kind}, t={self.t_ns:.0f}, {payload})"


class EventLog:
    """Append-only log of runtime events plus the uid registries."""

    def __init__(self, clock) -> None:
        self._clock = clock
        self.events: List[RuntimeEvent] = []
        self._buffer_uids: Dict[int, str] = {}  # id(Allocation) -> uid
        self._vma_uids: Dict[int, str] = {}  # id(VMA) -> uid
        self._event_uids: Dict[int, str] = {}  # id(Event) -> uid
        self._next_buffer = 0
        self._next_event = 0

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def emit(self, kind: str, **data: Any) -> RuntimeEvent:
        """Append one event stamped with the current simulated time."""
        event = RuntimeEvent(len(self.events), kind, self._clock.now_ns, data)
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # Identity registries
    # ------------------------------------------------------------------

    def register_buffer(self, allocation, fresh: bool = False) -> str:
        """The uid of *allocation*, assigning a new one when *fresh*.

        ``fresh=True`` is used at allocation time so that a recycled
        Python object id (or address) never aliases a previous buffer's
        history.
        """
        key = id(allocation)
        if fresh or key not in self._buffer_uids:
            uid = f"b{self._next_buffer}"
            self._next_buffer += 1
            self._buffer_uids[key] = uid
            self._vma_uids[id(allocation.vma)] = uid
        return self._buffer_uids[key]

    def buffer_uid(self, allocation) -> str:
        """The uid of a previously seen allocation (lazily assigned)."""
        return self.register_buffer(allocation, fresh=False)

    def buffer_for_vma(self, vma) -> Optional[str]:
        """Map a VMA back to its buffer uid (None for untracked VMAs)."""
        return self._vma_uids.get(id(vma))

    def event_uid(self, event) -> str:
        """The uid of a HIP event object (lazily assigned)."""
        key = id(event)
        if key not in self._event_uids:
            self._event_uids[key] = f"e{self._next_event}"
            self._next_event += 1
        return self._event_uids[key]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
