"""hipsan — the dynamic happens-before sanitizer.

Replays the :class:`~repro.analyze.events.EventLog` a traced runtime
produced, maintaining one :class:`~repro.analyze.hb.VectorClock` per
timeline (host + each stream) and a per-buffer access history, and
reports the paper's porting hazards as :class:`Finding` records:

* ``hipsan.cpu-gpu-race`` — host and GPU touch the same unified bytes
  with no happens-before edge (Section 3.3, Concurrent CPU-GPU Access);
* ``hipsan.unsync-d2h-read`` — the host reads bytes a still-pending GPU
  kernel writes (the classic missing ``hipDeviceSynchronize``);
* ``hipsan.stream-race`` — two streams touch the same bytes unordered;
* ``hipsan.memcpy-race`` — an access races an in-flight
  ``hipMemcpyAsync``;
* ``hipsan.use-after-free`` / ``hipsan.free-in-flight`` /
  ``hipsan.double-free`` — lifetime violations through ``hipFree``;
* ``hipsan.xnack-fatal`` — a GPU access that faulted on an unmapped
  page with XNACK disabled (fatal on real hardware);
* ``hipsan.fault-storm`` (info) — a buffer that served a large number
  of GPU page faults; the paper's fix is CPU pre-faulting
  (Section 5.2).

Pageable-copy semantics: ``hipMemcpyAsync`` to or from *pageable*
(unpinned) memory behaves synchronously on the host side — the runtime
stages the pageable range before returning, so that side's access is
attributed to the host timeline at issue.  Only pinned-side accesses
ride the stream, which is what makes the classic overlapped
``h_frame``-prep / async-H2D pipeline legal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .events import EventLog, RuntimeEvent
from .findings import Finding, make_finding
from .hb import VectorClock, ordered_before

#: GPU-faulted pages on one buffer that qualify as a fault storm (info).
GPU_FAULT_STORM_PAGES = 1024

HOST = "host"


@dataclass
class Access:
    """One recorded access to a buffer on one timeline."""

    timeline: str
    clock: VectorClock
    is_write: bool
    is_read: bool
    lo: int
    hi: int
    op: str  # gpu_kernel | cpu_kernel | memcpy | memcpy_async
    label: str

    def overlaps(self, other: "Access") -> bool:
        return self.lo < other.hi and other.lo < self.hi


@dataclass
class BufferState:
    """Replay-time state of one allocation."""

    uid: str
    name: str
    kind: str
    size: int
    pinned: bool
    on_demand: bool
    alive: bool = True
    #: keyed (timeline, is_write, lo, hi); replacement is sound because
    #: same-timeline clocks are monotone, so any edge ordering the newer
    #: access also orders the older one.
    accesses: Dict[Tuple[str, bool, int, int], Access] = field(
        default_factory=dict
    )
    gpu_fault_pages: int = 0

    def describe(self) -> str:
        return f"{self.uid} ({self.name!r}, {self.kind}, {self.size} B)"


class Sanitizer:
    """Replays one event log and accumulates findings."""

    def __init__(self) -> None:
        self._clocks: Dict[str, VectorClock] = {HOST: VectorClock()}
        self._event_clocks: Dict[str, VectorClock] = {}
        self._buffers: Dict[str, BufferState] = {}
        self._findings: List[Finding] = []
        self._seen: Set[Tuple] = set()

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, events: Iterable[RuntimeEvent]) -> List[Finding]:
        """Replay *events* and return the finding list."""
        for event in events:
            handler = getattr(self, f"_on_{event.kind}", None)
            if handler is not None:
                handler(event)
        self._flush_fault_storms()
        return self._findings

    def _stream(self, uid: str) -> VectorClock:
        if uid not in self._clocks:
            self._clocks[uid] = VectorClock()
        return self._clocks[uid]

    @property
    def _host(self) -> VectorClock:
        return self._clocks[HOST]

    def _report(self, key: Tuple, finding: Finding) -> None:
        if key in self._seen:
            return
        self._seen.add(key)
        self._findings.append(finding)

    # ------------------------------------------------------------------
    # Lifetime events
    # ------------------------------------------------------------------

    def _on_alloc(self, event: RuntimeEvent) -> None:
        d = event.data
        self._host.tick(HOST)
        self._buffers[d["buffer"]] = BufferState(
            uid=d["buffer"],
            name=d.get("name", ""),
            kind=d.get("allocator", "?"),
            size=d.get("size", 0),
            pinned=bool(d.get("pinned", False)),
            on_demand=bool(d.get("on_demand", False)),
        )

    def _on_pin(self, event: RuntimeEvent) -> None:
        self._host.tick(HOST)
        state = self._buffers.get(event.data["buffer"])
        if state is not None:
            state.pinned = True
            state.on_demand = False

    def _on_free(self, event: RuntimeEvent) -> None:
        self._host.tick(HOST)
        state = self._buffers.get(event.data["buffer"])
        if state is None:
            return
        if not state.alive:
            self._report(
                ("hipsan.double-free", state.uid),
                make_finding(
                    "hipsan.double-free",
                    f"buffer {state.describe()} freed twice through hipFree",
                    hint="free each allocation exactly once; clear the "
                    "handle after the first hipFree",
                ),
            )
            return
        for access in state.accesses.values():
            if access.timeline == HOST:
                continue
            if ordered_before(access.clock, access.timeline, self._host):
                continue
            self._report(
                ("hipsan.free-in-flight", state.uid, access.label),
                make_finding(
                    "hipsan.free-in-flight",
                    f"buffer {state.describe()} freed while {access.label} "
                    "may still be executing",
                    hint="synchronize the stream (hipStreamSynchronize / "
                    "hipDeviceSynchronize) before hipFree",
                ),
            )
        state.alive = False

    # ------------------------------------------------------------------
    # Work events
    # ------------------------------------------------------------------

    def _on_kernel(self, event: RuntimeEvent) -> None:
        d = event.data
        name = d.get("name", "?")
        if d.get("device") == "gpu":
            stream = d.get("stream") or "s0"
            clock = self._stream(stream)
            self._host.tick(HOST)
            clock.join(self._host)  # submission edge
            clock.tick(stream)
            stamp = clock.copy()
            timeline, op = stream, "gpu_kernel"
            label = f"GPU kernel {name!r} on {stream}"
        else:
            self._host.tick(HOST)
            stamp = self._host.copy()
            timeline, op = HOST, "cpu_kernel"
            label = f"CPU kernel {name!r}"
        for access in d.get("accesses", ()):
            mode = access.get("mode", "read")
            lo = access.get("offset", 0)
            self._record(
                access["buffer"],
                Access(
                    timeline=timeline,
                    clock=stamp,
                    is_write=mode in ("write", "readwrite"),
                    is_read=mode in ("read", "readwrite"),
                    lo=lo,
                    hi=lo + access.get("size", 0),
                    op=op,
                    label=label,
                ),
            )

    def _on_memcpy(self, event: RuntimeEvent) -> None:
        d = event.data
        nbytes = d.get("nbytes", 0)
        self._host.tick(HOST)
        if d.get("is_async"):
            stream = d.get("stream") or "s0"
            clock = self._stream(stream)
            clock.join(self._host)  # submission edge
            clock.tick(stream)
            stream_stamp = clock.copy()
        else:
            stream = None
            stream_stamp = None
        host_stamp = self._host.copy()
        for side, mode in (("src", "read"), ("dst", "write")):
            uid = d.get(side)
            if uid is None:
                continue
            lo = d.get(f"{side}_offset", 0)
            state = self._buffers.get(uid)
            pinned = state.pinned if state is not None else True
            if stream_stamp is not None and pinned:
                timeline, stamp, op = stream, stream_stamp, "memcpy_async"
                label = f"hipMemcpyAsync on {stream} ({mode} {uid})"
            elif stream_stamp is not None:
                # Pageable side of an async copy: staged synchronously.
                timeline, stamp, op = HOST, host_stamp, "memcpy"
                label = f"hipMemcpyAsync pageable staging ({mode} {uid})"
            else:
                timeline, stamp, op = HOST, host_stamp, "memcpy"
                label = f"hipMemcpy ({mode} {uid})"
            self._record(
                uid,
                Access(
                    timeline=timeline,
                    clock=stamp,
                    is_write=(mode == "write"),
                    is_read=(mode == "read"),
                    lo=lo,
                    hi=lo + nbytes,
                    op=op,
                    label=label,
                ),
            )

    # ------------------------------------------------------------------
    # Ordering events
    # ------------------------------------------------------------------

    def _on_event_record(self, event: RuntimeEvent) -> None:
        d = event.data
        self._host.tick(HOST)
        clock = self._stream(d["stream"])
        clock.join(self._host)  # the record marker is submitted by the host
        self._event_clocks[d["event"]] = clock.copy()

    def _on_event_wait(self, event: RuntimeEvent) -> None:
        d = event.data
        self._host.tick(HOST)
        clock = self._stream(d["stream"])
        clock.join(self._host)
        recorded = self._event_clocks.get(d["event"])
        if recorded is not None:
            clock.join(recorded)

    def _on_event_host_sync(self, event: RuntimeEvent) -> None:
        self._host.tick(HOST)
        recorded = self._event_clocks.get(event.data["event"])
        if recorded is not None:
            self._host.join(recorded)

    def _on_stream_sync(self, event: RuntimeEvent) -> None:
        self._host.tick(HOST)
        self._host.join(self._stream(event.data["stream"]))

    def _on_device_sync(self, event: RuntimeEvent) -> None:
        self._host.tick(HOST)
        for uid, clock in self._clocks.items():
            if uid != HOST:
                self._host.join(clock)

    # ------------------------------------------------------------------
    # Fault events
    # ------------------------------------------------------------------

    def _on_fault(self, event: RuntimeEvent) -> None:
        d = event.data
        if d.get("device") != "gpu":
            return
        state = self._buffers.get(d.get("buffer"))
        if state is not None:
            state.gpu_fault_pages += d.get("gpu_major", 0) + d.get(
                "gpu_minor", 0
            )

    def _on_fatal_gpu_access(self, event: RuntimeEvent) -> None:
        d = event.data
        name = d.get("name") or d.get("buffer") or "memory"
        self._report(
            ("hipsan.xnack-fatal", name, d.get("reason")),
            make_finding(
                "hipsan.xnack-fatal",
                f"GPU access to {name!r} is fatal: {d.get('reason', '?')}",
                hint="run with HSA_XNACK=1 or allocate the buffer with a "
                "GPU-mapped allocator (hipMalloc / hipHostMalloc / "
                "hipMallocManaged)",
            ),
        )

    def _flush_fault_storms(self) -> None:
        for state in self._buffers.values():
            if state.gpu_fault_pages >= GPU_FAULT_STORM_PAGES:
                self._report(
                    ("hipsan.fault-storm", state.uid),
                    make_finding(
                        "hipsan.fault-storm",
                        f"buffer {state.describe()} served "
                        f"{state.gpu_fault_pages} GPU page faults",
                        hint="pre-fault from the CPU before the first GPU "
                        "touch (Section 5.2), or allocate up-front",
                    ),
                )

    # ------------------------------------------------------------------
    # Race detection
    # ------------------------------------------------------------------

    def _record(self, uid: str, access: Access) -> None:
        state = self._buffers.get(uid)
        if state is None:
            return
        if not state.alive:
            self._report(
                ("hipsan.use-after-free", uid, access.label),
                make_finding(
                    "hipsan.use-after-free",
                    f"{access.label} touches buffer {state.describe()} "
                    "after hipFree",
                    hint="move the hipFree after the last use, or extend "
                    "the buffer's lifetime",
                ),
            )
        for prev in state.accesses.values():
            if not (prev.is_write or access.is_write):
                continue
            if not prev.overlaps(access):
                continue
            if prev.timeline == access.timeline:
                continue  # program order
            if ordered_before(prev.clock, prev.timeline, access.clock):
                continue
            self._report_race(state, prev, access)
        key = (access.timeline, access.is_write, access.lo, access.hi)
        state.accesses[key] = access

    def _report_race(
        self, state: BufferState, prev: Access, access: Access
    ) -> None:
        if "memcpy_async" in (prev.op, access.op):
            rule = "hipsan.memcpy-race"
            hint = (
                "order the access against the copy with "
                "hipStreamSynchronize or a stream event"
            )
        elif HOST in (prev.timeline, access.timeline):
            host_acc = prev if prev.timeline == HOST else access
            gpu_acc = access if host_acc is prev else prev
            if not host_acc.is_write and gpu_acc.is_write:
                rule = "hipsan.unsync-d2h-read"
                hint = (
                    "synchronize (hipDeviceSynchronize / "
                    "hipStreamSynchronize) before reading GPU results on "
                    "the host"
                )
            else:
                rule = "hipsan.cpu-gpu-race"
                hint = (
                    "separate CPU and GPU phases with synchronization, or "
                    "double-buffer with stream events (Section 3.3)"
                )
        else:
            rule = "hipsan.stream-race"
            hint = (
                "order the streams with hipEventRecord / "
                "hipStreamWaitEvent"
            )
        overlap_lo = max(prev.lo, access.lo)
        overlap_hi = min(prev.hi, access.hi)
        self._report(
            (rule, state.uid, prev.label, access.label),
            make_finding(
                rule,
                f"buffer {state.describe()}: {access.label} is unordered "
                f"with {prev.label} over bytes "
                f"[{overlap_lo}, {overlap_hi})",
                hint=hint,
            ),
        )


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


def analyze_log(log: EventLog | Iterable[RuntimeEvent]) -> List[Finding]:
    """Run the sanitizer over one event log."""
    return Sanitizer().run(iter(log))


def analyze_runtime(runtime) -> List[Finding]:
    """Run the sanitizer over a traced :class:`HipRuntime`."""
    trace = runtime.apu.trace
    if trace is None:
        raise ValueError(
            "runtime was not built with trace=True; use "
            "make_runtime(..., trace=True)"
        )
    return analyze_log(trace)


#: Reduced problem sizes for the app regression sweep (same scale as the
#: tier-1 app tests, so `repro analyze` stays interactive).
SMALL_PARAMS: Dict[str, Dict[str, int]] = {
    "backprop": {"input_units": 1 << 16},
    "dwt2d": {"dim": 1024, "levels": 2},
    "heartwall": {"frame_dim": 256, "frames": 6, "points": 16},
    "hotspot": {"grid": 256, "iterations": 10},
    "nn": {"records": 1 << 18, "k": 4},
    "srad_v1": {"dim": 256, "iterations": 6},
}


def analyze_app(
    name: str,
    variant: str,
    params: Optional[Dict[str, int]] = None,
    memory_gib: Optional[int] = 8,
) -> List[Finding]:
    """Run one Rodinia port under tracing and sanitize its log."""
    from ..apps import ALL_APPS  # lazy: apps import the runtime

    app = ALL_APPS[name]()
    if params is None:
        params = SMALL_PARAMS.get(name)
    app.run(variant, memory_gib=memory_gib, params=params, trace=True)
    if app.last_trace is None:
        raise RuntimeError(f"{name} did not record a trace")
    return analyze_log(app.last_trace)
