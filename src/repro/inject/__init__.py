"""repro.inject — deterministic fault injection and the chaos harness.

:class:`InjectionPlan` composes seeded :class:`Injector` descriptors
over the simulator's instrumented fault sites;
:mod:`~repro.inject.campaigns` names reusable recipes;
:mod:`~repro.inject.chaos` runs applications under them and checks the
post-run invariants of :mod:`~repro.inject.invariants`.
"""

from .campaigns import CAMPAIGNS, Campaign, get_campaign
from .chaos import (
    CHAOS_MEMORY_GIB,
    QUICK_APPS,
    derive_seed,
    report_bytes,
    run_campaign,
    run_one,
)
from .invariants import check_invariants, vma_problems
from .plan import (
    AddressRange,
    Always,
    CallWindow,
    Injection,
    InjectionPlan,
    Injector,
    NthCall,
    Phase,
    Probability,
    Trigger,
)

__all__ = [
    "AddressRange",
    "Always",
    "CAMPAIGNS",
    "CHAOS_MEMORY_GIB",
    "CallWindow",
    "Campaign",
    "Injection",
    "InjectionPlan",
    "Injector",
    "NthCall",
    "Phase",
    "Probability",
    "QUICK_APPS",
    "Trigger",
    "check_invariants",
    "derive_seed",
    "get_campaign",
    "report_bytes",
    "run_campaign",
    "run_one",
    "vma_problems",
]
