"""Seeded, deterministic fault injection over the simulated APU.

A :class:`InjectionPlan` is a list of :class:`Injector` descriptors —
each naming a *site* (an instrumented hook point inside the simulator),
a fault *kind* the site understands, a :class:`Trigger` predicate, and a
fire budget.  The subsystems consult their attached plan at every hook
point (``plan.fire(site, **context)``); when an injector matches, the
site receives a fault descriptor and reacts the way the corresponding
hardware/driver failure would:

========================  ==============================================
Site                      Kinds
========================  ==============================================
``physical.alloc``        ``transient`` (allocation fails, retryable),
                          ``pressure`` (fragment the free list)
``hbm.ecc``               ``correctable`` (scrub latency),
                          ``uncorrectable`` (poisoned access, fatal)
``sdma.transfer``         ``stall`` (engine runs slow), ``failure``
                          (retryable on the blit path), ``abort`` (fatal)
``xnack.retry``           ``drop`` (one replay is lost and re-retried)
``xnack.storm``           ``storm`` (fault replays multiply)
``tlb.shootdown``         ``delay`` (invalidation lands N accesses late)
========================  ==============================================

Determinism: probability triggers draw from the plan's own seeded PRNG
and every journal record is stamped with *simulated* time only, so the
same (plan, seed, workload) triple always produces a byte-identical
journal — the property the chaos harness's replay check enforces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


def _jsonable(value: Any) -> Any:
    """Coerce context values (numpy scalars included) to JSON types."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


# ----------------------------------------------------------------------
# Trigger predicates
# ----------------------------------------------------------------------


class Trigger:
    """When an injector fires: a pure predicate over the call stream."""

    def decide(
        self, call_index: int, rng: random.Random, context: Dict[str, Any]
    ) -> bool:
        """Whether to fire on this call (1-based *call_index* per site)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Stable journal label for this trigger."""
        raise NotImplementedError


@dataclass(frozen=True)
class Always(Trigger):
    """Fire on every call (bounded only by the injector's fire budget)."""

    def decide(self, call_index, rng, context) -> bool:
        return True

    def describe(self) -> str:
        return "always"


@dataclass(frozen=True)
class NthCall(Trigger):
    """Fire exactly on the *n*-th call to the site (1-based)."""

    n: int

    def decide(self, call_index, rng, context) -> bool:
        return call_index == self.n

    def describe(self) -> str:
        return f"nth-call({self.n})"


@dataclass(frozen=True)
class CallWindow(Trigger):
    """Fire on every call with index in the half-open window ``[lo, hi)``."""

    lo: int
    hi: int

    def decide(self, call_index, rng, context) -> bool:
        return self.lo <= call_index < self.hi

    def describe(self) -> str:
        return f"call-window[{self.lo},{self.hi})"


@dataclass(frozen=True)
class Probability(Trigger):
    """Fire with probability *p* per call, drawn from the plan's PRNG."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.p}")

    def decide(self, call_index, rng, context) -> bool:
        return rng.random() < self.p

    def describe(self) -> str:
        return f"probability({self.p})"


@dataclass(frozen=True)
class AddressRange(Trigger):
    """Fire when the site's faulting address lies in ``[lo, hi)``.

    Sites that operate on virtual ranges pass ``address=`` in their fire
    context; sites without an address never match this trigger.
    """

    lo: int
    hi: int

    def decide(self, call_index, rng, context) -> bool:
        address = context.get("address")
        if address is None:
            return False
        return self.lo <= int(address) < self.hi

    def describe(self) -> str:
        return f"address-range[{self.lo:#x},{self.hi:#x})"


@dataclass(frozen=True)
class Phase(Trigger):
    """Fire only while the plan's current phase equals *name*.

    Workloads (or harnesses) mark phases with
    :meth:`InjectionPlan.set_phase`; the chaos harness leaves the phase
    unset, so phase triggers are an application-side scoping tool.
    """

    name: str

    def decide(self, call_index, rng, context) -> bool:
        return context.get("phase") == self.name

    def describe(self) -> str:
        return f"phase({self.name})"


# ----------------------------------------------------------------------
# Injectors and the plan
# ----------------------------------------------------------------------


@dataclass
class Injector:
    """One composable fault source: site + kind + trigger + budget."""

    site: str
    kind: str
    trigger: Trigger = field(default_factory=Always)
    times: int = 1
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.times <= 0:
            raise ValueError(f"times must be positive, got {self.times}")


@dataclass(frozen=True)
class Injection:
    """A fired fault, handed to the hook site that asked."""

    seq: int
    site: str
    kind: str
    params: Dict[str, Any]


class InjectionPlan:
    """A seeded set of injectors plus the journal of what fired.

    The plan is single-use: attach it to one APU (``make_apu(...,
    inject=plan)`` does this), run the workload, then read
    :attr:`journal` / :meth:`journal_payload`.  ``teardown()`` releases
    any outstanding injected state (fragmentation-pressure frames) so
    leak invariants can be checked afterwards.
    """

    def __init__(
        self,
        injectors: Sequence[Injector] = (),
        seed: int = 0,
        name: str = "",
    ) -> None:
        self.injectors: List[Injector] = list(injectors)
        self.seed = int(seed)
        self.name = name
        self.apu = None  # set by attach()
        self.journal: List[Dict[str, Any]] = []
        self.phase: Optional[str] = None
        self._rng = random.Random(self.seed)
        self._calls: Dict[str, int] = {}
        self._fires: Dict[int, int] = {}  # id(injector) -> times fired

    # -- wiring ---------------------------------------------------------

    def attach(self, apu) -> None:
        """Bind this plan to one APU: hook every instrumented subsystem."""
        if self.apu is not None and self.apu is not apu:
            raise RuntimeError(
                "InjectionPlan is single-use: already attached to an APU"
            )
        self.apu = apu
        apu.physical.inject = self
        apu.faults.inject = self
        apu.hbm_map.inject = self

    def set_phase(self, name: Optional[str]) -> None:
        """Enter a named workload phase (scopes :class:`Phase` triggers)."""
        self.phase = name

    # -- firing ---------------------------------------------------------

    def fire(self, site: str, **context: Any) -> Optional[Injection]:
        """Consult the plan at a hook point; at most one injector fires.

        Returns the fired :class:`Injection` (recorded in the journal)
        or None.  Injectors are evaluated in plan order, so composing a
        one-shot ``NthCall`` ahead of a ``Probability`` background rate
        behaves predictably.
        """
        index = self._calls.get(site, 0) + 1
        self._calls[site] = index
        context.setdefault("phase", self.phase)
        for injector in self.injectors:
            if injector.site != site:
                continue
            fired = self._fires.get(id(injector), 0)
            if fired >= injector.times:
                continue
            if not injector.trigger.decide(index, self._rng, context):
                continue
            self._fires[id(injector)] = fired + 1
            injection = Injection(
                seq=len(self.journal), site=site, kind=injector.kind,
                params=dict(injector.params),
            )
            self._record(
                "inject", f"{site}:{injector.kind}",
                call=index,
                trigger=injector.trigger.describe(),
                params={k: _jsonable(v) for k, v in injector.params.items()},
                context={
                    k: _jsonable(v)
                    for k, v in sorted(context.items())
                    if k != "phase" or v is not None
                },
            )
            return injection
        return None

    def note(self, event: str, **data: Any) -> None:
        """Journal a recovery/degradation event observed at a site."""
        self._record("note", event, **{
            k: _jsonable(v) for k, v in data.items()
        })

    def _record(self, record_type: str, event: str, **data: Any) -> None:
        entry: Dict[str, Any] = {
            "seq": len(self.journal),
            "type": record_type,
            "event": event,
            "t_ns": self.apu.clock.now_ns if self.apu is not None else None,
        }
        entry.update(data)
        self.journal.append(entry)

    # -- inspection / lifecycle -----------------------------------------

    def calls(self, site: str) -> int:
        """How many times *site* consulted the plan."""
        return self._calls.get(site, 0)

    def fired(self, site: Optional[str] = None) -> int:
        """Number of injected faults (optionally for one site)."""
        return sum(
            1 for entry in self.journal
            if entry["type"] == "inject"
            and (site is None or entry["event"].startswith(site + ":"))
        )

    def notes(self, event: Optional[str] = None) -> List[Dict[str, Any]]:
        """Journaled recovery/degradation notes (optionally one event)."""
        return [
            entry for entry in self.journal
            if entry["type"] == "note"
            and (event is None or entry["event"] == event)
        ]

    def journal_payload(self) -> List[Dict[str, Any]]:
        """The journal as a JSON-ready list (already JSON-typed)."""
        return [dict(entry) for entry in self.journal]

    def teardown(self) -> int:
        """Release injected state still held; returns reclaimed frames.

        Today that is fragmentation-pressure frames; recoverable faults
        clean up after themselves at their sites.
        """
        if self.apu is None:
            return 0
        reclaimed = self.apu.physical.release_pressure()
        if reclaimed:
            self.note("teardown.release-pressure", reclaimed_frames=reclaimed)
        return reclaimed

    def __repr__(self) -> str:
        return (
            f"InjectionPlan({self.name or 'anonymous'}, seed={self.seed}, "
            f"{len(self.injectors)} injector(s), {self.fired()} fired)"
        )
