"""Post-run invariant checks the chaos harness enforces.

After a workload completes (or fails) under fault injection, the
simulator must be back in a consistent state: no physical frame may be
owned by nothing, the free bitmap must agree with the free counter, no
frame may back two pages, and the page tables must agree with the HMM
mirror's view of residency.  Each check returns human-readable problem
strings; an empty list means the invariant holds.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.page import NO_FRAME


def vma_problems(vma) -> List[str]:
    """Page-table/HMM-mirror consistency problems of one live VMA.

    A page marked present in either table must have a physical frame
    (the mirror never maps a frame-less page), and a GPU PTE's fragment
    exponent is only meaningful — and only allowed — where the GPU
    table actually has the page.
    """
    problems: List[str] = []
    label = vma.name or f"{vma.start:#x}"
    has_frame = vma.frames != NO_FRAME
    sys_broken = int((vma.sys_valid & ~has_frame).sum())
    if sys_broken:
        problems.append(
            f"VMA {label}: {sys_broken} page(s) present in the system "
            "table without a physical frame"
        )
    gpu_broken = int((vma.gpu_valid & ~has_frame).sum())
    if gpu_broken:
        problems.append(
            f"VMA {label}: {gpu_broken} page(s) present in the GPU "
            "table without a physical frame"
        )
    stray_fragment = int(((vma.fragment != 0) & ~vma.gpu_valid).sum())
    if stray_fragment:
        problems.append(
            f"VMA {label}: {stray_fragment} fragment exponent(s) on "
            "pages absent from the GPU table"
        )
    return problems


def check_invariants(apu, expect_quiescent: bool = True) -> List[str]:
    """All simulator consistency problems visible on *apu* right now.

    With *expect_quiescent* (the post-run default), live allocations
    and still-claimed frames are themselves violations — the workload
    teardown and the plan's own teardown must have returned everything.
    With it False, the accounting checks still run (every claimed frame
    must be owned by a VMA or by injected pressure; no double mapping)
    but live buffers are legal — usable mid-run.
    """
    problems: List[str] = list(apu.physical.audit() if expect_quiescent else [])
    if not expect_quiescent:
        # The pool audit flags outstanding pressure, which is legal
        # mid-run; keep only the bitmap-vs-counter check.
        problems = [p for p in apu.physical.audit() if "pressure" not in p]

    if expect_quiescent and apu.memory.allocations:
        names = ", ".join(
            a.vma.name or hex(a.address) for a in apu.memory.allocations[:5]
        )
        problems.append(
            f"{len(apu.memory.allocations)} allocation(s) still live "
            f"after teardown ({names})"
        )
    if expect_quiescent and len(apu.address_space):
        problems.append(
            f"{len(apu.address_space)} VMA(s) still mapped after teardown"
        )

    mapped: List[np.ndarray] = []
    for vma in apu.address_space:
        problems.extend(vma_problems(vma))
        frames = vma.resident_frames()
        if frames.size:
            mapped.append(frames)
    all_mapped = (
        np.concatenate(mapped) if mapped else np.empty(0, dtype=np.int64)
    )
    if all_mapped.size != np.unique(all_mapped).size:
        problems.append("a physical frame backs more than one page")
    marked_free = [int(f) for f in all_mapped if apu.physical.is_free(int(f))]
    if marked_free:
        problems.append(
            f"{len(marked_free)} mapped frame(s) marked free in the pool "
            f"(e.g. frame {marked_free[0]})"
        )

    used = apu.physical.total_frames - apu.physical.free_frames
    leaked = used - int(all_mapped.size) - apu.physical.pressure_frames
    if leaked:
        problems.append(
            f"{leaked} physical frame(s) claimed but owned by no VMA "
            "(leaked)"
        )
    return problems
