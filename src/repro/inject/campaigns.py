"""Named injection campaigns for the chaos harness.

A :class:`Campaign` is a reusable recipe: a factory producing a fresh
injector list (injectors carry mutable fire budgets, so plans must not
share them) plus the contract the harness asserts afterwards.  For a
*recoverable* campaign the runtime's hardening must absorb every fault
— the app completes with the correct output and nothing leaks.  For a
*non-recoverable* campaign the run is expected to fail, but it must
fail **cleanly**: a typed error, and still no leaked frames once the
harness teardown runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .plan import (
    Always,
    CallWindow,
    Injector,
    InjectionPlan,
    NthCall,
    Probability,
)


@dataclass(frozen=True)
class Campaign:
    """A named, reusable fault-injection recipe."""

    name: str
    description: str
    recoverable: bool
    build: Callable[[], List[Injector]]

    def plan(self, seed: int) -> InjectionPlan:
        """A fresh single-use plan for one run under this campaign."""
        return InjectionPlan(self.build(), seed=seed, name=self.name)


def _standard() -> List[Injector]:
    # A mix of every recoverable fault class: transient allocation
    # failures early in the allocation stream, one fragmentation-pressure
    # hit, a background rate of correctable ECC errors, one slow and one
    # failed SDMA transfer, a few dropped XNACK replays, one retry
    # storm, and one delayed TLB shootdown.
    return [
        Injector("physical.alloc", "transient", CallWindow(2, 4), times=2),
        Injector(
            "physical.alloc", "pressure", NthCall(6),
            params={"fraction": 0.3},
        ),
        Injector(
            "hbm.ecc", "correctable", Probability(0.05), times=3,
            params={"count": 2},
        ),
        Injector("sdma.transfer", "stall", NthCall(1), params={"factor": 6.0}),
        Injector("sdma.transfer", "failure", NthCall(3)),
        Injector("xnack.retry", "drop", CallWindow(1, 4), times=3),
        Injector("xnack.storm", "storm", NthCall(2), params={"factor": 4.0}),
        Injector(
            "tlb.shootdown", "delay", NthCall(1),
            params={"delay_accesses": 4},
        ),
    ]


def _oom_pressure() -> List[Injector]:
    # Memory-pressure focus: the free list fragments before the first
    # allocation (forcing a genuine defragment-then-retry for chunked
    # allocators) and transient failures pile onto the next calls.  The
    # burst stays within the bounded retry budgets — a recoverable
    # campaign must be survivable by design.
    return [
        Injector(
            "physical.alloc", "pressure", NthCall(1),
            params={"fraction": 0.6},
        ),
        Injector("physical.alloc", "transient", CallWindow(2, 5), times=3),
    ]


def _ecc_fatal() -> List[Injector]:
    # One uncorrectable HBM frame error during the second GPU kernel
    # access: the launch must abort with hipErrorECCNotCorrectable.
    return [Injector("hbm.ecc", "uncorrectable", NthCall(2))]


def _xnack_exhaustion() -> List[Injector]:
    # Drop every XNACK replay: the bounded retry loop must escalate to
    # the fatal path instead of spinning forever.  Only bites variants
    # that actually take GPU faults (XNACK-dependent unified ports).
    return [Injector("xnack.retry", "drop", Always(), times=1000)]


def _sdma_abort() -> List[Injector]:
    # A non-retryable engine hang on the first SDMA transfer: surfaces
    # as hipErrorUnknown (explicit, memcpy-using variants only).
    return [Injector("sdma.transfer", "abort", NthCall(1))]


#: Registry of named campaigns (``repro chaos --campaign <name>``).
CAMPAIGNS: Dict[str, Campaign] = {
    campaign.name: campaign
    for campaign in (
        Campaign(
            "standard",
            "every recoverable fault class at low intensity",
            recoverable=True,
            build=_standard,
        ),
        Campaign(
            "oom-pressure",
            "fragmentation pressure plus transient allocation failures",
            recoverable=True,
            build=_oom_pressure,
        ),
        Campaign(
            "ecc-fatal",
            "an uncorrectable HBM error mid-kernel (expected clean failure)",
            recoverable=False,
            build=_ecc_fatal,
        ),
        Campaign(
            "xnack-exhaustion",
            "all XNACK replays dropped until the retry limit trips",
            recoverable=False,
            build=_xnack_exhaustion,
        ),
        Campaign(
            "sdma-abort",
            "a non-retryable SDMA engine hang on the first copy",
            recoverable=False,
            build=_sdma_abort,
        ),
    )
}


def get_campaign(name: str) -> Campaign:
    """Look up a campaign by name (helpful error on a miss)."""
    try:
        return CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGNS))
        raise KeyError(f"unknown campaign {name!r}; known: {known}") from None
