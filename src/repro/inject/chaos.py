"""The chaos harness: run applications under named injection campaigns.

For every selected (app, variant) pair the harness runs a clean
baseline, then the same workload with a fresh seeded
:class:`~repro.inject.InjectionPlan` attached, and then asserts the
campaign's contract:

* the simulator's invariants hold afterwards — no leaked physical
  frames, free bitmap consistent, page tables in agreement with the
  HMM mirror (:func:`~repro.inject.invariants.check_invariants`);
* a *recoverable* campaign must complete with output identical to the
  baseline (the hardened runtime absorbed every fault);
* a *non-recoverable* campaign may fail, but only with a **typed**
  error (``HipError`` with an ``hipError_t`` code, or the fault
  handler's ``GPUMemoryAccessError``) — and must still not leak.

Everything in the emitted report derives from simulated time and seeded
randomness, so the same ``--seed`` always produces a byte-identical
report (the CI replay check).
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, List, Optional, Sequence

from ..core.faults import GPUMemoryAccessError
from ..runtime.hip import HipError
from .campaigns import Campaign, get_campaign
from .invariants import check_invariants

#: Pool size for chaos runs: small enough that pressure faults bite.
CHAOS_MEMORY_GIB = 8

#: The ``--quick`` subset (one latency-bound, one iteration-heavy app).
QUICK_APPS = ("nn", "hotspot")

#: Report schema version (bump on layout changes).
SCHEMA_VERSION = 1


def derive_seed(seed: int, campaign: str, app: str, variant: str) -> int:
    """Per-run plan seed: stable, distinct per (campaign, app, variant)."""
    tag = f"{campaign}:{app}:{variant}".encode()
    return (int(seed) * 1_000_003 + zlib.crc32(tag)) & 0x7FFFFFFF


def _small_params(app_name: str) -> Optional[Dict[str, int]]:
    from ..analyze import SMALL_PARAMS

    return SMALL_PARAMS.get(app_name)


def _chosen_variants(app) -> List[str]:
    """The explicit baseline plus the first unified variant of an app."""
    variants = ["explicit"]
    for variant in app.variants:
        if variant != "explicit":
            variants.append(variant)
            break
    return variants


def _classify_error(exc: BaseException) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
        "typed": isinstance(exc, (HipError, GPUMemoryAccessError)),
    }
    if isinstance(exc, HipError):
        record["code"] = exc.code
    return record


def run_one(
    campaign: Campaign,
    app_name: str,
    variant: str,
    seed: int,
    memory_gib: int = CHAOS_MEMORY_GIB,
) -> Dict[str, Any]:
    """One (app, variant) chaos run: baseline, injected run, verdict."""
    from ..apps import ALL_APPS

    app = ALL_APPS[app_name]()
    params = _small_params(app_name)
    baseline = app.run(
        variant, memory_gib=memory_gib, params=params
    )

    plan_seed = derive_seed(seed, campaign.name, app_name, variant)
    plan = campaign.plan(plan_seed)
    error: Optional[Dict[str, Any]] = None
    result = None
    try:
        result = app.run(
            variant, memory_gib=memory_gib, params=params, inject=plan
        )
    except (HipError, GPUMemoryAccessError, MemoryError, RuntimeError) as exc:
        error = _classify_error(exc)
    plan.teardown()

    problems = check_invariants(app.last_apu)
    checksum_matches = (
        result is not None and result.checksum == baseline.checksum
    )
    if error is None:
        ok = checksum_matches and not problems
    else:
        ok = (
            not campaign.recoverable
            and bool(error["typed"])
            and not problems
        )

    record: Dict[str, Any] = {
        "app": app_name,
        "variant": variant,
        "plan_seed": plan_seed,
        "ok": ok,
        "error": error,
        "checksum_matches": checksum_matches,
        "invariant_problems": problems,
        "injected_faults": plan.fired(),
        "recovery_notes": len(plan.notes()),
        "degradations": [
            note["event"] for note in plan.notes()
            if note["event"].startswith("degrade.")
        ],
        "baseline_total_time_s": baseline.total_time_s,
        "injected_total_time_s": (
            result.total_time_s if result is not None else None
        ),
        "free_frames_after": app.last_apu.physical.free_frames,
        "total_frames": app.last_apu.physical.total_frames,
        "journal": plan.journal_payload(),
    }
    return record


def run_campaign(
    campaign_name: str,
    seed: int = 7,
    apps: Optional[Sequence[str]] = None,
    quick: bool = False,
    memory_gib: int = CHAOS_MEMORY_GIB,
) -> Dict[str, Any]:
    """Run a named campaign across apps; returns the JSON-ready report."""
    from ..apps import ALL_APPS

    campaign = get_campaign(campaign_name)
    if apps is None:
        apps = list(QUICK_APPS) if quick else sorted(ALL_APPS)
    unknown = set(apps) - set(ALL_APPS)
    if unknown:
        raise ValueError(
            f"unknown app(s) {sorted(unknown)}; choose from {sorted(ALL_APPS)}"
        )

    runs: List[Dict[str, Any]] = []
    for app_name in apps:
        app = ALL_APPS[app_name]()
        for variant in _chosen_variants(app):
            runs.append(
                run_one(
                    campaign, app_name, variant, seed,
                    memory_gib=memory_gib,
                )
            )

    return {
        "schema": SCHEMA_VERSION,
        "campaign": campaign.name,
        "description": campaign.description,
        "recoverable": campaign.recoverable,
        "seed": int(seed),
        "quick": bool(quick),
        "memory_gib": int(memory_gib),
        "apps": list(apps),
        "runs": runs,
        "ok": all(run["ok"] for run in runs),
    }


def report_bytes(report: Dict[str, Any]) -> bytes:
    """Canonical serialisation — byte-identical for identical reports."""
    return (
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")
