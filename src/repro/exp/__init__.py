"""Unified experiment engine (Section "one engine, many figures").

``repro.exp`` owns experiment definition, execution, and artifacts:

* :mod:`repro.exp.spec` — declarative :class:`ExperimentSpec` (name,
  parameter grid, runtime kwargs, runner, output schema);
* :mod:`repro.exp.registry` — the central registry every consumer
  (CLI, report collectors, benchmark fixtures, CI) resolves against;
* :mod:`repro.exp.cache` — on-disk point-result cache keyed by
  code version + spec hash + point parameters;
* :mod:`repro.exp.engine` — process-parallel execution and the
  ``BENCH_results.json`` perf trajectory;
* :mod:`repro.exp.experiments` — the registered experiments (every
  paper figure, the app study, the UVM extension, partitioning).

Typical use::

    from repro.exp import Engine

    engine = Engine(workers=4)
    result = engine.run("fig2", quick=True)
    for row in result.dicts():
        print(row)
"""

from .cache import ResultCache, code_version, default_cache_dir
from .engine import (
    BENCH_FILENAME,
    SCHEMA_VERSION,
    Engine,
    ExperimentResult,
    PointResult,
    PointTimeoutError,
    bench_payload,
    execute_point,
    utc_timestamp,
    verify_bench,
    write_artifacts,
)
from .registry import (
    REGISTRY,
    UnknownExperimentError,
    all_specs,
    experiment_names,
    get_spec,
    register,
    temporarily_registered,
)
from .spec import ExperimentSpec, Point

# Importing the definitions module populates the registry.
from . import experiments as _experiments  # noqa: E402,F401

__all__ = [
    "BENCH_FILENAME",
    "Engine",
    "ExperimentResult",
    "ExperimentSpec",
    "Point",
    "PointResult",
    "PointTimeoutError",
    "REGISTRY",
    "ResultCache",
    "SCHEMA_VERSION",
    "UnknownExperimentError",
    "all_specs",
    "bench_payload",
    "code_version",
    "default_cache_dir",
    "execute_point",
    "experiment_names",
    "get_spec",
    "register",
    "temporarily_registered",
    "utc_timestamp",
    "verify_bench",
    "write_artifacts",
]
