"""Declarative experiment specifications.

An :class:`ExperimentSpec` describes one experiment of the reproduction
— a paper figure, the application study, the UVM extension, or the
partition sweep — as data instead of code:

* a **parameter grid** (named axes, each a sequence of values) whose
  cross product defines the experiment's *points*;
* **fixed** keyword arguments merged into every point (problem sizes,
  pool capacity — the "runtime factory" knobs);
* a **runner**: a picklable module-level callable invoked once per point
  with the merged parameters, returning the point's result rows;
* the **columns** of the produced rows, and provenance (paper source).

Both the grid and the fixed kwargs have a ``--quick`` variant so one
spec serves the full paper-scale sweep and the fast smoke sweep.

Specs hash to a stable :meth:`ExperimentSpec.spec_hash`; together with
the code version and the point parameters this keys the on-disk result
cache (see :mod:`repro.exp.cache`).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: A runner returns either a plain list of rows, or a mapping with
#: ``rows`` and an optional ``sim_time_ns`` (total simulated time the
#: point accounts for, used in the BENCH trajectory).
RunnerResult = Any
Runner = Callable[..., RunnerResult]


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding used for hashing and cache keys."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _freeze_grid(grid: Optional[Mapping[str, Sequence[Any]]]) -> Optional[
    Tuple[Tuple[str, Tuple[Any, ...]], ...]
]:
    if grid is None:
        return None
    return tuple((axis, tuple(values)) for axis, values in grid.items())


@dataclass(frozen=True)
class Point:
    """One executable point of an experiment's grid."""

    experiment: str
    index: int
    params: Dict[str, Any]

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.experiment}[{inner}]"


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment."""

    name: str
    title: str
    columns: Tuple[str, ...]
    runner: Runner
    grid: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    quick_grid: Optional[Tuple[Tuple[str, Tuple[Any, ...]], ...]] = None
    fixed: Tuple[Tuple[str, Any], ...] = ()
    quick_fixed: Optional[Tuple[Tuple[str, Any], ...]] = None
    source: str = ""
    description: str = ""

    @classmethod
    def define(
        cls,
        name: str,
        title: str,
        columns: Sequence[str],
        runner: Runner,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        quick_grid: Optional[Mapping[str, Sequence[Any]]] = None,
        fixed: Optional[Mapping[str, Any]] = None,
        quick_fixed: Optional[Mapping[str, Any]] = None,
        source: str = "",
        description: str = "",
    ) -> "ExperimentSpec":
        """Build a spec from plain mappings (the ergonomic constructor)."""
        return cls(
            name=name,
            title=title,
            columns=tuple(columns),
            runner=runner,
            grid=_freeze_grid(grid) or (),
            quick_grid=_freeze_grid(quick_grid),
            fixed=tuple((fixed or {}).items()),
            quick_fixed=(
                tuple(quick_fixed.items()) if quick_fixed is not None else None
            ),
            source=source,
            description=description,
        )

    # -- grid expansion -------------------------------------------------

    def active_grid(self, quick: bool = False) -> Tuple[
        Tuple[str, Tuple[Any, ...]], ...
    ]:
        if quick and self.quick_grid is not None:
            return self.quick_grid
        return self.grid

    def active_fixed(self, quick: bool = False) -> Dict[str, Any]:
        base = dict(self.fixed)
        if quick and self.quick_fixed is not None:
            base.update(dict(self.quick_fixed))
        return base

    def points(self, quick: bool = False) -> List[Point]:
        """Expand the grid's cross product into executable points."""
        grid = self.active_grid(quick)
        fixed = self.active_fixed(quick)
        axes = [axis for axis, _ in grid]
        value_lists = [values for _, values in grid]
        points: List[Point] = []
        for index, combo in enumerate(itertools.product(*value_lists)):
            params = dict(fixed)
            params.update(dict(zip(axes, combo)))
            points.append(Point(self.name, index, params))
        return points

    def point_count(self, quick: bool = False) -> int:
        count = 1
        for _, values in self.active_grid(quick):
            count *= len(values)
        return count

    def axes(self, quick: bool = False) -> List[str]:
        return [axis for axis, _ in self.active_grid(quick)]

    # -- identity -------------------------------------------------------

    def spec_hash(self) -> str:
        """Stable digest of every declarative field of the spec.

        Any change to the grid, fixed kwargs, columns, or runner identity
        produces a new hash, invalidating cached point results.
        """
        payload = {
            "name": self.name,
            "title": self.title,
            "columns": list(self.columns),
            "grid": [[axis, list(values)] for axis, values in self.grid],
            "quick_grid": (
                None
                if self.quick_grid is None
                else [[axis, list(values)] for axis, values in self.quick_grid]
            ),
            "fixed": sorted((k, repr(v)) for k, v in self.fixed),
            "quick_fixed": (
                None
                if self.quick_fixed is None
                else sorted((k, repr(v)) for k, v in self.quick_fixed)
            ),
            "runner": f"{self.runner.__module__}.{self.runner.__qualname__}",
            "source": self.source,
        }
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()
